//! Instance and physical-device enumeration.
//!
//! Mirrors the first block of the paper's Listing 1: create a
//! `VkInstance`, enumerate physical devices, inspect queue families,
//! memory heaps and limits, then create a logical device.

use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use vcb_sim::profile::{DeviceProfile, HeapProfile, QueueCaps};
use vcb_sim::KernelRegistry;

use crate::error::{VkError, VkResult};
use crate::flags::MemoryProperty;

/// Parameters for [`Instance::new`] (`VkInstanceCreateInfo`).
#[derive(Clone)]
pub struct InstanceCreateInfo {
    /// Application name (`VkApplicationInfo::pApplicationName`).
    pub application_name: String,
    /// Enabled tooling layers; present during development, removed at
    /// runtime (§III-A of the paper).
    pub enabled_layers: Vec<String>,
    /// The simulated platform: device profiles this instance can see.
    pub devices: Vec<DeviceProfile>,
    /// Kernel registry the installable client drivers compile against.
    pub registry: Arc<KernelRegistry>,
}

impl fmt::Debug for InstanceCreateInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InstanceCreateInfo")
            .field("application_name", &self.application_name)
            .field("enabled_layers", &self.enabled_layers)
            .field(
                "devices",
                &self.devices.iter().map(|d| &d.name).collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

pub(crate) struct InstanceShared {
    pub(crate) application_name: String,
    pub(crate) enabled_layers: Vec<String>,
    pub(crate) profiles: Vec<DeviceProfile>,
    pub(crate) registry: Arc<KernelRegistry>,
}

/// The Vulkan loader entry object (`VkInstance`).
#[derive(Clone)]
pub struct Instance {
    pub(crate) shared: Rc<InstanceShared>,
}

impl Instance {
    /// `vkCreateInstance`: initializes the loader with the platform's
    /// installable drivers.
    ///
    /// # Errors
    ///
    /// [`VkError::InitializationFailed`] if no device profile supports
    /// Vulkan or a profile fails its lint.
    pub fn new(create_info: &InstanceCreateInfo) -> VkResult<Instance> {
        if create_info.devices.is_empty() {
            return Err(VkError::InitializationFailed {
                what: "no physical devices on this platform".into(),
            });
        }
        for d in &create_info.devices {
            let problems = d.lint();
            if !problems.is_empty() {
                return Err(VkError::InitializationFailed {
                    what: format!(
                        "device profile `{}` invalid: {}",
                        d.name,
                        problems.join("; ")
                    ),
                });
            }
            if d.driver(vcb_sim::Api::Vulkan).is_none() {
                return Err(VkError::InitializationFailed {
                    what: format!("device `{}` has no Vulkan driver installed", d.name),
                });
            }
        }
        Ok(Instance {
            shared: Rc::new(InstanceShared {
                application_name: create_info.application_name.clone(),
                enabled_layers: create_info.enabled_layers.clone(),
                profiles: create_info.devices.clone(),
                registry: Arc::clone(&create_info.registry),
            }),
        })
    }

    /// `vkEnumeratePhysicalDevices`.
    pub fn enumerate_physical_devices(&self) -> Vec<PhysicalDevice> {
        (0..self.shared.profiles.len())
            .map(|index| PhysicalDevice {
                instance: Rc::clone(&self.shared),
                index,
            })
            .collect()
    }

    /// The application name given at creation.
    pub fn application_name(&self) -> &str {
        &self.shared.application_name
    }

    /// Enabled tooling layers.
    pub fn enabled_layers(&self) -> &[String] {
        &self.shared.enabled_layers
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Instance")
            .field("application_name", &self.shared.application_name)
            .field("devices", &self.shared.profiles.len())
            .finish()
    }
}

/// A physical GPU visible to the instance (`VkPhysicalDevice`).
#[derive(Clone)]
pub struct PhysicalDevice {
    pub(crate) instance: Rc<InstanceShared>,
    pub(crate) index: usize,
}

impl PhysicalDevice {
    pub(crate) fn profile(&self) -> &DeviceProfile {
        &self.instance.profiles[self.index]
    }

    /// `vkGetPhysicalDeviceProperties`.
    pub fn properties(&self) -> PhysicalDeviceProperties {
        let p = self.profile();
        let vk = p
            .driver(vcb_sim::Api::Vulkan)
            .expect("instance creation verified Vulkan support");
        PhysicalDeviceProperties {
            device_name: p.name.clone(),
            api_version: vk.api_version.clone(),
            vendor: p.vendor,
            limits: DeviceLimits {
                max_push_constants_size: p.max_push_constants,
                max_compute_work_group_invocations: p.max_workgroup_size,
                max_compute_shared_memory_size: p.shared_mem_per_cu,
            },
        }
    }

    /// `vkGetPhysicalDeviceQueueFamilyProperties`.
    pub fn queue_family_properties(&self) -> Vec<QueueFamilyProperties> {
        self.profile()
            .queue_families
            .iter()
            .map(|q| QueueFamilyProperties {
                queue_flags: q.caps,
                queue_count: q.count,
            })
            .collect()
    }

    /// `vkGetPhysicalDeviceMemoryProperties`.
    pub fn memory_properties(&self) -> PhysicalDeviceMemoryProperties {
        let heaps = self.profile().heaps.clone();
        let memory_types = heaps
            .iter()
            .enumerate()
            .map(|(heap_index, h)| {
                let mut flags = MemoryProperty::empty();
                if h.device_local {
                    flags = flags | MemoryProperty::DEVICE_LOCAL;
                }
                if h.host_visible {
                    flags = flags | MemoryProperty::HOST_VISIBLE | MemoryProperty::HOST_COHERENT;
                }
                MemoryType {
                    property_flags: flags,
                    heap_index,
                }
            })
            .collect();
        PhysicalDeviceMemoryProperties {
            memory_types,
            memory_heaps: heaps,
        }
    }

    /// Finds the first memory type whose flags contain `required` and
    /// whose bit is set in `type_bits` — the `findMemType` helper every
    /// Vulkan application writes (see Listing 1 of the paper).
    pub fn find_memory_type(&self, type_bits: u32, required: MemoryProperty) -> Option<usize> {
        self.memory_properties()
            .memory_types
            .iter()
            .enumerate()
            .position(|(i, t)| (type_bits & (1 << i)) != 0 && t.property_flags.contains(required))
    }

    /// First queue family index supporting all of `caps`.
    pub fn find_queue_family(&self, caps: QueueCaps) -> Option<usize> {
        self.profile().find_queue_family(caps)
    }
}

impl fmt::Debug for PhysicalDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysicalDevice")
            .field("name", &self.profile().name)
            .finish()
    }
}

/// `VkPhysicalDeviceProperties` subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalDeviceProperties {
    /// Marketing name.
    pub device_name: String,
    /// Vulkan API version string reported by the driver.
    pub api_version: String,
    /// GPU vendor.
    pub vendor: vcb_sim::Vendor,
    /// Device limits relevant to compute.
    pub limits: DeviceLimits,
}

/// `VkPhysicalDeviceLimits` subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceLimits {
    /// Maximum bytes of push constants (§VI-B: 256 on the GTX 1050 Ti,
    /// 128 elsewhere).
    pub max_push_constants_size: u32,
    /// Maximum work items per workgroup.
    pub max_compute_work_group_invocations: u32,
    /// Maximum shared memory per workgroup.
    pub max_compute_shared_memory_size: u64,
}

/// `VkQueueFamilyProperties`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFamilyProperties {
    /// Capability flags of this family.
    pub queue_flags: QueueCaps,
    /// Number of queues in the family.
    pub queue_count: u32,
}

/// One `VkMemoryType`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryType {
    /// Property flags.
    pub property_flags: MemoryProperty,
    /// Index into [`PhysicalDeviceMemoryProperties::memory_heaps`].
    pub heap_index: usize,
}

/// `VkPhysicalDeviceMemoryProperties`.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalDeviceMemoryProperties {
    /// Available memory types.
    pub memory_types: Vec<MemoryType>,
    /// Backing heaps.
    pub memory_heaps: Vec<HeapProfile>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_sim::profile::devices;

    fn instance() -> Instance {
        Instance::new(&InstanceCreateInfo {
            application_name: "test".into(),
            enabled_layers: vec![],
            devices: devices::all(),
            registry: Arc::new(KernelRegistry::new()),
        })
        .unwrap()
    }

    #[test]
    fn enumerates_all_paper_devices() {
        let inst = instance();
        let phys = inst.enumerate_physical_devices();
        assert_eq!(phys.len(), 4);
        let names: Vec<_> = phys.iter().map(|p| p.properties().device_name).collect();
        assert!(names.iter().any(|n| n.contains("1050")));
        assert!(names.iter().any(|n| n.contains("Adreno")));
    }

    #[test]
    fn empty_platform_rejected() {
        let err = Instance::new(&InstanceCreateInfo {
            application_name: "x".into(),
            enabled_layers: vec![],
            devices: vec![],
            registry: Arc::new(KernelRegistry::new()),
        })
        .unwrap_err();
        assert!(matches!(err, VkError::InitializationFailed { .. }));
    }

    #[test]
    fn memory_types_reflect_heaps() {
        let inst = instance();
        let gtx = &inst.enumerate_physical_devices()[0];
        let mem = gtx.memory_properties();
        assert_eq!(mem.memory_types.len(), mem.memory_heaps.len());
        let dl = gtx
            .find_memory_type(u32::MAX, MemoryProperty::DEVICE_LOCAL)
            .unwrap();
        assert!(mem.memory_heaps[mem.memory_types[dl].heap_index].device_local);
        let hv = gtx
            .find_memory_type(u32::MAX, MemoryProperty::HOST_VISIBLE)
            .unwrap();
        assert!(mem.memory_heaps[mem.memory_types[hv].heap_index].host_visible);
    }

    #[test]
    fn mobile_unified_memory_is_both_local_and_visible() {
        let inst = instance();
        let nexus = inst
            .enumerate_physical_devices()
            .into_iter()
            .find(|p| p.properties().device_name.contains("PowerVR"))
            .unwrap();
        let both = nexus.find_memory_type(
            u32::MAX,
            MemoryProperty::DEVICE_LOCAL | MemoryProperty::HOST_VISIBLE,
        );
        assert!(both.is_some());
    }

    #[test]
    fn queue_families_expose_dedicated_transfer_on_desktop() {
        let inst = instance();
        let gtx = &inst.enumerate_physical_devices()[0];
        let fams = gtx.queue_family_properties();
        assert!(fams
            .iter()
            .any(|f| f.queue_flags == QueueCaps::TRANSFER && f.queue_count > 0));
    }

    #[test]
    fn limits_match_profile() {
        let inst = instance();
        let gtx = &inst.enumerate_physical_devices()[0];
        assert_eq!(gtx.properties().limits.max_push_constants_size, 256);
    }
}
