//! Cross-workload determinism suite for intra-dispatch parallelism.
//!
//! For every workload of the suite (plus both microbenchmarks) and every
//! [`TraceMode`], running the simulator with `sim_threads = 4` must be
//! **bit-identical** to the sequential run: same output buffers, same
//! `TrafficStats`, same simulated `DispatchReport` times. The oracle is
//! the device fingerprint captured into every [`RunRecord`] — an FNV
//! digest of all live buffer contents plus the cumulative traffic
//! counters — together with the kernel/total simulated times.
//!
//! `sim_threads_exact` forces real worker threads even on single-core CI
//! machines, so the parallel execution path is genuinely exercised.

use vcb_core::run::{RunRecord, SizeSpec};
use vcb_core::workload::RunOpts;
use vcb_sim::profile::devices;
use vcb_sim::{Api, TraceMode};

const MODES: [TraceMode; 3] = [TraceMode::Detailed, TraceMode::Sampled(16), TraceMode::Auto];

fn opts(mode: TraceMode, threads: usize) -> RunOpts {
    RunOpts {
        trace_mode: mode,
        sim_threads: threads,
        sim_threads_exact: true,
        // Scale down iteration-heavy workloads; validation stays on so
        // outputs are also checked against the CPU references.
        scale: 0.25,
        ..RunOpts::default()
    }
}

fn assert_identical(seq: &RunRecord, par: &RunRecord, context: &str) {
    assert!(seq.validated, "{context}: sequential run failed validation");
    assert!(par.validated, "{context}: threaded run failed validation");
    assert_eq!(
        seq.kernel_time, par.kernel_time,
        "{context}: kernel time diverged"
    );
    assert_eq!(
        seq.total_time, par.total_time,
        "{context}: total time diverged"
    );
    assert_eq!(
        seq.fingerprint, par.fingerprint,
        "{context}: device state (buffers + traffic stats) diverged"
    );
}

/// Quick-but-representative size per suite workload (the per-workload
/// unit tests use the same scales).
fn quick_size(workload: &str) -> SizeSpec {
    match workload {
        "vectoradd" => SizeSpec::new("64K", 64 * 1024),
        "bfs" => SizeSpec::new("2k", 2048),
        "gaussian" => SizeSpec::new("48", 48),
        "hotspot" => SizeSpec::with_aux("64-4", 64, 4),
        "lud" => SizeSpec::new("64", 64),
        "nn" => SizeSpec::new("8k", 8192),
        "nw" => SizeSpec::new("256", 256),
        "backprop" => SizeSpec::new("4K", 4096),
        "pathfinder" => SizeSpec::with_aux("tiny", 600, 60),
        "cfd" => SizeSpec::new("2k", 2000),
        "stride" => SizeSpec::new("1M", 1024 * 1024),
        other => panic!("no quick size for workload `{other}`"),
    }
}

#[test]
fn suite_workloads_are_bit_identical_across_worker_threads() {
    let registry = vcb_workloads::registry().unwrap();
    let profile = devices::gtx1050ti();
    for w in vcb_workloads::suite_workloads(&registry) {
        let name = w.meta().name;
        let size = quick_size(name);
        for mode in MODES {
            let context = format!("{name}/{mode:?}");
            let seq = w
                .run(Api::Vulkan, &profile, &size, &opts(mode, 1))
                .unwrap_or_else(|e| panic!("{context}: sequential run failed: {e}"));
            let par = w
                .run(Api::Vulkan, &profile, &size, &opts(mode, 4))
                .unwrap_or_else(|e| panic!("{context}: threaded run failed: {e}"));
            assert_identical(&seq, &par, &context);
        }
    }
}

#[test]
fn dnn_workloads_are_bit_identical_across_worker_threads() {
    // The DNN family's shared-memory tiles run through the columnar
    // lds/sts recording path; their bank-conflict streams must replay
    // deterministically under the parallel group scheduler, explicit and
    // demand-paged alike.
    let registry = vcb_workloads::registry().unwrap();
    let sizes = [
        ("dnn_conv2d", SizeSpec::new("32", 32)),
        ("dnn_gemm", SizeSpec::new("64", 64)),
        ("dnn_maxpool2d", SizeSpec::new("256", 256)),
    ];
    let profiles = [
        devices::gtx1050ti(),
        vcb_sim::profile::devices::uvm_variant(
            devices::gtx1050ti(),
            vcb_sim::UvmProfile::oversubscribed(),
        ),
    ];
    for profile in &profiles {
        for w in vcb_workloads::dnn_workloads(&registry) {
            let name = w.meta().name;
            let (_, size) = sizes.iter().find(|(n, _)| *n == name).unwrap();
            for mode in MODES {
                let context = format!("{name}/{mode:?} on {}", profile.name);
                let seq = w
                    .run(Api::Vulkan, profile, size, &opts(mode, 1))
                    .unwrap_or_else(|e| panic!("{context}: sequential run failed: {e}"));
                let par = w
                    .run(Api::Vulkan, profile, size, &opts(mode, 4))
                    .unwrap_or_else(|e| panic!("{context}: threaded run failed: {e}"));
                assert_identical(&seq, &par, &context);
            }
        }
    }
}

#[test]
fn vectoradd_micro_is_bit_identical_across_worker_threads() {
    let registry = vcb_workloads::registry().unwrap();
    let profile = devices::gtx1050ti();
    for mode in MODES {
        for api in Api::ALL {
            let context = format!("vectoradd/{api}/{mode:?}");
            let n = 256 * 1024;
            let seq =
                vcb_workloads::micro::vectoradd::run(api, &profile, &registry, n, &opts(mode, 1))
                    .unwrap();
            let par =
                vcb_workloads::micro::vectoradd::run(api, &profile, &registry, n, &opts(mode, 4))
                    .unwrap();
            assert_identical(&seq, &par, &context);
        }
    }
}

#[test]
fn stride_micro_curves_are_bit_identical_across_worker_threads() {
    let registry = vcb_workloads::registry().unwrap();
    let profile = devices::gtx1050ti();
    for mode in MODES {
        let seq = vcb_workloads::micro::stride::bandwidth_curve(Api::Cuda, &profile, &registry, &{
            opts(mode, 1)
        })
        .unwrap();
        let par = vcb_workloads::micro::stride::bandwidth_curve(Api::Cuda, &profile, &registry, &{
            opts(mode, 4)
        })
        .unwrap();
        assert_eq!(seq, par, "bandwidth samples diverged under {mode:?}");
    }
}

/// Run-length recording parity: the parallel path records traced
/// groups' sector streams as [`vcb_sim::SectorRun`]s and replays them on
/// the coordinator; those recorded runs must expand to *exactly* the
/// sector sequence the sequential Direct sink feeds the L2 — not merely
/// produce the same aggregate stats. The `Gpu` trace-audit hook captures
/// every run the hierarchy consumes on both paths.
#[test]
fn recorded_runs_expand_to_the_direct_sink_sector_sequence() {
    use std::sync::Arc;
    use vcb_sim::engine::Gpu;
    use vcb_sim::exec::{BoundBuffer, CompileOpts, CompiledKernel, Dispatch, GroupCtx, KernelInfo};

    let n = 128 * 1024usize; // 512 groups of 256
    let make = || {
        let mut gpu = Gpu::new(devices::gtx1050ti());
        let (x, _) = gpu.pool_mut().create_buffer(0, (n * 4) as u64).unwrap();
        let (z, _) = gpu.pool_mut().create_buffer(0, (n * 4) as u64).unwrap();
        let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        gpu.pool_mut().buffer_mut(x).unwrap().write_slice(&data);
        let info = KernelInfo::new("parity", [256, 1, 1])
            .reads(0, "x")
            .writes(1, "z")
            .parallel_groups()
            .build();
        let body = Arc::new(move |ctx: &mut GroupCtx<'_>| {
            let x = ctx.global::<f32>(0)?;
            let z = ctx.global::<f32>(1)?;
            ctx.for_lanes(|lane| {
                let i = lane.global_linear() as usize;
                let v = lane.ld(&x, i);
                // A strided re-read so the stream is not purely
                // unit-stride (exercises multi-run warps too).
                let j = (i * 8) % n;
                let w = lane.ld(&x, j);
                lane.st(&z, i, v + w);
            });
            Ok(())
        });
        let dispatch = Dispatch {
            kernel: CompiledKernel::new(info, body, CompileOpts::default()),
            groups: [(n as u32).div_ceil(256), 1, 1],
            bindings: vec![
                BoundBuffer {
                    binding: 0,
                    buffer: x,
                },
                BoundBuffer {
                    binding: 1,
                    buffer: z,
                },
            ],
            push_constants: vec![],
        };
        (gpu, dispatch)
    };
    let driver = devices::gtx1050ti()
        .driver(vcb_sim::Api::Cuda)
        .unwrap()
        .clone();
    let expand = vcb_sim::coalesce::expand_runs;
    for mode in MODES {
        let (mut gpu_seq, d_seq) = make();
        gpu_seq.set_trace_mode(mode);
        gpu_seq.set_trace_audit(true);
        gpu_seq.execute(&d_seq, &driver).unwrap();
        let direct = gpu_seq.take_trace_audit();

        let (mut gpu_par, d_par) = make();
        gpu_par.set_trace_mode(mode);
        gpu_par.set_worker_threads(4);
        gpu_par.set_worker_clamp(false);
        gpu_par.set_trace_audit(true);
        gpu_par.execute(&d_par, &driver).unwrap();
        let recorded = gpu_par.take_trace_audit();

        assert!(!direct.is_empty(), "{mode:?}: no traced traffic captured");
        assert_eq!(
            expand(&direct),
            expand(&recorded),
            "{mode:?}: recorded runs do not replay the Direct sector sequence"
        );
        assert_eq!(gpu_seq.fingerprint(), gpu_par.fingerprint(), "{mode:?}");
    }
}

/// Unified-memory runs must keep the same bit-determinism contract as
/// explicit copies: the demand-paging state (residency map, LRU order,
/// fault/migration counters) evolves on the coordinator's replayed
/// sector streams, so threads 1 vs 4 must produce identical
/// fingerprints — on the fully resident variant and under an
/// oversubscribed budget (where LRU evictions interleave with faults).
#[test]
fn uvm_suite_is_bit_identical_across_worker_threads() {
    use vcb_sim::profile::devices::uvm_variant;
    use vcb_sim::timeline::CostKind;
    use vcb_sim::UvmProfile;

    let registry = vcb_workloads::registry().unwrap();
    let variants = [
        uvm_variant(devices::gtx1050ti(), UvmProfile::resident()),
        uvm_variant(devices::gtx1050ti(), UvmProfile::oversubscribed()),
    ];
    for profile in &variants {
        for w in vcb_workloads::suite_workloads(&registry) {
            let name = w.meta().name;
            let size = quick_size(name);
            let context = format!("{name} on {}", profile.name);
            let seq = w
                .run(Api::Vulkan, profile, &size, &opts(TraceMode::Auto, 1))
                .unwrap_or_else(|e| panic!("{context}: sequential run failed: {e}"));
            let par = w
                .run(Api::Vulkan, profile, &size, &opts(TraceMode::Auto, 4))
                .unwrap_or_else(|e| panic!("{context}: threaded run failed: {e}"));
            assert_identical(&seq, &par, &context);
            // The subsystem must actually engage: first-touch faults
            // stall every workload at least once.
            assert!(
                !seq.breakdown.get(CostKind::UvmFault).is_zero(),
                "{context}: no demand-paging time charged"
            );
        }
    }
}

#[test]
fn nw_stays_sequential_and_validates_on_every_api() {
    // nw's tiles depend on linear grid order; it is declared
    // `parallel_groups = false`, so even at sim_threads = 4 its
    // cross-API validation output must be unchanged.
    let registry = vcb_workloads::registry().unwrap();
    let profile = devices::gtx1050ti();
    let nw = vcb_workloads::suite_workloads(&registry)
        .into_iter()
        .find(|w| w.meta().name == "nw")
        .expect("nw is in the suite");
    let size = quick_size("nw");
    for api in Api::ALL {
        let seq = nw
            .run(api, &profile, &size, &opts(TraceMode::Auto, 1))
            .unwrap();
        let par = nw
            .run(api, &profile, &size, &opts(TraceMode::Auto, 4))
            .unwrap();
        assert_identical(&seq, &par, &format!("nw/{api}"));
    }
}
