//! hotspot — thermal simulation on a structured grid (Table I:
//! Structured Grid / Physics).
//!
//! Estimates processor temperature from a floorplan power map by
//! iterating a 5-point stencil. Each simulation step is one kernel
//! invocation on ping-pong temperature buffers; steps are data-dependent,
//! so the launch-based APIs pay a host round-trip per step while the
//! Vulkan port records every step into one command buffer (§IV-C) with
//! alternating descriptor sets.

use std::sync::Arc;

use vcb_core::run::{RunFailure, RunOutcome, SizeSpec};
use vcb_core::suite::{self, BenchmarkMeta};
use vcb_core::workload::{RunOpts, Workload};
use vcb_sim::exec::{GroupCtx, KernelBody, KernelInfo, MAX_WARP_WIDTH};
use vcb_sim::profile::{DeviceClass, DeviceProfile};
use vcb_sim::{Api, KernelRegistry, SimResult};

use crate::common::{
    approx_eq_f32, bytes_of, measure, scaled_iterations, to_f32, BodyOutcome, ComputeBackend,
    UsageHint,
};
use crate::data;

/// Workload name.
pub const NAME: &str = "hotspot";
/// Kernel entry point.
pub const KERNEL: &str = "hotspot_step";
/// Tile edge (workgroup is `TILE x TILE`).
pub const TILE: u32 = 16;

/// Physical constants of the Rodinia model (values from hotspot's
/// `compute_tran_temp`).
pub mod physics {
    /// Capacitance scaling factor.
    pub const CAP: f32 = 0.5;
    /// X-direction thermal resistance.
    pub const RX: f32 = 1.0;
    /// Y-direction thermal resistance.
    pub const RY: f32 = 1.0;
    /// Z-direction (to ambient) thermal resistance.
    pub const RZ: f32 = 4.0;
    /// Ambient temperature.
    pub const AMB: f32 = 80.0;
    /// Time step.
    pub const STEP: f32 = 0.4;
}

/// The GLSL compute shader the SPIR-V is built from.
pub const GLSL_SOURCE: &str = r#"
#version 450
layout(local_size_x = 16, local_size_y = 16) in;
layout(set = 0, binding = 0) readonly buffer Power { float power[]; };
layout(set = 0, binding = 1) readonly buffer TempSrc { float temp_src[]; };
layout(set = 0, binding = 2) buffer TempDst { float temp_dst[]; };
layout(push_constant) uniform Params { uint n; };

const float CAP = 0.5, RX = 1.0, RY = 1.0, RZ = 4.0;
const float AMB = 80.0, STEP = 0.4;

void main() {
    uint j = gl_GlobalInvocationID.x;
    uint i = gl_GlobalInvocationID.y;
    if (i >= n || j >= n) return;
    uint idx = i * n + j;
    float t  = temp_src[idx];
    float tn = temp_src[(i == 0u     ? i : i - 1u) * n + j];
    float ts = temp_src[(i == n - 1u ? i : i + 1u) * n + j];
    float tw = temp_src[i * n + (j == 0u     ? j : j - 1u)];
    float te = temp_src[i * n + (j == n - 1u ? j : j + 1u)];
    float delta = (STEP / CAP) * (power[idx]
        + (ts + tn - 2.0 * t) / RY
        + (te + tw - 2.0 * t) / RX
        + (AMB - t) / RZ);
    temp_dst[idx] = t + delta;
}
"#;

/// The OpenCL C twin of the kernel.
pub const CL_SOURCE: &str = r#"
__kernel void hotspot_step(__global const float* power,
                           __global const float* temp_src,
                           __global float* temp_dst,
                           uint n) {
    uint j = get_global_id(0);
    uint i = get_global_id(1);
    if (i >= n || j >= n) return;
    uint idx = i * n + j;
    float t = temp_src[idx];
    float tn = temp_src[(i == 0     ? i : i - 1) * n + j];
    float ts = temp_src[(i == n - 1 ? i : i + 1) * n + j];
    float tw = temp_src[i * n + (j == 0     ? j : j - 1)];
    float te = temp_src[i * n + (j == n - 1 ? j : j + 1)];
    float delta = (STEP / CAP) * (power[idx]
        + (ts + tn - 2.0f * t) / RY
        + (te + tw - 2.0f * t) / RX
        + (AMB - t) / RZ);
    temp_dst[idx] = t + delta;
}
"#;

/// The production body: warp-columnar. A 16×16 tile's warps span two
/// grid rows each, so the stencil's five source loads are gathers over
/// the active lanes' (clamped) neighbour indices — per-address traced,
/// exactly like the lane oracle — while the arithmetic runs in tight
/// columnar loops with one accounting call per warp.
fn warp_body() -> Arc<dyn KernelBody> {
    Arc::new(|ctx: &mut GroupCtx<'_>| {
        let power = ctx.global::<f32>(0)?;
        let src = ctx.global::<f32>(1)?;
        let dst = ctx.global::<f32>(2)?;
        let n = ctx.push_u32(0) as usize;
        ctx.for_warps(|w| {
            let lanes = w.lanes();
            let mut idx_c = [0usize; MAX_WARP_WIDTH];
            let mut idx_n = [0usize; MAX_WARP_WIDTH];
            let mut idx_s = [0usize; MAX_WARP_WIDTH];
            let mut idx_w = [0usize; MAX_WARP_WIDTH];
            let mut idx_e = [0usize; MAX_WARP_WIDTH];
            let mut k = 0usize;
            for l in 0..lanes {
                let j = w.global_id(l, 0) as usize;
                let i = w.global_id(l, 1) as usize;
                if i >= n || j >= n {
                    continue;
                }
                let idx = i * n + j;
                idx_c[k] = idx;
                idx_n[k] = if i == 0 { idx } else { idx - n };
                idx_s[k] = if i == n - 1 { idx } else { idx + n };
                idx_w[k] = if j == 0 { idx } else { idx - 1 };
                idx_e[k] = if j == n - 1 { idx } else { idx + 1 };
                k += 1;
            }
            if k == 0 {
                return;
            }
            let mut t = [0f32; MAX_WARP_WIDTH];
            let mut tn = [0f32; MAX_WARP_WIDTH];
            let mut ts = [0f32; MAX_WARP_WIDTH];
            let mut tw = [0f32; MAX_WARP_WIDTH];
            let mut te = [0f32; MAX_WARP_WIDTH];
            let mut p = [0f32; MAX_WARP_WIDTH];
            w.ld_gather(&src, &idx_c[..k], &mut t[..k]);
            w.ld_gather(&src, &idx_n[..k], &mut tn[..k]);
            w.ld_gather(&src, &idx_s[..k], &mut ts[..k]);
            w.ld_gather(&src, &idx_w[..k], &mut tw[..k]);
            w.ld_gather(&src, &idx_e[..k], &mut te[..k]);
            w.ld_gather(&power, &idx_c[..k], &mut p[..k]);
            for i in 0..k {
                let delta = (physics::STEP / physics::CAP)
                    * (p[i]
                        + (ts[i] + tn[i] - 2.0 * t[i]) / physics::RY
                        + (te[i] + tw[i] - 2.0 * t[i]) / physics::RX
                        + (physics::AMB - t[i]) / physics::RZ);
                t[i] += delta;
            }
            w.alu(14 * k as u64);
            w.st_scatter(&dst, &idx_c[..k], &t[..k]);
        });
        Ok(())
    })
}

/// The lane-at-a-time oracle body (see the warp-equivalence suite).
pub fn lane_body() -> Arc<dyn KernelBody> {
    Arc::new(|ctx: &mut GroupCtx<'_>| {
        let power = ctx.global::<f32>(0)?;
        let src = ctx.global::<f32>(1)?;
        let dst = ctx.global::<f32>(2)?;
        let n = ctx.push_u32(0) as usize;
        ctx.for_lanes(|lane| {
            let j = lane.global_id(0) as usize;
            let i = lane.global_id(1) as usize;
            if i >= n || j >= n {
                return;
            }
            let idx = i * n + j;
            let t = lane.ld(&src, idx);
            let tn = lane.ld(&src, if i == 0 { idx } else { idx - n });
            let ts = lane.ld(&src, if i == n - 1 { idx } else { idx + n });
            let tw = lane.ld(&src, if j == 0 { idx } else { idx - 1 });
            let te = lane.ld(&src, if j == n - 1 { idx } else { idx + 1 });
            let p = lane.ld(&power, idx);
            let delta = (physics::STEP / physics::CAP)
                * (p + (ts + tn - 2.0 * t) / physics::RY
                    + (te + tw - 2.0 * t) / physics::RX
                    + (physics::AMB - t) / physics::RZ);
            lane.alu(14);
            lane.st(&dst, idx, t + delta);
        });
        Ok(())
    })
}

fn register_body(registry: &mut KernelRegistry, body: Arc<dyn KernelBody>) -> SimResult<()> {
    // parallel_groups audit: ping-pong stencil — reads src/power (both
    // read-only this dispatch), writes each item's own dst cell.
    let info = KernelInfo::new(KERNEL, [TILE, TILE, 1])
        .reads(0, "power")
        .reads(1, "temp_src")
        .writes(2, "temp_dst")
        .push_constants(4)
        .parallel_groups()
        .source_bytes(CL_SOURCE.len() as u64)
        .build();
    registry.register(info, body)
}

/// Registers the kernel body.
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register(registry: &mut KernelRegistry) -> SimResult<()> {
    register_body(registry, warp_body())
}

/// Registers the [`lane_body`] oracle instead of the warp-columnar
/// production body (differential testing only).
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register_lane_oracle(registry: &mut KernelRegistry) -> SimResult<()> {
    register_body(registry, lane_body())
}

/// Generates initial temperatures and the power map.
pub fn generate(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let temp = data::uniform_f32(n * n, seed, 320.0, 340.0);
    let power = data::uniform_f32(n * n, seed ^ 0x70, 0.0, 0.5);
    (temp, power)
}

/// CPU reference: `iterations` stencil steps.
pub fn reference(temp: &[f32], power: &[f32], n: usize, iterations: u64) -> Vec<f32> {
    let mut src = temp.to_vec();
    let mut dst = vec![0.0f32; n * n];
    for _ in 0..iterations {
        for i in 0..n {
            for j in 0..n {
                let idx = i * n + j;
                let t = src[idx];
                let tn = src[if i == 0 { idx } else { idx - n }];
                let ts = src[if i == n - 1 { idx } else { idx + n }];
                let tw = src[if j == 0 { idx } else { idx - 1 }];
                let te = src[if j == n - 1 { idx } else { idx + 1 }];
                let delta = (physics::STEP / physics::CAP)
                    * (power[idx]
                        + (ts + tn - 2.0 * t) / physics::RY
                        + (te + tw - 2.0 * t) / physics::RX
                        + (physics::AMB - t) / physics::RZ);
                dst[idx] = t + delta;
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

fn grid_groups(n: usize) -> [u32; 3] {
    let g = (n as u32).div_ceil(TILE);
    [g, g, 1]
}

/// The one host program behind all three APIs: the stencil's ping-pong
/// loop as a recorded dependent-dispatch sequence with alternating bind
/// groups.
fn host_program(
    b: &mut dyn ComputeBackend,
    n: usize,
    iterations: u64,
    temp_host: &[f32],
    power_host: &[f32],
    expected: Option<&Vec<f32>>,
) -> Result<BodyOutcome, RunFailure> {
    let bytes = (n * n * 4) as u64;
    let power = b.upload(bytes_of(power_host), UsageHint::ReadOnly)?;
    let ping = b.upload(bytes_of(temp_host), UsageHint::ReadWrite)?;
    let pong = b.alloc(bytes, UsageHint::ReadWrite)?;
    b.load_program(CL_SOURCE)?;

    let bind_a = b.bind_group(&[power, ping, pong])?;
    let bind_b = b.bind_group_like(bind_a, &[power, pong, ping])?;
    let kernel = b.kernel(KERNEL, bind_a, 4)?;

    let groups = grid_groups(n);
    let seq = b.seq_begin()?;
    b.seq_kernel(seq, kernel)?;
    for i in 0..iterations {
        b.seq_bind(seq, if i % 2 == 0 { bind_a } else { bind_b })?;
        b.seq_push(seq, &(n as u32).to_le_bytes())?;
        b.seq_dispatch(seq, groups)?;
        b.seq_dependency(seq)?;
    }
    b.seq_end(seq)?;

    let compute_start = b.now();
    b.run(seq)?;
    let compute_time = b.now().duration_since(compute_start);

    let result = if iterations % 2 == 1 { pong } else { ping };
    let out = to_f32(&b.download(result)?);
    Ok(BodyOutcome {
        validated: expected.is_none_or(|e| approx_eq_f32(&out, e, 1e-3)),
        compute_time,
    })
}

fn run(
    api: Api,
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let iterations = scaled_iterations(size.aux, opts);
    let mut b = vcb_backend::create_with(api, profile, registry, &opts.into())?;
    let (temp_host, power_host) = generate(n, opts.seed);
    let expected = opts
        .validate
        .then(|| reference(&temp_host, &power_host, n, iterations));
    measure(NAME, &size.label, b.as_mut(), |b| {
        host_program(b, n, iterations, &temp_host, &power_host, expected.as_ref())
    })
}

/// The hotspot suite entry.
#[derive(Debug, Clone)]
pub struct Hotspot {
    registry: Arc<KernelRegistry>,
}

impl Hotspot {
    /// Creates the workload against a kernel registry.
    pub fn new(registry: Arc<KernelRegistry>) -> Self {
        Hotspot { registry }
    }
}

impl Workload for Hotspot {
    fn meta(&self) -> BenchmarkMeta {
        *suite::find(NAME).expect("hotspot is in Table I")
    }

    fn sizes(&self, class: DeviceClass) -> Vec<SizeSpec> {
        match class {
            DeviceClass::Desktop => vec![
                SizeSpec::with_aux("512-08", 512, 8),
                SizeSpec::with_aux("512-16", 512, 16),
                SizeSpec::with_aux("512-32", 512, 32),
            ],
            DeviceClass::Mobile => vec![
                SizeSpec::with_aux("128-8", 128, 8),
                SizeSpec::with_aux("128-16", 128, 16),
            ],
        }
    }

    fn run(&self, api: Api, device: &DeviceProfile, size: &SizeSpec, opts: &RunOpts) -> RunOutcome {
        run(api, device, &self.registry, size, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_core::run::speedup;
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        let mut r = KernelRegistry::new();
        register(&mut r).unwrap();
        Arc::new(r)
    }

    #[test]
    fn all_apis_match_reference() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::with_aux("64-4", 64, 4);
        let w = Hotspot::new(Arc::clone(&registry));
        for api in Api::ALL {
            let record = w.run(api, &devices::gtx1050ti(), &size, &opts).unwrap();
            assert!(record.validated, "{api} failed validation");
        }
    }

    #[test]
    fn temperatures_converge_toward_equilibrium() {
        // With zero power the grid must relax toward ambient.
        let n = 16;
        let temp = vec![340.0f32; n * n];
        let power = vec![0.0f32; n * n];
        let after = reference(&temp, &power, n, 50);
        assert!(after[0] < 340.0);
        assert!(after[0] > physics::AMB);
    }

    #[test]
    fn vulkan_wins_and_gains_with_iterations() {
        let registry = registry();
        let opts = RunOpts::default();
        let w = Hotspot::new(Arc::clone(&registry));
        let profile = devices::gtx1050ti();
        let mut speedups = Vec::new();
        for size in w.sizes(DeviceClass::Desktop) {
            let vk = w.run(Api::Vulkan, &profile, &size, &opts).unwrap();
            let cu = w.run(Api::Cuda, &profile, &size, &opts).unwrap();
            speedups.push(speedup(&cu, &vk));
        }
        assert!(speedups[0] > 1.2, "512-08 speedup {}", speedups[0]);
        assert!(
            speedups[2] >= speedups[0] * 0.95,
            "speedup should not shrink with iterations: {speedups:?}"
        );
    }

    #[test]
    fn mobile_sizes_run() {
        let registry = registry();
        let opts = RunOpts::default();
        let w = Hotspot::new(Arc::clone(&registry));
        let size = &w.sizes(DeviceClass::Mobile)[0];
        let cl = w
            .run(Api::OpenCl, &devices::powervr_g6430(), size, &opts)
            .unwrap();
        assert!(cl.validated);
    }
}
