//! Fault-tolerance contracts of the supervised `--jobs` runner, on the
//! real binary with deterministic fault injection (`VCB_FAULT_INJECT`):
//!
//! * a shard **crashing** mid-sweep is salvaged from its flushed event
//!   stream and the remainder retried — final stdout and CSV are
//!   **byte-identical** to a single-process run;
//! * a shard **hanging** trips the `--shard-timeout` watchdog, is
//!   killed (whole process group), salvaged, and retried — same
//!   byte-identity;
//! * a **torn event stream** (truncated mid-record) salvages its intact
//!   prefix — same byte-identity;
//! * a slice that fails on *every* attempt is bisected down to the
//!   poison cell, which is recorded as a failed cell while the sweep
//!   completes and exits with the dedicated code 4;
//! * the documented exit codes (2 usage, 3 merge, 4 exhausted retries)
//!   are pinned.

use std::process::{Command, Output};
use std::sync::OnceLock;

/// A fast but representative slice of `vcb all`: bfs panel cells plus
/// the stride bandwidth sweeps, desktop NVIDIA device only.
const ARGS: &[&str] = &[
    "all",
    "--scale",
    "0.005",
    "--filter",
    "bfs,stride",
    "--device",
    "1050",
    "--threads",
    "4",
];

fn vcb(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_vcb"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn vcb")
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("vcb_fault_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_owned()
}

/// The single-process reference (stdout bytes, CSV bytes), computed
/// once and shared by the byte-identity tests.
fn reference() -> &'static (Vec<u8>, Vec<u8>) {
    static REF: OnceLock<(Vec<u8>, Vec<u8>)> = OnceLock::new();
    REF.get_or_init(|| {
        let csv = tmp("ref.csv");
        let out = vcb(&[ARGS, &["--csv", &csv]].concat(), &[]);
        assert!(
            out.status.success(),
            "reference run failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(out.stdout.len() > 1000, "suspiciously small stdout");
        (out.stdout, std::fs::read(&csv).unwrap())
    })
}

/// Runs a supervised `--jobs 2` sweep with `fault` injected and asserts
/// it still succeeds with stdout (and CSV) byte-identical to the
/// single-process run. Returns the run's stderr for marker checks.
fn assert_recovers_byte_identical(name: &str, fault: &str, extra: &[&str]) -> String {
    let (ref_stdout, ref_csv) = reference();
    let csv = tmp(&format!("{name}.csv"));
    let args = [
        ARGS,
        &["--jobs", "2", "--retries", "2", "--csv", &csv],
        extra,
    ]
    .concat();
    let out = vcb(&args, &[("VCB_FAULT_INJECT", fault)]);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "jobs run with {fault} failed:\n{stderr}"
    );
    assert!(
        out.stdout == *ref_stdout,
        "stdout under {fault} differs from the single-process run"
    );
    assert_eq!(
        std::fs::read(&csv).unwrap(),
        *ref_csv,
        "CSV under {fault} differs from the single-process run"
    );
    stderr
}

#[test]
fn crashed_shard_is_salvaged_and_byte_identical() {
    let stderr = assert_recovers_byte_identical("crash", "shard0:crash-after=2", &[]);
    assert!(
        stderr.contains("salvaged 2 completed cell(s)"),
        "expected a 2-cell salvage in stderr:\n{stderr}"
    );
    assert!(stderr.contains("retrying"), "expected a retry:\n{stderr}");
}

#[test]
fn hung_shard_is_killed_salvaged_and_byte_identical() {
    let stderr =
        assert_recovers_byte_identical("hang", "shard0:hang-after=1", &["--shard-timeout", "8"]);
    assert!(
        stderr.contains("no stream progress") && stderr.contains("killed"),
        "expected a watchdog kill in stderr:\n{stderr}"
    );
    assert!(stderr.contains("salvaged"), "expected a salvage:\n{stderr}");
}

#[test]
fn truncated_stream_salvages_intact_prefix_and_is_byte_identical() {
    let stderr = assert_recovers_byte_identical("truncate", "shard1:truncate-events", &[]);
    assert!(
        stderr.contains("torn line"),
        "expected the torn trailing record to be dropped:\n{stderr}"
    );
    assert!(stderr.contains("salvaged"), "expected a salvage:\n{stderr}");
}

/// A slice that dies on every attempt (crash injected on *all* shards,
/// *always*, with no retries) must bisect down to single cells, record
/// them as failed, still complete the sweep, and exit with code 4.
#[test]
fn repeatedly_failing_cells_are_poisoned_not_fatal() {
    let args = [
        "all",
        "--scale",
        "0.005",
        "--filter",
        "bfs",
        "--device",
        "1050",
        "--threads",
        "4",
        "--jobs",
        "2",
        "--retries",
        "0",
    ];
    let out = vcb(&args, &[("VCB_FAULT_INJECT", "all:crash-after=0:always")]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(4),
        "a poisoned sweep must exit 4:\n{stderr}"
    );
    assert!(
        stderr.contains("bisecting"),
        "expected bisection to isolate poison cells:\n{stderr}"
    );
    assert!(
        stderr.contains("exhausted every retry"),
        "expected the poison summary:\n{stderr}"
    );
    // The sweep still rendered its report, with the poison cells shown
    // as ordinary failures.
    assert!(
        stdout.contains("gave up after exhausting retries"),
        "expected poisoned cells rendered as failures:\n{stdout}"
    );
    assert!(
        stdout.contains("Fig. 2"),
        "expected the full report despite poisoned cells"
    );
}

/// The documented exit codes, pinned: 2 for usage errors, 3 for merge
/// failures (4 is covered by the poison test above).
#[test]
fn exit_codes_are_pinned() {
    let out = vcb(&["all", "--bogus-flag"], &[]);
    assert_eq!(out.status.code(), Some(2), "usage error must exit 2");

    let out = vcb(&["bogus-command"], &[]);
    assert_eq!(out.status.code(), Some(2), "unknown command must exit 2");

    let missing = tmp("does_not_exist.events");
    let out = vcb(&["merge", &missing], &[]);
    assert_eq!(out.status.code(), Some(3), "merge failure must exit 3");

    // Supervision flags outside --jobs are usage errors too.
    let out = vcb(&["all", "--retries", "2"], &[]);
    assert_eq!(out.status.code(), Some(2), "--retries without --jobs");
    let out = vcb(&["fig1", "--shard-timeout", "5"], &[]);
    assert_eq!(out.status.code(), Some(2), "--shard-timeout without --jobs");
    let out = vcb(&["all", "--fault-inject", "crash-after=1"], &[]);
    assert_eq!(out.status.code(), Some(2), "--fault-inject without --slice");
}
