//! dnn_maxpool2d — 2×2 max pooling at stride 2, two chained stages.
//!
//! The downsampling workhorse between convolution layers: each lane
//! reduces one 2×2 input window to its maximum. The four window corners
//! are stride-2 warp loads (pure affine traffic, recorded in O(1)) and
//! the output is a unit-stride store — the whole kernel is the
//! best-case pattern for the analytic address pipeline, deliberately the
//! opposite extreme from the gather-heavy tiled kernels. The host chains
//! two pooling stages (`N → N/2 → N/4`) with a `seq_dependency` at the
//! stage boundary.

use std::sync::Arc;

use vcb_core::run::{RunFailure, RunOutcome, SizeSpec};
use vcb_core::suite::{BenchmarkMeta, Dwarf};
use vcb_core::workload::{RunOpts, Workload};
use vcb_sim::exec::{GroupCtx, KernelBody, KernelInfo, MAX_WARP_WIDTH};
use vcb_sim::profile::{DeviceClass, DeviceProfile};
use vcb_sim::{Api, KernelRegistry, SimResult};

use crate::common::{
    approx_eq_f32, bytes_of, measure, to_f32, BodyOutcome, ComputeBackend, UsageHint,
};
use crate::data;

/// Workload name.
pub const NAME: &str = "dnn_maxpool2d";
/// Kernel entry point (dispatched once per pooling stage).
pub const KERNEL: &str = "dnn_maxpool2d_win";
/// Workgroup size (1-D).
pub const LOCAL_SIZE: u32 = 256;

/// The GLSL compute shader the SPIR-V binary is built from.
pub const GLSL_SOURCE: &str = r#"
#version 450
layout(local_size_x = 256) in;
layout(set = 0, binding = 0) readonly buffer In { float inp[]; };
layout(set = 0, binding = 1) writeonly buffer Out { float outp[]; };
layout(push_constant) uniform Params { uint n; };

void main() {
    uint g = gl_GlobalInvocationID.x;
    uint half_n = n / 2u;
    uint r = g / half_n;
    uint c = g % half_n;
    uint base = 2u * r * n + 2u * c;
    float v = max(max(inp[base], inp[base + 1u]),
                  max(inp[base + n], inp[base + n + 1u]));
    outp[g] = v;
}
"#;

/// The OpenCL C twin of the kernel.
pub const CL_SOURCE: &str = r#"
__kernel void dnn_maxpool2d_win(__global const float* inp,
                                __global float* outp,
                                uint n) {
    uint g = get_global_id(0);
    uint half_n = n / 2;
    uint r = g / half_n;
    uint c = g % half_n;
    uint base = 2 * r * n + 2 * c;
    float v = fmax(fmax(inp[base], inp[base + 1]),
                   fmax(inp[base + n], inp[base + n + 1]));
    outp[g] = v;
}
"#;

/// The production body: four stride-2 columnar loads (the window
/// corners), a 3-comparison max tree, one unit-stride store. Output rows
/// are multiples of the warp width at every supported size, so a warp
/// never straddles a row and the strided pattern stays exact.
fn warp_body() -> Arc<dyn KernelBody> {
    Arc::new(|ctx: &mut GroupCtx<'_>| {
        let input = ctx.global::<f32>(0)?;
        let out = ctx.global::<f32>(1)?;
        let n = ctx.push_u32(0) as usize;
        let half = n / 2;
        ctx.for_warps(|w| {
            let m = w.lanes();
            let g0 = w.global_base() as usize;
            let base = 2 * (g0 / half) * n + 2 * (g0 % half);
            let mut tl = [0f32; MAX_WARP_WIDTH];
            let mut tr = [0f32; MAX_WARP_WIDTH];
            let mut bl = [0f32; MAX_WARP_WIDTH];
            let mut br = [0f32; MAX_WARP_WIDTH];
            w.ld_stride(&input, base, 2, &mut tl[..m]);
            w.ld_stride(&input, base + 1, 2, &mut tr[..m]);
            w.ld_stride(&input, base + n, 2, &mut bl[..m]);
            w.ld_stride(&input, base + n + 1, 2, &mut br[..m]);
            for l in 0..m {
                tl[l] = tl[l].max(tr[l]).max(bl[l].max(br[l]));
            }
            w.alu((3 * m) as u64);
            w.st_seq(&out, g0, &tl[..m]);
        });
        Ok(())
    })
}

/// The lane-at-a-time oracle body, trace-identical to `warp_body`
/// (warp-equivalence suite).
pub fn lane_body() -> Arc<dyn KernelBody> {
    Arc::new(|ctx: &mut GroupCtx<'_>| {
        let input = ctx.global::<f32>(0)?;
        let out = ctx.global::<f32>(1)?;
        let n = ctx.push_u32(0) as usize;
        let half = n / 2;
        ctx.for_lanes(|lane| {
            let g = lane.global_linear() as usize;
            let base = 2 * (g / half) * n + 2 * (g % half);
            let tl = lane.ld(&input, base);
            let tr = lane.ld(&input, base + 1);
            let bl = lane.ld(&input, base + n);
            let br = lane.ld(&input, base + n + 1);
            lane.alu(3);
            lane.st(&out, g, tl.max(tr).max(bl.max(br)));
        });
        Ok(())
    })
}

fn register_body(registry: &mut KernelRegistry, body: Arc<dyn KernelBody>) -> SimResult<()> {
    // parallel_groups audit: each lane writes its own output element,
    // input read-only — groups are fully independent.
    let info = KernelInfo::new(KERNEL, [LOCAL_SIZE, 1, 1])
        .reads(0, "inp")
        .writes(1, "outp")
        .push_constants(4)
        .parallel_groups()
        .source_bytes(CL_SOURCE.len() as u64)
        .build();
    registry.register(info, body)
}

/// Registers the kernel body.
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register(registry: &mut KernelRegistry) -> SimResult<()> {
    register_body(registry, warp_body())
}

/// Registers the [`lane_body`] oracle instead of the warp-columnar
/// production body (differential testing only).
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register_lane_oracle(registry: &mut KernelRegistry) -> SimResult<()> {
    register_body(registry, lane_body())
}

/// CPU reference for one pooling stage.
pub fn reference(input: &[f32], n: usize) -> Vec<f32> {
    let half = n / 2;
    let mut out = vec![0f32; half * half];
    for r in 0..half {
        for c in 0..half {
            let base = 2 * r * n + 2 * c;
            out[r * half + c] = input[base]
                .max(input[base + 1])
                .max(input[base + n].max(input[base + n + 1]));
        }
    }
    out
}

/// Deterministic input plane.
pub fn generate(n: usize, seed: u64) -> Vec<f32> {
    data::uniform_f32(n * n, seed, -100.0, 100.0)
}

/// The host program: two chained pooling stages over ping-ponged
/// buffers (`in → mid → out`) with a `seq_dependency` at the boundary.
///
/// # Errors
///
/// Reported as [`RunFailure`].
pub fn host_program(
    b: &mut dyn ComputeBackend,
    n: usize,
    in_host: &[f32],
    expected: Option<&Vec<f32>>,
) -> Result<BodyOutcome, RunFailure> {
    let half = n / 2;
    let quarter = n / 4;
    let input = b.upload(bytes_of(in_host), UsageHint::ReadOnly)?;
    let mid = b.alloc((half * half * 4) as u64, UsageHint::ReadWrite)?;
    let out = b.alloc((quarter * quarter * 4) as u64, UsageHint::WriteOnly)?;
    b.load_program(CL_SOURCE)?;
    let bg1 = b.bind_group(&[input, mid])?;
    let bg2 = b.bind_group(&[mid, out])?;
    let k1 = b.kernel(KERNEL, bg1, 4)?;
    let k2 = b.kernel(KERNEL, bg2, 4)?;

    let seq = b.seq_begin()?;
    b.seq_kernel(seq, k1)?;
    b.seq_bind(seq, bg1)?;
    b.seq_push(seq, &(n as u32).to_le_bytes())?;
    b.seq_dispatch(seq, [(half * half) as u32 / LOCAL_SIZE, 1, 1])?;
    b.seq_dependency(seq)?;
    b.seq_kernel(seq, k2)?;
    b.seq_bind(seq, bg2)?;
    b.seq_push(seq, &(half as u32).to_le_bytes())?;
    b.seq_dispatch(seq, [(quarter * quarter) as u32 / LOCAL_SIZE, 1, 1])?;
    b.seq_end(seq)?;

    let compute_start = b.now();
    b.run(seq)?;
    let compute_time = b.now().duration_since(compute_start);

    let result = to_f32(&b.download(out)?);
    Ok(BodyOutcome {
        validated: expected.is_none_or(|e| approx_eq_f32(&result, e, 1e-6)),
        compute_time,
    })
}

fn run(
    api: Api,
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let mut b = vcb_backend::create_with(api, profile, registry, &opts.into())?;
    let in_host = generate(n, opts.seed);
    let expected = opts
        .validate
        .then(|| reference(&reference(&in_host, n), n / 2));
    measure(NAME, &size.label, b.as_mut(), |b| {
        host_program(b, n, &in_host, expected.as_ref())
    })
}

/// The pooling stage pair as a suite workload (synthetic Table I row).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    registry: Arc<KernelRegistry>,
}

impl MaxPool2d {
    /// Creates the workload against a kernel registry.
    pub fn new(registry: Arc<KernelRegistry>) -> Self {
        MaxPool2d { registry }
    }
}

impl Workload for MaxPool2d {
    fn meta(&self) -> BenchmarkMeta {
        BenchmarkMeta {
            name: NAME,
            application: "2x2 Max Pooling (two chained stages)",
            dwarf: Dwarf::StructuredGrid,
            domain: "DNN Inference",
        }
    }

    fn sizes(&self, _class: DeviceClass) -> Vec<SizeSpec> {
        // One size list for both device classes (see dnn_gemm). N/4 must
        // stay a multiple of 64 so warps never straddle an output row.
        vec![SizeSpec::new("512", 512), SizeSpec::new("1024", 1024)]
    }

    fn run(&self, api: Api, device: &DeviceProfile, size: &SizeSpec, opts: &RunOpts) -> RunOutcome {
        run(api, device, &self.registry, size, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        let mut r = KernelRegistry::new();
        register(&mut r).unwrap();
        Arc::new(r)
    }

    #[test]
    fn all_apis_validate_the_pool_chain() {
        let registry = registry();
        let opts = RunOpts {
            validate: true,
            ..RunOpts::default()
        };
        let size = SizeSpec::new("256", 256);
        let w = MaxPool2d::new(Arc::clone(&registry));
        for api in Api::ALL {
            let record = w.run(api, &devices::gtx1050ti(), &size, &opts).unwrap();
            assert!(record.validated, "{api} failed validation");
        }
    }

    #[test]
    fn validates_on_mobile_with_64_wide_warps() {
        let registry = registry();
        let opts = RunOpts {
            validate: true,
            ..RunOpts::default()
        };
        let size = SizeSpec::new("256", 256);
        let w = MaxPool2d::new(registry);
        let record = w
            .run(Api::Vulkan, &devices::adreno506(), &size, &opts)
            .unwrap();
        assert!(record.validated);
    }

    #[test]
    fn reference_pools_a_known_plane() {
        let n = 4;
        let input: Vec<f32> = (0..16).map(|v| v as f32).collect();
        // Windows: rows {0,1}×cols{0,1} → max 5, etc.
        assert_eq!(reference(&input, n), vec![5.0, 7.0, 13.0, 15.0]);
    }
}
