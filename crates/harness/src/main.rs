//! The `vcb` experiment runner: regenerates every table and figure of
//! the VComputeBench paper on the simulated platforms.
//!
//! All experiment commands run through one [`Session`]: a single
//! shared worker pool spans every device and figure, and a result cache
//! executes each unique (workload, size, API, device) cell at most once
//! per invocation — `vcb all` warms the union of every figure's plan
//! first, then each figure renders from shared cells.

use std::process::ExitCode;
use std::time::Duration;

use vcb_harness::experiments::{ExperimentOpts, Session};
use vcb_harness::fault::{FaultAction, FaultSink};
use vcb_harness::jobs::Supervision;
use vcb_harness::stream::{BandwidthCsvStream, PanelCsvStream, Progress, ShardEventStream, Tee};
use vcb_harness::{ablate, render};
use vcb_sim::profile::{devices, DeviceClass};

const USAGE: &str = "\
vcb — VComputeBench reproduction harness

USAGE:
    vcb <COMMAND> [OPTIONS]

COMMANDS:
    table1      Table I: the benchmark suite
    table2      Table II: desktop platform configurations
    table3      Table III: mobile platform configurations
    fig1        Fig. 1: desktop bandwidth vs stride
    fig2        Fig. 2: desktop speedups vs OpenCL
    fig3        Fig. 3: mobile bandwidth vs stride
    fig4        Fig. 4: mobile speedups vs OpenCL
    summary     §V geometric-mean speedups (runs fig2 + fig4)
    effort      §VI-A programming-effort comparison
    overheads   §V-A2 total-vs-kernel time decomposition
    ablate      §VI-B recommendation ablations
    uvm         unified-memory comparison: explicit copies vs demand
                paging vs an oversubscribed device budget (GTX 1050 Ti)
    dnn         DNN inference panel: conv2d / gemm / maxpool2d on every
                device variant, including -uvm and -uvm-oversub
    all         everything above, in paper order
    merge F...  reassemble shard event streams (see --shards) and
                render `all` byte-identical to an unsharded run (the
                §VI-B ablations, which are not matrix cells, re-run
                locally in the merge process)
    plan [CMD]  print the run plan of CMD (default: all) without
                running, with a per-cell cost column (measured store
                durations where present, static estimates otherwise)

OPTIONS:
    --quick         scaled-down inputs, no output validation (default)
    --paper-scale   full paper input sizes with validation (slow)
    --scale F       override the iteration-scale factor (1.0 = paper)
    --threads N     worker threads for the run matrix (balanced against
                    --sim-threads so threads x sim-threads <= cores)
    --sim-threads N simulator worker threads inside one dispatch
                    (order-independent kernels only; results are
                    bit-identical at any value)
    --filter W,...  run only the named workloads (suite short names)
    --device D,...  run only devices whose name contains a fragment
    --csv FILE      also write machine-readable results to FILE
                    (streamed incrementally as cells finish)
    --seed N        input-generation seed
    --store [DIR]   persist results in a content-addressed store at DIR
                    (default: .vcb-store). Cells already on disk load
                    and verify instead of executing; fresh results are
                    written back — a fully warm `vcb all` executes 0
                    cells and renders byte-identical output
    --jobs N        (`all` only) execute the plan across N local child
                    processes, merging each shard's event stream the
                    moment it completes; with --store, partitioning
                    balances on measured per-cell durations. Dead
                    shards are salvaged and retried, never aborting
                    the sweep (see --retries)
    --retries N     (--jobs only) zero-progress deaths tolerated per
                    shard slice before it is bisected to isolate the
                    failing cell, which is then recorded as a failed
                    cell instead of retried forever (default: 2)
    --shard-timeout S
                    (--jobs only) kill and retry a shard whose event
                    stream has not grown for S seconds (default: no
                    watchdog)

EXIT CODES:
    0   success
    1   execution failure (I/O, spawn, or internal errors)
    2   usage error (unknown command or bad flags)
    3   `vcb merge` rejected or could not decode an event stream
    4   the sweep completed, but some cells exhausted every retry and
        are rendered as failures

SHARDING (`all` only; every process must use identical options):
    --shards N        partition the run plan into N deterministic,
                      cost-balanced slices instead of running them all
    --shard-index I   execute only slice I (0-based; requires --shards)
    --events FILE     write the slice's encoded cell-event stream to
                      FILE (required with --shards); feed the files of
                      all N shards to `vcb merge`
    --slice FILE      execute the encoded plan slice in FILE instead of
                      deriving one from --shards/--shard-index (how
                      --jobs drives its children; requires --events)
";

/// Where `--store` without a directory puts its entries (gitignored).
const DEFAULT_STORE_DIR: &str = ".vcb-store";

/// Exit code for usage errors: unknown command or bad flags.
const EXIT_USAGE: u8 = 2;
/// Exit code when `vcb merge` rejects or cannot decode a stream.
const EXIT_MERGE: u8 = 3;
/// Exit code when a supervised sweep completed but some cells
/// exhausted every retry and render as failures.
const EXIT_SWEEP_FAILURES: u8 = 4;

struct Cli {
    command: String,
    plan_target: String,
    opts: ExperimentOpts,
    csv_path: Option<String>,
    shards: Option<usize>,
    shard_index: Option<usize>,
    events_path: Option<String>,
    jobs: Option<usize>,
    slice_path: Option<String>,
    retries: Option<usize>,
    shard_timeout: Option<Duration>,
    /// Hidden flag for the fault-injection harness: a fault this slice
    /// child inflicts on itself (see `vcb_harness::fault`).
    fault_inject: Option<FaultAction>,
    /// Positional event-stream paths of the `merge` command.
    inputs: Vec<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1).peekable();
    let command = args.next().ok_or_else(|| USAGE.to_owned())?;
    let mut plan_target = "all".to_owned();
    if command == "plan" {
        if let Some(next) = args.peek() {
            if !next.starts_with("--") {
                plan_target = args.next().expect("peeked");
            }
        }
    }
    // The preset (--quick / --paper-scale, last one wins) is a *base*:
    // resolve it first so every other flag is an override on top,
    // regardless of argument order.
    let args: Vec<String> = args.collect();
    let mut opts = match args.iter().rev().find_map(|a| match a.as_str() {
        "--quick" => Some(false),
        "--paper-scale" => Some(true),
        _ => None,
    }) {
        Some(true) => ExperimentOpts::paper(),
        _ => ExperimentOpts::quick(),
    };
    let mut csv_path = None;
    let mut shards = None;
    let mut shard_index = None;
    let mut events_path = None;
    let mut jobs = None;
    let mut slice_path = None;
    let mut retries = None;
    let mut shard_timeout = None;
    let mut fault_inject = None;
    let mut inputs = Vec::new();
    let list = |v: Option<String>, what: &str| -> Result<Vec<String>, String> {
        Ok(v.ok_or(format!("{what} needs a value"))?
            .split(',')
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .collect())
    };
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "--paper-scale" => {}
            "--store" => {
                // The directory is optional: a following flag (or
                // nothing) means the default store location.
                opts.store = Some(match args.peek() {
                    Some(next) if !next.starts_with("--") => args.next().expect("peeked"),
                    _ => DEFAULT_STORE_DIR.to_owned(),
                });
            }
            "--jobs" => {
                let n = args
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad --jobs value: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                jobs = Some(n);
            }
            "--slice" => {
                slice_path = Some(args.next().ok_or("--slice needs a file path")?);
            }
            "--retries" => {
                retries = Some(
                    args.next()
                        .ok_or("--retries needs a value")?
                        .parse::<usize>()
                        .map_err(|e| format!("bad --retries value: {e}"))?,
                );
            }
            "--shard-timeout" => {
                let s = args
                    .next()
                    .ok_or("--shard-timeout needs a value in seconds")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --shard-timeout value: {e}"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err("--shard-timeout must be a positive number of seconds".into());
                }
                shard_timeout = Some(Duration::from_secs_f64(s));
            }
            "--fault-inject" => {
                // Hidden: how --jobs tells a child to inflict a
                // deterministic fault on itself (tests and CI only).
                let spec = args.next().ok_or("--fault-inject needs a value")?;
                fault_inject =
                    Some(FaultAction::parse(&spec).map_err(|e| format!("--fault-inject: {e}"))?);
            }
            "--shards" => {
                let n = args
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad --shards value: {e}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".into());
                }
                shards = Some(n);
            }
            "--shard-index" => {
                let i = args
                    .next()
                    .ok_or("--shard-index needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad --shard-index value: {e}"))?;
                shard_index = Some(i);
            }
            "--events" => {
                events_path = Some(args.next().ok_or("--events needs a file path")?);
            }
            "--threads" => {
                let n = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad --threads value: {e}"))?;
                opts.threads = n.max(1);
            }
            "--sim-threads" => {
                let n = args
                    .next()
                    .ok_or("--sim-threads needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad --sim-threads value: {e}"))?;
                opts.run.sim_threads = n.max(1);
            }
            "--scale" => {
                let f = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --scale value: {e}"))?;
                if !f.is_finite() || f <= 0.0 {
                    return Err("--scale must be a positive number".into());
                }
                opts.run.scale = f;
            }
            "--seed" => {
                opts.run.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse::<u64>()
                    .map_err(|e| format!("bad --seed value: {e}"))?;
            }
            "--filter" => opts.filter = list(args.next(), "--filter")?,
            "--device" => opts.devices = list(args.next(), "--device")?,
            "--csv" => {
                csv_path = Some(args.next().ok_or("--csv needs a file path")?);
            }
            other if command == "merge" && !other.starts_with("--") => {
                inputs.push(other.to_owned());
            }
            other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }
    if (retries.is_some() || shard_timeout.is_some()) && jobs.is_none() {
        return Err("--retries/--shard-timeout only apply to `vcb all --jobs`".into());
    }
    if fault_inject.is_some() && slice_path.is_none() {
        return Err("--fault-inject only applies to a --slice child process".into());
    }
    if jobs.is_some() {
        if command != "all" {
            return Err("--jobs only applies to `vcb all`".into());
        }
        if slice_path.is_some()
            || shards.is_some()
            || shard_index.is_some()
            || events_path.is_some()
        {
            return Err(
                "--jobs drives its own worker processes and cannot combine with \
                 --slice/--shards/--shard-index/--events"
                    .into(),
            );
        }
    }
    let sharding =
        shards.is_some() || shard_index.is_some() || events_path.is_some() || slice_path.is_some();
    if sharding {
        if command != "all" {
            return Err("--shards/--shard-index/--events/--slice only apply to `vcb all`".into());
        }
        if slice_path.is_some() {
            if shards.is_some() || shard_index.is_some() {
                return Err(
                    "--slice carries its own shard identity; drop --shards/--shard-index".into(),
                );
            }
            if events_path.is_none() {
                return Err("--slice needs --events for its output stream".into());
            }
        } else {
            let (Some(n), Some(i), Some(_)) = (shards, shard_index, &events_path) else {
                return Err(
                    "sharded runs need all three of --shards, --shard-index and --events".into(),
                );
            };
            if i >= n {
                return Err(format!("--shard-index {i} out of range for --shards {n}"));
            }
        }
        if csv_path.is_some() {
            return Err(
                "--csv has no effect on a shard run (shards only emit event streams); \
                 pass it to `vcb merge` instead"
                    .into(),
            );
        }
    }
    if command == "merge" && inputs.is_empty() {
        return Err("merge needs at least one event-stream file".into());
    }
    Ok(Cli {
        command,
        plan_target,
        opts,
        csv_path,
        shards,
        shard_index,
        events_path,
        jobs,
        slice_path,
        retries,
        shard_timeout,
        fault_inject,
        inputs,
    })
}

fn run_bandwidth_fig(session: &mut Session, csv_path: Option<&str>, title: &str, mobile: bool) {
    let profiles = if mobile {
        session.mobile_devices()
    } else {
        session.desktop_devices()
    };
    let plan = session.plan_bandwidth(&profiles);
    session.seed_from_store(&plan);
    let mut progress = Progress::new(session.pending_cells(&plan));
    let mut csv = BandwidthCsvStream::create(csv_path);
    let panels = session.bandwidth_panels(&profiles, &mut Tee(&mut progress, &mut csv));
    println!("{title}");
    for curves in &panels {
        println!("{}", render::bandwidth_panel(curves));
    }
    csv.finish();
}

fn run_speedup_fig(
    session: &mut Session,
    csv_path: Option<&str>,
    title: &str,
    mobile: bool,
) -> Vec<vcb_harness::experiments::DevicePanel> {
    let profiles = if mobile {
        session.mobile_devices()
    } else {
        session.desktop_devices()
    };
    let plan = session.plan_panels(&profiles);
    session.seed_from_store(&plan);
    let mut progress = Progress::new(session.pending_cells(&plan));
    let mut csv = PanelCsvStream::create(csv_path);
    let panels = session.speedup_panels(&profiles, &mut Tee(&mut progress, &mut csv));
    println!("{title}");
    for p in &panels {
        println!("{}", render::speedup_panel(p));
    }
    println!(
        "{}",
        render::summary_lines(&vcb_harness::experiments::summarize(&panels))
    );
    csv.finish();
    panels
}

fn run_effort(session: &mut Session) {
    println!("=== §VI-A: programming effort ===\n");
    let records = session.effort(&devices::gtx1050ti());
    println!("{}", vcb_core::effort::effort_table(&records).render());
}

fn run_overheads(session: &mut Session) {
    println!("=== §V-A2: total-time overhead decomposition ===\n");
    let rows = session.overheads(&devices::gtx1050ti());
    println!("{}", render::overhead_table(&rows));
}

fn run_ablate(registry: &std::sync::Arc<vcb_sim::KernelRegistry>, opts: &ExperimentOpts) {
    println!("=== §VI-B: recommended Vulkan optimizations, measured ===\n");
    let gtx = devices::gtx1050ti();
    let sd = devices::adreno506();
    let report = |result: Result<ablate::Ablation, vcb_core::run::RunFailure>| match result {
        Ok(a) => println!(
            "{:<62} {:>10} vs {:>10}  ({:.2}x)",
            a.name,
            a.recommended.to_string(),
            a.naive.to_string(),
            a.factor()
        ),
        Err(e) => println!("(skipped: {e})"),
    };
    report(ablate::single_command_buffer(registry, &gtx, 32));
    report(ablate::push_constants_vs_buffer(registry, &sd, &opts.run));
    report(ablate::transfer_queue_copies(
        registry,
        &gtx,
        128 * 1024 * 1024,
    ));
    report(ablate::multiple_compute_queues(registry, &gtx, 16));
    report(ablate::compiler_maturity(registry, &gtx, &opts.run));
    println!();
}

/// Runs the unified-memory comparison and renders its table (plus a
/// standalone CSV when `vcb uvm --csv` asks for one — under `vcb all`
/// the shared CSV path stays with the figure stages).
fn run_uvm(session: &mut Session, csv_path: Option<&str>) {
    let plan = session.plan_uvm();
    session.seed_from_store(&plan);
    let mut progress = Progress::new(session.pending_cells(&plan));
    let cmp = session.uvm_compare(&mut progress);
    println!("{UVM_TITLE}");
    println!("{}", render::uvm_table(&cmp));
    if let Some(path) = csv_path {
        if let Err(e) = std::fs::write(path, render::uvm_csv(&cmp)) {
            eprintln!("vcb: cannot write {path}: {e}");
        }
    }
}

/// Runs the DNN inference panel across every device variant (all four
/// silicon profiles plus their `-uvm`/`-uvm-oversub` twins) and renders
/// its table. Under `vcb all` this stage runs last and owns the shared
/// `--csv` path.
fn run_dnn(session: &mut Session, csv_path: Option<&str>) {
    let plan = session.plan_dnn();
    session.seed_from_store(&plan);
    let mut progress = Progress::new(session.pending_cells(&plan));
    let cmp = session.dnn_compare(&mut progress);
    println!("{DNN_TITLE}");
    println!("{}", render::dnn_table(&cmp));
    if let Some(path) = csv_path {
        if let Err(e) = std::fs::write(path, render::dnn_csv(&cmp)) {
            eprintln!("vcb: cannot write {path}: {e}");
        }
    }
}

/// The full `vcb all` report sequence: warm the union plan on one
/// shared pool, then render every table and figure from cache. Both the
/// unsharded `all` command and `merge` (with a cache seeded from shard
/// event streams instead of local execution) go through this one
/// function, which is what makes their stdout and CSV byte-identical.
fn run_all_reports(
    session: &mut Session,
    registry: &std::sync::Arc<vcb_sim::KernelRegistry>,
    opts: &ExperimentOpts,
    csv: Option<&str>,
) {
    println!("{}", render::table1());
    println!("{}", render::platform_table(DeviceClass::Desktop));
    // Warm the union of every figure's plan on one pool spanning
    // all devices and figures; shared cells simulate once, and
    // the figure stages below render entirely from cache.
    let plan = session.plan_all();
    session.seed_from_store(&plan);
    let pending = session.pending_cells(&plan);
    eprintln!("vcb: all: {pending} unique cell(s) to execute");
    let mut progress = Progress::new(pending);
    session.execute(&plan, &mut progress);
    run_bandwidth_fig(session, csv, FIG1_TITLE, false);
    run_speedup_fig(session, csv, FIG2_TITLE, false);
    println!("{}", render::platform_table(DeviceClass::Mobile));
    run_bandwidth_fig(session, csv, FIG3_TITLE, true);
    run_speedup_fig(session, csv, FIG4_TITLE, true);
    run_effort(session);
    run_overheads(session);
    run_ablate(registry, opts);
    run_uvm(session, None);
    run_dnn(session, csv);
}

/// Executes one deterministic slice of the `vcb all` plan and writes
/// its encoded cell-event stream — the per-process half of cross-
/// process sharding. No rendering happens here; `vcb merge` does that
/// once every shard's stream exists. (The §VI-B ablations are direct
/// micro-studies outside the matrix plan, so shards skip them and the
/// merge process re-runs them locally.)
fn run_shard_slice(
    session: &mut Session,
    shards: usize,
    index: usize,
    events: &str,
) -> Result<(), String> {
    let plan = session.plan_all();
    let slices = plan.partition(shards);
    let slice = &slices[index];
    let sub = plan.subset(&slice.indices);
    eprintln!(
        "vcb: shard {}/{}: {} of {} plan cells",
        index,
        shards,
        slice.indices.len(),
        plan.len()
    );
    let mut stream = ShardEventStream::create(events, plan.len(), slice)?;
    session.seed_from_store(&sub);
    let mut progress = Progress::new(session.pending_cells(&sub));
    session.execute(&sub, &mut Tee(&mut progress, &mut stream));
    stream.finish()
}

/// Executes the plan slice encoded in `slice_path` — the child half of
/// `--jobs`. Identical to [`run_shard_slice`] except the slice arrives
/// as a file written by the parent (which partitioned on measured
/// costs) instead of being re-derived from `--shards`/`--shard-index`.
///
/// `fault` is the hidden `--fault-inject` action the supervisor's test
/// harness asks this child to inflict on itself. Crash/hang faults trip
/// through a [`FaultSink`] placed *after* the event stream in the sink
/// chain, so everything up to the fault is durably flushed; the
/// truncation fault fires after a clean finish, tearing the written
/// stream and exiting nonzero so the parent must salvage.
fn run_slice_child(
    session: &mut Session,
    slice_path: &str,
    events: &str,
    fault: Option<FaultAction>,
) -> Result<(), String> {
    let text = std::fs::read_to_string(slice_path)
        .map_err(|e| format!("failed to read {slice_path}: {e}"))?;
    let slice =
        vcb_core::shard::decode_plan_slice(&text).map_err(|e| format!("{slice_path}: {e}"))?;
    let shard = vcb_core::shard::ShardSlice {
        shard_index: slice.shard_index,
        shard_count: slice.shard_count,
        indices: slice.cells.iter().map(|(index, _)| *index).collect(),
    };
    let sub = slice.to_plan();
    eprintln!(
        "vcb: shard {}/{}: {} of {} plan cells",
        shard.shard_index,
        shard.shard_count,
        shard.indices.len(),
        slice.plan_len
    );
    let mut stream = ShardEventStream::create(events, slice.plan_len, &shard)?;
    session.seed_from_store(&sub);
    let mut progress = Progress::new(session.pending_cells(&sub));
    match fault {
        Some(action @ (FaultAction::CrashAfter(_) | FaultAction::HangAfter(_))) => {
            let mut fault_sink = FaultSink::new(action);
            let mut inner = Tee(&mut progress, &mut stream);
            session.execute(&sub, &mut Tee(&mut inner, &mut fault_sink));
        }
        _ => {
            session.execute(&sub, &mut Tee(&mut progress, &mut stream));
        }
    }
    stream.finish()?;
    if let Some(FaultAction::TruncateEvents) = fault {
        let len = std::fs::metadata(events)
            .map_err(|e| format!("fault-inject: cannot stat {events}: {e}"))?
            .len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(events)
            .map_err(|e| format!("fault-inject: cannot open {events}: {e}"))?;
        file.set_len(len * 2 / 3)
            .map_err(|e| format!("fault-inject: cannot truncate {events}: {e}"))?;
        return Err(format!(
            "fault-inject: truncated {events} to {} of {len} bytes",
            len * 2 / 3
        ));
    }
    Ok(())
}

/// Decodes shard event streams, merges them against the locally
/// re-derived plan (rejecting duplicate, missing and fingerprint-
/// mismatched cells), seeds the session cache, and renders the full
/// `all` report from it. Every matrix cell comes from the streams; the
/// only simulations this process runs are the §VI-B ablations, which
/// live outside the plan.
fn run_merge(
    session: &mut Session,
    registry: &std::sync::Arc<vcb_sim::KernelRegistry>,
    inputs: &[String],
    opts: &ExperimentOpts,
    csv: Option<&str>,
) -> Result<(), String> {
    let plan = session.plan_all();
    let mut merger = vcb_core::shard::StreamMerger::new(&plan);
    for path in inputs {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("failed to read {path}: {e}"))?;
        let stream = vcb_core::shard::decode_events(&text, vcb_harness::stream::decode_cell_out)
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "vcb: merge: {path}: shard {}/{}, {} cells",
            stream.shard_index,
            stream.shard_count,
            stream.cells.len()
        );
        merger.add_stream(stream, path).map_err(|e| e.to_string())?;
    }
    let outs = merger.finish().map_err(|e| e.to_string())?;
    session.seed_cache(&plan, outs);
    run_all_reports(session, registry, opts, csv);
    Ok(())
}

fn print_plan(session: &Session, target: &str) -> Result<(), String> {
    let plan = session
        .plan_for(target)
        .ok_or_else(|| format!("unknown plan target `{target}`\n\n{USAGE}"))?;
    // The same per-cell costs `--jobs` partitions on: measured store
    // durations where present, `cell_cost` estimates (median-rescaled
    // against them) otherwise — so partition balance is inspectable
    // before committing to a run.
    let costs = vcb_harness::jobs::plan_costs(session, &plan);
    let mut unique = std::collections::HashSet::new();
    let mut total_cost = 0u64;
    for (i, (cell, &cost)) in plan.cells().iter().zip(&costs).enumerate() {
        let fresh = unique.insert(cell.key());
        if fresh {
            total_cost = total_cost.saturating_add(cost);
        }
        let line = format!(
            "{i:>4}  {:016x}  {:<24} {:<8} {:<28} {cost:>12} {}",
            cell.fingerprint(),
            format!("{}/{}", cell.workload, cell.size.label),
            cell.api.to_string(),
            format!("[{}]", cell.device),
            if fresh { "" } else { "(dedup)" }
        );
        println!("{}", line.trim_end());
    }
    println!(
        "\n{} cells planned, {} unique to execute, total cost {total_cost}{}",
        plan.len(),
        unique.len(),
        if session.store().is_some() {
            " (ns where measured)"
        } else {
            " (static estimate)"
        }
    );
    Ok(())
}

const FIG1_TITLE: &str = "=== Fig. 1: Vulkan memory bandwidth vs CUDA and OpenCL (desktop) ===\n";
const FIG2_TITLE: &str = "=== Fig. 2: Vulkan speedup vs CUDA and OpenCL (desktop) ===\n";
const FIG3_TITLE: &str = "=== Fig. 3: Vulkan memory bandwidth vs OpenCL (mobile) ===\n";
const FIG4_TITLE: &str = "=== Fig. 4: Vulkan speedup vs OpenCL (mobile) ===\n";
const UVM_TITLE: &str = "=== Unified memory: explicit copies vs demand paging ===\n";
const DNN_TITLE: &str = "=== DNN inference: conv2d / gemm / maxpool2d across device variants ===\n";

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let registry = match vcb_workloads::registry() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("failed to build kernel registry: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut session = Session::new(&registry, &cli.opts);
    let csv = cli.csv_path.as_deref();

    match cli.command.as_str() {
        "table1" => println!("{}", render::table1()),
        "table2" => println!("{}", render::platform_table(DeviceClass::Desktop)),
        "table3" => println!("{}", render::platform_table(DeviceClass::Mobile)),
        "fig1" => run_bandwidth_fig(&mut session, csv, FIG1_TITLE, false),
        "fig2" => {
            run_speedup_fig(&mut session, csv, FIG2_TITLE, false);
        }
        "fig3" => run_bandwidth_fig(&mut session, csv, FIG3_TITLE, true),
        "fig4" => {
            run_speedup_fig(&mut session, csv, FIG4_TITLE, true);
        }
        "summary" => {
            let plan = session.plan_for("summary").expect("summary has a plan");
            session.seed_from_store(&plan);
            let mut progress = Progress::new(session.pending_cells(&plan));
            let desktop = session.fig2(&mut progress);
            let mobile = session.fig4(&mut progress);
            println!("=== §V: geometric-mean speedups ===\n");
            println!(
                "{}",
                render::summary_lines(&vcb_harness::experiments::summarize(&desktop))
            );
            println!(
                "{}",
                render::summary_lines(&vcb_harness::experiments::summarize(&mobile))
            );
        }
        "effort" => run_effort(&mut session),
        "overheads" => run_overheads(&mut session),
        "ablate" => run_ablate(&registry, &cli.opts),
        "uvm" => run_uvm(&mut session, csv),
        "dnn" => run_dnn(&mut session, csv),
        "all" => {
            if let Some(slice) = &cli.slice_path {
                let events = cli.events_path.as_deref().expect("validated with --slice");
                if let Err(msg) = run_slice_child(&mut session, slice, events, cli.fault_inject) {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            } else if let Some(jobs) = cli.jobs {
                let sup = Supervision {
                    retries: cli
                        .retries
                        .unwrap_or_else(|| Supervision::default().retries),
                    shard_timeout: cli.shard_timeout,
                };
                match vcb_harness::jobs::run_jobs(&session, jobs, &sup) {
                    Ok((plan, outs, report)) => {
                        session.seed_cache(&plan, outs);
                        run_all_reports(&mut session, &registry, &cli.opts, csv);
                        if !report.poisoned.is_empty() {
                            eprintln!(
                                "vcb: jobs: {} cell(s) exhausted every retry and are reported \
                                 as failures (see the tables above)",
                                report.poisoned.len()
                            );
                            return ExitCode::from(EXIT_SWEEP_FAILURES);
                        }
                    }
                    Err(msg) => {
                        eprintln!("{msg}");
                        return ExitCode::FAILURE;
                    }
                }
            } else if let (Some(shards), Some(index), Some(events)) =
                (cli.shards, cli.shard_index, &cli.events_path)
            {
                if let Err(msg) = run_shard_slice(&mut session, shards, index, events) {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            } else {
                run_all_reports(&mut session, &registry, &cli.opts, csv);
            }
        }
        "merge" => {
            if let Err(msg) = run_merge(&mut session, &registry, &cli.inputs, &cli.opts, csv) {
                eprintln!("{msg}");
                return ExitCode::from(EXIT_MERGE);
            }
        }
        "plan" => {
            if let Err(msg) = print_plan(&session, &cli.plan_target) {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
        "--help" | "-h" | "help" => println!("{USAGE}"),
        other => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    }
    ExitCode::SUCCESS
}
