//! Set-associative L2 cache model.
//!
//! The L2 is what makes small working sets (lud 256, hotspot 512) cheap to
//! re-traverse and large ones (gaussian 2048, nn 16M) DRAM-bound — the
//! input-size dependence visible throughout Fig. 2 of the paper. The model
//! is sector-grained (the unit the coalescer emits), write-allocate,
//! true-LRU per set.

use crate::coalesce::SectorRun;

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Serviced from the cache.
    Hit,
    /// Missed; the sector was (re)filled.
    Miss,
}

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]`; zero for no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sector-grained, set-associative, LRU cache.
///
/// ```
/// use vcb_sim::cache::{CacheOutcome, CacheSim};
///
/// let mut l2 = CacheSim::new(1024, 4, 32); // 1 KiB, 4-way, 32 B sectors
/// assert_eq!(l2.access_addr(0), CacheOutcome::Miss);
/// assert_eq!(l2.access_addr(0), CacheOutcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct CacheSim {
    sets: usize,
    ways: usize,
    sector_bytes: u64,
    /// `tags[set * ways + way]`: tag value or `u64::MAX` when invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates a cache of `capacity_bytes` with `ways` ways and
    /// `sector_bytes` granularity.
    ///
    /// The set count is `capacity / (ways * sector)`, rounded down to a
    /// power of two (at least one set).
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(capacity_bytes: u64, ways: u64, sector_bytes: u64) -> Self {
        assert!(capacity_bytes > 0 && ways > 0 && sector_bytes > 0);
        let raw_sets = (capacity_bytes / (ways * sector_bytes)).max(1);
        let sets = if raw_sets.is_power_of_two() {
            raw_sets
        } else {
            (raw_sets.next_power_of_two()) / 2
        }
        .max(1) as usize;
        let ways = ways as usize;
        CacheSim {
            sets,
            ways,
            sector_bytes,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Effective capacity in bytes after power-of-two rounding.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.sector_bytes
    }

    /// Statistics since construction or the last [`CacheSim::reset_stats`].
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears statistics but keeps cache contents (used to scope stats to
    /// one dispatch while keeping warm-cache behaviour across dispatches).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all contents and statistics.
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.tick = 0;
        self.stats = CacheStats::default();
    }

    /// Accesses the sector containing byte address `addr`.
    pub fn access_addr(&mut self, addr: u64) -> CacheOutcome {
        self.access_sector(addr / self.sector_bytes)
    }

    /// Accesses a sector by index (as produced by the coalescer).
    pub fn access_sector(&mut self, sector: u64) -> CacheOutcome {
        self.tick += 1;
        let set = (sector as usize) & (self.sets - 1);
        let base = set * self.ways;
        // Take the set's slices once so the way scans compile without
        // per-step bounds checks (this is the hottest loop of traced
        // execution).
        let tags = &mut self.tags[base..base + self.ways];
        let stamps = &mut self.stamps[base..base + self.ways];
        if let Some(way) = tags.iter().position(|&t| t == sector) {
            stamps[way] = self.tick;
            self.stats.hits += 1;
            return CacheOutcome::Hit;
        }
        // Miss: fill LRU way.
        let mut lru = 0usize;
        let mut lru_stamp = u64::MAX;
        for (w, &s) in stamps.iter().enumerate() {
            if s < lru_stamp {
                lru_stamp = s;
                lru = w;
            }
        }
        tags[lru] = sector;
        stamps[lru] = self.tick;
        self.stats.misses += 1;
        CacheOutcome::Miss
    }

    /// Probes `len` consecutive sectors starting at `first` — one model
    /// call for a whole coalesced run instead of one per sector.
    ///
    /// Exactly equivalent to calling [`CacheSim::access_sector`] for each
    /// sector in order (same per-access tick/LRU updates, same
    /// statistics); the missed sectors are appended to `misses` as
    /// contiguity-merged runs, in access order, and the hit count is
    /// returned. Consecutive sectors map to consecutive sets, so the
    /// inner loop keeps the set cursor sliding instead of re-deriving it,
    /// and a streaming (all-miss) run stays inside one tight loop with a
    /// single trailing stats update.
    pub fn access_run(&mut self, first: u64, len: u64, misses: &mut Vec<SectorRun>) -> u64 {
        let mut hits = 0u64;
        let mut miss_first = 0u64;
        let mut miss_len = 0u64;
        let mask = self.sets - 1;
        for sector in first..first + len {
            self.tick += 1;
            let base = ((sector as usize) & mask) * self.ways;
            let tags = &mut self.tags[base..base + self.ways];
            if let Some(way) = tags.iter().position(|&t| t == sector) {
                self.stamps[base + way] = self.tick;
                hits += 1;
                if miss_len > 0 {
                    crate::coalesce::push_run(misses, miss_first, miss_len);
                    miss_len = 0;
                }
                continue;
            }
            // Miss: fill LRU way.
            let stamps = &self.stamps[base..base + self.ways];
            let mut lru = 0usize;
            let mut lru_stamp = u64::MAX;
            for (w, &s) in stamps.iter().enumerate() {
                if s < lru_stamp {
                    lru_stamp = s;
                    lru = w;
                }
            }
            self.tags[base + lru] = sector;
            self.stamps[base + lru] = self.tick;
            if miss_len == 0 {
                miss_first = sector;
            }
            miss_len += 1;
        }
        if miss_len > 0 {
            crate::coalesce::push_run(misses, miss_first, miss_len);
        }
        self.stats.hits += hits;
        self.stats.misses += len - hits;
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(4096, 4, 32);
        assert_eq!(c.access_addr(100), CacheOutcome::Miss);
        assert_eq!(c.access_addr(100), CacheOutcome::Hit);
        assert_eq!(c.access_addr(127), CacheOutcome::Hit, "same sector");
        assert_eq!(c.access_addr(128), CacheOutcome::Miss, "next sector");
    }

    #[test]
    fn lru_evicts_oldest() {
        // One set: capacity = ways * sector.
        let mut c = CacheSim::new(2 * 32, 2, 32);
        assert_eq!(c.sets(), 1);
        c.access_sector(0);
        c.access_sector(1);
        c.access_sector(0); // refresh 0 -> 1 is LRU
        c.access_sector(2); // evicts 1
        assert_eq!(c.access_sector(0), CacheOutcome::Hit);
        assert_eq!(c.access_sector(1), CacheOutcome::Miss);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = CacheSim::new(1024, 4, 32); // 32 sectors capacity
                                                // Stream 64 distinct sectors twice: second pass still misses
                                                // (LRU streaming pattern).
        for _ in 0..2 {
            for s in 0..64 {
                c.access_sector(s);
            }
        }
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 128);
    }

    #[test]
    fn working_set_within_cache_hits_on_second_pass() {
        let mut c = CacheSim::new(4096, 4, 32); // 128 sectors
        for s in 0..64 {
            c.access_sector(s);
        }
        for s in 0..64 {
            assert_eq!(c.access_sector(s), CacheOutcome::Hit);
        }
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = CacheSim::new(4096, 4, 32);
        c.access_sector(3);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.access_sector(3), CacheOutcome::Hit);
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = CacheSim::new(4096, 4, 32);
        c.access_sector(3);
        c.flush();
        assert_eq!(c.access_sector(3), CacheOutcome::Miss);
    }

    #[test]
    fn capacity_rounds_to_power_of_two_sets() {
        let c = CacheSim::new(3000, 4, 32);
        assert!(c.sets().is_power_of_two());
        assert!(c.capacity_bytes() <= 3000);
    }
}
