//! Table I of the paper: the VComputeBench benchmarks, their Berkeley
//! dwarves and application domains.

use std::fmt;

/// A Berkeley dwarf (computation/communication pattern class), after
/// Asanović et al., "The Landscape of Parallel Computing Research".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dwarf {
    /// Unstructured grid computations.
    UnstructuredGrid,
    /// Graph traversal.
    GraphTraversal,
    /// Dense linear algebra.
    DenseLinearAlgebra,
    /// Structured grid computations.
    StructuredGrid,
    /// Dynamic programming.
    DynamicProgramming,
}

impl fmt::Display for Dwarf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dwarf::UnstructuredGrid => "Unstructured Grid",
            Dwarf::GraphTraversal => "Graph Traversal",
            Dwarf::DenseLinearAlgebra => "Dense Linear Algebra",
            Dwarf::StructuredGrid => "Structured Grid",
            Dwarf::DynamicProgramming => "Dynamic Programming",
        };
        f.write_str(s)
    }
}

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkMeta {
    /// Short name (the suite's identifier, e.g. `"bfs"`).
    pub name: &'static str,
    /// Full application name.
    pub application: &'static str,
    /// Berkeley dwarf.
    pub dwarf: Dwarf,
    /// Application domain.
    pub domain: &'static str,
}

/// The nine VComputeBench benchmarks, in Table I order.
pub const SUITE: [BenchmarkMeta; 9] = [
    BenchmarkMeta {
        name: "backprop",
        application: "Back Propagation",
        dwarf: Dwarf::UnstructuredGrid,
        domain: "Deep Learning",
    },
    BenchmarkMeta {
        name: "bfs",
        application: "Breadth-First Search",
        dwarf: Dwarf::GraphTraversal,
        domain: "Graph Theory",
    },
    BenchmarkMeta {
        name: "cfd",
        application: "CFD Solver",
        dwarf: Dwarf::UnstructuredGrid,
        domain: "Fluid Dynamics",
    },
    BenchmarkMeta {
        name: "gaussian",
        application: "Gaussian Elimination",
        dwarf: Dwarf::DenseLinearAlgebra,
        domain: "Linear Algebra",
    },
    BenchmarkMeta {
        name: "hotspot",
        application: "Hotspot Simulation",
        dwarf: Dwarf::StructuredGrid,
        domain: "Physics",
    },
    BenchmarkMeta {
        name: "lud",
        application: "LU Decomposition",
        dwarf: Dwarf::DenseLinearAlgebra,
        domain: "Linear Algebra",
    },
    BenchmarkMeta {
        name: "nn",
        application: "K-Nearest Neighbors",
        dwarf: Dwarf::DenseLinearAlgebra,
        domain: "Data Mining",
    },
    BenchmarkMeta {
        name: "nw",
        application: "Needleman-Wunsch",
        dwarf: Dwarf::DynamicProgramming,
        domain: "Bioinformatics",
    },
    BenchmarkMeta {
        name: "pathfinder",
        application: "Path Finder",
        dwarf: Dwarf::DynamicProgramming,
        domain: "Grid Traversal",
    },
];

/// Looks up suite metadata by short name.
pub fn find(name: &str) -> Option<&'static BenchmarkMeta> {
    SUITE.iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_benchmarks_as_in_table_1() {
        assert_eq!(SUITE.len(), 9);
    }

    #[test]
    fn names_are_unique_and_sorted_like_the_table() {
        let names: Vec<_> = SUITE.iter().map(|m| m.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 9);
        // Table I lists them alphabetically.
        assert_eq!(names, sorted);
    }

    #[test]
    fn lookup_matches_table_rows() {
        let nw = find("nw").unwrap();
        assert_eq!(nw.dwarf, Dwarf::DynamicProgramming);
        assert_eq!(nw.domain, "Bioinformatics");
        assert!(find("missing").is_none());
    }

    #[test]
    fn dwarves_display_like_the_paper() {
        assert_eq!(Dwarf::GraphTraversal.to_string(), "Graph Traversal");
    }
}
