//! Cross-process run-plan sharding: a versioned text codec for
//! [`RunPlan`] slices and per-cell event streams, a deterministic
//! cost-balanced partitioner, and the merge step that reassembles
//! per-shard streams into the exact in-plan-order result sequence the
//! single-process executor produces.
//!
//! The paper's experiment matrix is embarrassingly partitionable: every
//! cell is an independent simulation keyed by its [`CellSpec`]
//! fingerprint. PR 3's plan/executor split left exactly one layer
//! missing for multi-process (or multi-machine) sweeps — a transport.
//! This module is that transport, kept dependency-free (no serde in the
//! workspace): line-oriented, tab-separated, escaped text with a
//! version header, so streams are diffable in CI and greppable when a
//! shard goes wrong.
//!
//! Invariants the format defends:
//!
//! * **Exactly-once execution** — [`RunPlan::partition`] keys shards on
//!   the cell *identity* ([`CellSpec::key`]), so intra-plan duplicates
//!   of one cell always land in the same shard and the per-process
//!   [`ResultCache`](crate::plan::ResultCache) dedup keeps working.
//! * **Lossless reassembly** — [`merge_streams`] rejects duplicate,
//!   missing and fingerprint-mismatched cells instead of papering over
//!   them; a successful merge is in plan order, indistinguishable from
//!   a local run.
//! * **Stability is versioned** — fingerprints are FNV-1a over the
//!   [`CellKey`](crate::plan::CellKey) field set (see the hashing note
//!   in `plan.rs`). Changing that field set, the hash, or any record
//!   layout here requires bumping [`CODEC_VERSION`]; mixed versions are
//!   rejected at decode time.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write};

use vcb_sim::timeline::CostKind;
use vcb_sim::TraceMode;

use crate::plan::{CellSpec, RunPlan};
use crate::run::{RunFailure, RunOutcome, RunRecord, SizeSpec};
use crate::workload::RunOpts;

/// Version of the shard/event text codec. Bump on any change to the
/// record layout, the [`CellKey`](crate::plan::CellKey) field set, or
/// the fingerprint hash; decoders reject every other version.
///
/// v2: outcome records gained a per-cell `uvm` cost bucket when the
/// unified-memory subsystem added `CostKind::UvmFault`.
pub const CODEC_VERSION: u32 = 2;

const EVENTS_MAGIC: &str = "vcb-events";
const PLAN_MAGIC: &str = "vcb-plan";

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// A shard stream or plan slice failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream has no recognizable header line.
    Header(String),
    /// The stream was written by a different codec version.
    Version(u32),
    /// The stream ends before its `end` trailer (truncated write).
    Truncated,
    /// A record failed to parse.
    Malformed(String),
    /// A cell's recorded fingerprint disagrees with the fingerprint
    /// recomputed from its decoded spec — the writer hashed a different
    /// [`CellKey`](crate::plan::CellKey) than this build does.
    Fingerprint {
        /// Plan index of the offending cell.
        index: usize,
    },
}

impl CodecError {
    fn with_line(self, line: usize) -> CodecError {
        match self {
            CodecError::Malformed(reason) => {
                CodecError::Malformed(format!("line {}: {reason}", line + 1))
            }
            other => other,
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Header(what) => write!(f, "bad stream header: {what}"),
            CodecError::Version(v) => write!(
                f,
                "codec version {v} is not supported (this build speaks version {CODEC_VERSION})"
            ),
            CodecError::Truncated => f.write_str("stream is truncated (no `end` trailer)"),
            CodecError::Malformed(reason) => write!(f, "malformed record: {reason}"),
            CodecError::Fingerprint { index } => write!(
                f,
                "cell {index}: recorded fingerprint does not match its spec \
                 (stream written by an incompatible build?)"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// Reassembling per-shard streams against a plan failed. Each variant
/// names the offending stream (`source` is the caller's label — the
/// shard file path for `vcb merge` — plus the shard index from the
/// stream header), so a bad file in a pile of shards is identifiable
/// without bisection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// A stream was produced from a plan of a different length.
    PlanLen {
        /// The merging plan's cell count.
        expected: usize,
        /// The stream header's cell count.
        found: usize,
        /// The offending stream's label.
        source: String,
    },
    /// Two streams (or two records) both carry the cell at `index`.
    Duplicate {
        /// Plan index claimed twice.
        index: usize,
        /// Label of the stream whose record collided.
        source: String,
        /// Label of the stream that first claimed the index.
        earlier: String,
    },
    /// No stream carries the cell at `index`.
    Missing {
        /// First uncovered plan index.
        index: usize,
        /// Total number of uncovered cells.
        count: usize,
        /// Labels of every stream that was merged.
        merged: Vec<String>,
    },
    /// A stream's cell fingerprint disagrees with the plan's cell at
    /// that index — the shard ran a different plan (options, filters,
    /// seed or scale diverged).
    Fingerprint {
        /// Plan index of the mismatched cell.
        index: usize,
        /// The offending stream's label.
        source: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::PlanLen {
                expected,
                found,
                source,
            } => write!(
                f,
                "{source}: stream was produced from a {found}-cell plan, but the merge \
                 plan has {expected} cells (different options or filters?)"
            ),
            MergeError::Duplicate {
                index,
                source,
                earlier,
            } => {
                write!(
                    f,
                    "cell {index} appears in more than one stream: {source} collides \
                     with {earlier}"
                )
            }
            MergeError::Missing {
                index,
                count,
                merged,
            } => write!(
                f,
                "{count} cell(s) missing from the merged streams (first: index {index}; \
                 merged: {})",
                if merged.is_empty() {
                    "none".to_owned()
                } else {
                    merged.join(", ")
                }
            ),
            MergeError::Fingerprint { index, source } => write!(
                f,
                "{source}: cell {index}: stream fingerprint does not match the merge \
                 plan (shard ran with different options?)"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

// ---------------------------------------------------------------------
// Field escaping and cursors
// ---------------------------------------------------------------------

/// Escapes one field for the tab-separated record format (`\\`, `\t`,
/// `\n`, `\r`), so arbitrary strings — device names, failure messages,
/// whole nested payloads — survive as single fields.
pub fn escape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    for c in field.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Reverses [`escape`]. Rejects dangling or unknown escape sequences.
pub fn unescape(field: &str) -> Result<String, CodecError> {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                let tail = other.map(String::from).unwrap_or_default();
                return Err(CodecError::Malformed(format!("bad escape `\\{tail}`")));
            }
        }
    }
    Ok(out)
}

/// Joins fields into one record line (escaped, tab-separated, no
/// terminator).
pub fn join_fields<S: AsRef<str>>(fields: &[S]) -> String {
    fields
        .iter()
        .map(|f| escape(f.as_ref()))
        .collect::<Vec<_>>()
        .join("\t")
}

/// Splits one record line back into unescaped fields.
pub fn split_fields(line: &str) -> Result<Vec<String>, CodecError> {
    line.split('\t').map(unescape).collect()
}

/// A sequential reader over one record's fields with typed accessors —
/// every decode helper here and in downstream payload codecs parses
/// through one of these, so "record ends early" and "bad number" errors
/// are uniform.
#[derive(Debug)]
pub struct FieldCursor<'a> {
    fields: &'a [String],
    pos: usize,
}

impl<'a> FieldCursor<'a> {
    /// A cursor at the start of `fields`.
    pub fn new(fields: &'a [String]) -> FieldCursor<'a> {
        FieldCursor { fields, pos: 0 }
    }

    /// The next raw field.
    pub fn next_field(&mut self) -> Result<&'a str, CodecError> {
        let field = self
            .fields
            .get(self.pos)
            .ok_or_else(|| CodecError::Malformed("record ends early".into()))?;
        self.pos += 1;
        Ok(field)
    }

    /// The next field parsed as decimal `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let f = self.next_field()?;
        f.parse()
            .map_err(|e| CodecError::Malformed(format!("bad number `{f}`: {e}")))
    }

    /// The next field parsed as decimal `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let f = self.next_field()?;
        f.parse()
            .map_err(|e| CodecError::Malformed(format!("bad number `{f}`: {e}")))
    }

    /// The next field parsed as decimal `usize`.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let f = self.next_field()?;
        f.parse()
            .map_err(|e| CodecError::Malformed(format!("bad number `{f}`: {e}")))
    }

    /// The next field parsed as a 16-digit hex `u64` (fingerprints and
    /// float bit patterns).
    pub fn hex64(&mut self) -> Result<u64, CodecError> {
        let f = self.next_field()?;
        u64::from_str_radix(f, 16).map_err(|e| CodecError::Malformed(format!("bad hex `{f}`: {e}")))
    }

    /// The next field parsed as a `0`/`1` boolean.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.next_field()? {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(CodecError::Malformed(format!("bad bool `{other}`"))),
        }
    }

    /// Succeeds only when every field has been consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.pos == self.fields.len() {
            Ok(())
        } else {
            Err(CodecError::Malformed(format!(
                "{} trailing field(s)",
                self.fields.len() - self.pos
            )))
        }
    }
}

fn bool01(b: bool) -> String {
    if b {
        "1".into()
    } else {
        "0".into()
    }
}

// ---------------------------------------------------------------------
// Cell spec codec
// ---------------------------------------------------------------------

/// Encodes a [`CellSpec`] as its 13 identity fields — exactly the
/// [`CellKey`](crate::plan::CellKey) field set, in key order, so a
/// decoded spec reproduces the original key and fingerprint bit for
/// bit.
pub fn spec_fields(spec: &CellSpec) -> Vec<String> {
    let (trace_tag, trace_param) = match spec.opts.trace_mode {
        TraceMode::Detailed => (0u8, 0u32),
        TraceMode::Sampled(n) => (1, n),
        TraceMode::Auto => (2, 0),
        TraceMode::Off => (3, 0),
    };
    vec![
        spec.workload.clone(),
        spec.size.label.clone(),
        spec.size.n.to_string(),
        spec.size.aux.to_string(),
        spec.api.ident().to_owned(),
        spec.device.clone(),
        trace_tag.to_string(),
        trace_param.to_string(),
        bool01(spec.opts.validate),
        spec.opts.seed.to_string(),
        format!("{:016x}", spec.opts.scale.to_bits()),
        spec.opts.sim_threads.to_string(),
        bool01(spec.opts.sim_threads_exact),
    ]
}

/// Decodes the fields written by [`spec_fields`].
pub fn decode_spec(cur: &mut FieldCursor<'_>) -> Result<CellSpec, CodecError> {
    let workload = cur.next_field()?.to_owned();
    let label = cur.next_field()?.to_owned();
    let n = cur.u64()?;
    let aux = cur.u64()?;
    let api = cur.next_field()?;
    let api = api
        .parse()
        .map_err(|e| CodecError::Malformed(format!("{e}")))?;
    let device = cur.next_field()?.to_owned();
    let trace_tag = cur.u32()?;
    let trace_param = cur.u32()?;
    let trace_mode = match trace_tag {
        0 => TraceMode::Detailed,
        1 => TraceMode::Sampled(trace_param),
        2 => TraceMode::Auto,
        3 => TraceMode::Off,
        other => {
            return Err(CodecError::Malformed(format!("bad trace tag `{other}`")));
        }
    };
    let validate = cur.bool()?;
    let seed = cur.u64()?;
    let scale = f64::from_bits(cur.hex64()?);
    let sim_threads = cur.usize()?;
    let sim_threads_exact = cur.bool()?;
    Ok(CellSpec {
        workload,
        size: SizeSpec::with_aux(label, n, aux),
        api,
        device,
        opts: RunOpts {
            trace_mode,
            validate,
            seed,
            scale,
            sim_threads,
            sim_threads_exact,
        },
    })
}

// ---------------------------------------------------------------------
// Run outcome codec
// ---------------------------------------------------------------------

/// Encodes a [`RunFailure`] (failure cells are results in this suite —
/// cfd's mobile OOM is a paper datum, not an error to drop).
pub fn failure_fields(failure: &RunFailure) -> Vec<String> {
    match failure {
        RunFailure::OutOfMemory => vec!["oom".into()],
        RunFailure::DriverFailure => vec!["driver".into()],
        RunFailure::Unsupported => vec!["unsupported".into()],
        RunFailure::Error(msg) => vec!["error".into(), msg.clone()],
    }
}

/// Decodes the fields written by [`failure_fields`].
pub fn decode_failure(cur: &mut FieldCursor<'_>) -> Result<RunFailure, CodecError> {
    match cur.next_field()? {
        "oom" => Ok(RunFailure::OutOfMemory),
        "driver" => Ok(RunFailure::DriverFailure),
        "unsupported" => Ok(RunFailure::Unsupported),
        "error" => Ok(RunFailure::Error(cur.next_field()?.to_owned())),
        other => Err(CodecError::Malformed(format!("bad failure kind `{other}`"))),
    }
}

/// Encodes a full [`RunOutcome`]: every field a renderer downstream of
/// the merge consumes — timings in exact picoseconds, the complete
/// [`TimingBreakdown`](vcb_sim::timeline::TimingBreakdown) (the §V-A2
/// overhead table), the per-entry-point call counts (the §VI-A effort
/// table) and the determinism fingerprint.
pub fn outcome_fields(out: &RunOutcome) -> Vec<String> {
    match out {
        Ok(r) => {
            let mut f = vec![
                "ok".to_owned(),
                r.workload.clone(),
                r.api.ident().to_owned(),
                r.device.clone(),
                r.size.clone(),
                r.kernel_time.as_picos().to_string(),
                r.total_time.as_picos().to_string(),
                bool01(r.validated),
                format!("{:016x}", r.fingerprint),
            ];
            for kind in CostKind::ALL {
                f.push(r.breakdown.get(kind).as_picos().to_string());
            }
            let calls: Vec<(&str, u64)> = r.calls.iter().collect();
            f.push(calls.len().to_string());
            for (name, count) in calls {
                f.push(name.to_owned());
                f.push(count.to_string());
            }
            f
        }
        Err(e) => {
            let mut f = vec!["err".to_owned()];
            f.extend(failure_fields(e));
            f
        }
    }
}

/// Decodes the fields written by [`outcome_fields`].
pub fn decode_outcome(cur: &mut FieldCursor<'_>) -> Result<RunOutcome, CodecError> {
    match cur.next_field()? {
        "ok" => {
            let workload = cur.next_field()?.to_owned();
            let api = cur
                .next_field()?
                .parse()
                .map_err(|e| CodecError::Malformed(format!("{e}")))?;
            let device = cur.next_field()?.to_owned();
            let size = cur.next_field()?.to_owned();
            let kernel_time = vcb_sim::time::SimDuration::from_picos(cur.u64()?);
            let total_time = vcb_sim::time::SimDuration::from_picos(cur.u64()?);
            let validated = cur.bool()?;
            let fingerprint = cur.hex64()?;
            let mut breakdown = vcb_sim::timeline::TimingBreakdown::new();
            for kind in CostKind::ALL {
                breakdown.charge(kind, vcb_sim::time::SimDuration::from_picos(cur.u64()?));
            }
            let mut calls = vcb_sim::calls::CallCounter::new();
            let entries = cur.usize()?;
            for _ in 0..entries {
                let name = intern(cur.next_field()?);
                calls.record_many(name, cur.u64()?);
            }
            Ok(Ok(RunRecord {
                workload,
                api,
                device,
                size,
                kernel_time,
                total_time,
                breakdown,
                calls,
                validated,
                fingerprint,
            }))
        }
        "err" => Ok(Err(decode_failure(cur)?)),
        other => Err(CodecError::Malformed(format!("bad outcome tag `{other}`"))),
    }
}

/// Interns a decoded API-call name: [`vcb_sim::calls::CallCounter`]
/// keys on `&'static str` (frontends record string literals), so the
/// decoder leaks each *distinct* name once. The name set is the fixed
/// API surface of the three frontends — a few dozen entries, bounded.
fn intern(name: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static NAMES: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut set = NAMES.lock().expect("intern table poisoned");
    if let Some(existing) = set.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

/// One shard's slice of a plan: the plan indices it executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSlice {
    /// This slice's position in the partition (0-based).
    pub shard_index: usize,
    /// Total number of shards in the partition.
    pub shard_count: usize,
    /// Plan indices assigned to this shard, ascending. All duplicates
    /// of one cell identity share a slice, so each unique cell executes
    /// in exactly one process.
    pub indices: Vec<usize>,
}

/// A relative execution-cost estimate for one cell, used to balance
/// shards. Derived from the [`SizeSpec`] the same way workloads scale
/// their inputs: primary × secondary size, scaled by the run's
/// iteration-scale factor. Bandwidth sweeps (the `n = 0` convention)
/// cover a whole stride curve and get a large flat estimate. Only
/// *relative* magnitudes matter; the estimate is deterministic.
pub fn cell_cost(spec: &CellSpec) -> u64 {
    const SWEEP_COST: u128 = 64 * 1024 * 1024;
    let work: u128 = if spec.size.n == 0 {
        SWEEP_COST
    } else {
        u128::from(spec.size.n) * u128::from(spec.size.aux.max(1))
    };
    let scaled = (work as f64 * spec.opts.scale.clamp(1e-6, 1e6)).ceil();
    (scaled as u128).clamp(1, u128::from(u64::MAX)) as u64
}

impl RunPlan {
    /// Deterministically partitions the plan into `shards` slices,
    /// balanced by [`cell_cost`].
    ///
    /// Cells are grouped by exact identity ([`CellSpec::key`]) so
    /// duplicates — e.g. gaussian/208 shared between Fig. 2 and the
    /// overhead decomposition — land in one shard and still execute
    /// once. Groups are assigned largest-cost-first to the least-loaded
    /// shard, with all ties broken by plan position, so the same plan
    /// and shard count always produce the same slices in every process.
    pub fn partition(&self, shards: usize) -> Vec<ShardSlice> {
        let costs: Vec<u64> = self.cells().iter().map(cell_cost).collect();
        self.partition_by_cost(shards, &costs)
    }

    /// [`partition`](RunPlan::partition) with caller-supplied per-cell
    /// costs instead of the static [`cell_cost`] estimate — the hook
    /// through which a result store feeds *measured* execution times
    /// back into LPT balancing (see
    /// [`Store::plan_costs`](crate::store::Store::plan_costs)).
    ///
    /// `costs` is indexed by plan position and must cover the plan; a
    /// duplicate group's cost is its first occurrence's entry (the cell
    /// executes once, so its cost counts once).
    ///
    /// # Panics
    /// Panics if `costs.len() != self.len()`.
    pub fn partition_by_cost(&self, shards: usize, costs: &[u64]) -> Vec<ShardSlice> {
        assert_eq!(
            costs.len(),
            self.len(),
            "one cost per plan cell is required"
        );
        let shards = shards.max(1);
        // Group plan indices by cell identity, in first-occurrence order.
        let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
        let mut by_key: HashMap<crate::plan::CellKey, usize> = HashMap::new();
        for (index, cell) in self.cells().iter().enumerate() {
            match by_key.entry(cell.key()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    groups[*e.get()].1.push(index);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(groups.len());
                    groups.push((costs[index], vec![index]));
                }
            }
        }
        // Longest-processing-time greedy assignment: heaviest group to
        // the least-loaded shard. Ties (equal cost / equal load) break
        // on first occurrence / lowest shard index for determinism.
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by(|&a, &b| {
            groups[b]
                .0
                .cmp(&groups[a].0)
                .then(groups[a].1[0].cmp(&groups[b].1[0]))
        });
        let mut loads = vec![0u128; shards];
        let mut indices: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for g in order {
            let (cost, members) = &groups[g];
            let lightest = (0..shards)
                .min_by_key(|&s| loads[s])
                .expect("at least one shard");
            loads[lightest] += u128::from(*cost);
            indices[lightest].extend_from_slice(members);
        }
        indices
            .into_iter()
            .enumerate()
            .map(|(shard_index, mut idx)| {
                idx.sort_unstable();
                ShardSlice {
                    shard_index,
                    shard_count: shards,
                    indices: idx,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Event stream codec
// ---------------------------------------------------------------------

/// The header record shared by both stream formats (only the magic
/// differs) — the encode-side counterpart of [`parse_header`].
fn header_line(magic: &str, plan_len: usize, shard_index: usize, shard_count: usize) -> String {
    join_fields(&[
        magic.to_owned(),
        CODEC_VERSION.to_string(),
        plan_len.to_string(),
        shard_index.to_string(),
        shard_count.to_string(),
    ])
}

/// The `cell` record prefix shared by both stream formats: tag, plan
/// index, fingerprint, then the full spec identity — exactly what
/// [`decode_records`] parses before the format-specific tail.
fn cell_record_fields(index: usize, spec: &CellSpec) -> Vec<String> {
    let mut fields = vec![
        "cell".to_owned(),
        index.to_string(),
        format!("{:016x}", spec.fingerprint()),
    ];
    fields.extend(spec_fields(spec));
    fields
}

/// The `end` trailer shared by both stream formats.
fn end_line(cells: usize) -> String {
    join_fields(&["end".to_owned(), cells.to_string()])
}

/// Incremental writer for one shard's cell-event stream: a version
/// header, one `cell` record per resolved plan index (spec + payload),
/// and an `end` trailer carrying the record count so truncated files
/// can't pass for complete ones.
pub struct EventWriter<W: Write> {
    w: W,
    cells: usize,
}

impl<W: Write> EventWriter<W> {
    /// Starts a stream: writes the header for a shard of a
    /// `plan_len`-cell plan.
    pub fn new(
        mut w: W,
        plan_len: usize,
        shard_index: usize,
        shard_count: usize,
    ) -> io::Result<EventWriter<W>> {
        writeln!(
            w,
            "{}",
            header_line(EVENTS_MAGIC, plan_len, shard_index, shard_count)
        )?;
        Ok(EventWriter { w, cells: 0 })
    }

    /// Appends one resolved cell: its plan index, spec (with
    /// fingerprint) and the payload fields produced by the caller's
    /// result codec. The payload is embedded as a single escaped field,
    /// so payload codecs may use tabs and newlines freely.
    pub fn cell<S: AsRef<str>>(
        &mut self,
        index: usize,
        spec: &CellSpec,
        payload: &[S],
    ) -> io::Result<()> {
        let mut fields = cell_record_fields(index, spec);
        fields.push(join_fields(payload));
        writeln!(self.w, "{}", join_fields(&fields))?;
        self.cells += 1;
        Ok(())
    }

    /// Flushes the underlying writer. Durable stream writers call this
    /// after every [`cell`](EventWriter::cell) so a crashed process
    /// loses at most the record being written — everything flushed
    /// before the crash is salvageable via [`decode_events_partial`].
    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }

    /// Writes the `end` trailer, flushes, and returns the writer.
    pub fn finish(mut self) -> io::Result<W> {
        writeln!(self.w, "{}", end_line(self.cells))?;
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> fmt::Debug for EventWriter<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventWriter")
            .field("cells", &self.cells)
            .finish()
    }
}

/// One decoded cell record of a shard stream.
#[derive(Debug, Clone)]
pub struct ShardCell<T> {
    /// The cell's index in the originating plan.
    pub index: usize,
    /// The recorded (and decode-verified) cell fingerprint.
    pub fingerprint: u64,
    /// The decoded cell spec.
    pub spec: CellSpec,
    /// The decoded result payload.
    pub out: T,
}

/// One shard's decoded event stream.
#[derive(Debug, Clone)]
pub struct ShardStream<T> {
    /// Cell count of the plan the shard ran.
    pub plan_len: usize,
    /// The shard's index in its partition.
    pub shard_index: usize,
    /// Total shards in the partition.
    pub shard_count: usize,
    /// Decoded cells, in the order they were written.
    pub cells: Vec<ShardCell<T>>,
}

fn parse_header(line: &str, magic: &str) -> Result<(usize, usize, usize), CodecError> {
    let fields = split_fields(line).map_err(|_| CodecError::Header("unreadable".into()))?;
    let mut cur = FieldCursor::new(&fields);
    let found = cur
        .next_field()
        .map_err(|_| CodecError::Header("empty".into()))?;
    if found != magic {
        return Err(CodecError::Header(format!(
            "expected `{magic}`, found `{found}`"
        )));
    }
    let version = cur.u32()?;
    if version != CODEC_VERSION {
        return Err(CodecError::Version(version));
    }
    let plan_len = cur.usize()?;
    let shard_index = cur.usize()?;
    let shard_count = cur.usize()?;
    cur.finish()?;
    Ok((plan_len, shard_index, shard_count))
}

/// The one record-stream grammar shared by event streams and plan
/// slices: a [`parse_header`] line, `cell` records (index bounds check,
/// recorded fingerprint, spec decode, fingerprint re-verification, then
/// a format-specific tail read by `parse_tail`), and an `end` trailer
/// whose count must match — with truncation and data-after-end
/// rejected. Both public decoders are thin wrappers, so the grammar
/// cannot drift between the two formats.
fn decode_records<T>(
    text: &str,
    magic: &str,
    mut parse_tail: impl FnMut(&mut FieldCursor<'_>) -> Result<T, CodecError>,
) -> Result<ShardStream<T>, CodecError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| CodecError::Header("empty stream".into()))?;
    let (plan_len, shard_index, shard_count) = parse_header(header, magic)?;
    let mut cells: Vec<ShardCell<T>> = Vec::new();
    let mut ended = false;
    for (line_no, line) in lines {
        if ended {
            return Err(CodecError::Malformed(format!(
                "line {}: data after `end` trailer",
                line_no + 1
            )));
        }
        match parse_record(line, plan_len, &mut parse_tail).map_err(|e| e.with_line(line_no))? {
            Record::Cell(cell) => cells.push(cell),
            Record::End(count) => {
                if count != cells.len() {
                    return Err(CodecError::Malformed(format!(
                        "trailer counts {count} cells, stream has {}",
                        cells.len()
                    )));
                }
                ended = true;
            }
        }
    }
    if !ended {
        return Err(CodecError::Truncated);
    }
    Ok(ShardStream {
        plan_len,
        shard_index,
        shard_count,
        cells,
    })
}

/// One parsed record line of a shard stream — the unit both the strict
/// and the salvaging decoder consume, so the record grammar cannot
/// drift between them.
enum Record<T> {
    Cell(ShardCell<T>),
    End(usize),
}

fn parse_record<T>(
    line: &str,
    plan_len: usize,
    parse_tail: &mut impl FnMut(&mut FieldCursor<'_>) -> Result<T, CodecError>,
) -> Result<Record<T>, CodecError> {
    let fields = split_fields(line)?;
    let mut cur = FieldCursor::new(&fields);
    match cur.next_field()? {
        "cell" => {
            let index = cur.usize()?;
            if index >= plan_len {
                return Err(CodecError::Malformed(format!(
                    "cell index {index} outside the {plan_len}-cell plan"
                )));
            }
            let fingerprint = cur.hex64()?;
            let spec = decode_spec(&mut cur)?;
            if spec.fingerprint() != fingerprint {
                return Err(CodecError::Fingerprint { index });
            }
            let out = parse_tail(&mut cur)?;
            cur.finish()?;
            Ok(Record::Cell(ShardCell {
                index,
                fingerprint,
                spec,
                out,
            }))
        }
        "end" => {
            let count = cur.usize()?;
            cur.finish()?;
            Ok(Record::End(count))
        }
        other => Err(CodecError::Malformed(format!("unknown record `{other}`"))),
    }
}

/// What [`decode_events_partial`] recovered from a (possibly truncated)
/// event stream.
#[derive(Debug, Clone)]
pub struct Salvage<T> {
    /// The intact cells, exactly as a strict decode would return them.
    pub stream: ShardStream<T>,
    /// `true` when the stream ended with a matching `end` trailer — a
    /// complete stream salvages losslessly.
    pub complete: bool,
    /// Number of non-empty lines that could not be decoded (the
    /// truncated in-flight record of a crashed writer, plus anything
    /// after it). A missing `end` trailer alone does not count.
    pub lost_lines: usize,
}

/// Salvages every intact `cell` record from an event stream that may
/// have been cut short by a crashed or killed writer.
///
/// The header must still decode (a stream whose header never made it to
/// disk carries no usable provenance, and a version mismatch is a build
/// problem, not a crash) — those errors stay fatal. Past the header,
/// decoding is the same grammar as [`decode_events`] but stops at the
/// first undecodable line instead of erroring: every cell before it is
/// returned, fingerprint-verified exactly as the strict decoder would,
/// and the undecodable tail is reported as [`lost_lines`](Salvage::lost_lines).
/// A missing `end` trailer is downgraded from [`CodecError::Truncated`]
/// to `complete: false`.
///
/// `vcb merge` keeps using the strict [`decode_events`]; this entry
/// point exists for the supervised `--jobs` runner, which re-executes
/// whatever it could not salvage.
pub fn decode_events_partial<T>(
    text: &str,
    decode_payload: impl Fn(&[String]) -> Result<T, CodecError>,
) -> Result<Salvage<T>, CodecError> {
    let mut parse_tail =
        |cur: &mut FieldCursor<'_>| decode_payload(&split_fields(cur.next_field()?)?);
    let lines: Vec<&str> = text.lines().collect();
    let header = lines
        .first()
        .ok_or_else(|| CodecError::Header("empty stream".into()))?;
    let (plan_len, shard_index, shard_count) = parse_header(header, EVENTS_MAGIC)?;
    let mut cells: Vec<ShardCell<T>> = Vec::new();
    let mut complete = false;
    let mut lost_lines = 0usize;
    for (pos, line) in lines.iter().enumerate().skip(1) {
        if line.is_empty() {
            continue;
        }
        if complete {
            // Data after a valid trailer is anomalous; count it as lost
            // rather than un-completing an internally consistent stream.
            lost_lines += 1;
            continue;
        }
        match parse_record(line, plan_len, &mut parse_tail) {
            Ok(Record::Cell(cell)) => cells.push(cell),
            Ok(Record::End(count)) if count == cells.len() => complete = true,
            // A bad record (torn write) or a miscounting trailer ends
            // the salvageable prefix; everything from here on is lost.
            Ok(Record::End(_)) | Err(_) => {
                lost_lines += lines[pos..].iter().filter(|l| !l.is_empty()).count();
                break;
            }
        }
    }
    Ok(Salvage {
        stream: ShardStream {
            plan_len,
            shard_index,
            shard_count,
            cells,
        },
        complete,
        lost_lines,
    })
}

/// Decodes one shard's event stream. `decode_payload` turns each cell's
/// payload fields back into the result type (the harness supplies the
/// codec for its cell-result enum; [`decode_outcome`] covers plain
/// [`RunOutcome`] payloads).
///
/// Every cell's fingerprint is recomputed from its decoded spec and
/// checked against the recorded value, so a stream written by a build
/// with a different cell identity cannot decode silently.
pub fn decode_events<T>(
    text: &str,
    decode_payload: impl Fn(&[String]) -> Result<T, CodecError>,
) -> Result<ShardStream<T>, CodecError> {
    decode_records(text, EVENTS_MAGIC, |cur| {
        decode_payload(&split_fields(cur.next_field()?)?)
    })
}

/// Incrementally reassembles per-shard event streams into the exact
/// in-plan-order result sequence a single-process execution of the plan
/// produces.
///
/// Streams are validated as they arrive via
/// [`add_stream`](StreamMerger::add_stream) — plan length, per-cell
/// fingerprint against the plan, duplicate coverage — so a multi-process
/// runner can fold each shard in the moment it completes instead of
/// waiting for the straggler; [`finish`](StreamMerger::finish) then
/// checks full coverage and yields the results. Each stream carries a
/// caller-supplied label (e.g. its file path) so every rejection names
/// the offending source.
#[derive(Debug)]
pub struct StreamMerger<'p, T> {
    plan: &'p RunPlan,
    slots: Vec<Option<(T, usize)>>,
    sources: Vec<String>,
}

impl<'p, T> StreamMerger<'p, T> {
    /// An empty merger for `plan`.
    pub fn new(plan: &'p RunPlan) -> StreamMerger<'p, T> {
        StreamMerger {
            plan,
            slots: plan.cells().iter().map(|_| None).collect(),
            sources: Vec::new(),
        }
    }

    /// Labels a stream for error messages: the stream header's shard
    /// index plus the caller's source string.
    fn label<U>(stream: &ShardStream<U>, source: &str) -> String {
        format!("shard {} ({source})", stream.shard_index)
    }

    /// Folds one shard's stream into the merge. `source` names where
    /// the stream came from — `vcb merge` passes the shard file path —
    /// and is echoed in every rejection.
    pub fn add_stream(&mut self, stream: ShardStream<T>, source: &str) -> Result<(), MergeError> {
        let label = StreamMerger::<T>::label(&stream, source);
        if stream.plan_len != self.plan.len() {
            return Err(MergeError::PlanLen {
                expected: self.plan.len(),
                found: stream.plan_len,
                source: label,
            });
        }
        let source_id = self.sources.len();
        for cell in stream.cells {
            let expected = self.plan.cells()[cell.index].fingerprint();
            if expected != cell.fingerprint {
                return Err(MergeError::Fingerprint {
                    index: cell.index,
                    source: label,
                });
            }
            if let Some((_, earlier)) = &self.slots[cell.index] {
                let earlier = if *earlier == source_id {
                    label.clone()
                } else {
                    self.sources[*earlier].clone()
                };
                return Err(MergeError::Duplicate {
                    index: cell.index,
                    source: label,
                    earlier,
                });
            }
            self.slots[cell.index] = Some((cell.out, source_id));
        }
        self.sources.push(label);
        Ok(())
    }

    /// Folds one loose cell into the merge — how the supervised runner
    /// seeds cells salvaged from a crashed shard's partial stream, and
    /// how a poison cell's synthesized failure result is recorded.
    /// `fingerprint` is checked against the plan (pass the plan cell's
    /// own fingerprint for synthesized results); duplicate coverage is
    /// rejected exactly as for stream cells.
    ///
    /// # Panics
    /// Panics if `index` is outside the plan.
    pub fn add_cell(
        &mut self,
        index: usize,
        fingerprint: u64,
        out: T,
        source: &str,
    ) -> Result<(), MergeError> {
        assert!(index < self.plan.len(), "cell index outside the plan");
        if self.plan.cells()[index].fingerprint() != fingerprint {
            return Err(MergeError::Fingerprint {
                index,
                source: source.to_owned(),
            });
        }
        if let Some((_, earlier)) = &self.slots[index] {
            return Err(MergeError::Duplicate {
                index,
                source: source.to_owned(),
                earlier: self.sources[*earlier].clone(),
            });
        }
        // Consecutive cells from one salvage share a source entry.
        if self.sources.last().map(String::as_str) != Some(source) {
            self.sources.push(source.to_owned());
        }
        self.slots[index] = Some((out, self.sources.len() - 1));
        Ok(())
    }

    /// `true` when the cell at `index` already has a merged result —
    /// the supervisor's test for which cells of a dead shard's slice
    /// still need re-execution.
    pub fn is_covered(&self, index: usize) -> bool {
        self.slots.get(index).is_some_and(Option::is_some)
    }

    /// Checks that every plan index is covered and returns the results
    /// in plan order.
    pub fn finish(self) -> Result<Vec<T>, MergeError> {
        let missing = self.slots.iter().filter(|s| s.is_none()).count();
        if missing > 0 {
            let index = self
                .slots
                .iter()
                .position(Option::is_none)
                .expect("counted missing");
            return Err(MergeError::Missing {
                index,
                count: missing,
                merged: self.sources,
            });
        }
        Ok(self
            .slots
            .into_iter()
            .map(|s| s.expect("checked complete").0)
            .collect())
    }
}

/// Reassembles per-shard event streams into the exact in-plan-order
/// result sequence a single-process execution of `plan` produces — a
/// one-shot wrapper over [`StreamMerger`] labeling sources by position
/// (`stream 0`, `stream 1`, ...).
///
/// Rejects streams from a different plan length, cells whose
/// fingerprint disagrees with the plan's cell at that index, duplicate
/// coverage of an index, and uncovered indices — a successful merge is
/// lossless by construction.
pub fn merge_streams<T>(
    plan: &RunPlan,
    streams: Vec<ShardStream<T>>,
) -> Result<Vec<T>, MergeError> {
    let mut merger = StreamMerger::new(plan);
    for (pos, stream) in streams.into_iter().enumerate() {
        merger.add_stream(stream, &format!("stream {pos}"))?;
    }
    merger.finish()
}

// ---------------------------------------------------------------------
// Plan slice codec
// ---------------------------------------------------------------------

/// A decoded plan slice: the cells one shard should execute, with
/// their original plan indices.
#[derive(Debug, Clone)]
pub struct PlanSlice {
    /// Cell count of the full originating plan.
    pub plan_len: usize,
    /// The slice's shard index.
    pub shard_index: usize,
    /// Total shards in the partition.
    pub shard_count: usize,
    /// `(plan index, spec)` pairs in slice order.
    pub cells: Vec<(usize, CellSpec)>,
}

impl PlanSlice {
    /// The slice as an executable [`RunPlan`] (cells in slice order).
    pub fn to_plan(&self) -> RunPlan {
        let mut plan = RunPlan::new();
        for (_, spec) in &self.cells {
            plan.push(spec.clone());
        }
        plan
    }
}

/// Encodes one slice of `plan` for transport to another process or
/// machine: the same record grammar as the event stream (shared
/// header/cell/end builders), minus payloads.
pub fn encode_plan_slice(plan: &RunPlan, slice: &ShardSlice) -> String {
    let mut out = String::new();
    out.push_str(&header_line(
        PLAN_MAGIC,
        plan.len(),
        slice.shard_index,
        slice.shard_count,
    ));
    out.push('\n');
    for &index in &slice.indices {
        out.push_str(&join_fields(&cell_record_fields(
            index,
            &plan.cells()[index],
        )));
        out.push('\n');
    }
    out.push_str(&end_line(slice.indices.len()));
    out.push('\n');
    out
}

/// Decodes a plan slice written by [`encode_plan_slice`], re-verifying
/// every cell's fingerprint against its decoded spec. Same grammar as
/// [`decode_events`] (one shared reader), with an empty cell tail.
pub fn decode_plan_slice(text: &str) -> Result<PlanSlice, CodecError> {
    let stream = decode_records(text, PLAN_MAGIC, |_| Ok(()))?;
    Ok(PlanSlice {
        plan_len: stream.plan_len,
        shard_index: stream.shard_index,
        shard_count: stream.shard_count,
        cells: stream
            .cells
            .into_iter()
            .map(|c| (c.index, c.spec))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_sim::time::SimDuration;
    use vcb_sim::Api;

    fn spec(workload: &str, label: &str, n: u64, api: Api, device: &str) -> CellSpec {
        CellSpec {
            workload: workload.into(),
            size: SizeSpec::new(label, n),
            api,
            device: device.into(),
            opts: RunOpts::default(),
        }
    }

    fn sample_plan() -> RunPlan {
        let mut plan = RunPlan::new();
        plan.push(spec("stride", "sweep", 0, Api::OpenCl, "GTX 1050 Ti"));
        plan.push(spec("bfs", "4K", 4096, Api::OpenCl, "GTX 1050 Ti"));
        plan.push(spec("bfs", "4K", 4096, Api::Vulkan, "GTX 1050 Ti"));
        plan.push(spec("gaussian", "208", 208, Api::OpenCl, "Mali T-880"));
        plan.push(spec("gaussian", "208", 208, Api::Vulkan, "Mali T-880"));
        // Intra-plan duplicate of cell 3 (e.g. fig2 + overheads).
        plan.push(spec("gaussian", "208", 208, Api::OpenCl, "Mali T-880"));
        plan
    }

    #[test]
    fn escape_round_trips_control_characters() {
        for s in [
            "plain",
            "tab\there",
            "newline\nhere",
            "cr\rhere",
            "back\\slash",
            "\\t literal",
            "mixed\t\\\n\r end",
            "",
        ] {
            assert_eq!(unescape(&escape(s)).unwrap(), s, "{s:?}");
        }
        assert!(unescape("dangling\\").is_err());
        assert!(unescape("bad\\x").is_err());
    }

    #[test]
    fn join_split_round_trips_fields() {
        let fields = ["a", "with\ttab", "with\nnewline", "", "with\\backslash"];
        let line = join_fields(&fields);
        assert!(!line.contains('\n'), "record lines must stay single-line");
        assert_eq!(split_fields(&line).unwrap(), fields);
    }

    #[test]
    fn spec_round_trips_identity_exactly() {
        let mut exotic = spec("nw", "2K", 2048, Api::Cuda, "Device with\ttab");
        exotic.size.aux = 7;
        exotic.opts.trace_mode = TraceMode::Sampled(16);
        exotic.opts.scale = 0.017; // not exactly representable
        exotic.opts.seed = u64::MAX;
        exotic.opts.sim_threads = 4;
        exotic.opts.sim_threads_exact = true;
        exotic.opts.validate = false;
        for original in [spec("bfs", "4K", 4096, Api::Vulkan, "GTX 1050 Ti"), exotic] {
            let fields = spec_fields(&original);
            let mut cur = FieldCursor::new(&fields);
            let decoded = decode_spec(&mut cur).unwrap();
            cur.finish().unwrap();
            assert_eq!(decoded.key(), original.key());
            assert_eq!(decoded.fingerprint(), original.fingerprint());
        }
    }

    fn sample_record() -> RunRecord {
        let mut breakdown = vcb_sim::timeline::TimingBreakdown::new();
        breakdown.charge(CostKind::JitCompile, SimDuration::from_picos(123_456));
        breakdown.charge(CostKind::KernelExec, SimDuration::from_picos(999_999_999));
        let mut calls = vcb_sim::calls::CallCounter::new();
        calls.record("clCreateBuffer");
        calls.record("clCreateBuffer");
        calls.record("clEnqueueNDRangeKernel");
        RunRecord {
            workload: "gaussian".into(),
            api: Api::OpenCl,
            device: "Mali T-880".into(),
            size: "208".into(),
            kernel_time: SimDuration::from_picos(42),
            total_time: SimDuration::from_picos(4242),
            breakdown,
            calls,
            validated: true,
            fingerprint: 0xdead_beef_cafe_f00d,
        }
    }

    #[test]
    fn outcome_round_trips_records_and_failures() {
        let record = sample_record();
        let outcomes: Vec<RunOutcome> = vec![
            Ok(record.clone()),
            Err(RunFailure::OutOfMemory),
            Err(RunFailure::DriverFailure),
            Err(RunFailure::Unsupported),
            Err(RunFailure::Error("boom\twith tab\nand newline".into())),
        ];
        for out in outcomes {
            let fields = outcome_fields(&out);
            let mut cur = FieldCursor::new(&fields);
            let decoded = decode_outcome(&mut cur).unwrap();
            cur.finish().unwrap();
            match (&out, &decoded) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.workload, b.workload);
                    assert_eq!(a.api, b.api);
                    assert_eq!(a.device, b.device);
                    assert_eq!(a.size, b.size);
                    assert_eq!(a.kernel_time, b.kernel_time);
                    assert_eq!(a.total_time, b.total_time);
                    assert_eq!(a.validated, b.validated);
                    assert_eq!(a.fingerprint, b.fingerprint);
                    for kind in CostKind::ALL {
                        assert_eq!(a.breakdown.get(kind), b.breakdown.get(kind), "{kind}");
                    }
                    let a_calls: Vec<_> = a.calls.iter().collect();
                    let b_calls: Vec<_> = b.calls.iter().collect();
                    assert_eq!(a_calls, b_calls);
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("outcome diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn partition_is_deterministic_and_covers_every_index_once() {
        let plan = sample_plan();
        for shards in 1..=4 {
            let a = plan.partition(shards);
            let b = plan.partition(shards);
            assert_eq!(a, b, "partition({shards}) must be deterministic");
            assert_eq!(a.len(), shards);
            let mut seen: Vec<usize> = a.iter().flat_map(|s| s.indices.clone()).collect();
            seen.sort_unstable();
            assert_eq!(
                seen,
                (0..plan.len()).collect::<Vec<_>>(),
                "every plan index in exactly one shard ({shards} shards)"
            );
            for (i, slice) in a.iter().enumerate() {
                assert_eq!(slice.shard_index, i);
                assert_eq!(slice.shard_count, shards);
            }
        }
    }

    #[test]
    fn partition_keeps_duplicate_cells_in_one_shard() {
        let plan = sample_plan();
        // Cells 3 and 5 are identical; whatever the shard count, they
        // must land in the same slice so the cell executes exactly once.
        for shards in 2..=4 {
            let slices = plan.partition(shards);
            let home = |index: usize| {
                slices
                    .iter()
                    .position(|s| s.indices.contains(&index))
                    .unwrap()
            };
            assert_eq!(home(3), home(5), "{shards} shards");
        }
    }

    #[test]
    fn partition_balances_equal_cost_groups() {
        let mut plan = RunPlan::new();
        for i in 0..8 {
            plan.push(spec("bfs", "4K", 4096, Api::Vulkan, &format!("D{i}")));
        }
        let slices = plan.partition(2);
        assert_eq!(slices[0].indices.len(), 4);
        assert_eq!(slices[1].indices.len(), 4);
    }

    #[test]
    fn partition_by_cost_balances_on_supplied_costs() {
        // Eight identical-size cells whose *measured* costs are wildly
        // uneven: one dominant cell plus seven cheap ones. Static
        // cell_cost would split 4/4; measured-cost LPT must put the
        // dominant cell alone and the seven cheap ones together.
        let mut plan = RunPlan::new();
        for i in 0..8 {
            plan.push(spec("bfs", "4K", 4096, Api::Vulkan, &format!("D{i}")));
        }
        let mut costs = vec![1u64; 8];
        costs[2] = 1_000;
        let slices = plan.partition_by_cost(2, &costs);
        let home = |index: usize| {
            slices
                .iter()
                .position(|s| s.indices.contains(&index))
                .unwrap()
        };
        let heavy = home(2);
        assert_eq!(slices[heavy].indices, [2]);
        assert_eq!(slices[1 - heavy].indices.len(), 7);
        // Duplicate groups take their first occurrence's cost.
        let mut dup = RunPlan::new();
        dup.push(spec("bfs", "4K", 4096, Api::Vulkan, "A"));
        dup.push(spec("nn", "8M", 8 << 20, Api::Vulkan, "A"));
        dup.push(spec("bfs", "4K", 4096, Api::Vulkan, "A"));
        let slices = dup.partition_by_cost(2, &[500, 400, 77]);
        assert_eq!(home_of(&slices, 0), home_of(&slices, 2));
    }

    fn home_of(slices: &[ShardSlice], index: usize) -> usize {
        slices
            .iter()
            .position(|s| s.indices.contains(&index))
            .unwrap()
    }

    #[test]
    fn merge_errors_name_their_sources() {
        let plan = sample_plan();
        let slices = plan.partition(2);
        let text0 = encode_stream(&plan, &slices[0]);
        let mut merger = StreamMerger::new(&plan);
        merger
            .add_stream(decode_events(&text0, decode_payload).unwrap(), "a.events")
            .unwrap();
        let err = merger
            .add_stream(decode_events(&text0, decode_payload).unwrap(), "b.events")
            .unwrap_err();
        let MergeError::Duplicate {
            source, earlier, ..
        } = &err
        else {
            panic!("expected Duplicate, got {err}");
        };
        assert!(
            source.contains("b.events") && source.contains("shard 0"),
            "{err}"
        );
        assert!(earlier.contains("a.events"), "{err}");
        // Missing lists what *was* merged.
        let mut merger: StreamMerger<'_, String> = StreamMerger::new(&plan);
        merger
            .add_stream(decode_events(&text0, decode_payload).unwrap(), "a.events")
            .unwrap();
        let err = merger.finish().unwrap_err();
        assert!(
            matches!(&err, MergeError::Missing { merged, .. } if merged[0].contains("a.events")),
            "{err}"
        );
    }

    #[test]
    fn partition_handles_degenerate_shapes() {
        let empty = RunPlan::new();
        let slices = empty.partition(3);
        assert_eq!(slices.len(), 3);
        assert!(slices.iter().all(|s| s.indices.is_empty()));
        // More shards than unique cells: trailing slices stay empty.
        let mut one = RunPlan::new();
        one.push(spec("bfs", "4K", 4096, Api::Vulkan, "A"));
        let slices = one.partition(4);
        assert_eq!(slices[0].indices, [0]);
        assert!(slices[1..].iter().all(|s| s.indices.is_empty()));
        // partition(0) clamps to one shard.
        assert_eq!(one.partition(0).len(), 1);
    }

    fn encode_stream(plan: &RunPlan, slice: &ShardSlice) -> String {
        let mut w =
            EventWriter::new(Vec::new(), plan.len(), slice.shard_index, slice.shard_count).unwrap();
        for &index in &slice.indices {
            let spec = &plan.cells()[index];
            // Payload: an arbitrary per-cell string with hostile bytes.
            let payload = vec![format!("out\t{index}\n"), spec.workload.clone()];
            w.cell(index, spec, &payload).unwrap();
        }
        String::from_utf8(w.finish().unwrap()).unwrap()
    }

    fn decode_payload(fields: &[String]) -> Result<String, CodecError> {
        Ok(fields.join("|"))
    }

    #[test]
    fn event_streams_round_trip_and_merge_in_plan_order() {
        let plan = sample_plan();
        let slices = plan.partition(2);
        let streams: Vec<ShardStream<String>> = slices
            .iter()
            .map(|s| decode_events(&encode_stream(&plan, s), decode_payload).unwrap())
            .collect();
        for (stream, slice) in streams.iter().zip(&slices) {
            assert_eq!(stream.plan_len, plan.len());
            assert_eq!(stream.shard_index, slice.shard_index);
            assert_eq!(stream.shard_count, 2);
            let indices: Vec<usize> = stream.cells.iter().map(|c| c.index).collect();
            assert_eq!(indices, slice.indices);
            for cell in &stream.cells {
                assert_eq!(cell.spec.key(), plan.cells()[cell.index].key());
            }
        }
        let merged = merge_streams(&plan, streams).unwrap();
        let expected: Vec<String> = (0..plan.len())
            .map(|i| format!("out\t{i}\n|{}", plan.cells()[i].workload))
            .collect();
        assert_eq!(merged, expected);
    }

    #[test]
    fn merge_rejects_duplicate_cells() {
        let plan = sample_plan();
        let slices = plan.partition(2);
        let text0 = encode_stream(&plan, &slices[0]);
        let text1 = encode_stream(&plan, &slices[1]);
        // The same shard stream twice: its first index is duplicated.
        let streams = vec![
            decode_events(&text0, decode_payload).unwrap(),
            decode_events(&text0, decode_payload).unwrap(),
            decode_events(&text1, decode_payload).unwrap(),
        ];
        let err = merge_streams(&plan, streams).unwrap_err();
        assert!(matches!(err, MergeError::Duplicate { .. }), "{err}");
    }

    #[test]
    fn merge_rejects_missing_cells() {
        let plan = sample_plan();
        let slices = plan.partition(2);
        let streams =
            vec![decode_events(&encode_stream(&plan, &slices[0]), decode_payload).unwrap()];
        let err = merge_streams(&plan, streams).unwrap_err();
        let MergeError::Missing { count, .. } = err else {
            panic!("expected Missing, got {err}");
        };
        assert_eq!(count, slices[1].indices.len());
    }

    #[test]
    fn merge_rejects_fingerprint_mismatches() {
        let plan = sample_plan();
        let slices = plan.partition(1);
        let stream = decode_events(&encode_stream(&plan, &slices[0]), decode_payload).unwrap();
        // The same cells merged against a plan with a different seed:
        // every fingerprint disagrees.
        let mut other = RunPlan::new();
        for cell in plan.cells() {
            let mut c = cell.clone();
            c.opts.seed ^= 1;
            other.push(c);
        }
        let err = merge_streams(&other, vec![stream]).unwrap_err();
        assert!(matches!(err, MergeError::Fingerprint { .. }), "{err}");
    }

    #[test]
    fn merge_rejects_plan_length_mismatches() {
        let plan = sample_plan();
        let stream =
            decode_events(&encode_stream(&plan, &plan.partition(1)[0]), decode_payload).unwrap();
        let mut longer = plan.clone();
        longer.push(spec("nn", "8M", 8 << 20, Api::Vulkan, "B"));
        let err = merge_streams(&longer, vec![stream]).unwrap_err();
        assert!(matches!(err, MergeError::PlanLen { .. }), "{err}");
    }

    #[test]
    fn decode_rejects_other_codec_versions() {
        let plan = sample_plan();
        let text = encode_stream(&plan, &plan.partition(1)[0]);
        let bumped = text.replacen(
            &format!("vcb-events\t{CODEC_VERSION}"),
            &format!("vcb-events\t{}", CODEC_VERSION + 1),
            1,
        );
        let err = decode_events(&bumped, decode_payload).unwrap_err();
        assert_eq!(err, CodecError::Version(CODEC_VERSION + 1));
    }

    #[test]
    fn decode_rejects_truncated_and_tampered_streams() {
        let plan = sample_plan();
        let text = encode_stream(&plan, &plan.partition(1)[0]);
        // Cut off the `end` trailer.
        let truncated: String = text
            .lines()
            .take(text.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(
            decode_events(&truncated, decode_payload).unwrap_err(),
            CodecError::Truncated
        );
        // Tamper with a recorded fingerprint: flip one hex digit of
        // cell 0's fingerprint field.
        let fp = format!("{:016x}", plan.cells()[0].fingerprint());
        let mut flipped = fp.clone();
        let last = flipped.pop().unwrap();
        flipped.push(if last == '0' { '1' } else { '0' });
        let tampered = text.replacen(&fp, &flipped, 1);
        assert_ne!(tampered, text, "fingerprint must appear in the stream");
        let err = decode_events(&tampered, decode_payload).unwrap_err();
        assert_eq!(err, CodecError::Fingerprint { index: 0 });
        // Garbage header.
        assert!(matches!(
            decode_events("nonsense\n", decode_payload).unwrap_err(),
            CodecError::Header(_)
        ));
        assert!(matches!(
            decode_events("", decode_payload).unwrap_err(),
            CodecError::Header(_)
        ));
    }

    #[test]
    fn salvage_recovers_full_streams_losslessly() {
        let plan = sample_plan();
        let slice = &plan.partition(1)[0];
        let text = encode_stream(&plan, slice);
        let salvage = decode_events_partial(&text, decode_payload).unwrap();
        assert!(salvage.complete);
        assert_eq!(salvage.lost_lines, 0);
        let strict = decode_events(&text, decode_payload).unwrap();
        assert_eq!(salvage.stream.cells.len(), strict.cells.len());
        for (a, b) in salvage.stream.cells.iter().zip(&strict.cells) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.out, b.out);
        }
    }

    #[test]
    fn salvage_recovers_intact_prefix_of_truncated_streams() {
        let plan = sample_plan();
        let slice = &plan.partition(1)[0];
        let text = encode_stream(&plan, slice);
        let lines: Vec<&str> = text.lines().collect();
        let cells = lines.len() - 2; // header + cells + end

        // Missing `end` trailer: every cell survives, stream incomplete.
        let no_end: String = lines[..lines.len() - 1]
            .iter()
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(
            decode_events(&no_end, decode_payload).unwrap_err(),
            CodecError::Truncated
        );
        let salvage = decode_events_partial(&no_end, decode_payload).unwrap();
        assert!(!salvage.complete);
        assert_eq!(salvage.lost_lines, 0);
        assert_eq!(salvage.stream.cells.len(), cells);

        // Torn mid-record write: the cut line is lost, its predecessors
        // survive.
        let mut torn: String = lines[..lines.len() - 2]
            .iter()
            .map(|l| format!("{l}\n"))
            .collect();
        let last_cell = lines[lines.len() - 2];
        torn.push_str(&last_cell[..last_cell.len() / 2]);
        let salvage = decode_events_partial(&torn, decode_payload).unwrap();
        assert!(!salvage.complete);
        assert_eq!(salvage.lost_lines, 1);
        assert_eq!(salvage.stream.cells.len(), cells - 1);

        // Garbage tail after a torn record: everything after the tear
        // is counted lost, nothing after it is trusted.
        let garbage = format!("{torn}\ngarbage record\ncell\tnot-a-number\n");
        let salvage = decode_events_partial(&garbage, decode_payload).unwrap();
        assert!(!salvage.complete);
        assert_eq!(salvage.lost_lines, 3);
        assert_eq!(salvage.stream.cells.len(), cells - 1);

        // Header damage stays fatal — there is nothing to salvage
        // against.
        assert!(matches!(
            decode_events_partial("nonsense\n", decode_payload),
            Err(CodecError::Header(_))
        ));
        assert!(matches!(
            decode_events_partial("", decode_payload),
            Err(CodecError::Header(_))
        ));
        let bumped = text.replacen(
            &format!("vcb-events\t{CODEC_VERSION}"),
            &format!("vcb-events\t{}", CODEC_VERSION + 1),
            1,
        );
        assert_eq!(
            decode_events_partial(&bumped, decode_payload).unwrap_err(),
            CodecError::Version(CODEC_VERSION + 1)
        );
    }

    #[test]
    fn salvaged_cells_seed_a_merger_and_cover_indices() {
        let plan = sample_plan();
        let slices = plan.partition(2);
        let text0 = encode_stream(&plan, &slices[0]);
        // Drop shard 0's trailer, salvage it, and seed the merger with
        // the recovered cells one by one.
        let no_end: String = text0
            .lines()
            .take(text0.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        let salvage = decode_events_partial(&no_end, decode_payload).unwrap();
        let mut merger: StreamMerger<'_, String> = StreamMerger::new(&plan);
        for cell in salvage.stream.cells {
            merger
                .add_cell(cell.index, cell.fingerprint, cell.out, "salvage shard 0")
                .unwrap();
            assert!(merger.is_covered(cell.index));
        }
        for &index in &slices[1].indices {
            assert!(!merger.is_covered(index));
        }
        // Duplicate seeding is rejected like any stream duplicate.
        let dup_index = slices[0].indices[0];
        let err = merger
            .add_cell(
                dup_index,
                plan.cells()[dup_index].fingerprint(),
                "again".into(),
                "retry",
            )
            .unwrap_err();
        assert!(matches!(err, MergeError::Duplicate { .. }), "{err}");
        // A fingerprint that disagrees with the plan is rejected.
        let free = slices[1].indices[0];
        let err = merger
            .add_cell(free, !plan.cells()[free].fingerprint(), "x".into(), "bad")
            .unwrap_err();
        assert!(matches!(err, MergeError::Fingerprint { .. }), "{err}");
        // The rest arrives as a normal stream; the merge completes.
        let text1 = encode_stream(&plan, &slices[1]);
        merger
            .add_stream(decode_events(&text1, decode_payload).unwrap(), "s1.events")
            .unwrap();
        let merged = merger.finish().unwrap();
        assert_eq!(merged.len(), plan.len());
    }

    #[test]
    fn event_writer_flush_makes_cells_durable_mid_stream() {
        // A shared buffer standing in for a file: the "disk" only sees
        // what was flushed through the BufWriter.
        #[derive(Clone, Default)]
        struct Disk(std::rc::Rc<std::cell::RefCell<Vec<u8>>>);
        impl Write for Disk {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let plan = sample_plan();
        let disk = Disk::default();
        let buffered = io::BufWriter::with_capacity(64 * 1024, disk.clone());
        let mut w = EventWriter::new(buffered, plan.len(), 0, 1).unwrap();
        let spec = &plan.cells()[0];
        w.cell(0, spec, &["payload"]).unwrap();
        w.flush().unwrap();
        let on_disk = String::from_utf8(disk.0.borrow().clone()).unwrap();
        let salvage = decode_events_partial(&on_disk, |f| Ok(f.join("|"))).unwrap();
        assert_eq!(salvage.stream.cells.len(), 1, "flushed cell is durable");
        // Without the flush the second cell would still be buffered.
        w.cell(1, &plan.cells()[1], &["payload"]).unwrap();
        let on_disk = String::from_utf8(disk.0.borrow().clone()).unwrap();
        let salvage = decode_events_partial(&on_disk, |f| Ok(f.join("|"))).unwrap();
        assert_eq!(salvage.stream.cells.len(), 1, "unflushed cell is not");
    }

    #[test]
    fn plan_slices_round_trip() {
        let plan = sample_plan();
        for slice in plan.partition(2) {
            let text = encode_plan_slice(&plan, &slice);
            let decoded = decode_plan_slice(&text).unwrap();
            assert_eq!(decoded.plan_len, plan.len());
            assert_eq!(decoded.shard_index, slice.shard_index);
            assert_eq!(decoded.shard_count, slice.shard_count);
            let indices: Vec<usize> = decoded.cells.iter().map(|(i, _)| *i).collect();
            assert_eq!(indices, slice.indices);
            for (index, spec) in &decoded.cells {
                assert_eq!(spec.key(), plan.cells()[*index].key());
            }
            let sub = decoded.to_plan();
            assert_eq!(sub.len(), slice.indices.len());
        }
        // Version drift is rejected for plan slices too.
        let text = encode_plan_slice(&plan, &plan.partition(1)[0]);
        let bumped = text.replacen(
            &format!("vcb-plan\t{CODEC_VERSION}"),
            &format!("vcb-plan\t{}", CODEC_VERSION + 99),
            1,
        );
        assert_eq!(
            decode_plan_slice(&bumped).unwrap_err(),
            CodecError::Version(CODEC_VERSION + 99)
        );
    }

    #[test]
    fn cell_costs_rank_sweeps_and_sizes_sensibly() {
        let small = spec("bfs", "4k", 4096, Api::Vulkan, "A");
        let large = spec("nn", "8M", 8 << 20, Api::Vulkan, "A");
        let sweep = spec("stride", "sweep", 0, Api::Vulkan, "A");
        assert!(cell_cost(&large) > cell_cost(&small));
        assert!(cell_cost(&sweep) > cell_cost(&small));
        // Cost scales with the run's iteration-scale factor.
        let mut scaled = large.clone();
        scaled.opts.scale = 0.01;
        assert!(cell_cost(&scaled) < cell_cost(&large));
        assert!(cell_cost(&scaled) >= 1);
    }
}
