//! The supervised local multi-process sweep runner behind
//! `vcb all --jobs N`.
//!
//! The parent partitions the `vcb all` plan into cost-balanced slices
//! ([`RunPlan::partition_by_cost`]), preferring *measured* per-cell
//! execution times from the session's result store over the static
//! [`cell_cost`] estimate, then ships each slice to a child `vcb all
//! --slice` process as an encoded [`PlanSlice`](vcb_core::shard::PlanSlice)
//! file — children never re-derive the partition, so the parent's
//! measured-cost balance can't diverge from what actually runs. Each
//! child writes the same event stream a `--shards` run produces,
//! flushed after every completed cell; the parent folds every stream
//! into a [`StreamMerger`] *the moment its child exits*, so decoding
//! finished shards overlaps with the straggler's execution and a
//! successful run ends with plan-ordered results identical to a
//! single-process execution.
//!
//! # Supervision
//!
//! A shard dying does not abort the sweep. When a child crashes, stalls
//! past `--shard-timeout`, or produces a stream the strict decoder
//! rejects, the supervisor:
//!
//! 1. **salvages** every intact cell record from its (possibly
//!    truncated) event stream via [`decode_events_partial`] and seeds
//!    them into the merger — completed work is never re-executed;
//! 2. **requeues** the still-uncovered cells as a fresh slice. A
//!    salvage that recovered new cells resets the slice's strike count
//!    (the shard was making progress); a zero-progress death is a
//!    strike, and respawns back off exponentially (250 ms doubling,
//!    capped at 4 s);
//! 3. after `--retries` zero-progress strikes, **bisects** the slice to
//!    isolate the poison cell, and once a single cell remains, records
//!    a synthesized failure result for it (a *poison cell*) instead of
//!    retrying forever — the sweep always completes, and the report
//!    renders the cell as failed.
//!
//! Children run in their own process group; killing a shard (watchdog,
//! fatal supervisor error, or the parent catching SIGINT/SIGTERM) kills
//! the whole group so no orphaned grandchildren keep burning cores.
//!
//! # Deterministic fault injection
//!
//! Setting `VCB_FAULT_INJECT=TARGET:ACTION[:always]` (TARGET `all` or
//! `shardN`; ACTION per [`FaultAction::parse`]) makes the parent pass
//! the hidden `--fault-inject` flag to matching children — by default
//! only on a slice's first attempt, so recovery is observable;
//! `:always` keeps injecting so bisection and poison isolation can be
//! exercised. Unset, no child sees the flag and nothing here costs
//! anything.

use std::fs;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use vcb_core::plan::{CellSpec, RunPlan};
use vcb_core::run::RunFailure;
use vcb_core::shard::{
    cell_cost, decode_events, decode_events_partial, encode_plan_slice, ShardSlice, StreamMerger,
};
use vcb_workloads::micro::stride;

use crate::experiments::{CellOut, Session, SWEEP_LABEL};
use crate::fault::FaultAction;
use crate::stream::decode_cell_out;

/// Retry/timeout policy for the supervised runner, from `--retries` and
/// `--shard-timeout`.
#[derive(Debug, Clone)]
pub struct Supervision {
    /// Zero-progress deaths tolerated per slice before it is bisected
    /// (and, at one cell, poisoned).
    pub retries: usize,
    /// Kill a shard whose event stream hasn't grown for this long.
    /// `None` disables the watchdog.
    pub shard_timeout: Option<Duration>,
}

impl Default for Supervision {
    fn default() -> Supervision {
        Supervision {
            retries: 2,
            shard_timeout: None,
        }
    }
}

/// What supervision had to do during a run — all zeros/empty on a
/// fault-free sweep.
#[derive(Debug, Clone, Default)]
pub struct JobsReport {
    /// Plan indices whose cells exhausted every retry and were recorded
    /// as synthesized failure results. Non-empty means the rendered
    /// report contains failed cells and the process should exit
    /// nonzero.
    pub poisoned: Vec<usize>,
    /// Slices (re)spawned beyond the initial partition: retries plus
    /// bisection halves.
    pub respawns: usize,
    /// Cells recovered from dead shards' partial event streams.
    pub salvaged: usize,
}

/// Distinguishes scratch directories of multiple `run_jobs` calls in
/// one process (integration tests run several).
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// A parsed `VCB_FAULT_INJECT` spec: which shard gets which fault.
#[derive(Debug, Clone)]
struct FaultPlan {
    /// Display index of the targeted shard; `None` targets every shard.
    shard: Option<usize>,
    /// The validated `--fault-inject` flag value to forward.
    action: String,
    /// Inject on every attempt, not just a slice's first.
    always: bool,
}

/// Parses `TARGET:ACTION[:always]` (TARGET `all` or `shardN`). The
/// action is validated here so a typo fails the run instead of
/// silently injecting nothing.
fn parse_fault_spec(spec: &str) -> Result<FaultPlan, String> {
    let bad = |why: &str| format!("VCB_FAULT_INJECT `{spec}`: {why}");
    let mut parts = spec.split(':');
    let target = parts.next().unwrap_or("");
    let action = parts
        .next()
        .ok_or_else(|| bad("expected TARGET:ACTION[:always]"))?;
    let always = match parts.next() {
        None => false,
        Some("always") => true,
        Some(other) => return Err(bad(&format!("unknown modifier `{other}`"))),
    };
    if parts.next().is_some() {
        return Err(bad("too many `:`-separated fields"));
    }
    FaultAction::parse(action).map_err(|e| bad(&e))?;
    let shard = if target == "all" {
        None
    } else if let Some(i) = target.strip_prefix("shard") {
        Some(
            i.parse()
                .map_err(|e| bad(&format!("bad shard index `{i}`: {e}")))?,
        )
    } else {
        return Err(bad("target must be `all` or `shardN`"));
    };
    Ok(FaultPlan {
        shard,
        action: action.to_owned(),
        always,
    })
}

/// A slice waiting to be (re)spawned.
struct Work {
    /// Stable display index: initial slices use their partition index,
    /// bisection halves get fresh indices past `jobs`.
    display: usize,
    /// Plan indices this slice still has to produce.
    indices: Vec<usize>,
    /// Consecutive zero-progress deaths of this slice.
    strikes: usize,
    /// Whether some attempt of this slice already had a fault injected
    /// (a non-`always` fault injects once per slice).
    injected: bool,
    /// Backoff gate: don't spawn before this instant.
    not_before: Instant,
}

/// One spawned shard: the child process and where its outputs land.
///
/// Dropping an unreaped `Job` kills the child's whole process group —
/// every supervisor exit path (including `?`-style early returns)
/// leaves no orphans behind.
struct Job {
    child: Child,
    display: usize,
    indices: Vec<usize>,
    strikes: usize,
    injected: bool,
    events_path: PathBuf,
    /// Thread relaying the child's stderr to ours, each line prefixed
    /// with the shard index so interleaved progress is attributable.
    relay: Option<std::thread::JoinHandle<()>>,
    /// Watchdog state: last observed events-file size and when it last
    /// grew. Any growth counts as progress — children flush after every
    /// completed cell.
    last_len: u64,
    last_progress: Instant,
    /// Set once the child has been waited on; suppresses the kill in
    /// `Drop`.
    reaped: bool,
}

impl Drop for Job {
    fn drop(&mut self) {
        if !self.reaped {
            pgroup::kill_group(&mut self.child);
            let _ = self.child.wait();
        }
        // The pipe closes once the child is reaped, so the relay thread
        // drains what was written and ends.
        if let Some(relay) = self.relay.take() {
            let _ = relay.join();
        }
        pgroup::unregister(self.child.id());
    }
}

/// Relays `pipe` to our stderr line by line, prefixing `[shard N]`.
/// One `eprintln!` per line keeps lines whole under interleaving (the
/// macro locks stderr per call).
fn relay_stderr(index: usize, pipe: std::process::ChildStderr) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for line in std::io::BufReader::new(pipe).lines() {
            let Ok(line) = line else { break };
            eprintln!("[shard {index}] {line}");
        }
    })
}

/// Per-cell partition costs for `plan`: measured store durations where
/// available, the static [`cell_cost`] estimate otherwise (rescaled so
/// both magnitudes are comparable — see [`vcb_core::store::Store::plan_costs`]).
pub fn plan_costs(session: &Session, plan: &RunPlan) -> Vec<u64> {
    match session.store() {
        Some(store) => store.plan_costs(plan),
        None => plan.cells().iter().map(cell_cost).collect(),
    }
}

/// Executes the full `vcb all` plan across `jobs` local child
/// processes and returns it with plan-ordered results, exactly as a
/// single-process execution would produce them (up to poison cells,
/// reported in the [`JobsReport`]). The session is only consulted for
/// the plan, thread budget and store; all simulation happens in the
/// children.
pub fn run_jobs(
    session: &Session,
    jobs: usize,
    sup: &Supervision,
) -> Result<(RunPlan, Vec<CellOut>, JobsReport), String> {
    let jobs = jobs.max(1);
    let fault = match std::env::var("VCB_FAULT_INJECT") {
        Ok(spec) => Some(parse_fault_spec(&spec)?),
        Err(_) => None,
    };
    let plan = session.plan_all();
    let costs = plan_costs(session, &plan);
    let queue: Vec<Work> = plan
        .partition_by_cost(jobs, &costs)
        .into_iter()
        .filter(|s| !s.indices.is_empty())
        .map(|s| Work {
            display: s.shard_index,
            indices: s.indices,
            strikes: 0,
            injected: false,
            not_before: Instant::now(),
        })
        .collect();
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate the vcb binary: {e}"))?;
    let scratch = std::env::temp_dir().join(format!(
        "vcb_jobs_{}_{}",
        std::process::id(),
        RUN_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&scratch).map_err(|e| format!("cannot create {scratch:?}: {e}"))?;
    pgroup::install_handlers();
    let ctx = Ctx {
        plan: &plan,
        exe: &exe,
        scratch: &scratch,
        jobs,
        // Each child gets an equal share of the parent's matrix-thread
        // budget; the children balance it against sim_threads
        // themselves.
        threads: (session.opts().threads / jobs).max(1),
        store_dir: session.store().map(|s| s.dir().to_owned()),
        sup,
        fault,
    };
    let result = supervise(&ctx, queue);
    let _ = fs::remove_dir_all(&scratch);
    result.map(|(outs, report)| (plan, outs, report))
}

/// Immutable per-run configuration shared by the supervisor's helpers.
struct Ctx<'a> {
    plan: &'a RunPlan,
    exe: &'a Path,
    scratch: &'a Path,
    jobs: usize,
    threads: usize,
    store_dir: Option<PathBuf>,
    sup: &'a Supervision,
    fault: Option<FaultPlan>,
}

/// Mutable supervisor state threaded through the helpers.
struct State {
    queue: Vec<Work>,
    /// Next display index for a bisection half.
    next_display: usize,
    /// Per-attempt file-name counter, so a respawn never collides with
    /// the files of a killed-but-lingering predecessor.
    attempt_seq: usize,
    report: JobsReport,
    merged: usize,
}

/// Exponential backoff before respawning a slice with `strikes`
/// zero-progress deaths: nothing for the first spawn, then 250 ms
/// doubling per strike, capped at 4 s.
fn backoff(strikes: usize) -> Duration {
    if strikes == 0 {
        Duration::ZERO
    } else {
        Duration::from_millis(250) * (1u32 << (strikes - 1).min(4))
    }
}

/// The supervisor loop: spawn ready work while slots are free, poll the
/// running shards, fold exited shards' streams, and route every failure
/// through salvage + retry. Returns once the queue is drained and every
/// plan cell is covered.
fn supervise(ctx: &Ctx<'_>, queue: Vec<Work>) -> Result<(Vec<CellOut>, JobsReport), String> {
    let mut state = State {
        queue,
        next_display: ctx.jobs,
        attempt_seq: 0,
        report: JobsReport::default(),
        merged: 0,
    };
    let mut merger = StreamMerger::new(ctx.plan);
    let mut running: Vec<Job> = Vec::new();
    while !running.is_empty() || !state.queue.is_empty() {
        // Spawn whatever is ready while worker slots are free. Items
        // still backing off stay queued; `Job`'s `Drop` cleans up the
        // running shards if a spawn fails fatally.
        let now = Instant::now();
        let mut i = 0;
        while running.len() < ctx.jobs && i < state.queue.len() {
            if state.queue[i].not_before <= now {
                let work = state.queue.remove(i);
                running.push(spawn(ctx, &mut state, work)?);
            } else {
                i += 1;
            }
        }
        let mut progressed = false;
        let mut slot = 0;
        while slot < running.len() {
            let status = running[slot]
                .child
                .try_wait()
                .map_err(|e| format!("cannot poll a shard: {e}"))?;
            let Some(status) = status else {
                if watchdog_fires(ctx, &mut running[slot]) {
                    progressed = true;
                    let mut job = running.swap_remove(slot);
                    pgroup::kill_group(&mut job.child);
                    let _ = job.child.wait();
                    job.reaped = true;
                    eprintln!(
                        "vcb: jobs: shard {}: no stream progress for {:.1}s, killed",
                        job.display,
                        ctx.sup.shard_timeout.unwrap_or_default().as_secs_f64()
                    );
                    handle_failure(ctx, &mut state, &mut merger, job, "stalled");
                } else {
                    slot += 1;
                }
                continue;
            };
            progressed = true;
            let mut job = running.swap_remove(slot);
            job.reaped = true;
            if let Some(relay) = job.relay.take() {
                let _ = relay.join();
            }
            if !status.success() {
                eprintln!("vcb: jobs: shard {} died ({status})", job.display);
                handle_failure(ctx, &mut state, &mut merger, job, "crashed");
                continue;
            }
            match fold_stream(&mut merger, &job) {
                Ok(cells) => {
                    state.merged += cells;
                    eprintln!(
                        "vcb: jobs: shard {} done, {cells} cell(s) merged ({}/{} total)",
                        job.display,
                        state.merged,
                        ctx.plan.len()
                    );
                }
                Err(e) => {
                    eprintln!("vcb: jobs: shard {}: {e}", job.display);
                    handle_failure(
                        ctx,
                        &mut state,
                        &mut merger,
                        job,
                        "produced a broken stream",
                    );
                }
            }
        }
        if !progressed && !running.is_empty() {
            std::thread::sleep(Duration::from_millis(15));
        } else if running.is_empty() && !state.queue.is_empty() {
            // Everything alive is backing off; sleep until the nearest
            // gate instead of spinning.
            let now = Instant::now();
            let wait = state
                .queue
                .iter()
                .map(|w| w.not_before.saturating_duration_since(now))
                .min()
                .unwrap_or(Duration::from_millis(15));
            std::thread::sleep(wait.min(Duration::from_millis(250)));
        }
    }
    let outs = merger.finish().map_err(|e| e.to_string())?;
    let r = &state.report;
    if r.salvaged > 0 || r.respawns > 0 || !r.poisoned.is_empty() {
        eprintln!(
            "vcb: jobs: recovered from failures: {} cell(s) salvaged, {} respawn(s), {} poisoned cell(s)",
            r.salvaged,
            r.respawns,
            r.poisoned.len()
        );
    }
    Ok((outs, state.report))
}

/// Watchdog: `true` when the shard's event stream hasn't grown for
/// longer than `--shard-timeout`. File growth is the progress signal —
/// children flush their stream after every completed cell.
fn watchdog_fires(ctx: &Ctx<'_>, job: &mut Job) -> bool {
    let Some(timeout) = ctx.sup.shard_timeout else {
        return false;
    };
    let len = fs::metadata(&job.events_path).map(|m| m.len()).unwrap_or(0);
    if len > job.last_len {
        job.last_len = len;
        job.last_progress = Instant::now();
        return false;
    }
    // Until the stream's first byte appears the clock also covers child
    // startup (spawn, registry build, plan decode), so give it double.
    let effective = if job.last_len == 0 {
        timeout * 2
    } else {
        timeout
    };
    job.last_progress.elapsed() > effective
}

/// Spawns one slice attempt: writes the encoded slice file, applies
/// fault injection if the `VCB_FAULT_INJECT` plan targets this shard,
/// and starts the child in its own process group.
fn spawn(ctx: &Ctx<'_>, state: &mut State, work: Work) -> Result<Job, String> {
    let seq = state.attempt_seq;
    state.attempt_seq += 1;
    let slice_path = ctx
        .scratch
        .join(format!("slice_{}_a{seq}.plan", work.display));
    let events_path = ctx
        .scratch
        .join(format!("shard_{}_a{seq}.events", work.display));
    let slice = ShardSlice {
        shard_index: work.display,
        shard_count: ctx.jobs,
        indices: work.indices.clone(),
    };
    fs::write(&slice_path, encode_plan_slice(ctx.plan, &slice))
        .map_err(|e| format!("cannot write {slice_path:?}: {e}"))?;
    let inject = ctx
        .fault
        .as_ref()
        .filter(|f| f.shard.is_none_or(|s| s == work.display) && (f.always || !work.injected));
    let mut cmd = Command::new(ctx.exe);
    cmd.arg("all")
        .arg("--slice")
        .arg(&slice_path)
        .arg("--events")
        .arg(&events_path)
        .arg("--threads")
        .arg(ctx.threads.to_string());
    if let Some(dir) = &ctx.store_dir {
        cmd.arg("--store").arg(dir);
    }
    if let Some(f) = inject {
        cmd.arg("--fault-inject").arg(&f.action);
    }
    cmd.stderr(Stdio::piped());
    pgroup::configure(&mut cmd);
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("cannot spawn {:?}: {e}", ctx.exe))?;
    pgroup::register(child.id());
    let relay = child
        .stderr
        .take()
        .map(|pipe| relay_stderr(work.display, pipe));
    eprintln!(
        "vcb: jobs: shard {}: {} plan cell(s), pid {}{}{}",
        work.display,
        work.indices.len(),
        child.id(),
        if work.strikes > 0 { " (retry)" } else { "" },
        if inject.is_some() {
            " [fault injected]"
        } else {
            ""
        }
    );
    Ok(Job {
        child,
        display: work.display,
        indices: work.indices,
        strikes: work.strikes,
        injected: work.injected || inject.is_some(),
        events_path,
        relay,
        last_len: 0,
        last_progress: Instant::now(),
        reaped: false,
    })
}

/// Strictly decodes a cleanly-exited shard's stream and folds it into
/// the merger. Returns the number of cells merged.
fn fold_stream(merger: &mut StreamMerger<'_, CellOut>, job: &Job) -> Result<usize, String> {
    let path = job.events_path.display().to_string();
    let text =
        fs::read_to_string(&job.events_path).map_err(|e| format!("failed to read {path}: {e}"))?;
    let stream = decode_events(&text, decode_cell_out).map_err(|e| format!("{path}: {e}"))?;
    let cells = stream.cells.len();
    merger
        .add_stream(stream, &path)
        .map_err(|e| e.to_string())?;
    Ok(cells)
}

/// The recovery path for a dead shard (crash, watchdog kill, or a
/// stream the strict decoder rejected): salvage the intact prefix of
/// its event stream, then requeue / bisect / poison the uncovered
/// remainder. Never fails — a slice that cannot make progress ends as
/// poison cells, not as an aborted sweep.
fn handle_failure(
    ctx: &Ctx<'_>,
    state: &mut State,
    merger: &mut StreamMerger<'_, CellOut>,
    job: Job,
    why: &str,
) {
    let fresh = salvage_into(merger, &job);
    if fresh > 0 {
        state.report.salvaged += fresh;
        state.merged += fresh;
        eprintln!(
            "vcb: jobs: shard {}: salvaged {fresh} completed cell(s) ({}/{} total)",
            job.display,
            state.merged,
            ctx.plan.len()
        );
    }
    let remaining: Vec<usize> = job
        .indices
        .iter()
        .copied()
        .filter(|&i| !merger.is_covered(i))
        .collect();
    if remaining.is_empty() {
        eprintln!(
            "vcb: jobs: shard {}: every cell salvaged; nothing to retry",
            job.display
        );
        return;
    }
    // Salvaging new cells proves the shard was making progress, so the
    // slice starts over with a clean record; a zero-progress death is a
    // strike against it.
    let strikes = if fresh > 0 { 0 } else { job.strikes + 1 };
    if strikes <= ctx.sup.retries {
        let delay = backoff(strikes);
        state.report.respawns += 1;
        eprintln!(
            "vcb: jobs: shard {}: retrying {} cell(s) (strike {strikes}/{}, backoff {} ms)",
            job.display,
            remaining.len(),
            ctx.sup.retries,
            delay.as_millis()
        );
        state.queue.push(Work {
            display: job.display,
            indices: remaining,
            strikes,
            injected: job.injected,
            not_before: Instant::now() + delay,
        });
        return;
    }
    if remaining.len() > 1 {
        // Out of retries with multiple suspects: bisect to isolate the
        // poison cell. Halves start with clean strike counts.
        let mid = remaining.len() / 2;
        eprintln!(
            "vcb: jobs: shard {}: exhausted retries; bisecting {} cell(s) into shards {} and {}",
            job.display,
            remaining.len(),
            state.next_display,
            state.next_display + 1
        );
        for half in [&remaining[..mid], &remaining[mid..]] {
            state.report.respawns += 1;
            state.queue.push(Work {
                display: state.next_display,
                indices: half.to_vec(),
                strikes: 0,
                injected: job.injected,
                not_before: Instant::now(),
            });
            state.next_display += 1;
        }
        return;
    }
    // A single repeatedly-failing cell: record a synthesized failure
    // result so the sweep completes and the report shows the cell as
    // failed.
    let index = remaining[0];
    let spec = &ctx.plan.cells()[index];
    eprintln!(
        "vcb: jobs: cell {index} ({spec}): shard {why} on every attempt; recording it as a failed cell"
    );
    if let Err(e) = merger.add_cell(index, spec.fingerprint(), poison_out(spec, why), "poison") {
        eprintln!("vcb: jobs: cannot record poison cell {index}: {e}");
    } else {
        state.merged += 1;
    }
    state.report.poisoned.push(index);
}

/// Salvages every intact cell of a dead shard's stream into the merger,
/// skipping cells already covered (e.g. by an earlier attempt's
/// salvage). Returns how many fresh cells were recovered; salvage
/// problems are logged, never fatal.
fn salvage_into(merger: &mut StreamMerger<'_, CellOut>, job: &Job) -> usize {
    let text = match fs::read_to_string(&job.events_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "vcb: jobs: shard {}: no salvageable stream ({e})",
                job.display
            );
            return 0;
        }
    };
    let salvage = match decode_events_partial(&text, decode_cell_out) {
        Ok(salvage) => salvage,
        Err(e) => {
            eprintln!(
                "vcb: jobs: shard {}: stream unsalvageable ({e})",
                job.display
            );
            return 0;
        }
    };
    if salvage.lost_lines > 0 {
        eprintln!(
            "vcb: jobs: shard {}: dropped {} torn line(s) from its stream",
            job.display, salvage.lost_lines
        );
    }
    let source = format!("salvage of shard {}", job.display);
    let mut fresh = 0;
    for cell in salvage.stream.cells {
        if merger.is_covered(cell.index) {
            continue;
        }
        match merger.add_cell(cell.index, cell.fingerprint, cell.out, &source) {
            Ok(()) => fresh += 1,
            Err(e) => {
                eprintln!("vcb: jobs: shard {}: salvage rejected: {e}", job.display);
                break;
            }
        }
    }
    fresh
}

/// The synthesized failure result recorded for a poison cell, typed to
/// match what the cell would have produced (stride sweeps are curve
/// cells, everything else a run cell).
fn poison_out(spec: &CellSpec, why: &str) -> CellOut {
    let failure = RunFailure::Error(format!(
        "shard {why} repeatedly while executing this cell; gave up after exhausting retries"
    ));
    if spec.workload == stride::NAME && spec.size.label == SWEEP_LABEL {
        CellOut::Curve(Err(failure))
    } else {
        CellOut::Run(Err(failure))
    }
}

/// Process-group management for the spawned shards, so killing a shard
/// takes its grandchildren with it and an interrupted parent leaves no
/// orphans. Uses raw `kill(2)`/`signal(2)` declarations (the workspace
/// has no libc dependency); everything degrades to plain `Child::kill`
/// off Unix.
#[cfg(unix)]
mod pgroup {
    use std::process::{Child, Command};
    use std::sync::atomic::{AtomicI32, Ordering};
    use std::sync::Once;

    const SIGINT: i32 = 2;
    const SIGKILL: i32 = 9;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
        fn signal(signum: i32, handler: usize) -> usize;
        fn raise(signum: i32) -> i32;
    }

    /// Live child process-group leaders, readable from a signal
    /// handler. A fixed atomic array keeps the handler async-signal-
    /// safe (no locks, no allocation); 64 slots comfortably exceeds any
    /// realistic `--jobs` width.
    static GROUPS: [AtomicI32; 64] = [const { AtomicI32::new(0) }; 64];
    static HANDLERS: Once = Once::new();

    /// Makes the child the leader of a fresh process group.
    pub fn configure(cmd: &mut Command) {
        use std::os::unix::process::CommandExt;
        cmd.process_group(0);
    }

    /// Installs SIGINT/SIGTERM handlers that kill every registered
    /// child group before re-raising the signal with default
    /// disposition — Ctrl-C on the parent never strands shard
    /// grandchildren.
    pub fn install_handlers() {
        HANDLERS.call_once(|| unsafe {
            signal(SIGINT, handle as *const () as usize);
            signal(SIGTERM, handle as *const () as usize);
        });
    }

    /// Async-signal-safe: atomics and `kill(2)` only.
    extern "C" fn handle(sig: i32) {
        for slot in &GROUPS {
            let pid = slot.swap(0, Ordering::SeqCst);
            if pid > 0 {
                unsafe { kill(-pid, SIGKILL) };
            }
        }
        unsafe {
            signal(sig, SIG_DFL);
            raise(sig);
        }
    }

    /// Records a spawned group leader for the signal handler.
    pub fn register(pid: u32) {
        let pid = pid as i32;
        for slot in &GROUPS {
            if slot
                .compare_exchange(0, pid, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Forgets a reaped group leader (its pid may be reused).
    pub fn unregister(pid: u32) {
        let pid = pid as i32;
        for slot in &GROUPS {
            let _ = slot.compare_exchange(pid, 0, Ordering::SeqCst, Ordering::SeqCst);
        }
    }

    /// Kills the child's entire process group (grandchildren included),
    /// falling back to a plain kill of the leader.
    pub fn kill_group(child: &mut Child) {
        let pid = child.id() as i32;
        if pid > 0 {
            unsafe { kill(-pid, SIGKILL) };
        }
        let _ = child.kill();
    }
}

#[cfg(not(unix))]
mod pgroup {
    use std::process::{Child, Command};

    pub fn configure(_cmd: &mut Command) {}
    pub fn install_handlers() {}
    pub fn register(_pid: u32) {}
    pub fn unregister(_pid: u32) {}
    pub fn kill_group(child: &mut Child) {
        let _ = child.kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_spec_parses_targets_and_modifiers() {
        let p = parse_fault_spec("all:crash-after=2").unwrap();
        assert_eq!(p.shard, None);
        assert_eq!(p.action, "crash-after=2");
        assert!(!p.always);

        let p = parse_fault_spec("shard1:truncate-events:always").unwrap();
        assert_eq!(p.shard, Some(1));
        assert!(p.always);

        assert!(parse_fault_spec("shard1").is_err());
        assert!(parse_fault_spec("worker1:crash-after=1").is_err());
        assert!(parse_fault_spec("all:explode").is_err());
        assert!(parse_fault_spec("all:crash-after=1:sometimes").is_err());
        assert!(parse_fault_spec("all:crash-after=1:always:x").is_err());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff(0), Duration::ZERO);
        assert_eq!(backoff(1), Duration::from_millis(250));
        assert_eq!(backoff(2), Duration::from_millis(500));
        assert_eq!(backoff(3), Duration::from_millis(1000));
        assert_eq!(backoff(5), Duration::from_millis(4000));
        assert_eq!(backoff(50), Duration::from_millis(4000));
    }
}
