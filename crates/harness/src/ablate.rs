//! Ablations for the paper's §VI-B recommendations and the §V-A2 bfs
//! analysis: each toggles exactly one design choice and reports the
//! simulated times with it on and off.

use std::sync::Arc;

use vcb_backend::{vk_env, vk_failure, vk_kernel};
use vcb_core::run::{RunFailure, SizeSpec};
use vcb_core::workload::{RunOpts, Workload};
use vcb_sim::profile::{DeviceProfile, DriverQuirk, QueueCaps};
use vcb_sim::time::SimDuration;
use vcb_sim::{Api, KernelRegistry};
use vcb_vulkan::util as vku;
use vcb_vulkan::{Access, MemoryBarrier, PipelineStage, SubmitInfo};
use vcb_workloads::rodinia::{bfs, hotspot};

/// Outcome of one ablation: the recommended configuration vs the naive
/// one.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// What was toggled.
    pub name: &'static str,
    /// Time with the paper's recommendation applied.
    pub recommended: SimDuration,
    /// Time with the naive alternative.
    pub naive: SimDuration,
}

impl Ablation {
    /// Improvement factor (naive / recommended).
    pub fn factor(&self) -> f64 {
        self.naive.ratio(self.recommended)
    }
}

/// §VI-B #1: "For iterative algorithms, use one single command buffer and
/// synchronize using memory barriers." Runs `iterations` dependent
/// hotspot steps recorded once vs submitted one-by-one.
///
/// # Errors
///
/// Propagates Vulkan failures as [`RunFailure`].
pub fn single_command_buffer(
    registry: &Arc<KernelRegistry>,
    profile: &DeviceProfile,
    iterations: u32,
) -> Result<Ablation, RunFailure> {
    let n = 256usize;
    let run_with = |single: bool| -> Result<SimDuration, RunFailure> {
        let env = vk_env(profile, registry)?;
        let device = &env.device;
        let (temp, power) = hotspot::generate(n, 7);
        let power_buf =
            vku::upload_storage_buffer(device, &env.queue, &power).map_err(vk_failure)?;
        let ping = vku::upload_storage_buffer(device, &env.queue, &temp).map_err(vk_failure)?;
        let pong = vku::create_storage_buffer(device, (n * n * 4) as u64).map_err(vk_failure)?;
        let (layout, _pool, set) =
            vku::storage_descriptor_set(device, &[&power_buf.buffer, &ping.buffer, &pong.buffer])
                .map_err(vk_failure)?;
        let kernel = vk_kernel(&env, registry, hotspot::KERNEL, &layout, 4)?;
        let cmd_pool = device
            .create_command_pool(env.queue.family_index())
            .map_err(vk_failure)?;
        let barrier = MemoryBarrier {
            src_access: Access::SHADER_WRITE,
            dst_access: Access::SHADER_READ,
        };
        let groups = (n as u32).div_ceil(hotspot::TILE);
        let start = device.now();
        if single {
            let cmd = cmd_pool.allocate_command_buffer().map_err(vk_failure)?;
            cmd.begin().map_err(vk_failure)?;
            cmd.bind_pipeline(&kernel.pipeline).map_err(vk_failure)?;
            cmd.bind_descriptor_sets(&kernel.layout, &[&set])
                .map_err(vk_failure)?;
            cmd.push_constants(&kernel.layout, 0, &(n as u32).to_le_bytes())
                .map_err(vk_failure)?;
            for _ in 0..iterations {
                cmd.dispatch(groups, groups, 1).map_err(vk_failure)?;
                cmd.pipeline_barrier(
                    PipelineStage::COMPUTE_SHADER,
                    PipelineStage::COMPUTE_SHADER,
                    &barrier,
                )
                .map_err(vk_failure)?;
            }
            cmd.end().map_err(vk_failure)?;
            env.queue
                .submit(
                    &[SubmitInfo {
                        command_buffers: &[&cmd],
                    }],
                    None,
                )
                .map_err(vk_failure)?;
            env.queue.wait_idle();
        } else {
            // Naive: one command buffer + submit + wait per iteration.
            for _ in 0..iterations {
                let cmd = cmd_pool.allocate_command_buffer().map_err(vk_failure)?;
                cmd.begin().map_err(vk_failure)?;
                cmd.bind_pipeline(&kernel.pipeline).map_err(vk_failure)?;
                cmd.bind_descriptor_sets(&kernel.layout, &[&set])
                    .map_err(vk_failure)?;
                cmd.push_constants(&kernel.layout, 0, &(n as u32).to_le_bytes())
                    .map_err(vk_failure)?;
                cmd.dispatch(groups, groups, 1).map_err(vk_failure)?;
                cmd.end().map_err(vk_failure)?;
                env.queue
                    .submit(
                        &[SubmitInfo {
                            command_buffers: &[&cmd],
                        }],
                        None,
                    )
                    .map_err(vk_failure)?;
                env.queue.wait_idle();
            }
        }
        Ok(device.now().duration_since(start))
    };
    Ok(Ablation {
        name: "single command buffer + barriers vs submit per iteration",
        recommended: run_with(true)?,
        naive: run_with(false)?,
    })
}

/// §VI-B #2: "use PushConstants rather than binding a whole parameters
/// buffer." Compares a healthy push-constant driver against the same
/// device with the [`DriverQuirk::PushConstantsAsBuffer`] degradation.
///
/// # Errors
///
/// Propagates run failures.
pub fn push_constants_vs_buffer(
    registry: &Arc<KernelRegistry>,
    profile: &DeviceProfile,
    opts: &RunOpts,
) -> Result<Ablation, RunFailure> {
    use vcb_workloads::micro::stride;
    let healthy = {
        let mut p = profile.clone();
        for d in &mut p.drivers {
            d.quirks
                .retain(|q| !matches!(q, DriverQuirk::PushConstantsAsBuffer));
        }
        p
    };
    let degraded = {
        let mut p = profile.clone();
        for d in &mut p.drivers {
            if d.api == Api::Vulkan && !d.push_constants_degraded() {
                d.quirks.push(DriverQuirk::PushConstantsAsBuffer);
            }
        }
        p
    };
    let time_of = |p: &DeviceProfile| -> Result<SimDuration, RunFailure> {
        let curve = stride::bandwidth_curve(Api::Vulkan, p, registry, opts)?;
        Ok(curve
            .first()
            .map(|s| s.time_per_rep)
            .unwrap_or(SimDuration::ZERO))
    };
    Ok(Ablation {
        name: "push constants vs parameter-buffer rebinds (unit-stride micro)",
        recommended: time_of(&healthy)?,
        naive: time_of(&degraded)?,
    })
}

/// §VI-B #4: "For large memory transfers use transfer queues." Copies a
/// large buffer host→device through the compute queue vs a dedicated
/// transfer queue.
///
/// # Errors
///
/// Propagates Vulkan failures; [`RunFailure::Unsupported`] when the
/// device has no dedicated transfer family.
pub fn transfer_queue_copies(
    registry: &Arc<KernelRegistry>,
    profile: &DeviceProfile,
    bytes: u64,
) -> Result<Ablation, RunFailure> {
    let transfer_family = profile
        .queue_families
        .iter()
        .position(|f| f.caps == QueueCaps::TRANSFER)
        .ok_or(RunFailure::Unsupported)?;
    let env = vk_env(profile, registry)?;
    let device = &env.device;
    // A second logical device with both queues would be more faithful;
    // the simulated device exposes every family, so grab the transfer
    // queue directly.
    let instance_env = vk_env(profile, registry)?;
    let _ = &instance_env;
    let data = vec![0u8; bytes as usize];
    let staging = vku::create_buffer_bound(
        device,
        bytes,
        vcb_vulkan::BufferUsage::TRANSFER_SRC,
        vcb_vulkan::MemoryProperty::HOST_VISIBLE,
    )
    .map_err(vk_failure)?;
    staging.buffer.write_mapped(&data).map_err(vk_failure)?;
    let dst = vku::create_storage_buffer(device, bytes).map_err(vk_failure)?;

    let copy_via = |family: usize| -> Result<SimDuration, RunFailure> {
        let queue = device.get_queue(family, 0).map_err(vk_failure)?;
        let pool = device.create_command_pool(family).map_err(vk_failure)?;
        let cmd = pool.allocate_command_buffer().map_err(vk_failure)?;
        cmd.begin().map_err(vk_failure)?;
        cmd.copy_buffer(&staging.buffer, &dst.buffer, bytes)
            .map_err(vk_failure)?;
        cmd.end().map_err(vk_failure)?;
        let start = device.now();
        queue
            .submit(
                &[SubmitInfo {
                    command_buffers: &[&cmd],
                }],
                None,
            )
            .map_err(vk_failure)?;
        queue.wait_idle();
        Ok(device.now().duration_since(start))
    };

    let compute_family = env.queue.family_index();
    Ok(Ablation {
        name: "dedicated transfer queue vs compute-queue copy",
        recommended: copy_via(transfer_family)?,
        naive: copy_via(compute_family)?,
    })
}

/// §VI-B #5: "make use of multiple compute queues whenever possible."
/// Submits two independent dispatch chains to one queue vs two queues of
/// the same family.
///
/// # Errors
///
/// Propagates Vulkan failures; [`RunFailure::Unsupported`] when the
/// compute family has a single queue.
pub fn multiple_compute_queues(
    registry: &Arc<KernelRegistry>,
    profile: &DeviceProfile,
    dispatches: u32,
) -> Result<Ablation, RunFailure> {
    use vcb_workloads::micro::vectoradd;
    let family = profile
        .find_queue_family(QueueCaps::COMPUTE)
        .ok_or(RunFailure::Unsupported)?;
    if profile.queue_families[family].count < 2 {
        return Err(RunFailure::Unsupported);
    }

    let run_with = |two_queues: bool| -> Result<SimDuration, RunFailure> {
        let instance = vcb_vulkan::Instance::new(&vcb_vulkan::InstanceCreateInfo {
            application_name: "ablate-queues".into(),
            enabled_layers: vec![],
            devices: vec![profile.clone()],
            registry: Arc::clone(registry),
        })
        .map_err(vk_failure)?;
        let physical = instance.enumerate_physical_devices().remove(0);
        let device = vcb_vulkan::Device::new(
            &physical,
            &vcb_vulkan::DeviceCreateInfo {
                queue_create_infos: vec![vcb_vulkan::DeviceQueueCreateInfo {
                    queue_family_index: family,
                    queue_count: 2,
                }],
            },
        )
        .map_err(vk_failure)?;
        let q0 = device.get_queue(family, 0).map_err(vk_failure)?;
        let q1 = device
            .get_queue(family, if two_queues { 1 } else { 0 })
            .map_err(vk_failure)?;
        let env = vcb_backend::VkEnv {
            device: device.clone(),
            queue: q0.clone(),
        };

        let n = 64 * 1024usize;
        let make_chain = |seed: u64| -> Result<vcb_vulkan::CommandBuffer, RunFailure> {
            let (xv, yv) = vectoradd::generate(n, seed);
            let x = vku::upload_storage_buffer(&device, &q0, &xv).map_err(vk_failure)?;
            let y = vku::upload_storage_buffer(&device, &q0, &yv).map_err(vk_failure)?;
            let z = vku::create_storage_buffer(&device, (n * 4) as u64).map_err(vk_failure)?;
            let (layout, _pool, set) =
                vku::storage_descriptor_set(&device, &[&x.buffer, &y.buffer, &z.buffer])
                    .map_err(vk_failure)?;
            let kernel = vk_kernel(&env, registry, vectoradd::KERNEL, &layout, 4)?;
            let pool = device.create_command_pool(family).map_err(vk_failure)?;
            let cmd = pool.allocate_command_buffer().map_err(vk_failure)?;
            cmd.begin().map_err(vk_failure)?;
            cmd.bind_pipeline(&kernel.pipeline).map_err(vk_failure)?;
            cmd.bind_descriptor_sets(&kernel.layout, &[&set])
                .map_err(vk_failure)?;
            cmd.push_constants(&kernel.layout, 0, &(n as u32).to_le_bytes())
                .map_err(vk_failure)?;
            for _ in 0..dispatches {
                cmd.dispatch((n as u32).div_ceil(vectoradd::LOCAL_SIZE), 1, 1)
                    .map_err(vk_failure)?;
            }
            cmd.end().map_err(vk_failure)?;
            Ok(cmd)
        };
        let a = make_chain(1)?;
        let b = make_chain(2)?;
        let start = device.now();
        q0.submit(
            &[SubmitInfo {
                command_buffers: &[&a],
            }],
            None,
        )
        .map_err(vk_failure)?;
        q1.submit(
            &[SubmitInfo {
                command_buffers: &[&b],
            }],
            None,
        )
        .map_err(vk_failure)?;
        device.wait_idle();
        Ok(device.now().duration_since(start))
    };
    Ok(Ablation {
        name: "two compute queues vs one for independent work",
        recommended: run_with(true)?,
        naive: run_with(false)?,
    })
}

/// §V-A2's bfs root cause as an ablation: the same Vulkan run with the
/// driver compiler's local-memory promotion force-enabled (what a mature
/// compiler would produce) vs the immature default.
///
/// # Errors
///
/// Propagates run failures.
pub fn compiler_maturity(
    registry: &Arc<KernelRegistry>,
    profile: &DeviceProfile,
    opts: &RunOpts,
) -> Result<Ablation, RunFailure> {
    let mature = {
        let mut p = profile.clone();
        for d in &mut p.drivers {
            d.local_memory_promotion = true;
        }
        p
    };
    let w = bfs::Bfs::new(Arc::clone(registry));
    let size = SizeSpec::new("64K", 64 * 1024);
    let immature_run = w.run(Api::Vulkan, profile, &size, opts)?;
    let mature_run = w.run(Api::Vulkan, &mature, &size, opts)?;
    Ok(Ablation {
        name: "mature (promoting) vs immature Vulkan kernel compiler on bfs",
        recommended: mature_run.kernel_time,
        naive: immature_run.kernel_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        vcb_workloads::registry().unwrap()
    }

    #[test]
    fn single_command_buffer_wins() {
        let a = single_command_buffer(&registry(), &devices::gtx1050ti(), 24).unwrap();
        assert!(a.factor() > 1.3, "factor {}", a.factor());
    }

    #[test]
    fn push_constants_win_when_degraded() {
        let opts = RunOpts {
            scale: 0.05,
            validate: false,
            ..RunOpts::default()
        };
        let a = push_constants_vs_buffer(&registry(), &devices::adreno506(), &opts).unwrap();
        assert!(a.factor() > 1.05, "factor {}", a.factor());
    }

    #[test]
    fn transfer_queue_wins_for_large_copies() {
        let a =
            transfer_queue_copies(&registry(), &devices::gtx1050ti(), 128 * 1024 * 1024).unwrap();
        assert!(a.factor() > 1.3, "factor {}", a.factor());
        // Mobile parts have no dedicated transfer family.
        assert!(matches!(
            transfer_queue_copies(&registry(), &devices::adreno506(), 1024),
            Err(RunFailure::Unsupported)
        ));
    }

    #[test]
    fn two_queues_overlap_independent_work() {
        let a = multiple_compute_queues(&registry(), &devices::gtx1050ti(), 16).unwrap();
        assert!(a.factor() > 1.2, "factor {}", a.factor());
    }

    #[test]
    fn promotion_recovers_bfs() {
        let opts = RunOpts {
            validate: false,
            ..RunOpts::default()
        };
        let a = compiler_maturity(&registry(), &devices::gtx1050ti(), &opts).unwrap();
        assert!(a.factor() > 1.1, "factor {}", a.factor());
    }
}
