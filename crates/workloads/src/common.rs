//! Shared host-driver plumbing for the benchmark implementations.
//!
//! Each workload implements one host program per programming model. The
//! helpers here set the environments up, measure a benchmark body
//! (kernel-time and wall-time deltas, API-call deltas) and translate each
//! API's error type into the suite's [`RunFailure`] vocabulary.

use std::sync::Arc;

use vcb_core::run::{RunFailure, RunRecord};
use vcb_core::workload::RunOpts;
use vcb_cuda::{CudaContext, CudaError};
use vcb_opencl::{ClError, CommandQueue, Context, Platform, QueueProperties};
use vcb_sim::profile::DeviceProfile;
use vcb_sim::{Api, KernelRegistry, SimError};
use vcb_vulkan::{
    Device, DeviceCreateInfo, DeviceQueueCreateInfo, Instance, InstanceCreateInfo, Queue, VkError,
};

/// A ready-to-use Vulkan environment (instance, device, compute queue).
#[derive(Debug, Clone)]
pub struct VkEnv {
    /// The logical device.
    pub device: Device,
    /// A compute-capable queue.
    pub queue: Queue,
}

/// Sets up Vulkan on `profile`.
///
/// # Errors
///
/// Propagates instance/device creation failures as [`RunFailure`].
pub fn vk_env(profile: &DeviceProfile, registry: &Arc<KernelRegistry>) -> Result<VkEnv, RunFailure> {
    let instance = Instance::new(&InstanceCreateInfo {
        application_name: "vcomputebench".into(),
        enabled_layers: Vec::new(),
        devices: vec![profile.clone()],
        registry: Arc::clone(registry),
    })
    .map_err(vk_failure)?;
    let physical = instance.enumerate_physical_devices().remove(0);
    let family = physical
        .find_queue_family(vcb_sim::profile::QueueCaps::COMPUTE)
        .ok_or_else(|| RunFailure::Error("no compute queue family".into()))?;
    let device = Device::new(
        &physical,
        &DeviceCreateInfo {
            queue_create_infos: vec![DeviceQueueCreateInfo {
                queue_family_index: family,
                queue_count: 1,
            }],
        },
    )
    .map_err(vk_failure)?;
    device.set_trace_mode(vcb_sim::TraceMode::Auto);
    let queue = device.get_queue(family, 0).map_err(vk_failure)?;
    Ok(VkEnv { device, queue })
}

/// A ready-to-use OpenCL environment (context + profiling queue).
#[derive(Debug, Clone)]
pub struct ClEnv {
    /// The context.
    pub context: Context,
    /// An in-order command queue with profiling enabled.
    pub queue: CommandQueue,
}

/// Sets up OpenCL on `profile`.
///
/// # Errors
///
/// [`RunFailure::Unsupported`] when the device has no OpenCL driver.
pub fn cl_env(profile: &DeviceProfile, registry: &Arc<KernelRegistry>) -> Result<ClEnv, RunFailure> {
    let platforms = Platform::enumerate(std::slice::from_ref(profile), Arc::clone(registry));
    let platform = platforms.into_iter().next().ok_or(RunFailure::Unsupported)?;
    let device = platform.devices().remove(0);
    let context = Context::new(&device).map_err(cl_failure)?;
    let queue = CommandQueue::new(&context, QueueProperties { profiling: true });
    Ok(ClEnv { context, queue })
}

/// Sets up CUDA on `profile`.
///
/// # Errors
///
/// [`RunFailure::Unsupported`] off NVIDIA hardware.
pub fn cuda_env(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
) -> Result<CudaContext, RunFailure> {
    match CudaContext::new(profile.clone(), Arc::clone(registry)) {
        Ok(ctx) => Ok(ctx),
        Err(CudaError::NoDevice { .. }) => Err(RunFailure::Unsupported),
        Err(e) => Err(cuda_failure(e)),
    }
}

/// Maps a Vulkan error to a run failure.
pub fn vk_failure(e: VkError) -> RunFailure {
    match e {
        VkError::Device(SimError::OutOfDeviceMemory { .. }) => RunFailure::OutOfMemory,
        VkError::DeviceLost { .. } => RunFailure::DriverFailure,
        other => RunFailure::Error(other.to_string()),
    }
}

/// Maps an OpenCL error to a run failure.
pub fn cl_failure(e: ClError) -> RunFailure {
    match e {
        ClError::Device(SimError::OutOfDeviceMemory { .. }) => RunFailure::OutOfMemory,
        ClError::BuildFailure { .. } => RunFailure::DriverFailure,
        ClError::DeviceNotFound { .. } => RunFailure::Unsupported,
        other => RunFailure::Error(other.to_string()),
    }
}

/// Maps a CUDA error to a run failure.
pub fn cuda_failure(e: CudaError) -> RunFailure {
    match e {
        CudaError::Device(SimError::OutOfDeviceMemory { .. }) => RunFailure::OutOfMemory,
        CudaError::NoDevice { .. } => RunFailure::Unsupported,
        other => RunFailure::Error(other.to_string()),
    }
}

/// What a measured benchmark body reports back.
///
/// `compute_time` is the wall time of the *compute phase* — the host
/// brackets its kernel loop with clock reads, which is exactly how the
/// paper measures "kernel execution times" with `std::chrono` (§V): for
/// the launch-based APIs it includes the per-iteration launch round trips
/// that the multi-kernel method forces, and for Vulkan it includes the
/// one submission overhead. Setup (JIT, context, pipelines) and data
/// transfers stay outside.
#[derive(Debug, Clone, Copy)]
pub struct BodyOutcome {
    /// Whether outputs matched the CPU reference.
    pub validated: bool,
    /// Wall time of the compute phase.
    pub compute_time: vcb_sim::SimDuration,
}

/// Runs `body` on a Vulkan environment and captures the measurement
/// deltas into a [`RunRecord`].
///
/// # Errors
///
/// Propagates body failures.
pub fn measure_vk(
    workload: &str,
    size: &str,
    env: &VkEnv,
    body: impl FnOnce(&VkEnv) -> Result<BodyOutcome, RunFailure>,
) -> Result<RunRecord, RunFailure> {
    let calls_before = env.device.call_counts();
    let breakdown_before = env.device.breakdown();
    let start = env.device.now();
    let outcome = body(env)?;
    env.device.wait_idle();
    let end = env.device.now();
    let breakdown = env.device.breakdown().since(&breakdown_before);
    Ok(RunRecord {
        workload: workload.to_owned(),
        api: Api::Vulkan,
        device: env.device.profile().name,
        size: size.to_owned(),
        kernel_time: outcome.compute_time,
        total_time: end.duration_since(start),
        breakdown,
        calls: env.device.call_counts().since(&calls_before),
        validated: outcome.validated,
    })
}

/// Runs `body` on a CUDA context and captures the measurement deltas.
///
/// # Errors
///
/// Propagates body failures.
pub fn measure_cuda(
    workload: &str,
    size: &str,
    ctx: &CudaContext,
    body: impl FnOnce(&CudaContext) -> Result<BodyOutcome, RunFailure>,
) -> Result<RunRecord, RunFailure> {
    let calls_before = ctx.call_counts();
    let breakdown_before = ctx.breakdown();
    let start = ctx.now();
    let outcome = body(ctx)?;
    ctx.device_synchronize();
    let end = ctx.now();
    let breakdown = ctx.breakdown().since(&breakdown_before);
    Ok(RunRecord {
        workload: workload.to_owned(),
        api: Api::Cuda,
        device: ctx.profile().name,
        size: size.to_owned(),
        kernel_time: outcome.compute_time,
        total_time: end.duration_since(start),
        breakdown,
        calls: ctx.call_counts().since(&calls_before),
        validated: outcome.validated,
    })
}

/// Runs `body` on an OpenCL environment and captures the measurement
/// deltas.
///
/// # Errors
///
/// Propagates body failures.
pub fn measure_cl(
    workload: &str,
    size: &str,
    env: &ClEnv,
    body: impl FnOnce(&ClEnv) -> Result<BodyOutcome, RunFailure>,
) -> Result<RunRecord, RunFailure> {
    let calls_before = env.context.call_counts();
    let breakdown_before = env.context.breakdown();
    let start = env.context.now();
    let outcome = body(env)?;
    env.queue.finish();
    let end = env.context.now();
    let breakdown = env.context.breakdown().since(&breakdown_before);
    Ok(RunRecord {
        workload: workload.to_owned(),
        api: Api::OpenCl,
        device: env.context.profile().name,
        size: size.to_owned(),
        kernel_time: outcome.compute_time,
        total_time: end.duration_since(start),
        breakdown,
        calls: env.context.call_counts().since(&calls_before),
        validated: outcome.validated,
    })
}

/// A compiled Vulkan compute pipeline with its layout.
#[derive(Debug, Clone)]
pub struct VkKernelBundle {
    /// The pipeline.
    pub pipeline: vcb_vulkan::ComputePipeline,
    /// Its layout (needed for descriptor binds and push constants).
    pub layout: vcb_vulkan::PipelineLayout,
}

/// Assembles the registered kernel's SPIR-V, creates the shader module,
/// a pipeline layout with one descriptor-set layout and `push_bytes` of
/// push constants, and compiles the pipeline — the boilerplate block of
/// Listing 1.
///
/// # Errors
///
/// Reported as [`RunFailure`] (notably [`RunFailure::DriverFailure`] for
/// the paper's broken mobile workloads).
pub fn vk_kernel(
    env: &VkEnv,
    registry: &Arc<KernelRegistry>,
    name: &str,
    set_layout: &vcb_vulkan::DescriptorSetLayout,
    push_bytes: u32,
) -> Result<VkKernelBundle, RunFailure> {
    let info = registry
        .lookup(name)
        .map_err(|e| RunFailure::Error(e.to_string()))?;
    let spv = vcb_spirv::SpirvModule::assemble(info.info());
    let module = env
        .device
        .create_shader_module(spv.words())
        .map_err(vk_failure)?;
    let ranges = if push_bytes > 0 {
        vec![vcb_vulkan::PushConstantRange {
            offset: 0,
            size: push_bytes,
        }]
    } else {
        Vec::new()
    };
    let layout = env
        .device
        .create_pipeline_layout(&[set_layout], &ranges)
        .map_err(vk_failure)?;
    let pipeline = env
        .device
        .create_compute_pipeline(&vcb_vulkan::ComputePipelineCreateInfo {
            module: &module,
            entry_point: name,
            layout: &layout,
        })
        .map_err(vk_failure)?;
    Ok(VkKernelBundle { pipeline, layout })
}

/// Element-wise approximate equality for `f32` outputs, with a combined
/// absolute/relative tolerance — the validation the paper performs
/// against CUDA and OpenCL outputs (§IV-B).
pub fn approx_eq_f32(a: &[f32], b: &[f32], tolerance: f32) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            let diff = (x - y).abs();
            diff <= tolerance || diff <= tolerance * x.abs().max(y.abs())
        })
}

/// Exact equality for integer outputs.
pub fn exact_eq_i32(a: &[i32], b: &[i32]) -> bool {
    a == b
}

/// Applies the quick-run scale factor to an iteration count, keeping at
/// least one iteration.
pub fn scaled_iterations(iterations: u64, opts: &RunOpts) -> u64 {
    ((iterations as f64 * opts.scale).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        Arc::new(KernelRegistry::new())
    }

    #[test]
    fn environments_come_up_on_every_device() {
        for profile in devices::all() {
            assert!(vk_env(&profile, &registry()).is_ok(), "{}", profile.name);
            assert!(cl_env(&profile, &registry()).is_ok(), "{}", profile.name);
        }
    }

    #[test]
    fn cuda_env_only_on_nvidia() {
        assert!(cuda_env(&devices::gtx1050ti(), &registry()).is_ok());
        assert!(matches!(
            cuda_env(&devices::rx560(), &registry()),
            Err(RunFailure::Unsupported)
        ));
    }

    #[test]
    fn approx_eq_tolerates_rounding() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, 2.0000005, 3.0];
        assert!(approx_eq_f32(&a, &b, 1e-5));
        assert!(!approx_eq_f32(&a, &[1.0, 2.5, 3.0], 1e-5));
        assert!(!approx_eq_f32(&a, &b[..2], 1e-5));
    }

    #[test]
    fn measure_vk_captures_deltas() {
        let env = vk_env(&devices::gtx1050ti(), &registry()).unwrap();
        let record = measure_vk("fake", "1", &env, |_| {
            Ok(BodyOutcome {
                validated: true,
                compute_time: vcb_sim::SimDuration::ZERO,
            })
        })
        .unwrap();
        assert_eq!(record.workload, "fake");
        assert!(record.kernel_time.is_zero());
        assert!(record.validated);
    }

    #[test]
    fn scaled_iterations_clamps() {
        let mut opts = RunOpts {
            scale: 0.001,
            ..RunOpts::default()
        };
        assert_eq!(scaled_iterations(200, &opts), 1);
        opts.scale = 1.0;
        assert_eq!(scaled_iterations(200, &opts), 200);
    }
}
