//! The experiment drivers: every table/figure of the paper as a thin
//! plan builder over one shared scheduler.
//!
//! A [`Session`] owns the run-matrix machinery — one
//! [`Executor`] whose worker pool spans every
//! device and figure, a [`ResultCache`]
//! that executes each unique (workload, size, API, device, opts) cell at
//! most once per process, and the [`SuiteRunner`] that maps cell specs
//! onto workload host programs (with each worker reusing environments
//! and JIT builds through `vcb_backend`'s worker-local cache). The
//! figure functions merely *describe* their slice of the matrix as a
//! [`RunPlan`] and assemble the returned cells; `vcb all` warms the
//! union of every figure's plan first, so shared cells (gaussian/208
//! appears in both Fig. 2 and the §V-A2 overhead decomposition)
//! simulate once.

use std::collections::HashMap;
use std::sync::Arc;

use vcb_core::plan::{
    CellRunner, CellSpec, EventSink, Executor, NullSink, PanelEntry, PanelSpec, ResultCache,
    RunPlan,
};
use vcb_core::run::{RunFailure, RunOutcome, SizeSpec};
use vcb_core::stats::geomean;
use vcb_core::store::Store;
use vcb_core::workload::{RunOpts, Workload};
use vcb_sim::profile::{devices, DeviceClass, DeviceProfile};
use vcb_sim::{Api, KernelRegistry, UvmProfile};
use vcb_workloads::micro::stride::{self, BandwidthSample};
use vcb_workloads::micro::vectoradd;

/// The size label marking a cell as a whole bandwidth-curve sweep (one
/// line of Fig. 1 / Fig. 3) rather than a single workload run.
pub const SWEEP_LABEL: &str = "sweep";

/// Listing 1's N: the element count behind the §VI-A effort table.
pub const EFFORT_N: u64 = 1_000_000;

/// Global options for an experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentOpts {
    /// Per-run options (seed, validation, scale).
    pub run: RunOpts,
    /// Worker threads for the run matrix (1 = sequential). The executor
    /// balances this against `run.sim_threads` so that
    /// `threads × sim_threads` never exceeds the machine's cores.
    pub threads: usize,
    /// Limit on sizes per workload (0 = all of the figure's sizes).
    /// Benches use 1 to regenerate a representative column quickly.
    pub sizes_per_workload: usize,
    /// Workload short names to run (empty = the full suite). Applied
    /// when plans are built, so filtered cells are never scheduled.
    pub filter: Vec<String>,
    /// Device-name fragments to run on (case-insensitive substring
    /// match; empty = all of the figure's devices).
    pub devices: Vec<String>,
    /// Directory of the persistent result store (`--store DIR`), `None`
    /// to run fully in-process. When set, the session seeds its cache
    /// from disk before executing and writes every fresh result back,
    /// so repeated sweeps re-execute only changed cells.
    pub store: Option<String>,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            run: RunOpts::default(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get().min(16))
                .unwrap_or(4),
            sizes_per_workload: 0,
            filter: Vec::new(),
            devices: Vec::new(),
            store: None,
        }
    }
}

impl ExperimentOpts {
    /// Quick preset: scaled-down iteration counts and array sizes, no
    /// output validation — for smoke runs of the full figure set.
    pub fn quick() -> Self {
        ExperimentOpts {
            run: RunOpts {
                scale: 0.25,
                validate: false,
                ..RunOpts::default()
            },
            ..ExperimentOpts::default()
        }
    }

    /// Paper-scale preset: full input sizes, validation on.
    pub fn paper() -> Self {
        ExperimentOpts::default()
    }

    /// Whether `workload` survives the `--filter` selection.
    fn keeps_workload(&self, workload: &str) -> bool {
        self.filter.is_empty() || self.filter.iter().any(|f| f == workload)
    }

    /// Whether `device` survives the `--device` selection.
    fn keeps_device(&self, device: &str) -> bool {
        let lower = device.to_lowercase();
        self.devices.is_empty()
            || self
                .devices
                .iter()
                .any(|d| lower.contains(&d.to_lowercase()))
    }
}

/// One cell of the benchmark matrix: a (workload, size, api, device) run.
#[derive(Debug)]
pub struct MatrixCell {
    /// Workload short name.
    pub workload: String,
    /// Size label (figure x-axis).
    pub size: String,
    /// Programming model.
    pub api: Api,
    /// Device name.
    pub device: String,
    /// The cell's index in the plan that produced it — the position it
    /// renders at, carried by the cell instead of being reconstructed by
    /// a post-hoc sort (which collided for workloads outside Table I).
    pub plan_index: usize,
    /// The run outcome (record or reported failure).
    pub outcome: RunOutcome,
}

/// All runs of one device's speedup figure (one panel of Fig. 2/Fig. 4).
#[derive(Debug)]
pub struct DevicePanel {
    /// Device name.
    pub device: String,
    /// Programming models that ran (baseline first).
    pub apis: Vec<Api>,
    /// All cells, in plan order: (workload, size label, api).
    pub cells: Vec<MatrixCell>,
}

impl DevicePanel {
    fn find(&self, workload: &str, size: &str, api: Api) -> Option<&MatrixCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.size == size && c.api == api)
    }

    /// Kernel-time speedup of `api` over the OpenCL baseline for one bar,
    /// `None` if either run failed.
    pub fn speedup(&self, workload: &str, size: &str, api: Api) -> Option<f64> {
        let base = self
            .find(workload, size, Api::OpenCl)?
            .outcome
            .as_ref()
            .ok()?;
        let subj = self.find(workload, size, api)?.outcome.as_ref().ok()?;
        Some(vcb_core::run::speedup(base, subj))
    }

    /// Geometric-mean speedup of `api` vs the OpenCL baseline across all
    /// bars that ran under both APIs (the paper's headline statistic).
    pub fn geomean_speedup(&self, api: Api) -> Option<f64> {
        let mut values = Vec::new();
        for cell in self.cells.iter().filter(|c| c.api == api) {
            if let Some(s) = self.speedup(&cell.workload, &cell.size, api) {
                values.push(s);
            }
        }
        geomean(&values)
    }

    /// The (workload, size) bar labels in run order.
    pub fn bars(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for c in &self.cells {
            let key = (c.workload.clone(), c.size.clone());
            if !out.contains(&key) {
                out.push(key);
            }
        }
        out
    }
}

/// The measured result of one planned cell.
#[derive(Debug, Clone)]
pub enum CellOut {
    /// A single (workload, size, api, device) run.
    Run(RunOutcome),
    /// A whole bandwidth-curve sweep (one Fig. 1 / Fig. 3 line).
    Curve(Result<Vec<BandwidthSample>, RunFailure>),
}

impl CellOut {
    /// The run outcome, if this cell was a workload run.
    pub fn as_run(&self) -> Option<&RunOutcome> {
        match self {
            CellOut::Run(o) => Some(o),
            CellOut::Curve(_) => None,
        }
    }

    /// Short status text for progress lines.
    pub fn status(&self) -> String {
        match self {
            CellOut::Run(Ok(_)) | CellOut::Curve(Ok(_)) => "ok".into(),
            CellOut::Run(Err(e)) | CellOut::Curve(Err(e)) => e.to_string(),
        }
    }
}

/// Maps cell specs onto workload host programs — the one
/// [`CellRunner`] behind every figure. Each worker thread runs its
/// cells inside `vcb_backend::with_worker_env_cache`, reusing
/// environments and JIT builds without perturbing per-cell results.
pub struct SuiteRunner {
    registry: Arc<KernelRegistry>,
    /// The nine Table I workloads, in suite order.
    suite: Vec<Box<dyn Workload>>,
    /// Additional runnable workloads (the vectoradd microbenchmark).
    extra: Vec<Box<dyn Workload>>,
    /// The DNN inference family (conv2d, gemm, maxpool2d) in panel order.
    dnn: Vec<Box<dyn Workload>>,
    profiles: HashMap<String, DeviceProfile>,
}

impl SuiteRunner {
    /// Builds the runner over every known device and workload.
    pub fn new(registry: &Arc<KernelRegistry>) -> SuiteRunner {
        SuiteRunner {
            registry: Arc::clone(registry),
            suite: vcb_workloads::suite_workloads(registry),
            extra: vec![Box::new(vectoradd::VectorAdd::new(Arc::clone(registry)))],
            dnn: vcb_workloads::dnn_workloads(registry),
            profiles: devices::all()
                .into_iter()
                .chain(devices::uvm_all())
                .map(|p| (p.name.clone(), p))
                .collect(),
        }
    }

    fn workload(&self, name: &str) -> Option<&dyn Workload> {
        self.suite
            .iter()
            .chain(self.extra.iter())
            .chain(self.dnn.iter())
            .find(|w| w.meta().name == name)
            .map(Box::as_ref)
    }
}

impl std::fmt::Debug for SuiteRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuiteRunner")
            .field(
                "workloads",
                &(self.suite.len() + self.extra.len() + self.dnn.len()),
            )
            .field("devices", &self.profiles.len())
            .finish()
    }
}

impl CellRunner for SuiteRunner {
    type Out = CellOut;

    fn run_cell(&self, spec: &CellSpec) -> CellOut {
        vcb_backend::with_worker_env_cache(|| {
            let Some(profile) = self.profiles.get(&spec.device) else {
                return CellOut::Run(Err(RunFailure::Error(format!(
                    "unknown device `{}`",
                    spec.device
                ))));
            };
            if spec.workload == stride::NAME && spec.size.label == SWEEP_LABEL {
                return CellOut::Curve(stride::bandwidth_curve(
                    spec.api,
                    profile,
                    &self.registry,
                    &spec.opts,
                ));
            }
            match self.workload(&spec.workload) {
                Some(w) => CellOut::Run(w.run(spec.api, profile, &spec.size, &spec.opts)),
                None => CellOut::Run(Err(RunFailure::Error(format!(
                    "unknown workload `{}`",
                    spec.workload
                )))),
            }
        })
    }

    /// A kernel panic is a failure cell, not a process abort: the
    /// executor catches the unwind and the cell joins the matrix through
    /// the same failure path as an OOM or driver failure — every other
    /// cell of the sweep still completes.
    fn cell_panicked(&self, spec: &CellSpec, message: &str) -> CellOut {
        let failure = RunFailure::Error(format!("kernel panicked: {message}"));
        if spec.workload == stride::NAME && spec.size.label == SWEEP_LABEL {
            CellOut::Curve(Err(failure))
        } else {
            CellOut::Run(Err(failure))
        }
    }
}

/// One experiment process: the scheduler, its result cache, and the plan
/// builders for every figure. Everything `vcb` runs goes through one
/// session, so cells shared between figures execute once.
#[derive(Debug)]
pub struct Session {
    opts: ExperimentOpts,
    runner: SuiteRunner,
    executor: Executor,
    cache: ResultCache<CellOut>,
    store: Option<Store>,
}

impl Session {
    /// Creates a session: one executor (balanced against
    /// `opts.run.sim_threads`), one cache, one runner — and, when
    /// `opts.store` is set, the persistent result store backing the
    /// cache across processes. A store that cannot be opened degrades
    /// to an in-process run with a warning (never a failure).
    pub fn new(registry: &Arc<KernelRegistry>, opts: &ExperimentOpts) -> Session {
        let store = opts.store.as_ref().and_then(|dir| match Store::open(dir) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("vcb: store: cannot open {dir}: {e} (running without a store)");
                None
            }
        });
        Session {
            opts: opts.clone(),
            runner: SuiteRunner::new(registry),
            executor: Executor::balanced(opts.threads, opts.run.sim_threads),
            cache: ResultCache::new(),
            store,
        }
    }

    /// The persistent result store, when one is open.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// The session's options.
    pub fn opts(&self) -> &ExperimentOpts {
        &self.opts
    }

    /// Distinct cells actually simulated so far (the dedup oracle: a
    /// second run of any already-planned figure adds zero).
    pub fn executed_cells(&self) -> usize {
        self.cache.executed()
    }

    /// The executor's matrix worker count after balancing against
    /// `sim_threads` (see [`vcb_core::plan::thread_budget`]).
    pub fn executor_threads(&self) -> usize {
        self.executor.threads()
    }

    /// The desktop devices surviving `--device`.
    pub fn desktop_devices(&self) -> Vec<DeviceProfile> {
        devices::desktop()
            .into_iter()
            .filter(|d| self.opts.keeps_device(&d.name))
            .collect()
    }

    /// The mobile devices surviving `--device`.
    pub fn mobile_devices(&self) -> Vec<DeviceProfile> {
        devices::mobile()
            .into_iter()
            .filter(|d| self.opts.keeps_device(&d.name))
            .collect()
    }

    /// The speedup-panel spec for one device: suite workloads in Table I
    /// order (filtered), per-class sizes (truncated to
    /// `sizes_per_workload`), every supported API.
    pub fn panel_spec(&self, profile: &DeviceProfile) -> PanelSpec {
        let entries = self
            .runner
            .suite
            .iter()
            .filter(|w| self.opts.keeps_workload(w.meta().name))
            .map(|w| {
                let mut sizes = w.sizes(profile.class);
                if self.opts.sizes_per_workload > 0 {
                    sizes.truncate(self.opts.sizes_per_workload);
                }
                PanelEntry {
                    workload: w.meta().name.to_owned(),
                    sizes,
                }
            })
            .collect();
        PanelSpec {
            device: profile.name.clone(),
            apis: profile.supported_apis(),
            entries,
        }
    }

    /// Plans the speedup panels for `profiles` as one contiguous plan.
    pub fn plan_panels(&self, profiles: &[DeviceProfile]) -> RunPlan {
        let mut plan = RunPlan::new();
        for profile in profiles {
            plan.panel(&self.panel_spec(profile), &self.opts.run);
        }
        plan
    }

    /// Plans the bandwidth sweeps for `profiles` (skipped entirely when
    /// `--filter` excludes the stride microbenchmark).
    pub fn plan_bandwidth(&self, profiles: &[DeviceProfile]) -> RunPlan {
        let mut plan = RunPlan::new();
        if !self.opts.keeps_workload(stride::NAME) {
            return plan;
        }
        for profile in profiles {
            plan.bandwidth_sweep(
                &profile.name,
                &profile.supported_apis(),
                stride::NAME,
                SWEEP_LABEL,
                &self.opts.run,
            );
        }
        plan
    }

    /// Plans the §V-A2 overhead cells: gaussian at its smallest desktop
    /// size under every API of `profile`.
    pub fn plan_overheads(&self, profile: &DeviceProfile) -> RunPlan {
        let mut plan = RunPlan::new();
        if !self.opts.keeps_workload("gaussian") || !self.opts.keeps_device(&profile.name) {
            return plan;
        }
        for api in profile.supported_apis() {
            plan.push(CellSpec {
                workload: "gaussian".into(),
                size: SizeSpec::new("208", 208),
                api,
                device: profile.name.clone(),
                opts: self.opts.run.clone(),
            });
        }
        plan
    }

    /// Plans the §VI-A effort cells: vectoradd at Listing 1's N = 1M
    /// under every API of `profile`.
    pub fn plan_effort(&self, profile: &DeviceProfile) -> RunPlan {
        let mut plan = RunPlan::new();
        if !self.opts.keeps_workload(vectoradd::NAME) || !self.opts.keeps_device(&profile.name) {
            return plan;
        }
        for api in profile.supported_apis() {
            plan.push(CellSpec {
                workload: vectoradd::NAME.into(),
                size: SizeSpec::new("1M", EFFORT_N),
                api,
                device: profile.name.clone(),
                opts: self.opts.run.clone(),
            });
        }
        plan
    }

    /// The GTX 1050 Ti in the three memory-mode configurations the UVM
    /// comparison spans — explicit copies, fully resident unified
    /// memory, and unified memory with an oversubscribed device budget
    /// — filtered by `--device` like every other device list.
    pub fn uvm_devices(&self) -> Vec<DeviceProfile> {
        let base = devices::gtx1050ti();
        [
            base.clone(),
            devices::uvm_variant(base.clone(), UvmProfile::resident()),
            devices::uvm_variant(base, UvmProfile::oversubscribed()),
        ]
        .into_iter()
        .filter(|d| self.opts.keeps_device(&d.name))
        .collect()
    }

    /// The (workload, size) bars of the UVM comparison: the Table I
    /// suite at its first size for `profile`'s class, vectoradd at the
    /// §VI-A 1M elements, and the whole strided-bandwidth sweep — the
    /// paper's 11 workloads, one bar each.
    fn uvm_bars(&self, profile: &DeviceProfile) -> Vec<(String, SizeSpec)> {
        let mut bars = Vec::new();
        for w in &self.runner.suite {
            if !self.opts.keeps_workload(w.meta().name) {
                continue;
            }
            let Some(size) = w.sizes(profile.class).into_iter().next() else {
                continue;
            };
            bars.push((w.meta().name.to_owned(), size));
        }
        if self.opts.keeps_workload(vectoradd::NAME) {
            bars.push((vectoradd::NAME.into(), SizeSpec::new("1M", EFFORT_N)));
        }
        if self.opts.keeps_workload(stride::NAME) {
            bars.push((stride::NAME.into(), SizeSpec::new(SWEEP_LABEL, 0)));
        }
        bars
    }

    /// Plans the unified-memory comparison: every UVM bar under Vulkan
    /// on each configuration from [`Session::uvm_devices`]. The
    /// explicit-copy column reuses the device name (and hence the
    /// cells) of Fig. 1/Fig. 2/§VI-A, so under `vcb all` it dedups to
    /// zero fresh work; only the `-uvm` variants execute.
    pub fn plan_uvm(&self) -> RunPlan {
        let mut plan = RunPlan::new();
        for profile in self.uvm_devices() {
            for (workload, size) in self.uvm_bars(&profile) {
                plan.push(CellSpec {
                    workload,
                    size,
                    api: Api::Vulkan,
                    device: profile.name.clone(),
                    opts: self.opts.run.clone(),
                });
            }
        }
        plan
    }

    /// Runs the UVM comparison and assembles it into per-bar rows with
    /// one outcome per memory-mode column.
    pub fn uvm_compare(&mut self, sink: &mut (dyn EventSink<CellOut> + Send)) -> UvmCompare {
        let profiles = self.uvm_devices();
        if profiles.is_empty() {
            return UvmCompare {
                devices: Vec::new(),
                rows: Vec::new(),
            };
        }
        let plan = self.plan_uvm();
        let outs = self.execute(&plan, sink);
        let by_key: HashMap<(String, String, String), CellOut> = plan
            .cells()
            .iter()
            .zip(outs)
            .map(|(s, o)| {
                (
                    (s.device.clone(), s.workload.clone(), s.size.label.clone()),
                    o,
                )
            })
            .collect();
        let devices: Vec<String> = profiles.iter().map(|p| p.name.clone()).collect();
        let rows = self
            .uvm_bars(&profiles[0])
            .into_iter()
            .map(|(workload, size)| UvmCompareRow {
                outs: devices
                    .iter()
                    .map(|d| {
                        by_key
                            .get(&(d.clone(), workload.clone(), size.label.clone()))
                            .cloned()
                    })
                    .collect(),
                workload,
                size: size.label,
            })
            .collect();
        UvmCompare { devices, rows }
    }

    /// Every device column of the DNN panel: each base device grouped
    /// with its resident and oversubscribed unified-memory variants,
    /// filtered by `--device` like every other device list.
    pub fn dnn_devices(&self) -> Vec<DeviceProfile> {
        devices::all()
            .into_iter()
            .flat_map(|base| {
                [
                    base.clone(),
                    devices::uvm_variant(base.clone(), UvmProfile::resident()),
                    devices::uvm_variant(base, UvmProfile::oversubscribed()),
                ]
            })
            .filter(|d| self.opts.keeps_device(&d.name))
            .collect()
    }

    /// The (workload, size) rows of the DNN panel: the three inference
    /// kernels at every configured size. The dnn workloads use one size
    /// list across device classes, so the panel stays rectangular over
    /// desktop and mobile silicon.
    fn dnn_bars(&self) -> Vec<(String, SizeSpec)> {
        let mut bars = Vec::new();
        for w in &self.runner.dnn {
            if !self.opts.keeps_workload(w.meta().name) {
                continue;
            }
            let mut sizes = w.sizes(DeviceClass::Desktop);
            if self.opts.sizes_per_workload > 0 {
                sizes.truncate(self.opts.sizes_per_workload);
            }
            for size in sizes {
                bars.push((w.meta().name.to_owned(), size));
            }
        }
        bars
    }

    /// Plans the DNN inference panel: every dnn bar under Vulkan on
    /// each device variant from [`Session::dnn_devices`]. All cells are
    /// fresh (no other figure runs the dnn family), and they ride the
    /// shard/store/jobs machinery like any other plan cells.
    pub fn plan_dnn(&self) -> RunPlan {
        let mut plan = RunPlan::new();
        for profile in self.dnn_devices() {
            for (workload, size) in self.dnn_bars() {
                plan.push(CellSpec {
                    workload,
                    size,
                    api: Api::Vulkan,
                    device: profile.name.clone(),
                    opts: self.opts.run.clone(),
                });
            }
        }
        plan
    }

    /// Runs the DNN panel and assembles it into per-bar rows with one
    /// outcome per device column.
    pub fn dnn_compare(&mut self, sink: &mut (dyn EventSink<CellOut> + Send)) -> DnnCompare {
        let profiles = self.dnn_devices();
        if profiles.is_empty() {
            return DnnCompare {
                devices: Vec::new(),
                rows: Vec::new(),
            };
        }
        let plan = self.plan_dnn();
        let outs = self.execute(&plan, sink);
        let by_key: HashMap<(String, String, String), CellOut> = plan
            .cells()
            .iter()
            .zip(outs)
            .map(|(s, o)| {
                (
                    (s.device.clone(), s.workload.clone(), s.size.label.clone()),
                    o,
                )
            })
            .collect();
        let devices: Vec<String> = profiles.iter().map(|p| p.name.clone()).collect();
        let rows = self
            .dnn_bars()
            .into_iter()
            .map(|(workload, size)| DnnCompareRow {
                outs: devices
                    .iter()
                    .map(|d| {
                        by_key
                            .get(&(d.clone(), workload.clone(), size.label.clone()))
                            .cloned()
                    })
                    .collect(),
                workload,
                size: size.label,
            })
            .collect();
        DnnCompare { devices, rows }
    }

    /// The union of every figure's plan — what `vcb all` executes up
    /// front on one pool spanning all devices and figures at once.
    /// (`plan_uvm` stays last: its explicit-copy cells dedup against
    /// everything planned before them.)
    pub fn plan_all(&self) -> RunPlan {
        let mut plan = RunPlan::new();
        plan.append(self.plan_bandwidth(&self.desktop_devices()));
        plan.append(self.plan_panels(&self.desktop_devices()));
        plan.append(self.plan_bandwidth(&self.mobile_devices()));
        plan.append(self.plan_panels(&self.mobile_devices()));
        plan.append(self.plan_effort(&devices::gtx1050ti()));
        plan.append(self.plan_overheads(&devices::gtx1050ti()));
        plan.append(self.plan_dnn());
        plan.append(self.plan_uvm());
        plan
    }

    /// How many of `plan`'s cells would actually execute right now
    /// (unique cells not yet in the cache) — the progress total.
    pub fn pending_cells(&self, plan: &RunPlan) -> usize {
        let mut seen = std::collections::HashSet::new();
        plan.cells()
            .iter()
            .filter(|c| {
                let key = c.key();
                self.cache.get(&key).is_none() && seen.insert(key)
            })
            .count()
    }

    /// The plan a `vcb` command would execute — the `plan` subcommand's
    /// backing. `None` for commands without a matrix plan.
    pub fn plan_for(&self, target: &str) -> Option<RunPlan> {
        Some(match target {
            "all" => self.plan_all(),
            "fig1" => self.plan_bandwidth(&self.desktop_devices()),
            "fig2" => self.plan_panels(&self.desktop_devices()),
            "fig3" => self.plan_bandwidth(&self.mobile_devices()),
            "fig4" => self.plan_panels(&self.mobile_devices()),
            "summary" => {
                let mut plan = self.plan_panels(&self.desktop_devices());
                plan.append(self.plan_panels(&self.mobile_devices()));
                plan
            }
            "effort" => self.plan_effort(&devices::gtx1050ti()),
            "overheads" => self.plan_overheads(&devices::gtx1050ti()),
            "uvm" => self.plan_uvm(),
            "dnn" => self.plan_dnn(),
            _ => return None,
        })
    }

    /// Seeds the result cache with one result per cell of `plan`, in
    /// plan order — how `vcb merge` injects cross-process shard results
    /// so every render stage afterwards resolves purely from cache,
    /// producing output byte-identical to a local run. `outs` must be
    /// plan-ordered (the contract [`vcb_core::shard::merge_streams`]
    /// guarantees).
    pub fn seed_cache(&mut self, plan: &RunPlan, outs: Vec<CellOut>) {
        assert_eq!(plan.len(), outs.len(), "one result per planned cell");
        for (spec, out) in plan.cells().iter().zip(outs) {
            self.cache.insert(spec.key(), out);
        }
    }

    /// Seeds the cache from the persistent store: every cell of `plan`
    /// not already cached whose store entry loads (and verifies — see
    /// [`Store::load_cell`]) resolves without execution. Rejected
    /// entries warn on stderr and re-execute, after which the fresh
    /// result overwrites the bad entry. Returns the number of cells
    /// seeded; a no-op (returning 0) without a store. Idempotent —
    /// seeded cells are cache hits on the next call.
    pub fn seed_from_store(&mut self, plan: &RunPlan) -> usize {
        let Some(store) = &self.store else { return 0 };
        let mut seeded = 0;
        let mut seen = std::collections::HashSet::new();
        for spec in plan.cells() {
            let key = spec.key();
            if self.cache.get(&key).is_some() || !seen.insert(key.clone()) {
                continue;
            }
            match store.load_cell(spec, crate::stream::decode_cell_out) {
                Ok(Some(hit)) => {
                    self.cache.insert(key, hit.out);
                    seeded += 1;
                }
                Ok(None) => {}
                Err(e) => eprintln!(
                    "vcb: store: rejecting {}: {e} (will re-execute)",
                    store.entry_path(spec).display()
                ),
            }
        }
        if seeded > 0 {
            eprintln!(
                "vcb: store: seeded {seeded} cell(s) from {}",
                store.dir().display()
            );
        }
        seeded
    }

    /// Executes an arbitrary plan through the session's cache. With a
    /// store open, the plan is first seeded from disk (so warm cells
    /// never execute) and every fresh result is written back as it
    /// finishes.
    pub fn execute(
        &mut self,
        plan: &RunPlan,
        sink: &mut (dyn EventSink<CellOut> + Send),
    ) -> Vec<CellOut> {
        self.seed_from_store(plan);
        match &self.store {
            Some(store) => {
                let mut persist = crate::stream::StoreSink::new(store);
                let mut tee = crate::stream::Tee(sink, &mut persist);
                self.executor
                    .execute(plan, &self.runner, &mut self.cache, &mut tee)
            }
            None => self
                .executor
                .execute(plan, &self.runner, &mut self.cache, sink),
        }
    }

    /// Runs (or re-reads from cache) every cell of `vcb all` — the
    /// warm-up pass sharing one worker pool across the whole matrix.
    pub fn warm_all(&mut self, sink: &mut (dyn EventSink<CellOut> + Send)) {
        let plan = self.plan_all();
        self.execute(&plan, sink);
    }

    /// Runs the speedup panels for `profiles` as one plan and assembles
    /// one [`DevicePanel`] per device, cells in plan order.
    pub fn speedup_panels(
        &mut self,
        profiles: &[DeviceProfile],
        sink: &mut (dyn EventSink<CellOut> + Send),
    ) -> Vec<DevicePanel> {
        let mut plan = RunPlan::new();
        let mut ranges = Vec::new();
        for profile in profiles {
            let spec = self.panel_spec(profile);
            let range = plan.panel(&spec, &self.opts.run);
            ranges.push((profile.name.clone(), spec.apis, range));
        }
        let outs = self.execute(&plan, sink);
        ranges
            .into_iter()
            .map(|(device, apis, range)| DevicePanel {
                device,
                apis,
                cells: range
                    .map(|i| {
                        let spec = &plan.cells()[i];
                        let outcome = match &outs[i] {
                            CellOut::Run(o) => o.clone(),
                            CellOut::Curve(_) => {
                                Err(RunFailure::Error("curve cell in panel".into()))
                            }
                        };
                        MatrixCell {
                            workload: spec.workload.clone(),
                            size: spec.size.label.clone(),
                            api: spec.api,
                            device: spec.device.clone(),
                            plan_index: i,
                            outcome,
                        }
                    })
                    .collect(),
            })
            .collect()
    }

    /// Runs the bandwidth sweeps for `profiles`, one curve set per
    /// device.
    pub fn bandwidth_panels(
        &mut self,
        profiles: &[DeviceProfile],
        sink: &mut (dyn EventSink<CellOut> + Send),
    ) -> Vec<Vec<BandwidthCurve>> {
        let plan = self.plan_bandwidth(profiles);
        let outs = self.execute(&plan, sink);
        let mut by_device: Vec<Vec<BandwidthCurve>> = Vec::new();
        for (spec, out) in plan.cells().iter().zip(&outs) {
            let samples = match out {
                CellOut::Curve(c) => c.clone(),
                CellOut::Run(_) => Err(RunFailure::Error("panel cell in sweep".into())),
            };
            let curve = BandwidthCurve {
                device: spec.device.clone(),
                api: spec.api,
                samples,
            };
            match by_device.last_mut() {
                Some(last) if last[0].device == spec.device => last.push(curve),
                _ => by_device.push(vec![curve]),
            }
        }
        by_device
    }

    /// Fig. 2: desktop speedup panels.
    pub fn fig2(&mut self, sink: &mut (dyn EventSink<CellOut> + Send)) -> Vec<DevicePanel> {
        let profiles = self.desktop_devices();
        self.speedup_panels(&profiles, sink)
    }

    /// Fig. 4: mobile speedup panels.
    pub fn fig4(&mut self, sink: &mut (dyn EventSink<CellOut> + Send)) -> Vec<DevicePanel> {
        let profiles = self.mobile_devices();
        self.speedup_panels(&profiles, sink)
    }

    /// Fig. 1: desktop bandwidth curves.
    pub fn fig1(&mut self, sink: &mut (dyn EventSink<CellOut> + Send)) -> Vec<Vec<BandwidthCurve>> {
        let profiles = self.desktop_devices();
        self.bandwidth_panels(&profiles, sink)
    }

    /// Fig. 3: mobile bandwidth curves.
    pub fn fig3(&mut self, sink: &mut (dyn EventSink<CellOut> + Send)) -> Vec<Vec<BandwidthCurve>> {
        let profiles = self.mobile_devices();
        self.bandwidth_panels(&profiles, sink)
    }

    /// §V-A2 overhead decomposition rows on `profile`.
    pub fn overheads(&mut self, profile: &DeviceProfile) -> Vec<OverheadRow> {
        use vcb_sim::timeline::CostKind;
        let plan = self.plan_overheads(profile);
        let outs = self.execute(&plan, &mut NullSink);
        plan.cells()
            .iter()
            .zip(&outs)
            .filter_map(|(spec, out)| {
                let r = out.as_run()?.as_ref().ok()?;
                Some(OverheadRow {
                    api: spec.api,
                    kernel: r.kernel_time,
                    total: r.total_time,
                    jit: r.breakdown.get(CostKind::JitCompile),
                    pipeline: r.breakdown.get(CostKind::PipelineCreate),
                    transfer: r.breakdown.get(CostKind::Transfer),
                    host_api: r.breakdown.get(CostKind::HostApi),
                })
            })
            .collect()
    }

    /// §VI-A programming-effort records on `profile`.
    pub fn effort(&mut self, profile: &DeviceProfile) -> Vec<vcb_core::effort::EffortRecord> {
        let plan = self.plan_effort(profile);
        let outs = self.execute(&plan, &mut NullSink);
        plan.cells()
            .iter()
            .zip(&outs)
            .filter_map(|(spec, out)| {
                let r = out.as_run()?.as_ref().ok()?;
                Some(vcb_core::effort::EffortRecord::from_calls(
                    "vectoradd",
                    spec.api,
                    &r.calls,
                ))
            })
            .collect()
    }
}

/// Runs the full benchmark matrix for one device (a one-shot
/// [`Session`]; use a session directly to share cells across figures).
pub fn run_device_panel(
    registry: &Arc<KernelRegistry>,
    profile: &DeviceProfile,
    opts: &ExperimentOpts,
) -> DevicePanel {
    let mut session = Session::new(registry, opts);
    session
        .speedup_panels(std::slice::from_ref(profile), &mut NullSink)
        .remove(0)
}

/// Fig. 2: desktop speedup panels (GTX 1050 Ti and RX 560).
pub fn fig2(registry: &Arc<KernelRegistry>, opts: &ExperimentOpts) -> Vec<DevicePanel> {
    Session::new(registry, opts).fig2(&mut NullSink)
}

/// Fig. 4: mobile speedup panels (Nexus / Snapdragon).
pub fn fig4(registry: &Arc<KernelRegistry>, opts: &ExperimentOpts) -> Vec<DevicePanel> {
    Session::new(registry, opts).fig4(&mut NullSink)
}

/// The unified-memory comparison: one column per memory-mode
/// configuration of the same silicon, one row per workload bar.
#[derive(Debug)]
pub struct UvmCompare {
    /// Device names in column order: explicit copy, resident UVM,
    /// oversubscribed UVM (minus any pruned by `--device`).
    pub devices: Vec<String>,
    /// One row per (workload, size) bar, in suite order.
    pub rows: Vec<UvmCompareRow>,
}

/// One bar of the UVM comparison.
#[derive(Debug)]
pub struct UvmCompareRow {
    /// Workload short name (`stride` marks the bandwidth sweep).
    pub workload: String,
    /// Size label.
    pub size: String,
    /// One outcome per device column, `None` when the cell was not
    /// planned (pruned device) or missing from the result set.
    pub outs: Vec<Option<CellOut>>,
}

/// Runs the explicit-vs-UVM-vs-oversubscribed comparison (the UVM
/// figure) as a one-shot session.
pub fn uvm_compare(registry: &Arc<KernelRegistry>, opts: &ExperimentOpts) -> UvmCompare {
    Session::new(registry, opts).uvm_compare(&mut NullSink)
}

/// The DNN inference panel: one column per device variant (each base
/// device grouped with its `-uvm`/`-uvm-oversub` profiles), one row per
/// (kernel, size) bar.
#[derive(Debug)]
pub struct DnnCompare {
    /// Device names in column order.
    pub devices: Vec<String>,
    /// One row per (workload, size) bar, in conv → gemm → pool order.
    pub rows: Vec<DnnCompareRow>,
}

/// One bar of the DNN panel.
#[derive(Debug)]
pub struct DnnCompareRow {
    /// Workload short name (`dnn_conv2d`, `dnn_gemm`, `dnn_maxpool2d`).
    pub workload: String,
    /// Size label.
    pub size: String,
    /// One outcome per device column, `None` when the cell was not
    /// planned (pruned device) or missing from the result set.
    pub outs: Vec<Option<CellOut>>,
}

/// Runs the DNN inference panel as a one-shot session.
pub fn dnn_compare(registry: &Arc<KernelRegistry>, opts: &ExperimentOpts) -> DnnCompare {
    Session::new(registry, opts).dnn_compare(&mut NullSink)
}

/// One API's bandwidth curve on one device (a line of Fig. 1/Fig. 3).
#[derive(Debug)]
pub struct BandwidthCurve {
    /// Device name.
    pub device: String,
    /// Programming model.
    pub api: Api,
    /// Samples per stride, or the failure that prevented them.
    pub samples: Result<Vec<BandwidthSample>, vcb_core::run::RunFailure>,
}

/// Runs the strided-bandwidth microbenchmark for every API on `profile`.
pub fn bandwidth_curves(
    registry: &Arc<KernelRegistry>,
    profile: &DeviceProfile,
    opts: &ExperimentOpts,
) -> Vec<BandwidthCurve> {
    let mut session = Session::new(registry, opts);
    session
        .bandwidth_panels(std::slice::from_ref(profile), &mut NullSink)
        .pop()
        .unwrap_or_default()
}

/// Fig. 1: desktop bandwidth-vs-stride curves.
pub fn fig1(registry: &Arc<KernelRegistry>, opts: &ExperimentOpts) -> Vec<Vec<BandwidthCurve>> {
    Session::new(registry, opts).fig1(&mut NullSink)
}

/// Fig. 3: mobile bandwidth-vs-stride curves.
pub fn fig3(registry: &Arc<KernelRegistry>, opts: &ExperimentOpts) -> Vec<Vec<BandwidthCurve>> {
    Session::new(registry, opts).fig3(&mut NullSink)
}

/// The paper's headline geomean numbers, derived from panels.
#[derive(Debug, Clone)]
pub struct GeomeanSummary {
    /// Device name.
    pub device: String,
    /// Vulkan vs CUDA geomean (NVIDIA only).
    pub vulkan_vs_cuda: Option<f64>,
    /// Vulkan vs OpenCL geomean.
    pub vulkan_vs_opencl: Option<f64>,
}

/// Summarizes panels into the §V-A2 / §V-B2 geomeans.
pub fn summarize(panels: &[DevicePanel]) -> Vec<GeomeanSummary> {
    panels
        .iter()
        .map(|p| {
            // Vulkan vs CUDA: geomean over bars where both ran.
            let mut vs_cuda = Vec::new();
            for (w, s) in p.bars() {
                let cuda = p
                    .find(&w, &s, Api::Cuda)
                    .and_then(|c| c.outcome.as_ref().ok());
                let vk = p
                    .find(&w, &s, Api::Vulkan)
                    .and_then(|c| c.outcome.as_ref().ok());
                if let (Some(c), Some(v)) = (cuda, vk) {
                    vs_cuda.push(vcb_core::run::speedup(c, v));
                }
            }
            GeomeanSummary {
                device: p.device.clone(),
                vulkan_vs_cuda: geomean(&vs_cuda),
                vulkan_vs_opencl: p.geomean_speedup(Api::Vulkan),
            }
        })
        .collect()
}

/// One API's time decomposition for one workload run — the evidence
/// behind the paper's choice to compare kernel-only times ("a high
/// overhead is generally exhibited by OpenCL JIT compilation and
/// explicit context management resulting in longer total times",
/// §V-A2).
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Programming model.
    pub api: Api,
    /// The run's compute-phase (kernel) time.
    pub kernel: vcb_sim::SimDuration,
    /// End-to-end time of the benchmark body.
    pub total: vcb_sim::SimDuration,
    /// JIT compilation share.
    pub jit: vcb_sim::SimDuration,
    /// Pipeline/kernel-object creation share.
    pub pipeline: vcb_sim::SimDuration,
    /// Data-transfer share.
    pub transfer: vcb_sim::SimDuration,
    /// Host API bookkeeping share.
    pub host_api: vcb_sim::SimDuration,
}

/// Decomposes where each API's end-to-end time goes for one workload
/// (default: gaussian at its smallest desktop size).
pub fn overheads(
    registry: &Arc<KernelRegistry>,
    profile: &DeviceProfile,
    opts: &ExperimentOpts,
) -> Vec<OverheadRow> {
    Session::new(registry, opts).overheads(profile)
}

/// Programming-effort records from running the vector-add micro under
/// every API on `profile` (§VI-A).
pub fn effort(
    registry: &Arc<KernelRegistry>,
    profile: &DeviceProfile,
    opts: &ExperimentOpts,
) -> Vec<vcb_core::effort::EffortRecord> {
    Session::new(registry, opts).effort(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentOpts {
        ExperimentOpts {
            run: RunOpts {
                scale: 0.1,
                validate: false,
                ..RunOpts::default()
            },
            threads: 8,
            sizes_per_workload: 0,
            ..ExperimentOpts::default()
        }
    }

    #[test]
    fn device_panel_runs_every_cell() {
        let registry = vcb_workloads::registry().unwrap();
        let mut profile = devices::powervr_g6430();
        // Shrink to a fast subset by running the mobile class.
        profile.class = vcb_sim::profile::DeviceClass::Mobile;
        let panel = run_device_panel(&registry, &profile, &quick());
        // 8 workloads x 2 sizes x 2 apis + cfd x 1 size x 2 apis.
        assert_eq!(panel.cells.len(), 8 * 2 * 2 + 2);
        // cfd cells are OOM failures.
        let cfd_cells: Vec<_> = panel.cells.iter().filter(|c| c.workload == "cfd").collect();
        assert!(cfd_cells
            .iter()
            .all(|c| matches!(c.outcome, Err(vcb_core::run::RunFailure::OutOfMemory))));
        // backprop fails on the Nexus under both APIs.
        assert!(panel
            .cells
            .iter()
            .filter(|c| c.workload == "backprop")
            .all(|c| matches!(c.outcome, Err(vcb_core::run::RunFailure::DriverFailure))));
        // Cells carry their plan index, in order.
        let indexes: Vec<usize> = panel.cells.iter().map(|c| c.plan_index).collect();
        assert_eq!(indexes, (0..panel.cells.len()).collect::<Vec<_>>());
    }

    #[test]
    fn effort_shows_vulkan_verbosity() {
        let registry = vcb_workloads::registry().unwrap();
        let records = effort(&registry, &devices::gtx1050ti(), &quick());
        assert_eq!(records.len(), 3);
        let by_api = |api: Api| records.iter().find(|r| r.api == api).unwrap();
        assert!(by_api(Api::Vulkan).total_calls > 2 * by_api(Api::Cuda).total_calls);
        assert!(by_api(Api::Vulkan).distinct_calls > by_api(Api::OpenCl).distinct_calls);
    }

    #[test]
    fn filters_prune_plans() {
        let registry = vcb_workloads::registry().unwrap();
        let mut opts = quick();
        opts.filter = vec!["bfs".into()];
        opts.devices = vec!["adreno".into()];
        let session = Session::new(&registry, &opts);
        assert!(session.desktop_devices().is_empty());
        let mobile = session.mobile_devices();
        assert_eq!(mobile.len(), 1);
        let plan = session.plan_panels(&mobile);
        assert!(!plan.is_empty());
        assert!(plan.cells().iter().all(|c| c.workload == "bfs"));
        // stride is filtered out, so no bandwidth cells are planned.
        assert!(session.plan_bandwidth(&mobile).is_empty());
    }

    #[test]
    fn uvm_plan_spans_three_memory_modes_and_dedups_explicit_cells() {
        let registry = vcb_workloads::registry().unwrap();
        let session = Session::new(&registry, &quick());
        let plan = session.plan_uvm();
        // 3 memory modes x (9 suite workloads + vectoradd + stride).
        assert_eq!(plan.len(), 3 * 11);
        assert!(plan.cells().iter().all(|c| c.api == Api::Vulkan));
        let device_names: std::collections::BTreeSet<&str> =
            plan.cells().iter().map(|c| c.device.as_str()).collect();
        assert_eq!(device_names.len(), 3);
        assert!(device_names.iter().any(|d| d.ends_with("-uvm")));
        assert!(device_names.iter().any(|d| d.ends_with("-uvm-oversub")));
        // The explicit-copy column reuses cells the main figures
        // already plan, so under `vcb all` it dedups to zero fresh
        // work; only the `-uvm` variants are new.
        let all = session.plan_all();
        let earlier: std::collections::HashSet<_> = all.cells()[..all.len() - plan.len()]
            .iter()
            .map(vcb_core::plan::CellSpec::key)
            .collect();
        for cell in plan.cells().iter().filter(|c| !c.device.contains("-uvm")) {
            assert!(
                earlier.contains(&cell.key()),
                "explicit cell {}/{} should be shared with the main figures",
                cell.workload,
                cell.size.label
            );
        }
        // `--device` prunes memory modes like any other device list.
        let mut opts = quick();
        opts.devices = vec!["-uvm".into()];
        let pruned = Session::new(&registry, &opts);
        assert!(pruned
            .plan_uvm()
            .cells()
            .iter()
            .all(|c| c.device.contains("-uvm")));
    }

    #[test]
    fn dnn_plan_spans_every_device_variant() {
        let registry = vcb_workloads::registry().unwrap();
        let session = Session::new(&registry, &quick());
        let plan = session.plan_dnn();
        // 12 device variants (4 base x {explicit, -uvm, -uvm-oversub})
        // x 3 workloads x 2 sizes.
        assert_eq!(plan.len(), 12 * 3 * 2);
        assert!(plan.cells().iter().all(|c| c.api == Api::Vulkan));
        let device_names: std::collections::BTreeSet<&str> =
            plan.cells().iter().map(|c| c.device.as_str()).collect();
        assert_eq!(device_names.len(), 12);
        assert_eq!(
            device_names.iter().filter(|d| d.ends_with("-uvm")).count(),
            4
        );
        assert_eq!(
            device_names
                .iter()
                .filter(|d| d.ends_with("-uvm-oversub"))
                .count(),
            4
        );
        // The dnn cells ride `vcb all` (planned before the uvm stage).
        let all = session.plan_all();
        let keys: std::collections::HashSet<_> = all
            .cells()
            .iter()
            .map(vcb_core::plan::CellSpec::key)
            .collect();
        for cell in plan.cells() {
            assert!(keys.contains(&cell.key()), "{} missing", cell.workload);
        }
        // Filters prune workloads and devices like every other figure.
        let mut opts = quick();
        opts.filter = vec!["dnn_gemm".into()];
        opts.devices = vec!["-uvm-oversub".into()];
        let pruned = Session::new(&registry, &opts).plan_dnn();
        assert_eq!(pruned.len(), 4 * 2);
        assert!(pruned
            .cells()
            .iter()
            .all(|c| c.workload == "dnn_gemm" && c.device.ends_with("-uvm-oversub")));
    }

    #[test]
    fn all_plan_dedups_shared_cells() {
        let registry = vcb_workloads::registry().unwrap();
        let session = Session::new(&registry, &quick());
        let plan = session.plan_all();
        // gaussian/208 on the GTX appears in both the Fig. 2 panel and
        // the overheads stage: the plan carries the duplicates, the
        // executor runs them once.
        let gaussian_208 = plan
            .cells()
            .iter()
            .filter(|c| {
                c.workload == "gaussian" && c.size.label == "208" && c.device.contains("1050")
            })
            .count();
        assert!(gaussian_208 >= 6, "panel + overheads cells: {gaussian_208}");
        let unique: std::collections::HashSet<_> = plan
            .cells()
            .iter()
            .map(vcb_core::plan::CellSpec::key)
            .collect();
        assert!(unique.len() < plan.len());
    }
}
