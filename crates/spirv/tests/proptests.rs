//! Property tests: SPIR-V assembly/parse round trips for arbitrary
//! kernel descriptions, and scanner robustness.

use proptest::prelude::*;
use vcb_sim::exec::{BindingAccess, KernelInfo};
use vcb_spirv::{disassemble, extract_kernel_names, SpirvModule};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,24}"
}

proptest! {
    /// assemble -> parse recovers every field of the kernel description.
    #[test]
    fn module_round_trip(
        name in ident(),
        lx in 1u32..512,
        ly in 1u32..4,
        bindings in proptest::collection::vec((any::<bool>(),), 0..6),
        push in 0u32..129,
        shared in 0u64..4096,
        promotable in any::<bool>(),
    ) {
        let mut b = KernelInfo::new(name.clone(), [lx, ly, 1]);
        for (i, (read_only,)) in bindings.iter().enumerate() {
            b = if *read_only {
                b.reads(i as u32, "buf")
            } else {
                b.writes(i as u32, "buf")
            };
        }
        if push > 0 {
            b = b.push_constants(push);
        }
        if shared > 0 {
            b = b.shared_memory(shared);
        }
        if promotable {
            b = b.promotable();
        }
        let info = b.build();
        let module = SpirvModule::assemble(&info);
        let parsed = SpirvModule::parse(module.words()).unwrap();
        let p = parsed.info();
        prop_assert_eq!(&p.name, &name);
        prop_assert_eq!(p.local_size, [lx, ly, 1]);
        prop_assert_eq!(p.bindings.len(), bindings.len());
        for (i, (read_only,)) in bindings.iter().enumerate() {
            let decl = p.binding(i as u32).unwrap();
            let expected = if *read_only { BindingAccess::ReadOnly } else { BindingAccess::ReadWrite };
            prop_assert_eq!(decl.access, expected);
        }
        prop_assert_eq!(p.push_constant_bytes, push);
        prop_assert_eq!(p.shared_bytes, shared);
        prop_assert_eq!(p.promotable, promotable);
        // The disassembler accepts everything the assembler emits.
        let text = disassemble(module.words()).unwrap();
        let quoted = format!("\"{}\"", name);
        prop_assert!(text.contains(&quoted));
    }

    /// Truncating a module anywhere never panics the parser.
    #[test]
    fn parser_never_panics_on_truncation(cut in 0usize..64) {
        let info = KernelInfo::new("k", [8, 1, 1]).reads(0, "a").push_constants(8).build();
        let module = SpirvModule::assemble(&info);
        let words = module.words();
        let cut = cut.min(words.len());
        let _ = SpirvModule::parse(&words[..cut]); // must not panic
    }

    /// Flipping a single word never panics the parser or disassembler.
    #[test]
    fn parser_never_panics_on_corruption(pos in 0usize..64, value in any::<u32>()) {
        let info = KernelInfo::new("k", [8, 1, 1]).reads(0, "a").build();
        let mut words = SpirvModule::assemble(&info).words().to_vec();
        let pos = pos.min(words.len() - 1);
        words[pos] = value;
        let _ = SpirvModule::parse(&words);
        let _ = disassemble(&words);
    }

    /// The kernel-name scanner finds exactly the declared kernels in
    /// generated source with randomized whitespace and decoys.
    #[test]
    fn scanner_finds_declared_kernels(
        names in proptest::collection::btree_set("[a-z][a-z0-9_]{0,12}", 1..5),
        ws in prop_oneof![Just(" "), Just("\n"), Just("\t"), Just("  \n")],
    ) {
        let mut src = String::from("// __kernel void decoy_in_comment(\n");
        for name in &names {
            src.push_str("__kernel");
            src.push_str(ws);
            src.push_str("void");
            src.push_str(ws);
            src.push_str(name);
            src.push_str("(__global float* a) { }\n");
        }
        let found = extract_kernel_names(&src);
        let expected: Vec<String> = names.iter().cloned().collect();
        prop_assert_eq!(found, expected);
    }
}
