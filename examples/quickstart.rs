//! Quickstart: the paper's Listing 1, line for line.
//!
//! A vector addition `Z[i] = X[i] + Y[i]` written against the raw
//! Vulkan-shaped API — instance, physical device, queues, buffers,
//! memory requirements, descriptor sets, pipeline, command buffer,
//! submission. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use vcomputebench::sim::profile::devices;
use vcomputebench::sim::profile::QueueCaps;
use vcomputebench::spirv::SpirvModule;
use vcomputebench::vulkan::{
    BufferCreateInfo, BufferUsage, ComputePipelineCreateInfo, DescriptorSetLayoutBinding,
    DescriptorType, Device, DeviceCreateInfo, DeviceQueueCreateInfo, Fence, Instance,
    InstanceCreateInfo, MemoryAllocateInfo, MemoryProperty, PushConstantRange, SubmitInfo,
    WriteDescriptorSet,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = 1_000_000; // Number of elements in a vector
    let num_work_groups = (n as u32).div_ceil(256); // Workgroup size is 256

    // The kernel registry plays the role of the shipped SPIR-V binaries.
    let registry = vcomputebench::workloads::registry()?;

    // Enumerate devices then create instance, queues and device.
    let instance = Instance::new(&InstanceCreateInfo {
        application_name: "vectorAdd".into(),
        enabled_layers: vec!["VK_LAYER_KHRONOS_validation".into()],
        devices: devices::all(),
        registry: Arc::clone(&registry),
    })?;
    let gpu_list = instance.enumerate_physical_devices();
    println!("found {} Vulkan devices:", gpu_list.len());
    for gpu in &gpu_list {
        let props = gpu.properties();
        println!("  {} (API {})", props.device_name, props.api_version);
    }
    let gpu = &gpu_list[0];
    let queue_family_index = gpu
        .find_queue_family(QueueCaps::COMPUTE)
        .expect("a compute queue family");
    let device = Device::new(
        gpu,
        &DeviceCreateInfo {
            queue_create_infos: vec![DeviceQueueCreateInfo {
                queue_family_index,
                queue_count: 1,
            }],
        },
    )?;
    let compute_queue = device.get_queue(queue_family_index, 0)?;

    // Create buffers then bind them to allocated memory. Listing 1 puts
    // them in DEVICE_LOCAL memory; we use the host-visible heap so the
    // example can read results back without a staging pass.
    let make_buffer = |bytes: u64| -> Result<_, Box<dyn std::error::Error>> {
        let buffer = device.create_buffer(&BufferCreateInfo {
            size: bytes,
            usage: BufferUsage::STORAGE_BUFFER | BufferUsage::TRANSFER_DST,
        })?;
        let reqs = device.get_buffer_memory_requirements(&buffer);
        let mem_index = gpu
            .find_memory_type(reqs.memory_type_bits, MemoryProperty::HOST_VISIBLE)
            .expect("a host-visible memory type");
        let memory = device.allocate_memory(&MemoryAllocateInfo {
            allocation_size: reqs.size,
            memory_type_index: mem_index,
        })?;
        device.bind_buffer_memory(&buffer, &memory)?;
        Ok(buffer)
    };
    let bytes = (n * 4) as u64;
    let buffer_x = make_buffer(bytes)?;
    let buffer_y = make_buffer(bytes)?;
    let buffer_z = make_buffer(bytes)?;

    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
    buffer_x.write_mapped(&x)?;
    buffer_y.write_mapped(&y)?;

    // Create the compute shader and the compute pipeline.
    let kernel_info = registry.lookup("vectoradd_add")?.info().clone();
    let spirv = SpirvModule::assemble(&kernel_info); // readSpirvBinary("vectorAdd.spv")
    let module = device.create_shader_module(spirv.words())?;
    let set_layout = device.create_descriptor_set_layout(&[
        DescriptorSetLayoutBinding {
            binding: 0,
            descriptor_type: DescriptorType::StorageBuffer,
        },
        DescriptorSetLayoutBinding {
            binding: 1,
            descriptor_type: DescriptorType::StorageBuffer,
        },
        DescriptorSetLayoutBinding {
            binding: 2,
            descriptor_type: DescriptorType::StorageBuffer,
        },
    ])?;
    let pipeline_layout = device
        .create_pipeline_layout(&[&set_layout], &[PushConstantRange { offset: 0, size: 4 }])?;
    let pipeline = device.create_compute_pipeline(&ComputePipelineCreateInfo {
        module: &module,
        entry_point: "vectoradd_add",
        layout: &pipeline_layout,
    })?;

    // Bind buffers to the compute pipeline via a descriptor set.
    let descriptor_pool = device.create_descriptor_pool(1)?;
    let descriptor_set = descriptor_pool.allocate_descriptor_set(&set_layout)?;
    device.update_descriptor_sets(&[
        WriteDescriptorSet {
            dst_set: &descriptor_set,
            dst_binding: 0,
            buffer: &buffer_x,
        },
        WriteDescriptorSet {
            dst_set: &descriptor_set,
            dst_binding: 1,
            buffer: &buffer_y,
        },
        WriteDescriptorSet {
            dst_set: &descriptor_set,
            dst_binding: 2,
            buffer: &buffer_z,
        },
    ])?;

    // Create command pool, allocate a command buffer, record commands.
    let cmd_pool = device.create_command_pool(queue_family_index)?;
    let cmd_buffer = cmd_pool.allocate_command_buffer()?;
    cmd_buffer.begin()?;
    cmd_buffer.bind_pipeline(&pipeline)?;
    cmd_buffer.bind_descriptor_sets(&pipeline_layout, &[&descriptor_set])?;
    cmd_buffer.push_constants(&pipeline_layout, 0, &(n as u32).to_le_bytes())?;
    cmd_buffer.dispatch(num_work_groups, 1, 1)?;
    cmd_buffer.end()?;

    // Submit to queue and wait on a fence.
    let fence = Fence::new(&device);
    compute_queue.submit(
        &[SubmitInfo {
            command_buffers: &[&cmd_buffer],
        }],
        Some(&fence),
    )?;
    fence.wait(&device)?;

    // Read back and check.
    let z: Vec<f32> = buffer_z.read_mapped()?;
    let errors = z
        .iter()
        .enumerate()
        .filter(|(i, v)| **v != 3.0 * *i as f32)
        .count();
    println!(
        "\nZ[i] = X[i] + Y[i] over {n} elements: {} mismatches",
        errors
    );
    println!("simulated wall time: {}", device.now().elapsed());
    println!("cost breakdown:      {}", device.breakdown());
    println!(
        "API calls issued:    {} ({} distinct entry points) — Vulkan's verbosity, quantified",
        device.call_counts().total(),
        device.call_counts().distinct()
    );
    assert_eq!(errors, 0);
    Ok(())
}
