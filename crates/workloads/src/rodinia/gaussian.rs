//! gaussian — Gaussian elimination (Table I: Dense Linear Algebra).
//!
//! Solves `A·x = b` by row reduction. Every elimination step `t` runs two
//! kernels — `fan1` computes the column of multipliers, `fan2` updates the
//! trailing submatrix and right-hand side — and step `t+1` depends on
//! step `t`, so the launch-based APIs pay `2·(n-1)` launch round trips.
//! The Vulkan port records all `2·(n-1)` dispatches into one command
//! buffer with barriers; back-substitution runs on the host, as in
//! Rodinia.

use std::sync::Arc;

use vcb_core::run::{RunFailure, RunOutcome, SizeSpec};
use vcb_core::suite::{self, BenchmarkMeta};
use vcb_core::workload::{RunOpts, Workload};
use vcb_sim::exec::{GroupCtx, KernelBody, KernelInfo, MAX_WARP_WIDTH};
use vcb_sim::profile::{DeviceClass, DeviceProfile};
use vcb_sim::{Api, KernelRegistry, SimResult};

use crate::common::{
    approx_eq_f32, bytes_of, measure, to_f32, BodyOutcome, ComputeBackend, UsageHint,
};
use crate::data;

/// Workload name.
pub const NAME: &str = "gaussian";
/// Multiplier-column kernel.
pub const KERNEL_FAN1: &str = "gaussian_fan1";
/// Submatrix-update kernel.
pub const KERNEL_FAN2: &str = "gaussian_fan2";
/// 1-D workgroup size of fan1.
pub const FAN1_LOCAL: u32 = 256;
/// 2-D workgroup edge of fan2.
pub const FAN2_TILE: u32 = 16;

/// The GLSL compute shaders the SPIR-V binaries are built from.
pub const GLSL_SOURCE: &str = r#"
#version 450
// --- gaussian_fan1 ---
layout(local_size_x = 256) in;
layout(set = 0, binding = 0) readonly buffer A1 { float a[]; };
layout(set = 0, binding = 1) buffer M1 { float m[]; };
layout(push_constant) uniform Params { uint n; uint t; };

void main() {
    uint i = gl_GlobalInvocationID.x;
    if (i < n - 1u - t) {
        m[(t + 1u + i) * n + t] = a[(t + 1u + i) * n + t] / a[t * n + t];
    }
}

// --- gaussian_fan2 (separate module, local_size 16x16) ---
// a[row*n+col] -= m[row*n+t] * a[t*n+col]; row = t+1+x, col = t+y;
// the y == 0 column also updates b[row].
"#;

/// The OpenCL C twin of the kernels.
pub const CL_SOURCE: &str = r#"
__kernel void gaussian_fan1(__global const float* a,
                            __global float* m,
                            uint n,
                            uint t) {
    uint i = get_global_id(0);
    if (i < n - 1 - t) {
        m[(t + 1 + i) * n + t] = a[(t + 1 + i) * n + t] / a[t * n + t];
    }
}

__kernel void gaussian_fan2(__global const float* m,
                            __global float* a,
                            __global float* b,
                            uint n,
                            uint t) {
    uint x = get_global_id(0);
    uint y = get_global_id(1);
    if (x >= n - 1 - t || y >= n - t) return;
    uint row = t + 1 + x;
    uint col = t + y;
    a[row * n + col] -= m[row * n + t] * a[t * n + col];
    if (y == 0) {
        b[row] -= m[row * n + t] * b[t];
    }
}
"#;

/// fan1, warp-columnar: one broadcast pivot load, one stride-`n` column
/// load, one stride-`n` column store per warp — all traced analytically.
fn fan1_warp_body() -> Arc<dyn KernelBody> {
    Arc::new(|ctx: &mut GroupCtx<'_>| {
        let a = ctx.global::<f32>(0)?;
        let m = ctx.global::<f32>(1)?;
        let n = ctx.push_u32(0) as usize;
        let t = ctx.push_u32(4) as usize;
        ctx.for_warps(|w| {
            let cnt = w.active_below((n - 1 - t) as u64);
            if cnt == 0 {
                return;
            }
            let base = w.global_base() as usize;
            let pivot = w.ld_bcast(&a, t * n + t, cnt);
            let first = (t + 1 + base) * n + t;
            let mut col = [0f32; MAX_WARP_WIDTH];
            w.ld_stride(&a, first, n, &mut col[..cnt]);
            for e in &mut col[..cnt] {
                *e /= pivot;
            }
            w.alu(cnt as u64);
            w.st_stride(&m, first, n, &col[..cnt]);
        });
        Ok(())
    })
}

/// fan1, lane-at-a-time oracle.
pub fn fan1_lane_body() -> Arc<dyn KernelBody> {
    Arc::new(|ctx: &mut GroupCtx<'_>| {
        let a = ctx.global::<f32>(0)?;
        let m = ctx.global::<f32>(1)?;
        let n = ctx.push_u32(0) as usize;
        let t = ctx.push_u32(4) as usize;
        ctx.for_lanes(|lane| {
            let i = lane.global_linear() as usize;
            if i < n - 1 - t {
                let pivot = lane.ld(&a, t * n + t);
                let v = lane.ld(&a, (t + 1 + i) * n + t) / pivot;
                lane.alu(1);
                lane.st(&m, (t + 1 + i) * n + t, v);
            }
        });
        Ok(())
    })
}

/// fan2, warp-columnar: the 2-D guard leaves an irregular active set
/// inside the 16×16 tile's warps, so the streaming part is a compacted
/// gather/scatter over the active lanes; the `y == 0` right-hand-side
/// update is the trailing divergent tail under `for_active`.
fn fan2_warp_body() -> Arc<dyn KernelBody> {
    Arc::new(|ctx: &mut GroupCtx<'_>| {
        let m = ctx.global::<f32>(0)?;
        let a = ctx.global::<f32>(1)?;
        let b = ctx.global::<f32>(2)?;
        let n = ctx.push_u32(0) as usize;
        let t = ctx.push_u32(4) as usize;
        ctx.for_warps(|w| {
            let lanes = w.lanes();
            let base_local = w.local_linear(0);
            let mut idx_m = [0usize; MAX_WARP_WIDTH];
            let mut idx_p = [0usize; MAX_WARP_WIDTH];
            let mut idx_a = [0usize; MAX_WARP_WIDTH];
            let mut slot = [0usize; MAX_WARP_WIDTH];
            let mut is_b = [false; MAX_WARP_WIDTH];
            let mut rows = [0usize; MAX_WARP_WIDTH];
            let mut k = 0usize;
            for l in 0..lanes {
                let x = w.global_id(l, 0) as usize;
                let y = w.global_id(l, 1) as usize;
                if x >= n - 1 - t || y >= n - t {
                    continue;
                }
                let row = t + 1 + x;
                let col = t + y;
                idx_m[k] = row * n + t;
                idx_p[k] = t * n + col;
                idx_a[k] = row * n + col;
                slot[l] = k;
                is_b[l] = y == 0;
                rows[l] = row;
                k += 1;
            }
            if k == 0 {
                return;
            }
            let mut mult = [0f32; MAX_WARP_WIDTH];
            let mut piv = [0f32; MAX_WARP_WIDTH];
            let mut cur = [0f32; MAX_WARP_WIDTH];
            w.ld_gather(&m, &idx_m[..k], &mut mult[..k]);
            w.ld_gather(&a, &idx_p[..k], &mut piv[..k]);
            w.ld_gather(&a, &idx_a[..k], &mut cur[..k]);
            for i in 0..k {
                cur[i] -= mult[i] * piv[i];
            }
            w.alu(2 * k as u64);
            w.st_scatter(&a, &idx_a[..k], &cur[..k]);
            w.for_active(
                |l| is_b[l],
                |lane| {
                    let l = (lane.local_linear() - base_local) as usize;
                    let row = rows[l];
                    let bt = lane.ld(&b, t);
                    let br = lane.ld(&b, row);
                    lane.alu(2);
                    lane.st(&b, row, br - mult[slot[l]] * bt);
                },
            );
        });
        Ok(())
    })
}

/// fan2, lane-at-a-time oracle.
pub fn fan2_lane_body() -> Arc<dyn KernelBody> {
    Arc::new(|ctx: &mut GroupCtx<'_>| {
        let m = ctx.global::<f32>(0)?;
        let a = ctx.global::<f32>(1)?;
        let b = ctx.global::<f32>(2)?;
        let n = ctx.push_u32(0) as usize;
        let t = ctx.push_u32(4) as usize;
        ctx.for_lanes(|lane| {
            let x = lane.global_id(0) as usize;
            let y = lane.global_id(1) as usize;
            if x >= n - 1 - t || y >= n - t {
                return;
            }
            let row = t + 1 + x;
            let col = t + y;
            let mult = lane.ld(&m, row * n + t);
            let pivot_row = lane.ld(&a, t * n + col);
            let cur = lane.ld(&a, row * n + col);
            lane.alu(2);
            lane.st(&a, row * n + col, cur - mult * pivot_row);
            if y == 0 {
                let bt = lane.ld(&b, t);
                let br = lane.ld(&b, row);
                lane.alu(2);
                lane.st(&b, row, br - mult * bt);
            }
        });
        Ok(())
    })
}

fn register_bodies(
    registry: &mut KernelRegistry,
    fan1_body: Arc<dyn KernelBody>,
    fan2_body: Arc<dyn KernelBody>,
) -> SimResult<()> {
    // parallel_groups audit: item i writes only m[(t+1+i)*n+t]; `a`
    // (including the shared pivot row) is read-only this dispatch.
    let fan1 = KernelInfo::new(KERNEL_FAN1, [FAN1_LOCAL, 1, 1])
        .reads(0, "a")
        .writes(1, "m")
        .push_constants(8)
        .parallel_groups()
        .source_bytes(CL_SOURCE.len() as u64 / 2)
        .build();
    registry.register(fan1, fan1_body)?;

    // parallel_groups audit: writes go to rows >= t+1 of a/b while reads
    // of shared state touch only row t (a) and b[t], never written here;
    // per-item writes are disjoint.
    let fan2 = KernelInfo::new(KERNEL_FAN2, [FAN2_TILE, FAN2_TILE, 1])
        .reads(0, "m")
        .writes(1, "a")
        .writes(2, "b")
        .push_constants(8)
        .parallel_groups()
        .source_bytes(CL_SOURCE.len() as u64 / 2)
        .build();
    registry.register(fan2, fan2_body)
}

/// Registers both kernel bodies.
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register(registry: &mut KernelRegistry) -> SimResult<()> {
    register_bodies(registry, fan1_warp_body(), fan2_warp_body())
}

/// Registers the lane-at-a-time oracle bodies instead of the
/// warp-columnar production bodies (differential testing only).
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register_lane_oracle(registry: &mut KernelRegistry) -> SimResult<()> {
    register_bodies(registry, fan1_lane_body(), fan2_lane_body())
}

/// CPU reference: forward elimination + back substitution, same
/// operation order as the kernels.
pub fn reference(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    let mut m = vec![0.0f32; n * n];
    for t in 0..n - 1 {
        for i in t + 1..n {
            m[i * n + t] = a[i * n + t] / a[t * n + t];
        }
        for row in t + 1..n {
            let mult = m[row * n + t];
            for col in t..n {
                a[row * n + col] -= mult * a[t * n + col];
            }
            b[row] -= mult * b[t];
        }
    }
    back_substitute(&a, &b, n)
}

/// Back substitution on an upper-triangular system (host side, as in
/// Rodinia).
pub fn back_substitute(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut x = vec![0.0f32; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in i + 1..n {
            sum -= a[i * n + j] * x[j];
        }
        x[i] = sum / a[i * n + i];
    }
    x
}

fn fan1_groups(n: usize, t: usize) -> u32 {
    ((n - 1 - t) as u32).div_ceil(FAN1_LOCAL).max(1)
}

fn fan2_groups(n: usize, t: usize) -> [u32; 3] {
    let rows = ((n - 1 - t) as u32).div_ceil(FAN2_TILE).max(1);
    let cols = ((n - t) as u32).div_ceil(FAN2_TILE).max(1);
    [rows, cols, 1]
}

fn push(n: usize, t: usize) -> Vec<u8> {
    let mut p = Vec::with_capacity(8);
    p.extend_from_slice(&(n as u32).to_le_bytes());
    p.extend_from_slice(&(t as u32).to_le_bytes());
    p
}

/// The one host program behind all three APIs: `2(n-1)` dependent
/// fan1/fan2 dispatches recorded as one sequence (one pre-recorded
/// command buffer under Vulkan; `2(n-1)` launch round trips under the
/// launch-based APIs), then host-side back substitution as in Rodinia.
fn host_program(
    b: &mut dyn ComputeBackend,
    n: usize,
    a_host: &[f32],
    b_host: &[f32],
    expected: Option<&Vec<f32>>,
) -> Result<BodyOutcome, RunFailure> {
    let a = b.upload(bytes_of(a_host), UsageHint::ReadWrite)?;
    let bb = b.upload(bytes_of(b_host), UsageHint::ReadWrite)?;
    let m = b.alloc((n * n * 4) as u64, UsageHint::ReadWrite)?;
    b.load_program(CL_SOURCE)?;

    // fan1 set: (a, m); fan2 set: (m, a, b).
    let bind1 = b.bind_group(&[a, m])?;
    let bind2 = b.bind_group(&[m, a, bb])?;
    let fan1 = b.kernel(KERNEL_FAN1, bind1, 8)?;
    let fan2 = b.kernel(KERNEL_FAN2, bind2, 8)?;

    let seq = b.seq_begin()?;
    for t in 0..n - 1 {
        b.seq_kernel(seq, fan1)?;
        b.seq_bind(seq, bind1)?;
        b.seq_push(seq, &push(n, t))?;
        b.seq_dispatch(seq, [fan1_groups(n, t), 1, 1])?;
        b.seq_dependency(seq)?;
        b.seq_kernel(seq, fan2)?;
        b.seq_bind(seq, bind2)?;
        b.seq_push(seq, &push(n, t))?;
        b.seq_dispatch(seq, fan2_groups(n, t))?;
        b.seq_dependency(seq)?;
    }
    b.seq_end(seq)?;

    let compute_start = b.now();
    b.run(seq)?;
    let compute_time = b.now().duration_since(compute_start);

    let a_out = to_f32(&b.download(a)?);
    let b_out = to_f32(&b.download(bb)?);
    let x = back_substitute(&a_out, &b_out, n);
    Ok(BodyOutcome {
        validated: expected.is_none_or(|e| approx_eq_f32(&x, e, 2e-2)),
        compute_time,
    })
}

fn run(
    api: Api,
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let mut b = vcb_backend::create_with(api, profile, registry, &opts.into())?;
    let (a_host, b_host) = data::linear_system(n, opts.seed);
    let expected = opts.validate.then(|| reference(&a_host, &b_host, n));
    measure(NAME, &size.label, b.as_mut(), |b| {
        host_program(b, n, &a_host, &b_host, expected.as_ref())
    })
}

/// The gaussian suite entry.
#[derive(Debug, Clone)]
pub struct Gaussian {
    registry: Arc<KernelRegistry>,
}

impl Gaussian {
    /// Creates the workload against a kernel registry.
    pub fn new(registry: Arc<KernelRegistry>) -> Self {
        Gaussian { registry }
    }
}

impl Workload for Gaussian {
    fn meta(&self) -> BenchmarkMeta {
        *suite::find(NAME).expect("gaussian is in Table I")
    }

    fn sizes(&self, class: DeviceClass) -> Vec<SizeSpec> {
        match class {
            DeviceClass::Desktop => vec![
                SizeSpec::new("208", 208),
                SizeSpec::new("1024", 1024),
                SizeSpec::new("2048", 2048),
            ],
            DeviceClass::Mobile => vec![SizeSpec::new("208", 208), SizeSpec::new("416", 416)],
        }
    }

    fn run(&self, api: Api, device: &DeviceProfile, size: &SizeSpec, opts: &RunOpts) -> RunOutcome {
        run(api, device, &self.registry, size, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_core::run::speedup;
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        let mut r = KernelRegistry::new();
        register(&mut r).unwrap();
        Arc::new(r)
    }

    #[test]
    fn reference_solves_the_system() {
        let n = 24;
        let (a, b) = data::linear_system(n, 3);
        let x = reference(&a, &b, n);
        // Check A·x ≈ b.
        for i in 0..n {
            let dot: f32 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            assert!((dot - b[i]).abs() < 1e-2, "row {i}: {dot} vs {}", b[i]);
        }
    }

    #[test]
    fn all_apis_match_reference() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("48", 48);
        let w = Gaussian::new(Arc::clone(&registry));
        for api in Api::ALL {
            let record = w.run(api, &devices::gtx1050ti(), &size, &opts).unwrap();
            assert!(record.validated, "{api} failed validation");
        }
    }

    #[test]
    fn vulkan_shines_at_small_matrices() {
        // 2(n-1) dependent launches of tiny kernels: launch-overhead bound.
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("208", 208);
        let w = Gaussian::new(Arc::clone(&registry));
        let profile = devices::gtx1050ti();
        let vk = w.run(Api::Vulkan, &profile, &size, &opts).unwrap();
        let cu = w.run(Api::Cuda, &profile, &size, &opts).unwrap();
        let s = speedup(&cu, &vk);
        assert!(s > 1.8, "gaussian 208 speedup {s}");
    }

    #[test]
    fn runs_on_mobile() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("64", 64);
        let w = Gaussian::new(Arc::clone(&registry));
        let cl = w
            .run(Api::OpenCl, &devices::powervr_g6430(), &size, &opts)
            .unwrap();
        assert!(cl.validated);
        let vk = w
            .run(Api::Vulkan, &devices::adreno506(), &size, &opts)
            .unwrap();
        assert!(vk.validated);
    }
}
