//! DRAM service-time model.
//!
//! Converts sector traffic into time: sectors stream at the device's
//! effective bandwidth, and row-buffer misses add a per-row activation
//! penalty. The row model is what keeps achieved bandwidth *degrading*
//! past the point where every access already occupies its own sector —
//! matching the long tail of Fig. 1 in the paper (stride 8..32 keeps
//! getting slower even though sector traffic is constant).

use crate::profile::MemoryProfile;
use crate::time::SimDuration;

/// Aggregate DRAM traffic of one dispatch (after L2 filtering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DramTraffic {
    /// Sectors fetched from or written to DRAM.
    pub sectors: u64,
    /// Row-buffer misses among those sectors.
    pub row_misses: u64,
}

impl DramTraffic {
    /// Accumulates another traffic record.
    pub fn add(&mut self, other: DramTraffic) {
        self.sectors += other.sectors;
        self.row_misses += other.row_misses;
    }

    /// Bytes moved to/from DRAM.
    pub fn bytes(&self, sector_bytes: u64) -> u64 {
        self.sectors * sector_bytes
    }
}

/// Multiply-xor (splitmix64 finalizer) hasher for the tracker's `u64`
/// row keys. The row map sits on the traced-execution hot path — one
/// lookup per L2 miss — where std's DoS-resistant SipHash costs more
/// than the rest of the model combined. Row indices are simulation
/// state, not attacker input, so a fast deterministic mix is the right
/// trade.
#[derive(Debug, Clone, Copy, Default)]
pub struct RowHasher(u64);

impl std::hash::Hasher for RowHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // splitmix64 finalizer.
        let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15) ^ self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }
}

type RowMap = std::collections::HashMap<u64, u64, std::hash::BuildHasherDefault<RowHasher>>;

/// Streaming row-buffer tracker.
///
/// Tracks an approximate-LRU window of recently open rows. The window is
/// deliberately larger than the physical bank count: it stands in for
/// bank-level parallelism *and* the memory controller's reordering
/// window, so interleaved streams over several arrays (a stencil reading
/// three buffers) exploit row locality as real controllers do, while
/// genuinely streaming patterns (large strides that never revisit a row)
/// still pay one activation per row. A full bank/channel model is
/// unnecessary for the paper's effects; the open-row hit rate under
/// strided streams is what matters.
#[derive(Debug, Clone)]
pub struct RowTracker {
    row_bytes: u64,
    /// row -> last-use stamp.
    open_rows: RowMap,
    clock: u64,
}

impl RowTracker {
    /// Rows kept "open" (reachable without a new activation).
    const WINDOW: u64 = 512;

    /// Creates a tracker for the given row size.
    ///
    /// # Panics
    ///
    /// Panics if `row_bytes` is zero.
    pub fn new(row_bytes: u64) -> Self {
        assert!(row_bytes > 0);
        RowTracker {
            row_bytes,
            open_rows: RowMap::with_capacity_and_hasher(
                2 * Self::WINDOW as usize,
                Default::default(),
            ),
            clock: 0,
        }
    }

    /// Observes a sector-granular access at byte address `addr`; returns
    /// `true` on a row miss (activation).
    pub fn observe(&mut self, addr: u64) -> bool {
        let row = addr / self.row_bytes;
        self.clock += 1;
        let clock = self.clock;
        let hit = match self.open_rows.get_mut(&row) {
            // A row counts as open if it was used within the last WINDOW
            // activations-or-uses (approximate LRU).
            Some(stamp) if clock - *stamp <= Self::WINDOW => {
                *stamp = clock;
                true
            }
            Some(stamp) => {
                *stamp = clock;
                false
            }
            None => {
                self.open_rows.insert(row, clock);
                false
            }
        };
        // Amortized cleanup keeps the map bounded.
        if self.open_rows.len() > 4 * Self::WINDOW as usize {
            self.open_rows
                .retain(|_, stamp| clock - *stamp <= Self::WINDOW);
        }
        !hit
    }

    /// Observes `len` consecutive sectors of `sector_bytes` each starting
    /// at sector index `first` — one model call per run of L2 misses
    /// instead of one per sector. Returns the number of row misses
    /// (activations).
    ///
    /// Exactly equivalent to calling [`RowTracker::observe`] for each
    /// sector address in order: within a run, all sectors of one row are
    /// consecutive, so only the first access of each row segment can miss
    /// (the rest find the stamp they just refreshed), and the clock
    /// simply advances by the segment length.
    pub fn observe_run(&mut self, first: u64, len: u64, sector_bytes: u64) -> u64 {
        let mut misses = 0u64;
        let mut sector = first;
        let end = first + len;
        while sector < end {
            let row = sector * sector_bytes / self.row_bytes;
            // First sector of the next row, capped to the run.
            let next = (((row + 1) * self.row_bytes).div_ceil(sector_bytes)).min(end);
            let segment = next - sector;
            self.clock += 1;
            let clock = self.clock;
            let hit = match self.open_rows.get_mut(&row) {
                Some(stamp) if clock - *stamp <= Self::WINDOW => {
                    *stamp = clock;
                    true
                }
                Some(stamp) => {
                    *stamp = clock;
                    false
                }
                None => {
                    self.open_rows.insert(row, clock);
                    false
                }
            };
            if !hit {
                misses += 1;
            }
            // The remaining `segment - 1` accesses of this row segment
            // always hit (they see the stamp set one tick earlier);
            // advance the clock and the stamp past them in one step.
            if segment > 1 {
                self.clock += segment - 1;
                let clock = self.clock;
                if let Some(stamp) = self.open_rows.get_mut(&row) {
                    *stamp = clock;
                }
            }
            // Amortized cleanup, as in the per-sector path (the retain
            // point only affects which *stale* entries linger, and a
            // stale entry behaves exactly like an absent one).
            if self.open_rows.len() > 4 * Self::WINDOW as usize {
                let clock = self.clock;
                self.open_rows
                    .retain(|_, stamp| clock - *stamp <= Self::WINDOW);
            }
            sector = next;
        }
        misses
    }

    /// Forgets all open rows (e.g. between dispatches of unrelated data).
    pub fn reset(&mut self) {
        self.open_rows.clear();
        self.clock = 0;
    }
}

/// Computes DRAM service time for aggregated traffic.
///
/// Row activations on a *streaming* pattern (most of each row consumed)
/// are hidden behind data transfer by bank-level parallelism; only the
/// unhidden fraction — rows that are touched sparsely — adds the
/// activation penalty. This is what keeps achieved bandwidth degrading
/// past the one-sector-per-access stride in Fig. 1 while sequential
/// streams still reach the device's efficiency fraction of peak.
pub fn dram_time(mem: &MemoryProfile, traffic: DramTraffic) -> SimDuration {
    if traffic.sectors == 0 {
        return SimDuration::ZERO;
    }
    let bytes = traffic.bytes(mem.sector_bytes) as f64;
    let stream = SimDuration::from_secs(bytes / mem.effective_bandwidth_bytes_per_sec());
    let activations = if traffic.row_misses == 0 {
        SimDuration::ZERO
    } else {
        let sectors_per_row = traffic.sectors as f64 / traffic.row_misses as f64;
        let full_row = (mem.row_bytes / mem.sector_bytes) as f64;
        let unhidden = (1.0 - sectors_per_row / full_row).clamp(0.0, 1.0);
        (mem.row_miss_penalty * traffic.row_misses).scale(unhidden)
    };
    // One latency floor for the first dependent access; everything else is
    // pipelined behind it.
    stream + activations + mem.latency
}

/// Service time for sectors that hit in the L2 (no DRAM involvement).
pub fn l2_time(mem: &MemoryProfile, sectors: u64) -> SimDuration {
    if sectors == 0 {
        return SimDuration::ZERO;
    }
    let bytes = (sectors * mem.sector_bytes) as f64;
    let bw = mem.effective_bandwidth_bytes_per_sec() * mem.l2_bandwidth_scale;
    SimDuration::from_secs(bytes / bw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::devices;

    fn mem() -> MemoryProfile {
        devices::gtx1050ti().memory
    }

    #[test]
    fn more_sectors_take_longer() {
        let m = mem();
        let t1 = dram_time(
            &m,
            DramTraffic {
                sectors: 1000,
                row_misses: 0,
            },
        );
        let t2 = dram_time(
            &m,
            DramTraffic {
                sectors: 2000,
                row_misses: 0,
            },
        );
        assert!(t2 > t1);
    }

    #[test]
    fn row_misses_add_penalty() {
        let m = mem();
        let base = dram_time(
            &m,
            DramTraffic {
                sectors: 1000,
                row_misses: 0,
            },
        );
        let misses = dram_time(
            &m,
            DramTraffic {
                sectors: 1000,
                row_misses: 500,
            },
        );
        assert!(misses > base);
        // Sparse row use (2 sectors/row vs 32 per full row) leaves most of
        // the activation penalty unhidden.
        let unhidden = 1.0 - 2.0 / 32.0;
        let expected = (m.row_miss_penalty * 500).scale(unhidden);
        assert_eq!(misses - base, expected);
    }

    #[test]
    fn l2_is_faster_than_dram() {
        let m = mem();
        let dram = dram_time(
            &m,
            DramTraffic {
                sectors: 10_000,
                row_misses: 0,
            },
        );
        let l2 = l2_time(&m, 10_000);
        assert!(l2 < dram);
    }

    #[test]
    fn zero_traffic_is_free() {
        let m = mem();
        assert_eq!(dram_time(&m, DramTraffic::default()), SimDuration::ZERO);
        assert_eq!(l2_time(&m, 0), SimDuration::ZERO);
    }

    #[test]
    fn row_tracker_sequential_stream_mostly_hits() {
        let mut t = RowTracker::new(1024);
        let mut misses = 0;
        for i in 0..1024u64 {
            if t.observe(i * 32) {
                misses += 1;
            }
        }
        // 1024 sectors * 32B = 32 KiB = 32 rows.
        assert_eq!(misses, 32);
    }

    #[test]
    fn row_tracker_large_stride_always_misses() {
        let mut t = RowTracker::new(1024);
        let mut misses = 0;
        for i in 0..64u64 {
            if t.observe(i * 4096) {
                misses += 1;
            }
        }
        assert_eq!(misses, 64);
    }

    #[test]
    fn unit_stride_achieves_efficiency_fraction_of_peak() {
        // Reading N bytes at unit stride should achieve ~peak*efficiency.
        let m = mem();
        let n_bytes: u64 = 64 * 1024 * 1024;
        let sectors = n_bytes / m.sector_bytes;
        let rows = n_bytes / m.row_bytes;
        let t = dram_time(
            &m,
            DramTraffic {
                sectors,
                row_misses: rows,
            },
        );
        let achieved = n_bytes as f64 / t.as_secs();
        let peak = m.peak_bandwidth_bytes_per_sec();
        let frac = achieved / peak;
        assert!(
            frac > 0.70 && frac <= m.peak_efficiency + 1e-9,
            "achieved fraction {frac}"
        );
    }
}
