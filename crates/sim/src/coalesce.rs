//! Warp-level memory access coalescing.
//!
//! Modern GPUs service a warp's memory instruction by merging the lanes'
//! byte addresses into a minimal set of *sectors* (32 B on the modelled
//! parts). A perfectly coalesced, unit-stride `f32` access by 32 lanes
//! touches 4 sectors; a stride-8 (32 B) access touches 32 — an 8x traffic
//! amplification. This is the mechanism behind Fig. 1 and Fig. 3 of the
//! paper.

/// Result of coalescing one warp-wide access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoalesceResult {
    /// Distinct memory sectors touched (unit of DRAM traffic).
    pub sectors: u32,
    /// Distinct cache lines touched (unit of cache occupancy).
    pub lines: u32,
    /// Bytes the lanes actually asked for (useful bytes).
    pub useful_bytes: u64,
}

/// Coalesces lane addresses into sectors and lines.
///
/// The unit is stateless apart from scratch storage; one instance per
/// simulated warp scheduler is plenty.
///
/// ```
/// use vcb_sim::coalesce::Coalescer;
///
/// let mut c = Coalescer::new(32, 128);
/// // 32 lanes reading consecutive f32s: 4 sectors, 1 line.
/// let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
/// let r = c.coalesce(&addrs, 4);
/// assert_eq!(r.sectors, 4);
/// assert_eq!(r.lines, 1);
/// assert_eq!(r.useful_bytes, 128);
/// ```
#[derive(Debug, Clone)]
pub struct Coalescer {
    sector_bytes: u64,
    line_bytes: u64,
    scratch: Vec<u64>,
}

impl Coalescer {
    /// Creates a coalescer for the given sector and line sizes.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero or `line_bytes` is not a multiple of
    /// `sector_bytes` (a profile lint catches this earlier).
    pub fn new(sector_bytes: u64, line_bytes: u64) -> Self {
        assert!(sector_bytes > 0 && line_bytes > 0);
        assert_eq!(line_bytes % sector_bytes, 0);
        Coalescer {
            sector_bytes,
            line_bytes,
            scratch: Vec::with_capacity(128),
        }
    }

    /// Sector size in bytes.
    pub fn sector_bytes(&self) -> u64 {
        self.sector_bytes
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Coalesces one warp access: `addresses` are the active lanes' byte
    /// addresses, `access_bytes` the per-lane access width.
    ///
    /// An access that straddles a sector boundary touches both sectors.
    pub fn coalesce(&mut self, addresses: &[u64], access_bytes: u32) -> CoalesceResult {
        if addresses.is_empty() {
            return CoalesceResult::default();
        }
        self.scratch.clear();
        expand_sectors(
            addresses,
            u64::from(access_bytes),
            self.sector_bytes,
            &mut self.scratch,
        );
        let sectors = self.scratch.len() as u32;
        let per_line = (self.line_bytes / self.sector_bytes).max(1);
        let mut lines = 0u32;
        let mut last_line = u64::MAX;
        for &sector in &self.scratch {
            let line = sector / per_line;
            if line != last_line {
                lines += 1;
                last_line = line;
            }
        }
        CoalesceResult {
            sectors,
            lines,
            useful_bytes: addresses.len() as u64 * access_bytes as u64,
        }
    }

    /// Returns the sector indices of the most recent [`Coalescer::coalesce`]
    /// call (sorted, deduplicated). Used by the cache model to replay the
    /// exact traffic.
    pub fn last_sectors(&self) -> &[u64] {
        &self.scratch
    }
}

/// Expands lane byte addresses into the sorted, deduplicated list of
/// sector indices they touch, appended to `out` (callers clear it
/// first). This is *the* definition of warp coalescing — both
/// [`Coalescer::coalesce`] and the engine's traced-group flush route
/// through it, so the two can never drift apart.
///
/// Lane addresses overwhelmingly arrive presorted (flush feeds them in
/// ascending lane order, and unit-stride / strided patterns keep
/// addresses monotonic), so a single monotonicity scan usually replaces
/// the sort and the merge is a plain adjacent dedup.
pub fn expand_sectors(addresses: &[u64], access_bytes: u64, sector_bytes: u64, out: &mut Vec<u64>) {
    let mut sorted = true;
    let mut prev = 0u64;
    for &addr in addresses {
        sorted &= addr >= prev;
        prev = addr;
        let mut s = addr / sector_bytes;
        let last = (addr + access_bytes - 1) / sector_bytes;
        while s <= last {
            out.push(s);
            s += 1;
        }
    }
    if !sorted {
        out.sort_unstable();
    }
    out.dedup();
}

/// Analytic transaction count for a strided access pattern, used by the
/// tally (non-traced) execution mode.
///
/// `n` accesses of `access_bytes` each, at a byte stride of `stride_bytes`,
/// starting sector-aligned.
pub fn strided_sectors(n: u64, access_bytes: u64, stride_bytes: u64, sector_bytes: u64) -> u64 {
    if n == 0 || access_bytes == 0 {
        return 0;
    }
    if stride_bytes <= access_bytes {
        // Dense or overlapping: total span / sector size.
        let span = (n - 1) * stride_bytes + access_bytes;
        return span.div_ceil(sector_bytes);
    }
    if stride_bytes >= sector_bytes {
        // Every access lands in its own sector (or two if straddling).
        let straddle = if access_bytes > 1 && !stride_bytes.is_multiple_of(sector_bytes) {
            // Conservative: no straddle accounting for aligned base.
            0
        } else {
            0
        };
        return n + straddle;
    }
    // Sparse within sectors: each sector of the span is touched roughly
    // every `sector/stride` accesses.
    let span = (n - 1) * stride_bytes + access_bytes;
    span.div_ceil(sector_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: u64, stride: u64, width: u64) -> Vec<u64> {
        (0..n).map(|i| i * stride * width).collect()
    }

    #[test]
    fn unit_stride_is_fully_coalesced() {
        let mut c = Coalescer::new(32, 128);
        let r = c.coalesce(&seq(32, 1, 4), 4);
        assert_eq!(r.sectors, 4);
        assert_eq!(r.lines, 1);
    }

    #[test]
    fn stride_two_doubles_traffic() {
        let mut c = Coalescer::new(32, 128);
        let r = c.coalesce(&seq(32, 2, 4), 4);
        assert_eq!(r.sectors, 8);
        assert_eq!(r.lines, 2);
    }

    #[test]
    fn stride_eight_hits_one_sector_per_lane() {
        let mut c = Coalescer::new(32, 128);
        // 8 f32 elements per 32-byte sector, so stride 8 isolates lanes.
        let r = c.coalesce(&seq(32, 8, 4), 4);
        assert_eq!(r.sectors, 32);
    }

    #[test]
    fn larger_strides_do_not_add_sectors() {
        let mut c = Coalescer::new(32, 128);
        let r8 = c.coalesce(&seq(32, 8, 4), 4);
        let r32 = c.coalesce(&seq(32, 32, 4), 4);
        assert_eq!(r8.sectors, r32.sectors);
        // But they spread over more lines.
        assert!(r32.lines >= r8.lines);
    }

    #[test]
    fn straddling_access_touches_two_sectors() {
        let mut c = Coalescer::new(32, 128);
        let r = c.coalesce(&[30], 4);
        assert_eq!(r.sectors, 2);
    }

    #[test]
    fn duplicate_addresses_merge() {
        let mut c = Coalescer::new(32, 128);
        let r = c.coalesce(&[0, 0, 0, 0], 4);
        assert_eq!(r.sectors, 1);
        assert_eq!(r.useful_bytes, 16);
    }

    #[test]
    fn empty_access_is_free() {
        let mut c = Coalescer::new(32, 128);
        assert_eq!(c.coalesce(&[], 4), CoalesceResult::default());
    }

    #[test]
    fn analytic_matches_traced_for_strides() {
        let mut c = Coalescer::new(32, 128);
        for stride in [1u64, 2, 3, 4, 8, 12, 16, 32] {
            let addrs = seq(64, stride, 4);
            let traced = c.coalesce(&addrs, 4).sectors as u64;
            let analytic = strided_sectors(64, 4, stride * 4, 32);
            assert_eq!(traced, analytic, "stride {stride}");
        }
    }
}
