//! lud — blocked LU decomposition (Table I: Dense Linear Algebra).
//!
//! Factorizes `A = L·U` in place with the Rodinia blocked scheme: for
//! each diagonal block step, a `diagonal` kernel factorizes the pivot
//! block, a `perimeter` kernel updates the row and column panels, and an
//! `internal` kernel applies the rank-`BS` update to the trailing
//! submatrix. Three dependent kernels per step × `n/BS` steps — another
//! iterative workload where the Vulkan port records everything into one
//! command buffer (at the cost of three pipeline binds per step).

use std::sync::Arc;

use vcb_core::run::{RunFailure, RunOutcome, SizeSpec};
use vcb_core::suite::{self, BenchmarkMeta};
use vcb_core::workload::{RunOpts, Workload};
use vcb_sim::exec::{GroupCtx, KernelInfo};
use vcb_sim::profile::{DeviceClass, DeviceProfile};
use vcb_sim::{Api, KernelRegistry, SimResult};

use crate::common::{
    approx_eq_f32, bytes_of, measure, to_f32, BodyOutcome, ComputeBackend, UsageHint,
};
use crate::data;

/// Workload name.
pub const NAME: &str = "lud";
/// Pivot-block kernel.
pub const KERNEL_DIAGONAL: &str = "lud_diagonal";
/// Panel kernel.
pub const KERNEL_PERIMETER: &str = "lud_perimeter";
/// Trailing-update kernel.
pub const KERNEL_INTERNAL: &str = "lud_internal";
/// Block size.
pub const BS: usize = 16;

/// The GLSL compute shaders the SPIR-V binaries are built from
/// (`lud_internal` shown; diagonal and perimeter follow Rodinia's
/// structure with shared-memory tiles).
pub const GLSL_SOURCE: &str = r#"
#version 450
#define BS 16
layout(local_size_x = BS, local_size_y = BS) in;
layout(set = 0, binding = 0) buffer A { float a[]; };
layout(push_constant) uniform Params { uint n; uint t; };

shared float l[BS * BS];
shared float u[BS * BS];

void main() {
    uint tx = gl_LocalInvocationID.x;
    uint ty = gl_LocalInvocationID.y;
    uint bi = t + 1u + gl_WorkGroupID.y;
    uint bj = t + 1u + gl_WorkGroupID.x;
    l[ty * BS + tx] = a[(bi * BS + ty) * n + t * BS + tx];
    u[ty * BS + tx] = a[(t * BS + ty) * n + bj * BS + tx];
    barrier();
    float sum = 0.0;
    for (int k = 0; k < BS; ++k) {
        sum += l[ty * BS + uint(k)] * u[uint(k) * BS + tx];
    }
    a[(bi * BS + ty) * n + bj * BS + tx] -= sum;
}
"#;

/// The OpenCL C twins of the kernels (structure of Rodinia `lud_kernel.cl`).
pub const CL_SOURCE: &str = r#"
#define BS 16

__kernel void lud_diagonal(__global float* a, uint n, uint t) {
    __local float tile[BS * BS];
    int tx = get_local_id(0);
    uint base = t * BS * n + t * BS;
    for (int i = 0; i < BS; ++i) tile[i * BS + tx] = a[base + i * n + tx];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < BS - 1; ++k) {
        if (tx > k) {
            tile[tx * BS + k] /= tile[k * BS + k];
            for (int j = k + 1; j < BS; ++j)
                tile[tx * BS + j] -= tile[tx * BS + k] * tile[k * BS + j];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    for (int i = 0; i < BS; ++i) a[base + i * n + tx] = tile[i * BS + tx];
}

__kernel void lud_perimeter(__global float* a, uint n, uint t) {
    __local float diag[BS * BS];
    __local float tile[BS * BS];
    int tx = get_local_id(0);
    int g = get_group_id(0);
    uint nb = n / BS;
    uint rem = nb - t - 1;
    uint diag_base = t * BS * n + t * BS;
    for (int i = 0; i < BS; ++i) diag[i * BS + tx] = a[diag_base + i * n + tx];
    barrier(CLK_LOCAL_MEM_FENCE);
    if (g < (int)rem) {
        /* row panel block (t, t+1+g): tile = L(t,t)^-1 * tile */
        uint base = t * BS * n + (t + 1 + g) * BS;
        for (int i = 0; i < BS; ++i) tile[i * BS + tx] = a[base + i * n + tx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BS - 1; ++k) {
            for (int i = k + 1; i < BS; ++i)
                tile[i * BS + tx] -= diag[i * BS + k] * tile[k * BS + tx];
            barrier(CLK_LOCAL_MEM_FENCE);
        }
        for (int i = 0; i < BS; ++i) a[base + i * n + tx] = tile[i * BS + tx];
    } else {
        /* column panel block (t+1+(g-rem), t): tile = tile * U(t,t)^-1 */
        uint base = (t + 1 + (g - rem)) * BS * n + t * BS;
        for (int i = 0; i < BS; ++i) tile[i * BS + tx] = a[base + i * n + tx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BS; ++k) {
            tile[tx * BS + k] /= diag[k * BS + k];
            for (int j = k + 1; j < BS; ++j)
                tile[tx * BS + j] -= tile[tx * BS + k] * diag[k * BS + j];
            barrier(CLK_LOCAL_MEM_FENCE);
        }
        for (int i = 0; i < BS; ++i) a[base + i * n + tx] = tile[i * BS + tx];
    }
}

__kernel void lud_internal(__global float* a, uint n, uint t) {
    __local float l[BS * BS];
    __local float u[BS * BS];
    int tx = get_local_id(0);
    int ty = get_local_id(1);
    uint nb = n / BS;
    uint rem = nb - t - 1;
    uint bi = t + 1 + get_group_id(1);
    uint bj = t + 1 + get_group_id(0);
    l[ty * BS + tx] = a[(bi * BS + ty) * n + t * BS + tx];
    u[ty * BS + tx] = a[(t * BS + ty) * n + bj * BS + tx];
    barrier(CLK_LOCAL_MEM_FENCE);
    float sum = 0.0f;
    for (int k = 0; k < BS; ++k) sum += l[ty * BS + k] * u[k * BS + tx];
    a[(bi * BS + ty) * n + bj * BS + tx] -= sum;
}
"#;

/// Registers all three kernel bodies.
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register(registry: &mut KernelRegistry) -> SimResult<()> {
    let src_third = CL_SOURCE.len() as u64 / 3;
    // parallel_groups audit: a single-group dispatch (trivially
    // order-independent); factorization happens in shared memory.
    let diagonal = KernelInfo::new(KERNEL_DIAGONAL, [BS as u32, 1, 1])
        .writes(0, "a")
        .push_constants(8)
        .parallel_groups()
        .shared_memory((BS * BS * 4) as u64)
        .source_bytes(src_third)
        .build();
    registry.register(
        diagonal,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let a = ctx.global::<f32>(0)?;
            let n = ctx.push_u32(0) as usize;
            let t = ctx.push_u32(4) as usize;
            let tile = ctx.shared_array::<f32>(BS * BS)?;
            let base = t * BS * n + t * BS;
            ctx.for_lanes(|lane| {
                let tx = lane.local_linear() as usize;
                for i in 0..BS {
                    let v = lane.ld(&a, base + i * n + tx);
                    lane.sts(&tile, i * BS + tx, v);
                }
            });
            ctx.barrier();
            for k in 0..BS - 1 {
                ctx.for_lanes(|lane| {
                    let tx = lane.local_linear() as usize;
                    if tx > k {
                        let pivot = lane.lds(&tile, k * BS + k);
                        let mult = lane.lds(&tile, tx * BS + k) / pivot;
                        lane.alu(1);
                        lane.sts(&tile, tx * BS + k, mult);
                        for j in k + 1..BS {
                            let u = lane.lds(&tile, k * BS + j);
                            let cur = lane.lds(&tile, tx * BS + j);
                            lane.alu(2);
                            lane.sts(&tile, tx * BS + j, cur - mult * u);
                        }
                    }
                });
                ctx.barrier();
            }
            ctx.for_lanes(|lane| {
                let tx = lane.local_linear() as usize;
                for i in 0..BS {
                    let v = lane.lds(&tile, i * BS + tx);
                    lane.st(&a, base + i * n + tx, v);
                }
            });
            Ok(())
        }),
    )?;

    // parallel_groups audit: every group reads the step's diagonal
    // block (written by the previous dispatch, untouched here) and
    // writes its own perimeter block — disjoint per group.
    let perimeter = KernelInfo::new(KERNEL_PERIMETER, [BS as u32, 1, 1])
        .writes(0, "a")
        .push_constants(8)
        .parallel_groups()
        .shared_memory((2 * BS * BS * 4) as u64)
        .source_bytes(src_third)
        .build();
    registry.register(
        perimeter,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let a = ctx.global::<f32>(0)?;
            let n = ctx.push_u32(0) as usize;
            let t = ctx.push_u32(4) as usize;
            let nb = n / BS;
            let rem = nb - t - 1;
            let g = ctx.group_id(0) as usize;
            let diag = ctx.shared_array::<f32>(BS * BS)?;
            let tile = ctx.shared_array::<f32>(BS * BS)?;
            let diag_base = t * BS * n + t * BS;
            ctx.for_lanes(|lane| {
                let tx = lane.local_linear() as usize;
                for i in 0..BS {
                    let v = lane.ld(&a, diag_base + i * n + tx);
                    lane.sts(&diag, i * BS + tx, v);
                }
            });
            ctx.barrier();
            if g < rem {
                let base = t * BS * n + (t + 1 + g) * BS;
                ctx.for_lanes(|lane| {
                    let tx = lane.local_linear() as usize;
                    for i in 0..BS {
                        let v = lane.ld(&a, base + i * n + tx);
                        lane.sts(&tile, i * BS + tx, v);
                    }
                });
                ctx.barrier();
                for k in 0..BS - 1 {
                    ctx.for_lanes(|lane| {
                        let tx = lane.local_linear() as usize;
                        for i in k + 1..BS {
                            let l = lane.lds(&diag, i * BS + k);
                            let top = lane.lds(&tile, k * BS + tx);
                            let cur = lane.lds(&tile, i * BS + tx);
                            lane.alu(2);
                            lane.sts(&tile, i * BS + tx, cur - l * top);
                        }
                    });
                    ctx.barrier();
                }
                ctx.for_lanes(|lane| {
                    let tx = lane.local_linear() as usize;
                    for i in 0..BS {
                        let v = lane.lds(&tile, i * BS + tx);
                        lane.st(&a, base + i * n + tx, v);
                    }
                });
            } else {
                let base = (t + 1 + (g - rem)) * BS * n + t * BS;
                ctx.for_lanes(|lane| {
                    let tx = lane.local_linear() as usize;
                    for i in 0..BS {
                        let v = lane.ld(&a, base + i * n + tx);
                        lane.sts(&tile, i * BS + tx, v);
                    }
                });
                ctx.barrier();
                for k in 0..BS {
                    ctx.for_lanes(|lane| {
                        let tx = lane.local_linear() as usize;
                        let pivot = lane.lds(&diag, k * BS + k);
                        let mult = lane.lds(&tile, tx * BS + k) / pivot;
                        lane.alu(1);
                        lane.sts(&tile, tx * BS + k, mult);
                        for j in k + 1..BS {
                            let u = lane.lds(&diag, k * BS + j);
                            let cur = lane.lds(&tile, tx * BS + j);
                            lane.alu(2);
                            lane.sts(&tile, tx * BS + j, cur - mult * u);
                        }
                    });
                    ctx.barrier();
                }
                ctx.for_lanes(|lane| {
                    let tx = lane.local_linear() as usize;
                    for i in 0..BS {
                        let v = lane.lds(&tile, i * BS + tx);
                        lane.st(&a, base + i * n + tx, v);
                    }
                });
            }
            Ok(())
        }),
    )?;

    // parallel_groups audit: group (bi,bj) reads the L/U perimeter
    // blocks (previous dispatch) and updates only its own interior
    // block — disjoint per group.
    let internal = KernelInfo::new(KERNEL_INTERNAL, [BS as u32, BS as u32, 1])
        .writes(0, "a")
        .push_constants(8)
        .parallel_groups()
        .shared_memory((2 * BS * BS * 4) as u64)
        .source_bytes(src_third)
        .build();
    registry.register(
        internal,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let a = ctx.global::<f32>(0)?;
            let n = ctx.push_u32(0) as usize;
            let t = ctx.push_u32(4) as usize;
            let bi = t + 1 + ctx.group_id(1) as usize;
            let bj = t + 1 + ctx.group_id(0) as usize;
            let l = ctx.shared_array::<f32>(BS * BS)?;
            let u = ctx.shared_array::<f32>(BS * BS)?;
            ctx.for_lanes(|lane| {
                let tx = lane.local_id(0) as usize;
                let ty = lane.local_id(1) as usize;
                let lv = lane.ld(&a, (bi * BS + ty) * n + t * BS + tx);
                lane.sts(&l, ty * BS + tx, lv);
                let uv = lane.ld(&a, (t * BS + ty) * n + bj * BS + tx);
                lane.sts(&u, ty * BS + tx, uv);
            });
            ctx.barrier();
            ctx.for_lanes(|lane| {
                let tx = lane.local_id(0) as usize;
                let ty = lane.local_id(1) as usize;
                let mut sum = 0.0f32;
                for k in 0..BS {
                    sum += lane.lds(&l, ty * BS + k) * lane.lds(&u, k * BS + tx);
                }
                lane.alu(2 * BS as u32);
                let idx = (bi * BS + ty) * n + bj * BS + tx;
                let cur = lane.ld(&a, idx);
                lane.st(&a, idx, cur - sum);
            });
            Ok(())
        }),
    )
}

/// CPU reference: unblocked Doolittle factorization, in place
/// (L below the diagonal with unit diagonal, U on and above).
pub fn reference(a: &[f32], n: usize) -> Vec<f32> {
    let mut a = a.to_vec();
    for k in 0..n {
        for i in k + 1..n {
            a[i * n + k] /= a[k * n + k];
            for j in k + 1..n {
                a[i * n + j] -= a[i * n + k] * a[k * n + j];
            }
        }
    }
    a
}

/// Reconstructs `L·U` from a packed factorization (validation helper).
pub fn reconstruct(lu: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0.0;
            let kmax = i.min(j);
            for k in 0..=kmax {
                let l = if k == i { 1.0 } else { lu[i * n + k] };
                let u = lu[k * n + j];
                if k < i && k <= j {
                    sum += l * u;
                } else if k == i {
                    sum += u;
                }
            }
            out[i * n + j] = sum;
        }
    }
    out
}

/// Generates a diagonally dominant input matrix (stable without
/// pivoting, like Rodinia's generated lud inputs).
pub fn generate(n: usize, seed: u64) -> Vec<f32> {
    let (a, _) = data::linear_system(n, seed);
    a
}

fn push(n: usize, t: usize) -> Vec<u8> {
    let mut p = Vec::with_capacity(8);
    p.extend_from_slice(&(n as u32).to_le_bytes());
    p.extend_from_slice(&(t as u32).to_le_bytes());
    p
}

fn validate(out: &[f32], original: &[f32], n: usize, expected: bool) -> bool {
    if !expected {
        return true;
    }
    // L·U must reproduce A. (Comparing against the unblocked reference
    // directly is too strict: blocked and unblocked orders round
    // differently.)
    let rebuilt = reconstruct(out, n);
    approx_eq_f32(&rebuilt, original, 5e-2)
}

/// The one host program behind all three APIs: `n/BS` steps of three
/// dependent kernels (diagonal, perimeter, internal) over the in-place
/// matrix, recorded as one sequence.
fn host_program(
    b: &mut dyn ComputeBackend,
    n: usize,
    a_host: &[f32],
    check: bool,
) -> Result<BodyOutcome, RunFailure> {
    let nb = n / BS;
    let a = b.upload(bytes_of(a_host), UsageHint::ReadWrite)?;
    b.load_program(CL_SOURCE)?;
    let bg = b.bind_group(&[a])?;
    // The Snapdragon OpenCL JIT dies on lud (§V-B2): `load_program` /
    // `kernel` is where the quirk fires.
    let diagonal = b.kernel(KERNEL_DIAGONAL, bg, 8)?;
    let perimeter = b.kernel(KERNEL_PERIMETER, bg, 8)?;
    let internal = b.kernel(KERNEL_INTERNAL, bg, 8)?;

    let seq = b.seq_begin()?;
    for t in 0..nb {
        let rem = (nb - t - 1) as u32;
        b.seq_kernel(seq, diagonal)?;
        b.seq_bind(seq, bg)?;
        b.seq_push(seq, &push(n, t))?;
        b.seq_dispatch(seq, [1, 1, 1])?;
        b.seq_dependency(seq)?;
        if rem > 0 {
            b.seq_kernel(seq, perimeter)?;
            b.seq_bind(seq, bg)?;
            b.seq_push(seq, &push(n, t))?;
            b.seq_dispatch(seq, [2 * rem, 1, 1])?;
            b.seq_dependency(seq)?;
            b.seq_kernel(seq, internal)?;
            b.seq_bind(seq, bg)?;
            b.seq_push(seq, &push(n, t))?;
            b.seq_dispatch(seq, [rem, rem, 1])?;
            b.seq_dependency(seq)?;
        }
    }
    b.seq_end(seq)?;

    let compute_start = b.now();
    b.run(seq)?;
    let compute_time = b.now().duration_since(compute_start);

    let out = to_f32(&b.download(a)?);
    Ok(BodyOutcome {
        validated: validate(&out, a_host, n, check),
        compute_time,
    })
}

fn run(
    api: Api,
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let mut b = vcb_backend::create_with(api, profile, registry, &opts.into())?;
    let a_host = generate(n, opts.seed);
    let check = opts.validate;
    measure(NAME, &size.label, b.as_mut(), |b| {
        host_program(b, n, &a_host, check)
    })
}

/// The lud suite entry.
#[derive(Debug, Clone)]
pub struct Lud {
    registry: Arc<KernelRegistry>,
}

impl Lud {
    /// Creates the workload against a kernel registry.
    pub fn new(registry: Arc<KernelRegistry>) -> Self {
        Lud { registry }
    }
}

impl Workload for Lud {
    fn meta(&self) -> BenchmarkMeta {
        *suite::find(NAME).expect("lud is in Table I")
    }

    fn sizes(&self, class: DeviceClass) -> Vec<SizeSpec> {
        match class {
            DeviceClass::Desktop => vec![
                SizeSpec::new("256", 256),
                SizeSpec::new("512", 512),
                SizeSpec::new("2048", 2048),
            ],
            DeviceClass::Mobile => vec![SizeSpec::new("64", 64), SizeSpec::new("256", 256)],
        }
    }

    fn run(&self, api: Api, device: &DeviceProfile, size: &SizeSpec, opts: &RunOpts) -> RunOutcome {
        run(api, device, &self.registry, size, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_core::run::speedup;
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        let mut r = KernelRegistry::new();
        register(&mut r).unwrap();
        Arc::new(r)
    }

    #[test]
    fn reference_factorization_reconstructs() {
        let n = 32;
        let a = generate(n, 9);
        let lu = reference(&a, n);
        let rebuilt = reconstruct(&lu, n);
        assert!(approx_eq_f32(&rebuilt, &a, 1e-3));
    }

    #[test]
    fn all_apis_factorize_correctly() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("64", 64);
        let w = Lud::new(Arc::clone(&registry));
        for api in Api::ALL {
            let record = w.run(api, &devices::gtx1050ti(), &size, &opts).unwrap();
            assert!(record.validated, "{api} failed validation");
        }
    }

    #[test]
    fn vulkan_wins_at_small_sizes() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("256", 256);
        let w = Lud::new(Arc::clone(&registry));
        let profile = devices::gtx1050ti();
        let vk = w.run(Api::Vulkan, &profile, &size, &opts).unwrap();
        let cu = w.run(Api::Cuda, &profile, &size, &opts).unwrap();
        let s = speedup(&cu, &vk);
        assert!(s > 1.5, "lud 256 speedup {s}");
    }

    #[test]
    fn snapdragon_opencl_fails_like_the_paper() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("64", 64);
        let w = Lud::new(Arc::clone(&registry));
        let result = w.run(Api::OpenCl, &devices::adreno506(), &size, &opts);
        assert!(matches!(
            result,
            Err(vcb_core::run::RunFailure::DriverFailure)
        ));
        // Vulkan works there.
        let vk = w
            .run(Api::Vulkan, &devices::adreno506(), &size, &opts)
            .unwrap();
        assert!(vk.validated);
    }
}
