//! The strided-memory-access microbenchmark of §V-A1 / §V-B1
//! (Fig. 1 and Fig. 3).
//!
//! Reads `n` array elements at a configurable element stride (wrapping in
//! a large array) and reports achieved bandwidth. The stride is passed as
//! a push constant in the Vulkan version — exactly the usage that exposes
//! the Snapdragon driver's push-constant quirk.

use std::sync::Arc;

use vcb_core::run::RunFailure;
use vcb_core::workload::RunOpts;
use vcb_sim::exec::{GroupCtx, KernelBody, KernelInfo, MAX_WARP_WIDTH};
use vcb_sim::profile::{DeviceClass, DeviceProfile};
use vcb_sim::time::SimDuration;
use vcb_sim::timeline::CostKind;
use vcb_sim::{Api, KernelRegistry, SimResult};

use crate::common::{bytes_of, ComputeBackend, UsageHint};
use crate::data;

/// Workload name.
pub const NAME: &str = "stride";
/// Kernel entry point.
pub const KERNEL: &str = "stride_read";
/// Workgroup size.
pub const LOCAL_SIZE: u32 = 256;
/// Timing repetitions averaged per stride sample ("we execute several
/// times and report the average", §V).
pub const REPETITIONS: u32 = 8;

/// Elements read per run on desktop (64 MiB of reads at unit stride).
pub const DESKTOP_ACCESSES: u64 = 16 * 1024 * 1024;
/// Elements read per run on mobile (16 MiB of reads at unit stride).
pub const MOBILE_ACCESSES: u64 = 4 * 1024 * 1024;
/// Array length multiplier on desktop: the array is
/// `accesses * max stride` elements so every stride reads distinct
/// addresses. Mobile sweeps stop at stride 16 (Fig. 3), which also keeps
/// the array inside the smaller mobile heaps.
pub const MAX_STRIDE: u64 = 32;

/// The OpenCL C twin of the kernel.
pub const CL_SOURCE: &str = r#"
__kernel void stride_read(__global const float* a,
                          __global float* sink,
                          uint stride,
                          uint n,
                          uint len) {
    uint i = get_global_id(0);
    if (i < n) {
        float v = a[((ulong)i * stride) % len];
        if (v == -12345.0f) {
            sink[0] = v; // never taken: keeps the load alive
        }
    }
}
"#;

/// The production body: warp-columnar. A warp whose strided window does
/// not wrap the array is one analytic strided load; wrapping warps fall
/// back to a gather over the per-lane indices. The sentinel-guarded sink
/// store is the divergent tail, predicated via `for_active`.
fn warp_body() -> Arc<dyn KernelBody> {
    Arc::new(|ctx: &mut GroupCtx<'_>| {
        let a = ctx.global::<f32>(0)?;
        let sink = ctx.global::<f32>(1)?;
        let stride = ctx.push_u32(0) as u64;
        let n = ctx.push_u32(4) as u64;
        let len = ctx.push_u32(8) as u64;
        ctx.for_warps(|w| {
            let m = w.active_below(n);
            if m == 0 {
                return;
            }
            let base = w.global_base();
            let first = base * stride % len;
            let mut v = [0f32; MAX_WARP_WIDTH];
            if first + (m as u64 - 1) * stride < len {
                w.ld_stride(&a, first as usize, stride as usize, &mut v[..m]);
            } else {
                let mut idxs = [0usize; MAX_WARP_WIDTH];
                for (l, ix) in idxs[..m].iter_mut().enumerate() {
                    *ix = ((base + l as u64) * stride % len) as usize;
                }
                w.ld_gather(&a, &idxs[..m], &mut v[..m]);
            }
            w.alu(m as u64);
            w.for_active(
                |l| v[l] == -12345.0,
                |lane| {
                    let l = (lane.global_linear() - base) as usize;
                    lane.st(&sink, 0, v[l]);
                },
            );
        });
        Ok(())
    })
}

/// The lane-at-a-time oracle body (see the warp-equivalence suite).
pub fn lane_body() -> Arc<dyn KernelBody> {
    Arc::new(|ctx: &mut GroupCtx<'_>| {
        let a = ctx.global::<f32>(0)?;
        let sink = ctx.global::<f32>(1)?;
        let stride = ctx.push_u32(0) as u64;
        let n = ctx.push_u32(4) as u64;
        let len = ctx.push_u32(8) as u64;
        ctx.for_lanes(|lane| {
            let i = lane.global_linear();
            if i < n {
                let idx = (i * stride) % len;
                let v = lane.ld(&a, idx as usize);
                lane.alu(1);
                if v == -12345.0 {
                    lane.st(&sink, 0, v);
                }
            }
        });
        Ok(())
    })
}

fn register_body(registry: &mut KernelRegistry, body: Arc<dyn KernelBody>) -> SimResult<()> {
    // parallel_groups audit: `a` is read-only; the sink store is guarded
    // by a sentinel that never fires (and would store the same value from
    // every lane if it did).
    let info = KernelInfo::new(KERNEL, [LOCAL_SIZE, 1, 1])
        .reads(0, "a")
        .writes(1, "sink")
        .push_constants(12)
        .parallel_groups()
        .source_bytes(CL_SOURCE.len() as u64)
        .build();
    registry.register(info, body)
}

/// Registers the kernel body.
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register(registry: &mut KernelRegistry) -> SimResult<()> {
    register_body(registry, warp_body())
}

/// Registers the [`lane_body`] oracle instead of the warp-columnar
/// production body (differential testing only).
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register_lane_oracle(registry: &mut KernelRegistry) -> SimResult<()> {
    register_body(registry, lane_body())
}

/// One sample of the bandwidth curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthSample {
    /// Element stride (4 bytes per element, as in the figures).
    pub stride: u32,
    /// Achieved bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    /// Average kernel wall time per repetition.
    pub time_per_rep: SimDuration,
}

impl BandwidthSample {
    /// Achieved bandwidth in GB/s (the figures' y axis).
    pub fn gbps(&self) -> f64 {
        self.bytes_per_sec / 1.0e9
    }
}

/// Strides swept on a device class: 1..32 on desktop (Fig. 1),
/// 1..16 on mobile (Fig. 3).
pub fn strides(class: DeviceClass) -> Vec<u32> {
    match class {
        DeviceClass::Desktop => vec![1, 2, 4, 8, 12, 16, 20, 24, 28, 32],
        DeviceClass::Mobile => vec![1, 2, 4, 6, 8, 10, 12, 14, 16],
    }
}

/// Accesses per run for a device class.
pub fn accesses(class: DeviceClass) -> u64 {
    match class {
        DeviceClass::Desktop => DESKTOP_ACCESSES,
        DeviceClass::Mobile => MOBILE_ACCESSES,
    }
}

fn scaled_accesses(class: DeviceClass, opts: &RunOpts) -> u64 {
    ((accesses(class) as f64 * opts.scale) as u64).max(LOCAL_SIZE as u64)
}

/// Measures the full bandwidth curve under one API.
///
/// The measured time is host wall time per repetition (the paper times
/// with `std::chrono` on the CPU), so per-repetition overheads — launch
/// overhead, or the Snapdragon push-constant rebinds — show up exactly as
/// they did in Fig. 3b.
///
/// # Errors
///
/// Reported as [`RunFailure`].
pub fn bandwidth_curve(
    api: Api,
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    opts: &RunOpts,
) -> Result<Vec<BandwidthSample>, RunFailure> {
    let n = scaled_accesses(profile.class, opts);
    let mut b = vcb_backend::create_with(api, profile, registry, &opts.into())?;
    curve_host_program(b.as_mut(), profile.class, n, opts)
}

fn array_len(n: u64, class: DeviceClass) -> u64 {
    let max_stride = strides(class).into_iter().max().unwrap_or(1);
    n * u64::from(max_stride)
}

fn sample(stride: u32, n: u64, elapsed: SimDuration) -> BandwidthSample {
    let per_rep = elapsed / u64::from(REPETITIONS);
    let bytes = n * 4;
    BandwidthSample {
        stride,
        bytes_per_sec: bytes as f64 / per_rep.as_secs(),
        time_per_rep: per_rep,
    }
}

/// The one curve host program behind all three APIs: for every stride,
/// `REPETITIONS` dependent dispatches recorded as one sequence (a single
/// command buffer with per-repetition push constants under Vulkan — the
/// §V-B1 usage that exposes the Snapdragon push-constant quirk) and run
/// timed.
fn curve_host_program(
    b: &mut dyn ComputeBackend,
    class: DeviceClass,
    n: u64,
    opts: &RunOpts,
) -> Result<Vec<BandwidthSample>, RunFailure> {
    let len = array_len(n, class);
    let host_array = data::uniform_f32(len as usize, opts.seed, 0.0, 1.0);
    let a = b.upload(bytes_of(&host_array), UsageHint::ReadOnly)?;
    let sink = b.alloc(4, UsageHint::ReadWrite)?;
    b.load_program(CL_SOURCE)?;
    let bg = b.bind_group(&[a, sink])?;
    let kernel = b.kernel(KERNEL, bg, 12)?;

    let groups = (n as u32).div_ceil(LOCAL_SIZE);
    let mut samples = Vec::new();
    for stride in strides(class) {
        let seq = b.seq_begin()?;
        b.seq_kernel(seq, kernel)?;
        b.seq_bind(seq, bg)?;
        for _ in 0..REPETITIONS {
            let mut push = Vec::with_capacity(12);
            push.extend_from_slice(&stride.to_le_bytes());
            push.extend_from_slice(&(n as u32).to_le_bytes());
            push.extend_from_slice(&(len as u32).to_le_bytes());
            b.seq_push(seq, &push)?;
            b.seq_dispatch(seq, [groups, 1, 1])?;
            b.seq_dependency(seq)?;
        }
        b.seq_end(seq)?;
        let start = b.now();
        b.run(seq)?;
        samples.push(sample(stride, n, b.now().duration_since(start)));
    }
    Ok(samples)
}

/// Splits a device's kernel-only time out of a curve run, for reporting
/// overhead shares (used by the harness' verbose mode).
pub fn kernel_share(breakdown: &vcb_sim::TimingBreakdown) -> f64 {
    let kernel = breakdown.get(CostKind::KernelExec);
    kernel.ratio(breakdown.total())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        let mut r = KernelRegistry::new();
        register(&mut r).unwrap();
        Arc::new(r)
    }

    fn quick_opts() -> RunOpts {
        RunOpts {
            scale: 1.0 / 64.0,
            ..RunOpts::default()
        }
    }

    #[test]
    fn bandwidth_decreases_with_stride() {
        let registry = registry();
        let curve =
            bandwidth_curve(Api::Cuda, &devices::gtx1050ti(), &registry, &quick_opts()).unwrap();
        assert_eq!(curve.len(), strides(DeviceClass::Desktop).len());
        let unit = curve[0].gbps();
        let worst = curve.last().unwrap().gbps();
        assert!(unit > 4.0 * worst, "unit {unit} vs stride-32 {worst}");
    }

    #[test]
    fn unit_stride_approaches_peak_fraction() {
        let registry = registry();
        // Use a larger run for an accurate unit-stride figure (smaller
        // runs are launch-overhead bound and understate bandwidth).
        let opts = RunOpts {
            scale: 0.5,
            ..RunOpts::default()
        };
        let profile = devices::gtx1050ti();
        let curve = bandwidth_curve(Api::Cuda, &profile, &registry, &opts).unwrap();
        let frac = curve[0].bytes_per_sec / profile.memory.peak_bandwidth_bytes_per_sec();
        // §V-A1: CUDA achieves 84% of peak at unit stride (paper scale);
        // this half-size run tolerates the residual launch share.
        assert!((0.62..0.92).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn vulkan_matches_cuda_on_desktop() {
        let registry = registry();
        // Full-size arrays so per-repetition overheads are amortized as in
        // the paper's Fig. 1 (quick scales make this launch-bound instead).
        let opts = RunOpts {
            scale: 0.5,
            ..RunOpts::default()
        };
        let profile = devices::gtx1050ti();
        let vk = bandwidth_curve(Api::Vulkan, &profile, &registry, &opts).unwrap();
        let cu = bandwidth_curve(Api::Cuda, &profile, &registry, &opts).unwrap();
        for (v, c) in vk.iter().zip(&cu) {
            let ratio = v.bytes_per_sec / c.bytes_per_sec;
            assert!(
                (0.8..1.35).contains(&ratio),
                "stride {} ratio {ratio}",
                v.stride
            );
        }
    }

    #[test]
    fn snapdragon_quirk_hurts_small_strides_only() {
        let registry = registry();
        let opts = RunOpts {
            scale: 0.25,
            ..RunOpts::default()
        };
        let sd = devices::adreno506();
        let vk = bandwidth_curve(Api::Vulkan, &sd, &registry, &opts).unwrap();
        let cl = bandwidth_curve(Api::OpenCl, &sd, &registry, &opts).unwrap();
        let small = vk[0].bytes_per_sec / cl[0].bytes_per_sec;
        let large = vk.last().unwrap().bytes_per_sec / cl.last().unwrap().bytes_per_sec;
        assert!(
            small < large,
            "quirk gap should close: small {small}, large {large}"
        );
        assert!(
            small < 0.92,
            "Vulkan should lose clearly at unit stride: {small}"
        );
    }
}
