//! Per-API environment setup and error translation — the plumbing every
//! host program needs before its first buffer, collapsed here from the
//! per-workload drivers it used to be copied into.

use std::sync::Arc;

use vcb_core::run::RunFailure;
use vcb_cuda::{CudaContext, CudaError};
use vcb_opencl::{ClError, CommandQueue, Context, Platform, QueueProperties};
use vcb_sim::profile::DeviceProfile;
use vcb_sim::{KernelRegistry, SimError};
use vcb_vulkan::{
    Device, DeviceCreateInfo, DeviceQueueCreateInfo, Instance, InstanceCreateInfo, Queue, VkError,
};

/// A ready-to-use Vulkan environment (instance, device, compute queue).
#[derive(Debug, Clone)]
pub struct VkEnv {
    /// The logical device.
    pub device: Device,
    /// A compute-capable queue.
    pub queue: Queue,
}

/// Sets up Vulkan on `profile`.
///
/// # Errors
///
/// Propagates instance/device creation failures as [`RunFailure`].
pub fn vk_env(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
) -> Result<VkEnv, RunFailure> {
    let instance = Instance::new(&InstanceCreateInfo {
        application_name: "vcomputebench".into(),
        enabled_layers: Vec::new(),
        devices: vec![profile.clone()],
        registry: Arc::clone(registry),
    })
    .map_err(vk_failure)?;
    let physical = instance.enumerate_physical_devices().remove(0);
    let family = physical
        .find_queue_family(vcb_sim::profile::QueueCaps::COMPUTE)
        .ok_or_else(|| RunFailure::Error("no compute queue family".into()))?;
    let device = Device::new(
        &physical,
        &DeviceCreateInfo {
            queue_create_infos: vec![DeviceQueueCreateInfo {
                queue_family_index: family,
                queue_count: 1,
            }],
        },
    )
    .map_err(vk_failure)?;
    device.set_trace_mode(vcb_sim::TraceMode::Auto);
    let queue = device.get_queue(family, 0).map_err(vk_failure)?;
    Ok(VkEnv { device, queue })
}

/// A ready-to-use OpenCL environment (context + profiling queue).
#[derive(Debug, Clone)]
pub struct ClEnv {
    /// The context.
    pub context: Context,
    /// An in-order command queue with profiling enabled.
    pub queue: CommandQueue,
}

/// Sets up OpenCL on `profile`.
///
/// # Errors
///
/// [`RunFailure::Unsupported`] when the device has no OpenCL driver.
pub fn cl_env(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
) -> Result<ClEnv, RunFailure> {
    let platforms = Platform::enumerate(std::slice::from_ref(profile), Arc::clone(registry));
    let platform = platforms
        .into_iter()
        .next()
        .ok_or(RunFailure::Unsupported)?;
    let device = platform.devices().remove(0);
    let context = Context::new(&device).map_err(cl_failure)?;
    let queue = CommandQueue::new(&context, QueueProperties { profiling: true });
    Ok(ClEnv { context, queue })
}

/// Sets up CUDA on `profile`.
///
/// # Errors
///
/// [`RunFailure::Unsupported`] off NVIDIA hardware.
pub fn cuda_env(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
) -> Result<CudaContext, RunFailure> {
    match CudaContext::new(profile.clone(), Arc::clone(registry)) {
        Ok(ctx) => Ok(ctx),
        Err(CudaError::NoDevice { .. }) => Err(RunFailure::Unsupported),
        Err(e) => Err(cuda_failure(e)),
    }
}

/// Maps a Vulkan error to a run failure.
pub fn vk_failure(e: VkError) -> RunFailure {
    match e {
        VkError::Device(SimError::OutOfDeviceMemory { .. }) => RunFailure::OutOfMemory,
        VkError::DeviceLost { .. } => RunFailure::DriverFailure,
        other => RunFailure::Error(other.to_string()),
    }
}

/// Maps an OpenCL error to a run failure.
pub fn cl_failure(e: ClError) -> RunFailure {
    match e {
        ClError::Device(SimError::OutOfDeviceMemory { .. }) => RunFailure::OutOfMemory,
        ClError::BuildFailure { .. } => RunFailure::DriverFailure,
        ClError::DeviceNotFound { .. } => RunFailure::Unsupported,
        other => RunFailure::Error(other.to_string()),
    }
}

/// Maps a CUDA error to a run failure.
pub fn cuda_failure(e: CudaError) -> RunFailure {
    match e {
        CudaError::Device(SimError::OutOfDeviceMemory { .. }) => RunFailure::OutOfMemory,
        CudaError::NoDevice { .. } => RunFailure::Unsupported,
        other => RunFailure::Error(other.to_string()),
    }
}

/// A compiled Vulkan compute pipeline with its layout.
#[derive(Debug, Clone)]
pub struct VkKernelBundle {
    /// The pipeline.
    pub pipeline: vcb_vulkan::ComputePipeline,
    /// Its layout (needed for descriptor binds and push constants).
    pub layout: vcb_vulkan::PipelineLayout,
}

/// Assembles the registered kernel's SPIR-V, creates the shader module,
/// a pipeline layout with one descriptor-set layout and `push_bytes` of
/// push constants, and compiles the pipeline — the boilerplate block of
/// Listing 1.
///
/// # Errors
///
/// Reported as [`RunFailure`] (notably [`RunFailure::DriverFailure`] for
/// the paper's broken mobile workloads).
pub fn vk_kernel(
    env: &VkEnv,
    registry: &Arc<KernelRegistry>,
    name: &str,
    set_layout: &vcb_vulkan::DescriptorSetLayout,
    push_bytes: u32,
) -> Result<VkKernelBundle, RunFailure> {
    let info = registry
        .lookup(name)
        .map_err(|e| RunFailure::Error(e.to_string()))?;
    let spv = vcb_spirv::SpirvModule::assemble(info.info());
    vk_kernel_with_words(env, name, spv.words(), set_layout, push_bytes)
}

/// [`vk_kernel`] with the SPIR-V words already assembled — the path the
/// worker-local environment cache takes (assembly is deterministic, so
/// cached words are the exact image a fresh assembly would produce).
///
/// # Errors
///
/// As [`vk_kernel`].
pub fn vk_kernel_with_words(
    env: &VkEnv,
    name: &str,
    words: &[u32],
    set_layout: &vcb_vulkan::DescriptorSetLayout,
    push_bytes: u32,
) -> Result<VkKernelBundle, RunFailure> {
    let module = env.device.create_shader_module(words).map_err(vk_failure)?;
    let ranges = if push_bytes > 0 {
        vec![vcb_vulkan::PushConstantRange {
            offset: 0,
            size: push_bytes,
        }]
    } else {
        Vec::new()
    };
    let layout = env
        .device
        .create_pipeline_layout(&[set_layout], &ranges)
        .map_err(vk_failure)?;
    let pipeline = env
        .device
        .create_compute_pipeline(&vcb_vulkan::ComputePipelineCreateInfo {
            module: &module,
            entry_point: name,
            layout: &layout,
        })
        .map_err(vk_failure)?;
    Ok(VkKernelBundle { pipeline, layout })
}

/// [`vk_kernel_with_words`] backed by the worker-local compile cache:
/// the parsed module and the driver-compiled kernel are served from
/// `cache` when the same words (and, for the kernel, the same
/// environment key) were seen before. Every API call is still recorded
/// and every modelled cost still charged — parse and driver compilation
/// are deterministic, so the cached artifacts are bit-identical to a
/// cold build and only redundant host-side work is skipped.
///
/// # Errors
///
/// As [`vk_kernel`].
pub(crate) fn vk_kernel_memoized(
    env: &VkEnv,
    name: &str,
    words: &[u32],
    set_layout: &vcb_vulkan::DescriptorSetLayout,
    push_bytes: u32,
    cache: &std::rc::Rc<std::cell::RefCell<crate::envcache::EnvCache>>,
    key: &crate::envcache::EnvKey,
) -> Result<VkKernelBundle, RunFailure> {
    let digest = crate::envcache::spirv_digest(words);
    let cached_module = cache.borrow_mut().module_get(digest);
    let module = match cached_module {
        Some(parsed) => env.device.create_shader_module_prepared(parsed),
        None => {
            let module = env.device.create_shader_module(words).map_err(vk_failure)?;
            cache
                .borrow_mut()
                .module_put(digest, std::rc::Rc::clone(module.parsed()));
            module
        }
    };
    let ranges = if push_bytes > 0 {
        vec![vcb_vulkan::PushConstantRange {
            offset: 0,
            size: push_bytes,
        }]
    } else {
        Vec::new()
    };
    let layout = env
        .device
        .create_pipeline_layout(&[set_layout], &ranges)
        .map_err(vk_failure)?;
    let create_info = vcb_vulkan::ComputePipelineCreateInfo {
        module: &module,
        entry_point: name,
        layout: &layout,
    };
    let prebuilt = cache.borrow_mut().pipeline_get(key, digest);
    let pipeline = match prebuilt {
        Some(kernel) => env
            .device
            .create_compute_pipeline_prebuilt(&create_info, kernel)
            .map_err(vk_failure)?,
        None => {
            let pipeline = env
                .device
                .create_compute_pipeline(&create_info)
                .map_err(vk_failure)?;
            cache
                .borrow_mut()
                .pipeline_put(key, digest, pipeline.kernel().clone());
            pipeline
        }
    };
    Ok(VkKernelBundle { pipeline, layout })
}
