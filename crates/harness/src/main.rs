//! The `vcb` experiment runner: regenerates every table and figure of
//! the VComputeBench paper on the simulated platforms.

use std::io::Write as _;
use std::process::ExitCode;

use vcb_harness::experiments::{self, ExperimentOpts};
use vcb_harness::{ablate, render};
use vcb_sim::profile::{devices, DeviceClass};

const USAGE: &str = "\
vcb — VComputeBench reproduction harness

USAGE:
    vcb <COMMAND> [OPTIONS]

COMMANDS:
    table1      Table I: the benchmark suite
    table2      Table II: desktop platform configurations
    table3      Table III: mobile platform configurations
    fig1        Fig. 1: desktop bandwidth vs stride
    fig2        Fig. 2: desktop speedups vs OpenCL
    fig3        Fig. 3: mobile bandwidth vs stride
    fig4        Fig. 4: mobile speedups vs OpenCL
    summary     §V geometric-mean speedups (runs fig2 + fig4)
    effort      §VI-A programming-effort comparison
    overheads   §V-A2 total-vs-kernel time decomposition
    ablate      §VI-B recommendation ablations
    all         everything above, in paper order

OPTIONS:
    --quick         scaled-down inputs, no output validation (default)
    --paper-scale   full paper input sizes with validation (slow)
    --threads N     worker threads for the run matrix
    --sim-threads N simulator worker threads inside one dispatch
                    (order-independent kernels only; results are
                    bit-identical at any value)
    --csv FILE      also write machine-readable results to FILE
    --seed N        input-generation seed
";

struct Cli {
    command: String,
    opts: ExperimentOpts,
    csv_path: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(|| USAGE.to_owned())?;
    let mut opts = ExperimentOpts::quick();
    let mut csv_path = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts = ExperimentOpts::quick(),
            "--paper-scale" => opts = ExperimentOpts::paper(),
            "--threads" => {
                let n = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad --threads value: {e}"))?;
                opts.threads = n.max(1);
            }
            "--sim-threads" => {
                let n = args
                    .next()
                    .ok_or("--sim-threads needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad --sim-threads value: {e}"))?;
                opts.run.sim_threads = n.max(1);
            }
            "--seed" => {
                opts.run.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse::<u64>()
                    .map_err(|e| format!("bad --seed value: {e}"))?;
            }
            "--csv" => {
                csv_path = Some(args.next().ok_or("--csv needs a file path")?);
            }
            other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }
    Ok(Cli {
        command,
        opts,
        csv_path,
    })
}

fn write_csv(path: &Option<String>, content: &str) {
    if let Some(path) = path {
        match std::fs::File::create(path).and_then(|mut f| f.write_all(content.as_bytes())) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let registry = match vcb_workloads::registry() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("failed to build kernel registry: {e}");
            return ExitCode::FAILURE;
        }
    };

    let run_fig1 = || {
        let panels = experiments::fig1(&registry, &cli.opts);
        println!("=== Fig. 1: Vulkan memory bandwidth vs CUDA and OpenCL (desktop) ===\n");
        for curves in &panels {
            println!("{}", render::bandwidth_panel(curves));
        }
        write_csv(&cli.csv_path, &render::bandwidth_csv(&panels));
    };
    let run_fig3 = || {
        let panels = experiments::fig3(&registry, &cli.opts);
        println!("=== Fig. 3: Vulkan memory bandwidth vs OpenCL (mobile) ===\n");
        for curves in &panels {
            println!("{}", render::bandwidth_panel(curves));
        }
        write_csv(&cli.csv_path, &render::bandwidth_csv(&panels));
    };
    let run_fig2 = || {
        let panels = experiments::fig2(&registry, &cli.opts);
        println!("=== Fig. 2: Vulkan speedup vs CUDA and OpenCL (desktop) ===\n");
        let mut csv = String::new();
        for p in &panels {
            println!("{}", render::speedup_panel(p));
            csv.push_str(&render::panel_csv(p));
        }
        println!(
            "{}",
            render::summary_lines(&experiments::summarize(&panels))
        );
        write_csv(&cli.csv_path, &csv);
        panels
    };
    let run_fig4 = || {
        let panels = experiments::fig4(&registry, &cli.opts);
        println!("=== Fig. 4: Vulkan speedup vs OpenCL (mobile) ===\n");
        let mut csv = String::new();
        for p in &panels {
            println!("{}", render::speedup_panel(p));
            csv.push_str(&render::panel_csv(p));
        }
        println!(
            "{}",
            render::summary_lines(&experiments::summarize(&panels))
        );
        write_csv(&cli.csv_path, &csv);
        panels
    };
    let run_effort = || {
        println!("=== §VI-A: programming effort ===\n");
        let records = experiments::effort(&registry, &devices::gtx1050ti(), &cli.opts);
        println!("{}", vcb_core::effort::effort_table(&records).render());
    };
    let run_overheads = || {
        println!("=== §V-A2: total-time overhead decomposition ===\n");
        let rows = experiments::overheads(&registry, &devices::gtx1050ti(), &cli.opts);
        println!("{}", render::overhead_table(&rows));
    };
    let run_ablate = || {
        println!("=== §VI-B: recommended Vulkan optimizations, measured ===\n");
        let gtx = devices::gtx1050ti();
        let sd = devices::adreno506();
        let report = |result: Result<ablate::Ablation, vcb_core::run::RunFailure>| match result {
            Ok(a) => println!(
                "{:<62} {:>10} vs {:>10}  ({:.2}x)",
                a.name,
                a.recommended.to_string(),
                a.naive.to_string(),
                a.factor()
            ),
            Err(e) => println!("(skipped: {e})"),
        };
        report(ablate::single_command_buffer(&registry, &gtx, 32));
        report(ablate::push_constants_vs_buffer(
            &registry,
            &sd,
            &cli.opts.run,
        ));
        report(ablate::transfer_queue_copies(
            &registry,
            &gtx,
            128 * 1024 * 1024,
        ));
        report(ablate::multiple_compute_queues(&registry, &gtx, 16));
        report(ablate::compiler_maturity(&registry, &gtx, &cli.opts.run));
        println!();
    };

    match cli.command.as_str() {
        "table1" => println!("{}", render::table1()),
        "table2" => println!("{}", render::platform_table(DeviceClass::Desktop)),
        "table3" => println!("{}", render::platform_table(DeviceClass::Mobile)),
        "fig1" => run_fig1(),
        "fig2" => {
            run_fig2();
        }
        "fig3" => run_fig3(),
        "fig4" => {
            run_fig4();
        }
        "summary" => {
            let desktop = experiments::fig2(&registry, &cli.opts);
            let mobile = experiments::fig4(&registry, &cli.opts);
            println!("=== §V: geometric-mean speedups ===\n");
            println!(
                "{}",
                render::summary_lines(&experiments::summarize(&desktop))
            );
            println!(
                "{}",
                render::summary_lines(&experiments::summarize(&mobile))
            );
        }
        "effort" => run_effort(),
        "overheads" => run_overheads(),
        "ablate" => run_ablate(),
        "all" => {
            println!("{}", render::table1());
            println!("{}", render::platform_table(DeviceClass::Desktop));
            run_fig1();
            run_fig2();
            println!("{}", render::platform_table(DeviceClass::Mobile));
            run_fig3();
            run_fig4();
            run_effort();
            run_overheads();
            run_ablate();
        }
        "--help" | "-h" | "help" => println!("{USAGE}"),
        other => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
