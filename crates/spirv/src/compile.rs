//! The driver compiler model.
//!
//! Each programming model reaches kernel code differently:
//!
//! * **Vulkan** consumes SPIR-V modules at pipeline-creation time
//!   ([`DriverCompiler::compile_module`]).
//! * **CUDA** ships precompiled kernels addressed by symbol
//!   ([`DriverCompiler::compile_symbol`]).
//! * **OpenCL** JIT-compiles C source at `clBuildProgram` time
//!   ([`DriverCompiler::compile_source`], [`extract_kernel_names`]).
//!
//! All three resolve to the *same* registered kernel body; only the
//! [`CompileOpts`] differ, driven by the driver's maturity. This is the
//! paper's bfs mechanism (§V-A2): "the Vulkan SPIR-V compiler inside the
//! driver is not as mature as the OpenCL one", observable here as
//! `local_memory_promotion` being off.

use vcb_sim::exec::{CompileOpts, CompiledKernel};
use vcb_sim::profile::DriverProfile;
use vcb_sim::registry::KernelRegistry;
use vcb_sim::time::SimDuration;
use vcb_sim::{SimError, SimResult};

use crate::module::{ModuleError, SpirvModule};

/// Compiles kernels for a particular driver, resolving bodies from a
/// registry.
#[derive(Debug, Clone, Copy)]
pub struct DriverCompiler<'r> {
    registry: &'r KernelRegistry,
}

impl<'r> DriverCompiler<'r> {
    /// Creates a compiler resolving against `registry`.
    pub fn new(registry: &'r KernelRegistry) -> Self {
        DriverCompiler { registry }
    }

    /// Compile options implied by a driver's maturity.
    pub fn opts_for(driver: &DriverProfile) -> CompileOpts {
        CompileOpts {
            local_memory_promotion: driver.local_memory_promotion,
        }
    }

    /// Compiles a SPIR-V module (the Vulkan path).
    ///
    /// The module's recovered metadata is cross-checked against the
    /// registered kernel: a mismatch means the SPIR-V binary and the
    /// native body drifted apart, which would silently corrupt experiments.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownKernel`] for unregistered entry points and
    /// [`SimError::InvalidArgument`] for metadata mismatches or malformed
    /// modules.
    pub fn compile_module(
        &self,
        module: &SpirvModule,
        driver: &DriverProfile,
    ) -> SimResult<CompiledKernel> {
        let registered = self.registry.lookup(module.entry_point())?;
        let reg_info = registered.info();
        let mod_info = module.info();
        if reg_info.local_size != mod_info.local_size
            || reg_info.bindings.len() != mod_info.bindings.len()
        {
            return Err(SimError::invalid(format!(
                "module metadata for `{}` disagrees with registered kernel \
                 (local size {:?} vs {:?}, {} vs {} bindings)",
                module.entry_point(),
                mod_info.local_size,
                reg_info.local_size,
                mod_info.bindings.len(),
                reg_info.bindings.len(),
            )));
        }
        Ok(CompiledKernel::new(
            reg_info.clone(),
            registered.body().clone(),
            Self::opts_for(driver),
        ))
    }

    /// Parses raw words then compiles them (convenience for the Vulkan
    /// `vkCreateShaderModule` + `vkCreateComputePipelines` path).
    ///
    /// # Errors
    ///
    /// As [`DriverCompiler::compile_module`], plus parse failures.
    pub fn compile_words(
        &self,
        words: &[u32],
        driver: &DriverProfile,
    ) -> SimResult<CompiledKernel> {
        let module = SpirvModule::parse(words).map_err(module_error)?;
        self.compile_module(&module, driver)
    }

    /// Compiles a kernel by symbol (the CUDA path — kernels are compiled
    /// offline by nvcc and resolved by name at launch).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownKernel`] for unregistered symbols.
    pub fn compile_symbol(&self, name: &str, driver: &DriverProfile) -> SimResult<CompiledKernel> {
        let registered = self.registry.lookup(name)?;
        Ok(CompiledKernel::new(
            registered.info().clone(),
            registered.body().clone(),
            Self::opts_for(driver),
        ))
    }

    /// Compiles every `__kernel` in an OpenCL C source string and returns
    /// the kernels plus the modelled JIT build time.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidArgument`] if the source declares no kernels;
    /// [`SimError::UnknownKernel`] if a declared kernel is unregistered.
    pub fn compile_source(
        &self,
        source: &str,
        driver: &DriverProfile,
    ) -> SimResult<(Vec<CompiledKernel>, SimDuration)> {
        let names = extract_kernel_names(source);
        if names.is_empty() {
            return Err(SimError::invalid("OpenCL source declares no __kernel"));
        }
        let mut kernels = Vec::with_capacity(names.len());
        for name in &names {
            kernels.push(self.compile_symbol(name, driver)?);
        }
        let build_time = jit_build_time(driver, source.len() as u64);
        Ok((kernels, build_time))
    }
}

/// Models `clBuildProgram` cost: proportional to source size with a small
/// floor (process startup, front-end init).
pub fn jit_build_time(driver: &DriverProfile, source_bytes: u64) -> SimDuration {
    let kb = source_bytes as f64 / 1024.0;
    SimDuration::from_micros(180.0) + driver.jit_cost_per_kb.scale(kb)
}

/// Scans OpenCL C source for `__kernel void NAME(` declarations.
///
/// A full C parser is out of scope; the scanner understands enough to
/// extract entry points from the benchmark sources, including arbitrary
/// whitespace and comments between tokens.
pub fn extract_kernel_names(source: &str) -> Vec<String> {
    let cleaned = strip_comments(source);
    let mut names = Vec::new();
    let mut rest = cleaned.as_str();
    while let Some(pos) = rest.find("__kernel") {
        rest = &rest[pos + "__kernel".len()..];
        let mut it = rest.trim_start();
        if let Some(after) = it.strip_prefix("void") {
            it = after.trim_start();
            let name: String = it
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            let after_name = it[name.len()..].trim_start();
            if !name.is_empty() && after_name.starts_with('(') && !names.contains(&name) {
                names.push(name);
            }
        }
    }
    names
}

fn strip_comments(source: &str) -> String {
    let mut out = String::with_capacity(source.len());
    let mut chars = source.char_indices().peekable();
    while let Some((_, c)) = chars.next() {
        if c == '/' {
            match chars.peek() {
                Some(&(_, '/')) => {
                    for (_, c2) in chars.by_ref() {
                        if c2 == '\n' {
                            out.push('\n');
                            break;
                        }
                    }
                    continue;
                }
                Some(&(_, '*')) => {
                    chars.next();
                    let mut prev = ' ';
                    for (_, c2) in chars.by_ref() {
                        if prev == '*' && c2 == '/' {
                            break;
                        }
                        prev = c2;
                    }
                    out.push(' ');
                    continue;
                }
                _ => {}
            }
        }
        out.push(c);
    }
    out
}

fn module_error(e: ModuleError) -> SimError {
    SimError::invalid(format!("invalid SPIR-V module: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vcb_sim::exec::{GroupCtx, KernelInfo};
    use vcb_sim::profile::devices;
    use vcb_sim::Api;

    fn registry_with(name: &str, promotable: bool) -> KernelRegistry {
        let mut r = KernelRegistry::new();
        let mut b = KernelInfo::new(name, [64, 1, 1]).reads(0, "in");
        if promotable {
            b = b.promotable();
        }
        r.register(b.build(), Arc::new(|_: &mut GroupCtx<'_>| Ok(())))
            .unwrap();
        r
    }

    #[test]
    fn vulkan_path_gets_immature_opts() {
        let registry = registry_with("k", true);
        let compiler = DriverCompiler::new(&registry);
        let device = devices::gtx1050ti();
        let module = SpirvModule::assemble(registry.lookup("k").unwrap().info());
        let vk = compiler
            .compile_module(&module, device.driver(Api::Vulkan).unwrap())
            .unwrap();
        assert!(!vk.opts().local_memory_promotion);
    }

    #[test]
    fn opencl_path_gets_mature_opts() {
        let registry = registry_with("k", true);
        let compiler = DriverCompiler::new(&registry);
        let device = devices::gtx1050ti();
        let (kernels, build) = compiler
            .compile_source(
                "__kernel void k(__global float* in) {}",
                device.driver(Api::OpenCl).unwrap(),
            )
            .unwrap();
        assert_eq!(kernels.len(), 1);
        assert!(kernels[0].opts().local_memory_promotion);
        assert!(build > SimDuration::ZERO);
    }

    #[test]
    fn unknown_symbol_fails() {
        let registry = KernelRegistry::new();
        let compiler = DriverCompiler::new(&registry);
        let device = devices::gtx1050ti();
        assert!(matches!(
            compiler.compile_symbol("nope", device.driver(Api::Cuda).unwrap()),
            Err(SimError::UnknownKernel { .. })
        ));
    }

    #[test]
    fn metadata_mismatch_detected() {
        let mut registry = KernelRegistry::new();
        registry
            .register(
                KernelInfo::new("k", [64, 1, 1]).build(),
                Arc::new(|_: &mut GroupCtx<'_>| Ok(())),
            )
            .unwrap();
        // Assemble a module claiming a different local size.
        let wrong = KernelInfo::new("k", [128, 1, 1]).build();
        let module = SpirvModule::assemble(&wrong);
        let compiler = DriverCompiler::new(&registry);
        let device = devices::gtx1050ti();
        assert!(compiler
            .compile_module(&module, device.driver(Api::Vulkan).unwrap())
            .is_err());
    }

    #[test]
    fn kernel_name_extraction() {
        let src = r#"
            // a comment mentioning __kernel void fake(
            /* __kernel void also_fake( */
            __kernel void fan1(__global float *m, int n) { }
            __kernel
            void fan2 (__global float *m) { }
            void helper(int x) {}
        "#;
        assert_eq!(extract_kernel_names(src), vec!["fan1", "fan2"]);
    }

    #[test]
    fn extraction_dedups_and_handles_empty() {
        assert!(extract_kernel_names("void nothing() {}").is_empty());
        let twice = "__kernel void k(int a){} __kernel void k(int a){}";
        assert_eq!(extract_kernel_names(twice).len(), 1);
    }

    #[test]
    fn jit_cost_scales_with_source() {
        let device = devices::gtx1050ti();
        let cl = device.driver(Api::OpenCl).unwrap();
        let small = jit_build_time(cl, 1024);
        let big = jit_build_time(cl, 64 * 1024);
        assert!(big > small * 10);
    }

    #[test]
    fn empty_source_rejected() {
        let registry = registry_with("k", false);
        let compiler = DriverCompiler::new(&registry);
        let device = devices::gtx1050ti();
        assert!(compiler
            .compile_source("int x;", device.driver(Api::OpenCl).unwrap())
            .is_err());
    }
}
