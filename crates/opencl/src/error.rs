//! OpenCL-shaped error handling.

use std::fmt;

use vcb_sim::SimError;

/// Errors returned by the OpenCL-shaped API (`cl_int` error codes in
/// spirit).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClError {
    /// `CL_OUT_OF_RESOURCES` and other device-model failures.
    Device(SimError),
    /// `CL_INVALID_VALUE` / `CL_INVALID_*`: the API was misused.
    InvalidValue {
        /// Which call was misused.
        call: &'static str,
        /// Explanation.
        what: String,
    },
    /// `CL_BUILD_PROGRAM_FAILURE` with a build log.
    BuildFailure {
        /// The build log a real driver would return.
        log: String,
    },
    /// `CL_DEVICE_NOT_FOUND`: no OpenCL driver on this device.
    DeviceNotFound {
        /// Device without OpenCL support.
        device: String,
    },
}

impl ClError {
    pub(crate) fn invalid(call: &'static str, what: impl Into<String>) -> Self {
        ClError::InvalidValue {
            call,
            what: what.into(),
        }
    }
}

impl fmt::Display for ClError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClError::Device(e) => write!(f, "opencl device error: {e}"),
            ClError::InvalidValue { call, what } => write!(f, "invalid value in {call}: {what}"),
            ClError::BuildFailure { log } => write!(f, "program build failure: {log}"),
            ClError::DeviceNotFound { device } => {
                write!(f, "no OpenCL driver on device {device}")
            }
        }
    }
}

impl std::error::Error for ClError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ClError {
    fn from(e: SimError) -> Self {
        ClError::Device(e)
    }
}

/// Result alias for OpenCL-shaped operations.
pub type ClResult<T> = Result<T, ClError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ClError::from(SimError::invalid("y"));
        assert!(e.to_string().contains("opencl device error"));
        assert!(std::error::Error::source(&e).is_some());
        let b = ClError::BuildFailure {
            log: "lud_diagonal: internal compiler error".into(),
        };
        assert!(b.to_string().contains("lud_diagonal"));
    }
}
