//! nn — k-nearest neighbors (Table I: Dense Linear Algebra / Data
//! Mining).
//!
//! Computes the Euclidean distance from every (latitude, longitude)
//! record to a query point on the GPU; the host then selects the k
//! closest. A single bulk-parallel kernel with no iteration — the paper
//! finds all three programming models at parity here.

use std::sync::Arc;

use vcb_core::run::{RunOutcome, SizeSpec};
use vcb_core::suite::{self, BenchmarkMeta};
use vcb_core::workload::{RunOpts, Workload};
use vcb_cuda::{KernelArg, Stream};
use vcb_opencl::{ClArg, Kernel as ClKernel, MemFlags, Program};
use vcb_sim::exec::{GroupCtx, KernelInfo};
use vcb_sim::profile::{DeviceClass, DeviceProfile};
use vcb_sim::{Api, KernelRegistry, SimResult};
use vcb_vulkan::util as vku;
use vcb_vulkan::SubmitInfo;

use crate::common::{
    approx_eq_f32, cl_env, cl_failure, cuda_env, cuda_failure, measure_cl, measure_cuda,
    measure_vk, vk_env, vk_failure, vk_kernel, BodyOutcome,
};
use crate::data;

/// Workload name.
pub const NAME: &str = "nn";
/// Kernel entry point.
pub const KERNEL: &str = "nn_distance";
/// Workgroup size.
pub const LOCAL_SIZE: u32 = 256;
/// Neighbors selected on the host.
pub const K: usize = 5;

/// The GLSL compute shader the SPIR-V is built from.
pub const GLSL_SOURCE: &str = r#"
#version 450
layout(local_size_x = 256) in;
layout(set = 0, binding = 0) readonly buffer Locations { vec2 locations[]; };
layout(set = 0, binding = 1) buffer Distances { float distances[]; };
layout(push_constant) uniform Params {
    uint n;
    float lat;
    float lng;
};

void main() {
    uint i = gl_GlobalInvocationID.x;
    if (i < n) {
        vec2 p = locations[i];
        distances[i] = sqrt((lat - p.x) * (lat - p.x)
                          + (lng - p.y) * (lng - p.y));
    }
}
"#;

/// The OpenCL C twin of the kernel.
pub const CL_SOURCE: &str = r#"
__kernel void nn_distance(__global const float2* locations,
                          __global float* distances,
                          uint n,
                          float lat,
                          float lng) {
    uint i = get_global_id(0);
    if (i < n) {
        float2 p = locations[i];
        distances[i] = sqrt((lat - p.x) * (lat - p.x)
                          + (lng - p.y) * (lng - p.y));
    }
}
"#;

/// Registers the kernel body.
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register(registry: &mut KernelRegistry) -> SimResult<()> {
    let info = KernelInfo::new(KERNEL, [LOCAL_SIZE, 1, 1])
        .reads(0, "locations")
        .writes(1, "distances")
        .push_constants(12)
        .source_bytes(CL_SOURCE.len() as u64)
        .build();
    registry.register(
        info,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let locations = ctx.global::<f32>(0)?;
            let distances = ctx.global::<f32>(1)?;
            let n = ctx.push_u32(0) as u64;
            let lat = ctx.push_f32(4);
            let lng = ctx.push_f32(8);
            ctx.for_lanes(|lane| {
                let i = lane.global_linear();
                if i < n {
                    let i = i as usize;
                    let px = lane.ld(&locations, 2 * i);
                    let py = lane.ld(&locations, 2 * i + 1);
                    let d = ((lat - px) * (lat - px) + (lng - py) * (lng - py)).sqrt();
                    lane.alu(6);
                    lane.st(&distances, i, d);
                }
            });
            Ok(())
        }),
    )
}

/// Query point used by all runs (fixed, like Rodinia's command line).
pub const QUERY: (f32, f32) = (30.0, 59.0);

/// Deterministic (lat, lng) records, interleaved.
pub fn generate(n: usize, seed: u64) -> Vec<f32> {
    let lat = data::uniform_f32(n, seed, 0.0, 90.0);
    let lng = data::uniform_f32(n, seed ^ 0x1477, 0.0, 180.0);
    lat.into_iter().zip(lng).flat_map(|(a, b)| [a, b]).collect()
}

/// CPU reference distances.
pub fn reference(locations: &[f32], lat: f32, lng: f32) -> Vec<f32> {
    locations
        .chunks_exact(2)
        .map(|p| ((lat - p[0]) * (lat - p[0]) + (lng - p[1]) * (lng - p[1])).sqrt())
        .collect()
}

/// Host-side top-k selection (indices of the k smallest distances).
pub fn select_k_nearest(distances: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..distances.len()).collect();
    idx.sort_by(|&a, &b| distances[a].total_cmp(&distances[b]));
    idx.truncate(k);
    idx
}

fn push() -> impl Fn(usize) -> Vec<u8> {
    |n| {
        let mut p = Vec::with_capacity(12);
        p.extend_from_slice(&(n as u32).to_le_bytes());
        p.extend_from_slice(&QUERY.0.to_le_bytes());
        p.extend_from_slice(&QUERY.1.to_le_bytes());
        p
    }
}

fn run_vulkan(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let env = vk_env(profile, registry)?;
    let locations_host = generate(n, opts.seed);
    let expected = opts
        .validate
        .then(|| reference(&locations_host, QUERY.0, QUERY.1));
    measure_vk(NAME, &size.label, &env, |env| {
        let device = &env.device;
        let locations =
            vku::upload_storage_buffer(device, &env.queue, &locations_host).map_err(vk_failure)?;
        let distances = vku::create_storage_buffer(device, (n * 4) as u64).map_err(vk_failure)?;
        let (layout, _pool, set) =
            vku::storage_descriptor_set(device, &[&locations.buffer, &distances.buffer])
                .map_err(vk_failure)?;
        let kernel = vk_kernel(env, registry, KERNEL, &layout, 12)?;
        let cmd_pool = device
            .create_command_pool(env.queue.family_index())
            .map_err(vk_failure)?;
        let cmd = cmd_pool.allocate_command_buffer().map_err(vk_failure)?;
        cmd.begin().map_err(vk_failure)?;
        cmd.bind_pipeline(&kernel.pipeline).map_err(vk_failure)?;
        cmd.bind_descriptor_sets(&kernel.layout, &[&set]).map_err(vk_failure)?;
        cmd.push_constants(&kernel.layout, 0, &push()(n)).map_err(vk_failure)?;
        cmd.dispatch((n as u32).div_ceil(LOCAL_SIZE), 1, 1).map_err(vk_failure)?;
        cmd.end().map_err(vk_failure)?;
        let compute_start = device.now();
        env.queue
            .submit(&[SubmitInfo { command_buffers: &[&cmd] }], None)
            .map_err(vk_failure)?;
        env.queue.wait_idle();
        let compute_time = device.now().duration_since(compute_start);
        let out: Vec<f32> =
            vku::download_storage_buffer(device, &env.queue, &distances).map_err(vk_failure)?;
        let _nearest = select_k_nearest(&out, K);
        Ok(BodyOutcome {
            validated: expected.as_ref().is_none_or(|e| approx_eq_f32(&out, e, 1e-4)),
            compute_time,
        })
    })
}

fn run_cuda(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let ctx = cuda_env(profile, registry)?;
    let locations_host = generate(n, opts.seed);
    let expected = opts
        .validate
        .then(|| reference(&locations_host, QUERY.0, QUERY.1));
    measure_cuda(NAME, &size.label, &ctx, |ctx| {
        let locations = ctx.malloc((2 * n * 4) as u64).map_err(cuda_failure)?;
        let distances = ctx.malloc((n * 4) as u64).map_err(cuda_failure)?;
        ctx.memcpy_htod(&locations, &locations_host).map_err(cuda_failure)?;
        let kernel = ctx.get_function(KERNEL).map_err(cuda_failure)?;
        let compute_start = ctx.now();
        ctx.launch_kernel(
            &kernel,
            [(n as u32).div_ceil(LOCAL_SIZE), 1, 1],
            &[
                KernelArg::Ptr(locations),
                KernelArg::Ptr(distances),
                KernelArg::U32(n as u32),
                KernelArg::F32(QUERY.0),
                KernelArg::F32(QUERY.1),
            ],
            Stream::DEFAULT,
        )
        .map_err(cuda_failure)?;
        ctx.device_synchronize();
        let compute_time = ctx.now().duration_since(compute_start);
        let out: Vec<f32> = ctx.memcpy_dtoh(&distances).map_err(cuda_failure)?;
        let _nearest = select_k_nearest(&out, K);
        Ok(BodyOutcome {
            validated: expected.as_ref().is_none_or(|e| approx_eq_f32(&out, e, 1e-4)),
            compute_time,
        })
    })
}

fn run_opencl(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let env = cl_env(profile, registry)?;
    let locations_host = generate(n, opts.seed);
    let expected = opts
        .validate
        .then(|| reference(&locations_host, QUERY.0, QUERY.1));
    measure_cl(NAME, &size.label, &env, |env| {
        let locations = env
            .context
            .create_buffer(MemFlags::ReadOnly, (2 * n * 4) as u64)
            .map_err(cl_failure)?;
        let distances = env
            .context
            .create_buffer(MemFlags::WriteOnly, (n * 4) as u64)
            .map_err(cl_failure)?;
        env.queue
            .enqueue_write_buffer(&locations, &locations_host)
            .map_err(cl_failure)?;
        let program = Program::create_with_source(&env.context, CL_SOURCE);
        program.build().map_err(cl_failure)?;
        let kernel = ClKernel::new(&program, KERNEL).map_err(cl_failure)?;
        kernel.set_arg(0, ClArg::Buffer(locations));
        kernel.set_arg(1, ClArg::Buffer(distances));
        kernel.set_arg(2, ClArg::U32(n as u32));
        kernel.set_arg(3, ClArg::F32(QUERY.0));
        kernel.set_arg(4, ClArg::F32(QUERY.1));
        let compute_start = env.context.now();
        env.queue
            .enqueue_nd_range_kernel(&kernel, [n as u64, 1, 1])
            .map_err(cl_failure)?;
        env.queue.finish();
        let compute_time = env.context.now().duration_since(compute_start);
        let out: Vec<f32> = env.queue.enqueue_read_buffer(&distances).map_err(cl_failure)?;
        let _nearest = select_k_nearest(&out, K);
        Ok(BodyOutcome {
            validated: expected.as_ref().is_none_or(|e| approx_eq_f32(&out, e, 1e-4)),
            compute_time,
        })
    })
}

/// The nn suite entry.
#[derive(Debug, Clone)]
pub struct Nn {
    registry: Arc<KernelRegistry>,
}

impl Nn {
    /// Creates the workload against a kernel registry.
    pub fn new(registry: Arc<KernelRegistry>) -> Self {
        Nn { registry }
    }
}

impl Workload for Nn {
    fn meta(&self) -> BenchmarkMeta {
        *suite::find(NAME).expect("nn is in Table I")
    }

    fn sizes(&self, class: DeviceClass) -> Vec<SizeSpec> {
        match class {
            DeviceClass::Desktop => vec![
                SizeSpec::new("256K", 256 * 1024),
                SizeSpec::new("8M", 8 * 1024 * 1024),
                SizeSpec::new("16M", 16 * 1024 * 1024),
            ],
            DeviceClass::Mobile => vec![
                SizeSpec::new("256K", 256 * 1024),
                SizeSpec::new("8M", 8 * 1024 * 1024),
            ],
        }
    }

    fn run(&self, api: Api, device: &DeviceProfile, size: &SizeSpec, opts: &RunOpts) -> RunOutcome {
        match api {
            Api::Vulkan => run_vulkan(device, &self.registry, size, opts),
            Api::Cuda => run_cuda(device, &self.registry, size, opts),
            Api::OpenCl => run_opencl(device, &self.registry, size, opts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_core::run::speedup;
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        let mut r = KernelRegistry::new();
        register(&mut r).unwrap();
        Arc::new(r)
    }

    #[test]
    fn all_apis_match_reference() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("8k", 8192);
        let w = Nn::new(Arc::clone(&registry));
        for api in Api::ALL {
            let record = w.run(api, &devices::gtx1050ti(), &size, &opts).unwrap();
            assert!(record.validated, "{api} failed validation");
        }
    }

    #[test]
    fn top_k_selection_is_sorted_by_distance() {
        let d = vec![5.0, 1.0, 3.0, 0.5, 2.0];
        assert_eq!(select_k_nearest(&d, 3), vec![3, 1, 4]);
    }

    #[test]
    fn apis_are_at_parity() {
        // Single kernel, no iteration: §V-A2 reports "pretty much similar
        // performance".
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("256K", 256 * 1024);
        let w = Nn::new(Arc::clone(&registry));
        let profile = devices::gtx1050ti();
        let vk = w.run(Api::Vulkan, &profile, &size, &opts).unwrap();
        let cu = w.run(Api::Cuda, &profile, &size, &opts).unwrap();
        let s = speedup(&cu, &vk);
        assert!((0.75..1.35).contains(&s), "nn speedup {s}");
    }
}
