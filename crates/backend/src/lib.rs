//! # vcb-backend — the portable host-program layer
//!
//! One [`ComputeBackend`] trait behind the three programming-model
//! frontends, so each workload writes a *single* host program instead of
//! three near-identical ~150-line drivers (the decoupling ALTIS and
//! gSuite argue benchmark suites need to scale).
//!
//! * [`backend`] — the trait, handles, the generic [`measure`] wrapper
//!   and byte-view helpers.
//! * [`vulkan`] / [`cuda`] / [`opencl`] — the three lowerings. Each
//!   issues exactly the API calls the hand-written drivers issued, so
//!   call-count (§VI-A) and timing-breakdown (§V-A2) fidelity survive
//!   the refactor.
//! * [`env`] — per-API environment bring-up and error translation
//!   (also used directly by the Vulkan-specific §VI-B ablations).
//!
//! ```
//! use vcb_backend::{bytes_of, to_f32, UsageHint};
//! use vcb_sim::profile::devices;
//! use vcb_sim::Api;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), vcb_core::run::RunFailure> {
//! let registry = Arc::new(vcb_sim::KernelRegistry::new());
//! let mut b = vcb_backend::create(Api::Cuda, &devices::gtx1050ti(), &registry)?;
//! let data = [1.0f32, 2.0, 3.0];
//! let buf = b.upload(bytes_of(&data), UsageHint::ReadOnly)?;
//! assert_eq!(to_f32(&b.download(buf)?), data);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod cuda;
pub mod env;
pub mod opencl;
pub mod vulkan;

use std::sync::Arc;

use vcb_core::run::RunFailure;
use vcb_sim::profile::DeviceProfile;
use vcb_sim::{Api, KernelRegistry};

pub use backend::{
    bytes_of, measure, to_f32, to_i32, to_u32, BackendResult, BindGroupHandle, BodyOutcome,
    BufferHandle, ComputeBackend, KernelHandle, SeqHandle, UsageHint,
};
pub use cuda::CudaBackend;
pub use env::{
    cl_env, cl_failure, cuda_env, cuda_failure, vk_env, vk_failure, vk_kernel, ClEnv, VkEnv,
    VkKernelBundle,
};
pub use opencl::OpenClBackend;
pub use vulkan::VulkanBackend;

/// Creates the backend for `api` on `profile` — the entire per-API half
/// of the old `Workload::run` dispatch.
///
/// # Errors
///
/// [`RunFailure::Unsupported`] when the device lacks the API's driver;
/// environment bring-up failures otherwise.
pub fn create(
    api: Api,
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
) -> Result<Box<dyn ComputeBackend>, RunFailure> {
    Ok(match api {
        Api::Vulkan => Box::new(VulkanBackend::new(profile, registry)?),
        Api::Cuda => Box::new(CudaBackend::new(profile, registry)?),
        Api::OpenCl => Box::new(OpenClBackend::new(profile, registry)?),
    })
}
