//! Call-count fidelity of the portable backend layer.
//!
//! The §VI-A effort table and the relative API-verbosity claims are
//! derived from measured `CallCounter` totals, so the `ComputeBackend`
//! refactor must not change them. The totals below were captured from
//! the pre-refactor per-API host drivers (same sizes, same seed) and are
//! pinned here; the refactored host programs must reproduce them.
//!
//! ## Documented deviations (both pathfinder, both −1 call)
//!
//! * **pathfinder / Vulkan 88 → 87**: the old driver first tried to
//!   allocate its second (ping-pong) descriptor set from the helper's
//!   exhausted one-set pool, recording a *failed*
//!   `vkAllocateDescriptorSets` before creating a second pool. The
//!   backend's `bind_group_like` creates the second pool directly.
//! * **pathfinder / OpenCL 30 → 29**: the old driver re-issued
//!   `clSetKernelArg` for the `height` argument every chunk even when
//!   its value had not changed; the backend's sticky-argument replay
//!   only re-sets arguments whose values changed. (All other workloads
//!   already followed the only-set-what-changed discipline, so their
//!   totals are unchanged.)
//!
//! OpenCL *kernel-phase* wall times shift by a few hundred nanoseconds
//! per `clSetKernelArg` because the replayed arg-setting now happens
//! inside the timed compute phase (the pre-refactor drivers set the
//! first round of arguments before starting the clock). Call totals,
//! distinct entry points, end-to-end totals and every CUDA/Vulkan time
//! are bit-identical.

use vcb_core::run::SizeSpec;
use vcb_core::workload::RunOpts;
use vcb_sim::profile::devices;
use vcb_sim::Api;

/// (workload, size, [(api, pre-refactor total, pinned total, distinct)]).
///
/// `pinned` differs from `pre-refactor` only for the two documented
/// pathfinder deviations.
struct Expect {
    name: &'static str,
    size: SizeSpec,
    rows: [(Api, u64, u64, usize); 3],
}

fn expectations() -> Vec<Expect> {
    use Api::{Cuda, OpenCl, Vulkan};
    vec![
        Expect {
            name: "backprop",
            size: SizeSpec::new("4K", 4096),
            rows: [
                (Vulkan, 149, 149, 27),
                (Cuda, 18, 18, 5),
                (OpenCl, 31, 31, 9),
            ],
        },
        Expect {
            name: "bfs",
            size: SizeSpec::new("2k", 2048),
            rows: [
                (Vulkan, 220, 220, 28),
                (Cuda, 49, 49, 5),
                (OpenCl, 63, 63, 9),
            ],
        },
        Expect {
            name: "cfd",
            size: SizeSpec::new("1k", 1024),
            rows: [
                (Vulkan, 3127, 3127, 28),
                (Cuda, 1215, 1215, 5),
                (OpenCl, 1231, 1231, 9),
            ],
        },
        Expect {
            name: "gaussian",
            size: SizeSpec::new("48", 48),
            rows: [
                (Vulkan, 563, 563, 28),
                (Cuda, 198, 198, 5),
                (OpenCl, 301, 301, 9),
            ],
        },
        Expect {
            name: "hotspot",
            size: SizeSpec::with_aux("64-4", 64, 4),
            rows: [(Vulkan, 91, 91, 28), (Cuda, 16, 16, 5), (OpenCl, 28, 28, 9)],
        },
        Expect {
            name: "lud",
            size: SizeSpec::new("64", 64),
            rows: [
                (Vulkan, 104, 104, 28),
                (Cuda, 27, 27, 5),
                (OpenCl, 45, 45, 9),
            ],
        },
        Expect {
            name: "nn",
            size: SizeSpec::new("8k", 8192),
            rows: [(Vulkan, 56, 56, 27), (Cuda, 8, 8, 5), (OpenCl, 15, 15, 9)],
        },
        Expect {
            name: "nw",
            size: SizeSpec::new("256", 256),
            rows: [
                (Vulkan, 116, 116, 27),
                (Cuda, 14, 14, 5),
                (OpenCl, 24, 24, 9),
            ],
        },
        Expect {
            name: "pathfinder",
            size: SizeSpec::with_aux("tiny", 600, 60),
            // The two documented deviations: 88 → 87 and 30 → 29.
            rows: [(Vulkan, 88, 87, 28), (Cuda, 14, 14, 5), (OpenCl, 30, 29, 9)],
        },
    ]
}

#[test]
fn suite_call_totals_match_the_pre_refactor_drivers() {
    let registry = vcb_workloads::registry().unwrap();
    let opts = RunOpts::default();
    let profile = devices::gtx1050ti();
    let expectations = expectations();
    for w in vcb_workloads::suite_workloads(&registry) {
        let name = w.meta().name;
        let e = expectations.iter().find(|e| e.name == name).unwrap();
        for (api, pre, pinned, distinct) in &e.rows {
            let r = w.run(*api, &profile, &e.size, &opts).unwrap();
            assert_eq!(
                r.calls.total(),
                *pinned,
                "{name}/{api} call total (pre-refactor was {pre})"
            );
            assert_eq!(r.calls.distinct(), *distinct, "{name}/{api} distinct calls");
            assert!(r.validated, "{name}/{api} validation");
        }
    }
}

#[test]
fn dnn_call_totals_are_pinned() {
    // The DNN hosts are post-refactor code with no legacy per-API
    // driver to diff against; their call totals are pinned at their
    // introduction instead, so backend-layer changes cannot silently
    // shift the family's API-verbosity comparison. Sizes match the
    // per-workload unit tests (conv/gemm one layer chain each, maxpool
    // two chained stages).
    use Api::{Cuda, OpenCl, Vulkan};
    let registry = vcb_workloads::registry().unwrap();
    let opts = RunOpts::default();
    let profile = devices::gtx1050ti();
    let expected = [
        (
            "dnn_conv2d",
            SizeSpec::new("32", 32),
            [(Vulkan, 101, 28), (Cuda, 15, 5), (OpenCl, 25, 9)],
        ),
        (
            "dnn_gemm",
            SizeSpec::new("64", 64),
            [(Vulkan, 110, 28), (Cuda, 16, 5), (OpenCl, 26, 9)],
        ),
        (
            "dnn_maxpool2d",
            SizeSpec::new("256", 256),
            [(Vulkan, 72, 28), (Cuda, 12, 5), (OpenCl, 20, 9)],
        ),
    ];
    let workloads = vcb_workloads::dnn_workloads(&registry);
    for (name, size, rows) in expected {
        let w = workloads
            .iter()
            .find(|w| w.meta().name == name)
            .unwrap_or_else(|| panic!("{name} missing from the dnn family"));
        for (api, total, distinct) in rows {
            let r = w.run(api, &profile, &size, &opts).unwrap();
            assert_eq!(r.calls.total(), total, "{name}/{api} call total");
            assert_eq!(r.calls.distinct(), distinct, "{name}/{api} distinct calls");
            assert!(r.validated, "{name}/{api} validation");
        }
    }
}

#[test]
fn effort_row_vectoradd_is_bit_identical() {
    // The §VI-A effort table is computed from this exact configuration:
    // vectoradd at Listing 1's N = 1M on the GTX 1050 Ti. All three
    // pre-refactor totals are preserved exactly.
    let registry = vcb_workloads::registry().unwrap();
    let opts = RunOpts::default();
    let profile = devices::gtx1050ti();
    let expected = [
        (Api::Vulkan, 75, 27),
        (Api::Cuda, 10, 5),
        (Api::OpenCl, 16, 9),
    ];
    for (api, total, distinct) in expected {
        let r = vcb_workloads::micro::vectoradd::run(api, &profile, &registry, 1_000_000, &opts)
            .unwrap();
        assert_eq!(r.calls.total(), total, "vectoradd/{api} call total");
        assert_eq!(r.calls.distinct(), distinct, "vectoradd/{api} distinct");
    }
}

#[test]
fn env_cache_reuse_is_invisible_to_per_cell_measurements() {
    // The worker-local EnvCache reuses environments (reset to cold) and
    // JIT builds (charged at recorded cost) across cells. Every per-cell
    // observable — call totals, distinct entry points, kernel/total
    // times, timing breakdown, validation, fingerprint — must be
    // bit-identical to a cold run. Exercised on all three APIs, with the
    // same (api, device) pair hit repeatedly so the second pass inside
    // the scope runs entirely on cached environments and JIT artifacts.
    let registry = vcb_workloads::registry().unwrap();
    let opts = RunOpts::default();
    let profile = devices::gtx1050ti();
    let size = SizeSpec::with_aux("tiny", 600, 60);
    let workloads = vcb_workloads::suite_workloads(&registry);
    let pathfinder = workloads
        .iter()
        .find(|w| w.meta().name == "pathfinder")
        .unwrap();
    let bfs = workloads.iter().find(|w| w.meta().name == "bfs").unwrap();
    let bfs_size = SizeSpec::new("2k", 2048);

    vcb_backend::clear_worker_env_cache();
    for api in [Api::Vulkan, Api::Cuda, Api::OpenCl] {
        let cold = pathfinder.run(api, &profile, &size, &opts).unwrap();
        let cold_bfs = bfs.run(api, &profile, &bfs_size, &opts).unwrap();
        let (warm1, warm2, warm_bfs) = vcb_backend::with_worker_env_cache(|| {
            let first = pathfinder.run(api, &profile, &size, &opts).unwrap();
            let second = pathfinder.run(api, &profile, &size, &opts).unwrap();
            let other = bfs.run(api, &profile, &bfs_size, &opts).unwrap();
            (first, second, other)
        });
        for (label, warm, reference) in [
            ("first scoped run", &warm1, &cold),
            ("cached-env run", &warm2, &cold),
            ("different workload on reused env", &warm_bfs, &cold_bfs),
        ] {
            assert_eq!(
                warm.calls.total(),
                reference.calls.total(),
                "{api} {label} call total"
            );
            assert_eq!(
                warm.calls.distinct(),
                reference.calls.distinct(),
                "{api} {label} distinct calls"
            );
            assert_eq!(
                warm.fingerprint, reference.fingerprint,
                "{api} {label} fingerprint"
            );
            assert_eq!(
                warm.kernel_time.as_micros(),
                reference.kernel_time.as_micros(),
                "{api} {label} kernel time"
            );
            assert_eq!(
                warm.total_time.as_micros(),
                reference.total_time.as_micros(),
                "{api} {label} total time"
            );
            assert!(warm.validated, "{api} {label} validation");
        }
    }
    let stats = vcb_backend::worker_env_cache_stats();
    assert!(
        stats.env_hits >= 6,
        "environments should be reused across scoped runs: {stats:?}"
    );
    assert!(
        stats.jit_hits >= 1,
        "OpenCL JIT builds should be reused: {stats:?}"
    );
    assert!(
        stats.spirv_hits >= 1,
        "SPIR-V assemblies should be reused: {stats:?}"
    );
    assert!(
        stats.module_hits >= 1,
        "parsed SPIR-V modules should be reused: {stats:?}"
    );
    assert!(
        stats.pipeline_hits >= 1,
        "driver-compiled kernels should be reused: {stats:?}"
    );
}

#[test]
fn sequences_replay_with_sticky_args() {
    // Re-running a cached sequence must not re-issue unchanged OpenCL
    // arguments (the bfs level loop relies on this: level 2+ issues only
    // enqueues and the flag write/read).
    let registry = vcb_workloads::registry().unwrap();
    let opts = RunOpts::default();
    let profile = devices::gtx1050ti();
    let size = SizeSpec::new("2k", 2048);
    let w = vcb_workloads::suite_workloads(&registry)
        .into_iter()
        .find(|w| w.meta().name == "bfs")
        .unwrap();
    let r = w.run(Api::OpenCl, &profile, &size, &opts).unwrap();
    // 12 sticky args total (k1: 7, k2: 5) regardless of how many levels
    // ran; every additional level adds only flag write + 2 enqueues +
    // flag read.
    assert_eq!(r.calls.count("clSetKernelArg"), 12);
    let enqueues = r.calls.count("clEnqueueNDRangeKernel");
    assert!(enqueues >= 4, "bfs should run multiple levels: {enqueues}");
}
