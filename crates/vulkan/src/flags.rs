//! Bit-flag types mirroring the Vulkan flag enums the benchmarks use.

use std::fmt;
use std::ops::BitOr;

macro_rules! flag_type {
    ($(#[$doc:meta])* $name:ident { $($(#[$fdoc:meta])* $flag:ident = $bit:expr => $label:expr,)+ }) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name {
            bits: u32,
        }

        impl $name {
            $(
                $(#[$fdoc])*
                pub const $flag: $name = $name { bits: $bit };
            )+

            /// The empty flag set.
            pub const fn empty() -> Self {
                $name { bits: 0 }
            }

            /// `true` if every bit of `other` is set in `self`.
            pub const fn contains(self, other: $name) -> bool {
                self.bits & other.bits == other.bits
            }

            /// `true` if any bit of `other` is set in `self`.
            pub const fn intersects(self, other: $name) -> bool {
                self.bits & other.bits != 0
            }

            /// Raw bit value.
            pub const fn bits(self) -> u32 {
                self.bits
            }

            /// `true` when no flags are set.
            pub const fn is_empty(self) -> bool {
                self.bits == 0
            }
        }

        impl BitOr for $name {
            type Output = $name;

            fn bitor(self, rhs: $name) -> $name {
                $name { bits: self.bits | rhs.bits }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let mut parts: Vec<&str> = Vec::new();
                $(
                    if self.contains($name::$flag) {
                        parts.push($label);
                    }
                )+
                if parts.is_empty() {
                    parts.push("none");
                }
                f.write_str(&parts.join("|"))
            }
        }
    };
}

flag_type! {
    /// `VkBufferUsageFlags` subset used by compute workloads.
    BufferUsage {
        /// `VK_BUFFER_USAGE_STORAGE_BUFFER_BIT`.
        STORAGE_BUFFER = 0b0001 => "STORAGE_BUFFER",
        /// `VK_BUFFER_USAGE_TRANSFER_SRC_BIT`.
        TRANSFER_SRC = 0b0010 => "TRANSFER_SRC",
        /// `VK_BUFFER_USAGE_TRANSFER_DST_BIT`.
        TRANSFER_DST = 0b0100 => "TRANSFER_DST",
        /// `VK_BUFFER_USAGE_UNIFORM_BUFFER_BIT`.
        UNIFORM_BUFFER = 0b1000 => "UNIFORM_BUFFER",
    }
}

flag_type! {
    /// `VkMemoryPropertyFlags` subset.
    MemoryProperty {
        /// `VK_MEMORY_PROPERTY_DEVICE_LOCAL_BIT`.
        DEVICE_LOCAL = 0b001 => "DEVICE_LOCAL",
        /// `VK_MEMORY_PROPERTY_HOST_VISIBLE_BIT`.
        HOST_VISIBLE = 0b010 => "HOST_VISIBLE",
        /// `VK_MEMORY_PROPERTY_HOST_COHERENT_BIT`.
        HOST_COHERENT = 0b100 => "HOST_COHERENT",
    }
}

flag_type! {
    /// `VkPipelineStageFlags` subset for compute barriers.
    PipelineStage {
        /// `VK_PIPELINE_STAGE_COMPUTE_SHADER_BIT`.
        COMPUTE_SHADER = 0b01 => "COMPUTE_SHADER",
        /// `VK_PIPELINE_STAGE_TRANSFER_BIT`.
        TRANSFER = 0b10 => "TRANSFER",
    }
}

flag_type! {
    /// `VkAccessFlags` subset for memory barriers.
    Access {
        /// `VK_ACCESS_SHADER_READ_BIT`.
        SHADER_READ = 0b0001 => "SHADER_READ",
        /// `VK_ACCESS_SHADER_WRITE_BIT`.
        SHADER_WRITE = 0b0010 => "SHADER_WRITE",
        /// `VK_ACCESS_TRANSFER_READ_BIT`.
        TRANSFER_READ = 0b0100 => "TRANSFER_READ",
        /// `VK_ACCESS_TRANSFER_WRITE_BIT`.
        TRANSFER_WRITE = 0b1000 => "TRANSFER_WRITE",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_algebra() {
        let u = BufferUsage::STORAGE_BUFFER | BufferUsage::TRANSFER_DST;
        assert!(u.contains(BufferUsage::STORAGE_BUFFER));
        assert!(!u.contains(BufferUsage::TRANSFER_SRC));
        assert!(u.intersects(BufferUsage::TRANSFER_DST | BufferUsage::TRANSFER_SRC));
        assert!(BufferUsage::empty().is_empty());
    }

    #[test]
    fn display_joins_labels() {
        let u = BufferUsage::STORAGE_BUFFER | BufferUsage::TRANSFER_DST;
        assert_eq!(u.to_string(), "STORAGE_BUFFER|TRANSFER_DST");
        assert_eq!(MemoryProperty::empty().to_string(), "none");
    }

    #[test]
    fn memory_properties() {
        let m = MemoryProperty::HOST_VISIBLE | MemoryProperty::HOST_COHERENT;
        assert!(m.contains(MemoryProperty::HOST_VISIBLE));
        assert!(!m.contains(MemoryProperty::DEVICE_LOCAL));
    }
}
