//! Buffers, device memory and host mapping.
//!
//! Vulkan's two-phase resource model is preserved faithfully (it is the
//! paper's poster child for verbosity, §VI-A): create a [`Buffer`], query
//! its [`MemoryRequirements`], pick a memory type, [`Device::allocate_memory`],
//! then [`Device::bind_buffer_memory`]. Only then can the buffer be used.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

use vcb_sim::mem::{BufferId, HeapAllocation, Scalar};
use vcb_sim::time::SimDuration;
use vcb_sim::timeline::CostKind;

use crate::device::Device;
use crate::error::{VkError, VkResult};
use crate::flags::BufferUsage;

/// Parameters for [`Device::create_buffer`] (`VkBufferCreateInfo`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferCreateInfo {
    /// Size in bytes.
    pub size: u64,
    /// Intended usage.
    pub usage: BufferUsage,
}

/// `VkMemoryRequirements`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRequirements {
    /// Bytes the allocation must provide.
    pub size: u64,
    /// Required alignment.
    pub alignment: u64,
    /// Bit `i` set means memory type `i` is compatible.
    pub memory_type_bits: u32,
}

/// Parameters for [`Device::allocate_memory`] (`VkMemoryAllocateInfo`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAllocateInfo {
    /// Bytes to allocate.
    pub allocation_size: u64,
    /// Index into the physical device's memory types.
    pub memory_type_index: usize,
}

pub(crate) struct BufferInner {
    pub(crate) size: u64,
    pub(crate) usage: BufferUsage,
    /// Set by `vkBindBufferMemory`.
    pub(crate) storage: Cell<Option<BufferId>>,
    /// Heap index of the bound memory.
    pub(crate) heap: Cell<Option<usize>>,
    /// Whether the bound memory is host-visible.
    pub(crate) host_visible: Cell<bool>,
}

/// A buffer resource (`VkBuffer`). Unusable until bound to memory.
#[derive(Clone)]
pub struct Buffer {
    pub(crate) device: Device,
    pub(crate) inner: Rc<BufferInner>,
}

impl Buffer {
    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.inner.size
    }

    /// Usage flags given at creation.
    pub fn usage(&self) -> BufferUsage {
        self.inner.usage
    }

    /// `true` once `vkBindBufferMemory` succeeded.
    pub fn is_bound(&self) -> bool {
        self.inner.storage.get().is_some()
    }

    pub(crate) fn storage_id(&self, call: &'static str) -> VkResult<BufferId> {
        self.inner
            .storage
            .get()
            .ok_or_else(|| VkError::validation(call, "buffer is not bound to memory"))
    }

    /// Writes `data` through a host mapping (`vkMapMemory` + memcpy +
    /// `vkUnmapMemory` in one step).
    ///
    /// # Errors
    ///
    /// Validation errors when the buffer is unbound or its memory is not
    /// host-visible; device errors for size mismatches.
    pub fn write_mapped<T: Scalar>(&self, data: &[T]) -> VkResult<()> {
        let id = self.storage_id("vkMapMemory")?;
        if !self.inner.host_visible.get() {
            return Err(VkError::validation(
                "vkMapMemory",
                "memory type is not HOST_VISIBLE; stage through a host-visible buffer",
            ));
        }
        let bytes = std::mem::size_of_val(data) as u64;
        if bytes > self.inner.size {
            return Err(VkError::validation(
                "vkMapMemory",
                format!(
                    "write of {bytes} bytes exceeds buffer size {}",
                    self.inner.size
                ),
            ));
        }
        let mut shared = self.device.shared.borrow_mut();
        shared.calls.record("vkMapMemory");
        shared.calls.record("vkUnmapMemory");
        let mut copy = SimDuration::from_secs(bytes as f64 / HOST_MEMCPY_BYTES_PER_SEC);
        if !unified_memory(&shared) {
            // Mapped memory on a discrete GPU is a PCIe round trip with
            // cache maintenance, not a plain memcpy.
            copy += shared.gpu.profile().transfer.fixed_overhead;
        }
        shared.charge_host(CostKind::Transfer, copy);
        shared.gpu.pool_mut().buffer_mut(id)?.write_slice(data);
        Ok(())
    }

    /// Reads the buffer back through a host mapping.
    ///
    /// # Errors
    ///
    /// As [`Buffer::write_mapped`], plus misaligned-view errors.
    pub fn read_mapped<T: Scalar>(&self) -> VkResult<Vec<T>> {
        let id = self.storage_id("vkMapMemory")?;
        if !self.inner.host_visible.get() {
            return Err(VkError::validation(
                "vkMapMemory",
                "memory type is not HOST_VISIBLE; stage through a host-visible buffer",
            ));
        }
        let mut shared = self.device.shared.borrow_mut();
        shared.calls.record("vkMapMemory");
        shared.calls.record("vkUnmapMemory");
        let mut copy = SimDuration::from_secs(self.inner.size as f64 / HOST_MEMCPY_BYTES_PER_SEC);
        if !unified_memory(&shared) {
            copy += shared.gpu.profile().transfer.fixed_overhead;
        }
        shared.charge_host(CostKind::Transfer, copy);
        Ok(shared.gpu.pool().buffer(id)?.read_vec()?)
    }
}

impl fmt::Debug for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Buffer")
            .field("size", &self.inner.size)
            .field("usage", &self.inner.usage)
            .field("bound", &self.is_bound())
            .finish()
    }
}

/// Host memcpy bandwidth used for mapped reads/writes.
const HOST_MEMCPY_BYTES_PER_SEC: f64 = 9.0e9;

/// `true` when the device has a heap that is both device-local and
/// host-visible (mobile SoCs).
fn unified_memory(shared: &crate::device::DeviceShared) -> bool {
    shared
        .gpu
        .profile()
        .heaps
        .iter()
        .any(|h| h.device_local && h.host_visible)
}

pub(crate) struct MemoryInner {
    pub(crate) allocation: HeapAllocation,
    pub(crate) memory_type_index: usize,
    pub(crate) host_visible: bool,
    /// Next free offset for simple linear sub-allocation validation.
    pub(crate) bound_bytes: Cell<u64>,
    pub(crate) freed: Cell<bool>,
}

/// A device memory allocation (`VkDeviceMemory`).
#[derive(Clone)]
pub struct DeviceMemory {
    pub(crate) inner: Rc<MemoryInner>,
}

impl DeviceMemory {
    /// Allocation size in bytes.
    pub fn size(&self) -> u64 {
        self.inner.allocation.size
    }

    /// The memory type chosen at allocation.
    pub fn memory_type_index(&self) -> usize {
        self.inner.memory_type_index
    }
}

impl fmt::Debug for DeviceMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceMemory")
            .field("size", &self.inner.allocation.size)
            .field("type", &self.inner.memory_type_index)
            .finish()
    }
}

impl Device {
    /// `vkCreateBuffer`.
    ///
    /// # Errors
    ///
    /// Validation error for zero sizes or empty usage.
    pub fn create_buffer(&self, create_info: &BufferCreateInfo) -> VkResult<Buffer> {
        let mut shared = self.shared.borrow_mut();
        shared.api_call("vkCreateBuffer", SimDuration::from_nanos(600.0));
        if create_info.size == 0 {
            return Err(VkError::validation(
                "vkCreateBuffer",
                "size must be non-zero",
            ));
        }
        if create_info.usage.is_empty() {
            return Err(VkError::validation(
                "vkCreateBuffer",
                "usage must not be empty",
            ));
        }
        drop(shared);
        Ok(Buffer {
            device: self.clone(),
            inner: Rc::new(BufferInner {
                size: create_info.size,
                usage: create_info.usage,
                storage: Cell::new(None),
                heap: Cell::new(None),
                host_visible: Cell::new(false),
            }),
        })
    }

    /// `vkGetBufferMemoryRequirements`.
    pub fn get_buffer_memory_requirements(&self, buffer: &Buffer) -> MemoryRequirements {
        let mut shared = self.shared.borrow_mut();
        shared.api_call(
            "vkGetBufferMemoryRequirements",
            SimDuration::from_nanos(150.0),
        );
        let type_count = shared.gpu.profile().heaps.len();
        MemoryRequirements {
            size: buffer.inner.size.div_ceil(256) * 256,
            alignment: 256,
            memory_type_bits: (1u32 << type_count) - 1,
        }
    }

    /// `vkAllocateMemory`.
    ///
    /// # Errors
    ///
    /// [`VkError::Device`] wrapping `OutOfDeviceMemory` when the heap is
    /// exhausted — the condition behind cfd not fitting on the paper's
    /// mobile platforms.
    pub fn allocate_memory(&self, allocate_info: &MemoryAllocateInfo) -> VkResult<DeviceMemory> {
        let mut shared = self.shared.borrow_mut();
        shared.api_call("vkAllocateMemory", SimDuration::from_micros(9.0));
        let heaps = shared.gpu.profile().heaps.clone();
        let type_index = allocate_info.memory_type_index;
        let heap = *heaps.get(type_index).ok_or_else(|| {
            VkError::validation(
                "vkAllocateMemory",
                format!("memory type index {type_index} out of range"),
            )
        })?;
        let allocation =
            shared
                .gpu
                .pool_mut()
                .alloc_raw(type_index, allocate_info.allocation_size, 256)?;
        drop(shared);
        Ok(DeviceMemory {
            inner: Rc::new(MemoryInner {
                allocation,
                memory_type_index: type_index,
                host_visible: heap.host_visible,
                bound_bytes: Cell::new(0),
                freed: Cell::new(false),
            }),
        })
    }

    /// `vkBindBufferMemory` (always at the memory's next free offset; the
    /// benchmarks use one allocation per buffer, as Listing 1 does).
    ///
    /// # Errors
    ///
    /// Validation errors for rebinding, freed memory, or insufficient
    /// space in the allocation.
    pub fn bind_buffer_memory(&self, buffer: &Buffer, memory: &DeviceMemory) -> VkResult<()> {
        let mut shared = self.shared.borrow_mut();
        shared.api_call("vkBindBufferMemory", SimDuration::from_micros(1.2));
        if buffer.inner.storage.get().is_some() {
            return Err(VkError::validation(
                "vkBindBufferMemory",
                "buffer is already bound",
            ));
        }
        if memory.inner.freed.get() {
            return Err(VkError::validation(
                "vkBindBufferMemory",
                "memory was freed",
            ));
        }
        let offset = memory.inner.bound_bytes.get();
        let need = buffer.inner.size.div_ceil(256) * 256;
        if offset + need > memory.inner.allocation.size {
            return Err(VkError::validation(
                "vkBindBufferMemory",
                format!(
                    "buffer of {} bytes does not fit allocation of {} at offset {}",
                    buffer.inner.size, memory.inner.allocation.size, offset
                ),
            ));
        }
        let id = shared.gpu.pool_mut().create_store(buffer.inner.size)?;
        memory.inner.bound_bytes.set(offset + need);
        buffer.inner.storage.set(Some(id));
        buffer.inner.heap.set(Some(memory.inner.allocation.heap));
        buffer.inner.host_visible.set(memory.inner.host_visible);
        Ok(())
    }

    /// `vkFreeMemory`. Buffers bound to the allocation become invalid.
    pub fn free_memory(&self, memory: &DeviceMemory) {
        let mut shared = self.shared.borrow_mut();
        shared.api_call("vkFreeMemory", SimDuration::from_micros(2.0));
        if !memory.inner.freed.replace(true) {
            shared.gpu.pool_mut().free_raw(memory.inner.allocation);
        }
    }

    /// `vkDestroyBuffer`.
    pub fn destroy_buffer(&self, buffer: &Buffer) {
        let mut shared = self.shared.borrow_mut();
        shared.api_call("vkDestroyBuffer", SimDuration::from_nanos(400.0));
        if let Some(id) = buffer.inner.storage.take() {
            // Stale handles are tolerated, as vkDestroyBuffer must be.
            let _ = shared.gpu.pool_mut().destroy_store(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, InstanceCreateInfo};
    use std::sync::Arc;
    use vcb_sim::profile::devices;
    use vcb_sim::KernelRegistry;

    fn device_on(idx: usize) -> Device {
        let instance = Instance::new(&InstanceCreateInfo {
            application_name: "mem-test".into(),
            enabled_layers: vec![],
            devices: devices::all(),
            registry: Arc::new(KernelRegistry::new()),
        })
        .unwrap();
        let phys = instance.enumerate_physical_devices().remove(idx);
        Device::new(
            &phys,
            &crate::device::DeviceCreateInfo {
                queue_create_infos: vec![crate::device::DeviceQueueCreateInfo {
                    queue_family_index: 0,
                    queue_count: 1,
                }],
            },
        )
        .unwrap()
    }

    fn make_bound_buffer(device: &Device, size: u64, type_index: usize) -> (Buffer, DeviceMemory) {
        let buffer = device
            .create_buffer(&BufferCreateInfo {
                size,
                usage: BufferUsage::STORAGE_BUFFER | BufferUsage::TRANSFER_DST,
            })
            .unwrap();
        let reqs = device.get_buffer_memory_requirements(&buffer);
        let memory = device
            .allocate_memory(&MemoryAllocateInfo {
                allocation_size: reqs.size,
                memory_type_index: type_index,
            })
            .unwrap();
        device.bind_buffer_memory(&buffer, &memory).unwrap();
        (buffer, memory)
    }

    #[test]
    fn full_listing1_buffer_flow() {
        let device = device_on(0); // GTX 1050 Ti
        let (buffer, _mem) = make_bound_buffer(&device, 1024, 1); // host-visible heap
        assert!(buffer.is_bound());
        buffer.write_mapped(&[1.0f32, 2.0, 3.0]).unwrap();
        let back: Vec<f32> = buffer.read_mapped().unwrap();
        assert_eq!(&back[..3], &[1.0, 2.0, 3.0]);
        // The famous verbosity: this flow took 5+ distinct API calls.
        let calls = device.call_counts();
        for call in [
            "vkCreateBuffer",
            "vkGetBufferMemoryRequirements",
            "vkAllocateMemory",
            "vkBindBufferMemory",
            "vkMapMemory",
        ] {
            assert!(calls.count(call) > 0, "missing {call}");
        }
    }

    #[test]
    fn device_local_memory_rejects_mapping_on_desktop() {
        let device = device_on(0);
        let (buffer, _mem) = make_bound_buffer(&device, 1024, 0); // device-local
        let err = buffer.write_mapped(&[0u32; 4]).unwrap_err();
        assert!(matches!(
            err,
            VkError::Validation {
                call: "vkMapMemory",
                ..
            }
        ));
    }

    #[test]
    fn mobile_unified_memory_maps_fine() {
        let device = device_on(2); // PowerVR: single unified heap
        let (buffer, _mem) = make_bound_buffer(&device, 1024, 0);
        buffer.write_mapped(&[7i32; 16]).unwrap();
        assert_eq!(buffer.read_mapped::<i32>().unwrap()[15], 7);
    }

    #[test]
    fn oom_on_mobile_heap_like_cfd() {
        let device = device_on(2); // PowerVR: 420 MiB heap
        let result = device.allocate_memory(&MemoryAllocateInfo {
            allocation_size: 1024 * 1024 * 1024,
            memory_type_index: 0,
        });
        assert!(matches!(
            result,
            Err(VkError::Device(vcb_sim::SimError::OutOfDeviceMemory { .. }))
        ));
    }

    #[test]
    fn rebinding_is_rejected() {
        let device = device_on(0);
        let (buffer, memory) = make_bound_buffer(&device, 512, 1);
        assert!(device.bind_buffer_memory(&buffer, &memory).is_err());
    }

    #[test]
    fn binding_more_than_allocation_fails() {
        let device = device_on(0);
        let a = device
            .create_buffer(&BufferCreateInfo {
                size: 4096,
                usage: BufferUsage::STORAGE_BUFFER,
            })
            .unwrap();
        let memory = device
            .allocate_memory(&MemoryAllocateInfo {
                allocation_size: 1024,
                memory_type_index: 1,
            })
            .unwrap();
        assert!(device.bind_buffer_memory(&a, &memory).is_err());
    }

    #[test]
    fn unbound_buffer_cannot_be_mapped() {
        let device = device_on(0);
        let buffer = device
            .create_buffer(&BufferCreateInfo {
                size: 64,
                usage: BufferUsage::STORAGE_BUFFER,
            })
            .unwrap();
        assert!(buffer.read_mapped::<f32>().is_err());
    }

    #[test]
    fn zero_size_and_empty_usage_rejected() {
        let device = device_on(0);
        assert!(device
            .create_buffer(&BufferCreateInfo {
                size: 0,
                usage: BufferUsage::STORAGE_BUFFER,
            })
            .is_err());
        assert!(device
            .create_buffer(&BufferCreateInfo {
                size: 16,
                usage: BufferUsage::empty(),
            })
            .is_err());
    }

    #[test]
    fn suballocation_packs_buffers() {
        let device = device_on(0);
        let memory = device
            .allocate_memory(&MemoryAllocateInfo {
                allocation_size: 4096,
                memory_type_index: 1,
            })
            .unwrap();
        let mk = || {
            device
                .create_buffer(&BufferCreateInfo {
                    size: 1000,
                    usage: BufferUsage::STORAGE_BUFFER,
                })
                .unwrap()
        };
        let (b1, b2, b3, b4) = (mk(), mk(), mk(), mk());
        device.bind_buffer_memory(&b1, &memory).unwrap();
        device.bind_buffer_memory(&b2, &memory).unwrap();
        device.bind_buffer_memory(&b3, &memory).unwrap();
        device.bind_buffer_memory(&b4, &memory).unwrap();
        let b5 = mk();
        assert!(
            device.bind_buffer_memory(&b5, &memory).is_err(),
            "4096/1024 = 4 fit"
        );
    }

    #[test]
    fn free_then_bind_rejected() {
        let device = device_on(0);
        let memory = device
            .allocate_memory(&MemoryAllocateInfo {
                allocation_size: 1024,
                memory_type_index: 1,
            })
            .unwrap();
        device.free_memory(&memory);
        let buffer = device
            .create_buffer(&BufferCreateInfo {
                size: 64,
                usage: BufferUsage::STORAGE_BUFFER,
            })
            .unwrap();
        assert!(device.bind_buffer_memory(&buffer, &memory).is_err());
    }

    #[test]
    fn mapped_write_charges_transfer_time() {
        let device = device_on(0);
        let (buffer, _mem) = make_bound_buffer(&device, 4 * 1024 * 1024, 1);
        let before = device.breakdown().get(CostKind::Transfer);
        buffer.write_mapped(&vec![0u32; 1024 * 1024]).unwrap();
        let after = device.breakdown().get(CostKind::Transfer);
        assert!(after > before);
    }
}
