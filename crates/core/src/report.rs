//! Plain-text report rendering: aligned tables, CSV, and terminal bar
//! charts for the speedup figures.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// ```
/// use vcb_core::report::Table;
///
/// let mut t = Table::new(&["Name", "Dwarf"]);
/// t.row(&["bfs", "Graph Traversal"]);
/// let text = t.render();
/// assert!(text.contains("bfs"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Table {
        let mut row: Vec<String> = cells.iter().map(|c| c.as_ref().to_owned()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing
    /// commas, quotes or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_line(&self.headers));
        for row in &self.rows {
            out.push_str(&csv_line(row));
        }
        out
    }
}

/// Formats one CSV record (RFC-4180-style quoting for cells containing
/// commas, quotes or newlines), terminated by a newline — the exact row
/// format [`Table::to_csv`] emits, exposed so streaming writers produce
/// byte-identical files.
pub fn csv_line<S: AsRef<str>>(cells: &[S]) -> String {
    let mut out = String::new();
    for (i, cell) in cells.iter().enumerate() {
        let cell = cell.as_ref();
        if i > 0 {
            out.push(',');
        }
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            out.push('"');
            out.push_str(&cell.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
    out
}

/// One bar of a [`BarChart`].
#[derive(Debug, Clone)]
pub struct Bar {
    /// Bar label (e.g. `"bfs/4K Vulkan"`).
    pub label: String,
    /// Bar value (e.g. a speedup).
    pub value: f64,
    /// Optional annotation appended after the value (e.g. `"FAILED"`).
    pub note: String,
}

/// A horizontal ASCII bar chart — the terminal rendering of the paper's
/// speedup figures.
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    bars: Vec<Bar>,
    /// Reference line drawn at this value (1.0 = baseline parity).
    reference: f64,
}

impl BarChart {
    /// Creates an empty chart with a title and a reference value.
    pub fn new(title: impl Into<String>, reference: f64) -> BarChart {
        BarChart {
            title: title.into(),
            bars: Vec::new(),
            reference,
        }
    }

    /// Adds a bar.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut BarChart {
        self.bars.push(Bar {
            label: label.into(),
            value,
            note: String::new(),
        });
        self
    }

    /// Adds an annotated bar (value may be NaN for failures).
    pub fn bar_with_note(
        &mut self,
        label: impl Into<String>,
        value: f64,
        note: impl Into<String>,
    ) -> &mut BarChart {
        self.bars.push(Bar {
            label: label.into(),
            value,
            note: note.into(),
        });
        self
    }

    /// Renders the chart with `width` characters of bar area.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let label_w = self.bars.iter().map(|b| b.label.len()).max().unwrap_or(0);
        let max = self
            .bars
            .iter()
            .map(|b| if b.value.is_finite() { b.value } else { 0.0 })
            .fold(self.reference, f64::max);
        let scale = if max > 0.0 { width as f64 / max } else { 0.0 };
        let ref_col = (self.reference * scale).round() as usize;
        for b in &self.bars {
            let _ = write!(out, "{:<label_w$} |", b.label);
            if b.value.is_finite() && b.value > 0.0 {
                let mut len = (b.value * scale).round() as usize;
                len = len.min(width);
                for col in 0..width {
                    if col < len {
                        out.push('#');
                    } else if col == ref_col && ref_col < width {
                        out.push('|');
                    } else {
                        out.push(' ');
                    }
                }
                while out.ends_with(' ') {
                    out.pop();
                }
                let _ = write!(out, " {:.2}", b.value);
            } else {
                let _ = write!(out, " --");
            }
            if !b.note.is_empty() {
                let _ = write!(out, " [{}]", b.note);
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a GB/s value like the paper's bandwidth plots.
pub fn fmt_gbps(bytes_per_sec: f64) -> String {
    format!("{:.2} GB/s", bytes_per_sec / 1.0e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "long header"]);
        t.row(&["x", "1"]);
        t.row(&["yyyy", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("---"));
        // Column 2 aligned: both data rows have '1'/'2' at same column.
        let c1 = lines[2].find('1').unwrap();
        let c2 = lines[3].find('2').unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["only"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["has,comma", "has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn bar_chart_scales_and_annotates() {
        let mut c = BarChart::new("Fig. 2a", 1.0);
        c.bar("vulkan", 2.0);
        c.bar("opencl", 1.0);
        c.bar_with_note("cuda", f64::NAN, "FAILED");
        let s = c.render(40);
        assert!(s.contains("Fig. 2a"));
        assert!(s.contains("2.00"));
        assert!(s.contains("[FAILED]"));
        // The 2.0 bar should be about twice as long as the 1.0 bar.
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.chars().filter(|c| *c == '#').count();
        let v = count(lines[1]);
        let o = count(lines[2]);
        assert!(v >= 2 * o - 2 && v <= 2 * o + 2, "{v} vs {o}");
    }

    #[test]
    fn gbps_formatting() {
        assert_eq!(fmt_gbps(94.08e9), "94.08 GB/s");
    }
}
