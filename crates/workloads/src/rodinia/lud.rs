//! lud — blocked LU decomposition (Table I: Dense Linear Algebra).
//!
//! Factorizes `A = L·U` in place with the Rodinia blocked scheme: for
//! each diagonal block step, a `diagonal` kernel factorizes the pivot
//! block, a `perimeter` kernel updates the row and column panels, and an
//! `internal` kernel applies the rank-`BS` update to the trailing
//! submatrix. Three dependent kernels per step × `n/BS` steps — another
//! iterative workload where the Vulkan port records everything into one
//! command buffer (at the cost of three pipeline binds per step).

use std::sync::Arc;

use vcb_core::run::{RunOutcome, SizeSpec};
use vcb_core::suite::{self, BenchmarkMeta};
use vcb_core::workload::{RunOpts, Workload};
use vcb_cuda::{KernelArg, Stream};
use vcb_opencl::{ClArg, Kernel as ClKernel, MemFlags, Program};
use vcb_sim::exec::{GroupCtx, KernelInfo};
use vcb_sim::profile::{DeviceClass, DeviceProfile};
use vcb_sim::{Api, KernelRegistry, SimResult};
use vcb_vulkan::util as vku;
use vcb_vulkan::{Access, MemoryBarrier, PipelineStage, SubmitInfo};

use crate::common::{
    approx_eq_f32, cl_env, cl_failure, cuda_env, cuda_failure, measure_cl, measure_cuda,
    measure_vk, vk_env, vk_failure, vk_kernel, BodyOutcome,
};
use crate::data;

/// Workload name.
pub const NAME: &str = "lud";
/// Pivot-block kernel.
pub const KERNEL_DIAGONAL: &str = "lud_diagonal";
/// Panel kernel.
pub const KERNEL_PERIMETER: &str = "lud_perimeter";
/// Trailing-update kernel.
pub const KERNEL_INTERNAL: &str = "lud_internal";
/// Block size.
pub const BS: usize = 16;

/// The GLSL compute shaders the SPIR-V binaries are built from
/// (`lud_internal` shown; diagonal and perimeter follow Rodinia's
/// structure with shared-memory tiles).
pub const GLSL_SOURCE: &str = r#"
#version 450
#define BS 16
layout(local_size_x = BS, local_size_y = BS) in;
layout(set = 0, binding = 0) buffer A { float a[]; };
layout(push_constant) uniform Params { uint n; uint t; };

shared float l[BS * BS];
shared float u[BS * BS];

void main() {
    uint tx = gl_LocalInvocationID.x;
    uint ty = gl_LocalInvocationID.y;
    uint bi = t + 1u + gl_WorkGroupID.y;
    uint bj = t + 1u + gl_WorkGroupID.x;
    l[ty * BS + tx] = a[(bi * BS + ty) * n + t * BS + tx];
    u[ty * BS + tx] = a[(t * BS + ty) * n + bj * BS + tx];
    barrier();
    float sum = 0.0;
    for (int k = 0; k < BS; ++k) {
        sum += l[ty * BS + uint(k)] * u[uint(k) * BS + tx];
    }
    a[(bi * BS + ty) * n + bj * BS + tx] -= sum;
}
"#;

/// The OpenCL C twins of the kernels (structure of Rodinia `lud_kernel.cl`).
pub const CL_SOURCE: &str = r#"
#define BS 16

__kernel void lud_diagonal(__global float* a, uint n, uint t) {
    __local float tile[BS * BS];
    int tx = get_local_id(0);
    uint base = t * BS * n + t * BS;
    for (int i = 0; i < BS; ++i) tile[i * BS + tx] = a[base + i * n + tx];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < BS - 1; ++k) {
        if (tx > k) {
            tile[tx * BS + k] /= tile[k * BS + k];
            for (int j = k + 1; j < BS; ++j)
                tile[tx * BS + j] -= tile[tx * BS + k] * tile[k * BS + j];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    for (int i = 0; i < BS; ++i) a[base + i * n + tx] = tile[i * BS + tx];
}

__kernel void lud_perimeter(__global float* a, uint n, uint t) {
    __local float diag[BS * BS];
    __local float tile[BS * BS];
    int tx = get_local_id(0);
    int g = get_group_id(0);
    uint nb = n / BS;
    uint rem = nb - t - 1;
    uint diag_base = t * BS * n + t * BS;
    for (int i = 0; i < BS; ++i) diag[i * BS + tx] = a[diag_base + i * n + tx];
    barrier(CLK_LOCAL_MEM_FENCE);
    if (g < (int)rem) {
        /* row panel block (t, t+1+g): tile = L(t,t)^-1 * tile */
        uint base = t * BS * n + (t + 1 + g) * BS;
        for (int i = 0; i < BS; ++i) tile[i * BS + tx] = a[base + i * n + tx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BS - 1; ++k) {
            for (int i = k + 1; i < BS; ++i)
                tile[i * BS + tx] -= diag[i * BS + k] * tile[k * BS + tx];
            barrier(CLK_LOCAL_MEM_FENCE);
        }
        for (int i = 0; i < BS; ++i) a[base + i * n + tx] = tile[i * BS + tx];
    } else {
        /* column panel block (t+1+(g-rem), t): tile = tile * U(t,t)^-1 */
        uint base = (t + 1 + (g - rem)) * BS * n + t * BS;
        for (int i = 0; i < BS; ++i) tile[i * BS + tx] = a[base + i * n + tx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BS; ++k) {
            tile[tx * BS + k] /= diag[k * BS + k];
            for (int j = k + 1; j < BS; ++j)
                tile[tx * BS + j] -= tile[tx * BS + k] * diag[k * BS + j];
            barrier(CLK_LOCAL_MEM_FENCE);
        }
        for (int i = 0; i < BS; ++i) a[base + i * n + tx] = tile[i * BS + tx];
    }
}

__kernel void lud_internal(__global float* a, uint n, uint t) {
    __local float l[BS * BS];
    __local float u[BS * BS];
    int tx = get_local_id(0);
    int ty = get_local_id(1);
    uint nb = n / BS;
    uint rem = nb - t - 1;
    uint bi = t + 1 + get_group_id(1);
    uint bj = t + 1 + get_group_id(0);
    l[ty * BS + tx] = a[(bi * BS + ty) * n + t * BS + tx];
    u[ty * BS + tx] = a[(t * BS + ty) * n + bj * BS + tx];
    barrier(CLK_LOCAL_MEM_FENCE);
    float sum = 0.0f;
    for (int k = 0; k < BS; ++k) sum += l[ty * BS + k] * u[k * BS + tx];
    a[(bi * BS + ty) * n + bj * BS + tx] -= sum;
}
"#;

/// Registers all three kernel bodies.
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register(registry: &mut KernelRegistry) -> SimResult<()> {
    let src_third = CL_SOURCE.len() as u64 / 3;
    let diagonal = KernelInfo::new(KERNEL_DIAGONAL, [BS as u32, 1, 1])
        .writes(0, "a")
        .push_constants(8)
        .shared_memory((BS * BS * 4) as u64)
        .source_bytes(src_third)
        .build();
    registry.register(
        diagonal,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let a = ctx.global::<f32>(0)?;
            let n = ctx.push_u32(0) as usize;
            let t = ctx.push_u32(4) as usize;
            let tile = ctx.shared_array::<f32>(BS * BS)?;
            let base = t * BS * n + t * BS;
            ctx.for_lanes(|lane| {
                let tx = lane.local_linear() as usize;
                for i in 0..BS {
                    let v = lane.ld(&a, base + i * n + tx);
                    lane.sts(&tile, i * BS + tx, v);
                }
            });
            ctx.barrier();
            for k in 0..BS - 1 {
                ctx.for_lanes(|lane| {
                    let tx = lane.local_linear() as usize;
                    if tx > k {
                        let pivot = lane.lds(&tile, k * BS + k);
                        let mult = lane.lds(&tile, tx * BS + k) / pivot;
                        lane.alu(1);
                        lane.sts(&tile, tx * BS + k, mult);
                        for j in k + 1..BS {
                            let u = lane.lds(&tile, k * BS + j);
                            let cur = lane.lds(&tile, tx * BS + j);
                            lane.alu(2);
                            lane.sts(&tile, tx * BS + j, cur - mult * u);
                        }
                    }
                });
                ctx.barrier();
            }
            ctx.for_lanes(|lane| {
                let tx = lane.local_linear() as usize;
                for i in 0..BS {
                    let v = lane.lds(&tile, i * BS + tx);
                    lane.st(&a, base + i * n + tx, v);
                }
            });
            Ok(())
        }),
    )?;

    let perimeter = KernelInfo::new(KERNEL_PERIMETER, [BS as u32, 1, 1])
        .writes(0, "a")
        .push_constants(8)
        .shared_memory((2 * BS * BS * 4) as u64)
        .source_bytes(src_third)
        .build();
    registry.register(
        perimeter,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let a = ctx.global::<f32>(0)?;
            let n = ctx.push_u32(0) as usize;
            let t = ctx.push_u32(4) as usize;
            let nb = n / BS;
            let rem = nb - t - 1;
            let g = ctx.group_id(0) as usize;
            let diag = ctx.shared_array::<f32>(BS * BS)?;
            let tile = ctx.shared_array::<f32>(BS * BS)?;
            let diag_base = t * BS * n + t * BS;
            ctx.for_lanes(|lane| {
                let tx = lane.local_linear() as usize;
                for i in 0..BS {
                    let v = lane.ld(&a, diag_base + i * n + tx);
                    lane.sts(&diag, i * BS + tx, v);
                }
            });
            ctx.barrier();
            if g < rem {
                let base = t * BS * n + (t + 1 + g) * BS;
                ctx.for_lanes(|lane| {
                    let tx = lane.local_linear() as usize;
                    for i in 0..BS {
                        let v = lane.ld(&a, base + i * n + tx);
                        lane.sts(&tile, i * BS + tx, v);
                    }
                });
                ctx.barrier();
                for k in 0..BS - 1 {
                    ctx.for_lanes(|lane| {
                        let tx = lane.local_linear() as usize;
                        for i in k + 1..BS {
                            let l = lane.lds(&diag, i * BS + k);
                            let top = lane.lds(&tile, k * BS + tx);
                            let cur = lane.lds(&tile, i * BS + tx);
                            lane.alu(2);
                            lane.sts(&tile, i * BS + tx, cur - l * top);
                        }
                    });
                    ctx.barrier();
                }
                ctx.for_lanes(|lane| {
                    let tx = lane.local_linear() as usize;
                    for i in 0..BS {
                        let v = lane.lds(&tile, i * BS + tx);
                        lane.st(&a, base + i * n + tx, v);
                    }
                });
            } else {
                let base = (t + 1 + (g - rem)) * BS * n + t * BS;
                ctx.for_lanes(|lane| {
                    let tx = lane.local_linear() as usize;
                    for i in 0..BS {
                        let v = lane.ld(&a, base + i * n + tx);
                        lane.sts(&tile, i * BS + tx, v);
                    }
                });
                ctx.barrier();
                for k in 0..BS {
                    ctx.for_lanes(|lane| {
                        let tx = lane.local_linear() as usize;
                        let pivot = lane.lds(&diag, k * BS + k);
                        let mult = lane.lds(&tile, tx * BS + k) / pivot;
                        lane.alu(1);
                        lane.sts(&tile, tx * BS + k, mult);
                        for j in k + 1..BS {
                            let u = lane.lds(&diag, k * BS + j);
                            let cur = lane.lds(&tile, tx * BS + j);
                            lane.alu(2);
                            lane.sts(&tile, tx * BS + j, cur - mult * u);
                        }
                    });
                    ctx.barrier();
                }
                ctx.for_lanes(|lane| {
                    let tx = lane.local_linear() as usize;
                    for i in 0..BS {
                        let v = lane.lds(&tile, i * BS + tx);
                        lane.st(&a, base + i * n + tx, v);
                    }
                });
            }
            Ok(())
        }),
    )?;

    let internal = KernelInfo::new(KERNEL_INTERNAL, [BS as u32, BS as u32, 1])
        .writes(0, "a")
        .push_constants(8)
        .shared_memory((2 * BS * BS * 4) as u64)
        .source_bytes(src_third)
        .build();
    registry.register(
        internal,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let a = ctx.global::<f32>(0)?;
            let n = ctx.push_u32(0) as usize;
            let t = ctx.push_u32(4) as usize;
            let bi = t + 1 + ctx.group_id(1) as usize;
            let bj = t + 1 + ctx.group_id(0) as usize;
            let l = ctx.shared_array::<f32>(BS * BS)?;
            let u = ctx.shared_array::<f32>(BS * BS)?;
            ctx.for_lanes(|lane| {
                let tx = lane.local_id(0) as usize;
                let ty = lane.local_id(1) as usize;
                let lv = lane.ld(&a, (bi * BS + ty) * n + t * BS + tx);
                lane.sts(&l, ty * BS + tx, lv);
                let uv = lane.ld(&a, (t * BS + ty) * n + bj * BS + tx);
                lane.sts(&u, ty * BS + tx, uv);
            });
            ctx.barrier();
            ctx.for_lanes(|lane| {
                let tx = lane.local_id(0) as usize;
                let ty = lane.local_id(1) as usize;
                let mut sum = 0.0f32;
                for k in 0..BS {
                    sum += lane.lds(&l, ty * BS + k) * lane.lds(&u, k * BS + tx);
                }
                lane.alu(2 * BS as u32);
                let idx = (bi * BS + ty) * n + bj * BS + tx;
                let cur = lane.ld(&a, idx);
                lane.st(&a, idx, cur - sum);
            });
            Ok(())
        }),
    )
}

/// CPU reference: unblocked Doolittle factorization, in place
/// (L below the diagonal with unit diagonal, U on and above).
pub fn reference(a: &[f32], n: usize) -> Vec<f32> {
    let mut a = a.to_vec();
    for k in 0..n {
        for i in k + 1..n {
            a[i * n + k] /= a[k * n + k];
            for j in k + 1..n {
                a[i * n + j] -= a[i * n + k] * a[k * n + j];
            }
        }
    }
    a
}

/// Reconstructs `L·U` from a packed factorization (validation helper).
pub fn reconstruct(lu: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0.0;
            let kmax = i.min(j);
            for k in 0..=kmax {
                let l = if k == i { 1.0 } else { lu[i * n + k] };
                let u = lu[k * n + j];
                if k < i && k <= j {
                    sum += l * u;
                } else if k == i {
                    sum += u;
                }
            }
            out[i * n + j] = sum;
        }
    }
    out
}

/// Generates a diagonally dominant input matrix (stable without
/// pivoting, like Rodinia's generated lud inputs).
pub fn generate(n: usize, seed: u64) -> Vec<f32> {
    let (a, _) = data::linear_system(n, seed);
    a
}

fn push(n: usize, t: usize) -> Vec<u8> {
    let mut p = Vec::with_capacity(8);
    p.extend_from_slice(&(n as u32).to_le_bytes());
    p.extend_from_slice(&(t as u32).to_le_bytes());
    p
}

fn validate(out: &[f32], original: &[f32], n: usize, expected: bool) -> bool {
    if !expected {
        return true;
    }
    // L·U must reproduce A. (Comparing against the unblocked reference
    // directly is too strict: blocked and unblocked orders round
    // differently.)
    let rebuilt = reconstruct(out, n);
    approx_eq_f32(&rebuilt, original, 5e-2)
}

fn run_vulkan(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let nb = n / BS;
    let env = vk_env(profile, registry)?;
    let a_host = generate(n, opts.seed);
    let check = opts.validate;
    measure_vk(NAME, &size.label, &env, |env| {
        let device = &env.device;
        let a = vku::upload_storage_buffer(device, &env.queue, &a_host).map_err(vk_failure)?;
        let (layout, _pool, set) =
            vku::storage_descriptor_set(device, &[&a.buffer]).map_err(vk_failure)?;
        let diagonal = vk_kernel(env, registry, KERNEL_DIAGONAL, &layout, 8)?;
        let perimeter = vk_kernel(env, registry, KERNEL_PERIMETER, &layout, 8)?;
        let internal = vk_kernel(env, registry, KERNEL_INTERNAL, &layout, 8)?;

        let cmd_pool = device
            .create_command_pool(env.queue.family_index())
            .map_err(vk_failure)?;
        let cmd = cmd_pool.allocate_command_buffer().map_err(vk_failure)?;
        let barrier = MemoryBarrier {
            src_access: Access::SHADER_WRITE,
            dst_access: Access::SHADER_READ,
        };
        cmd.begin().map_err(vk_failure)?;
        for t in 0..nb {
            let rem = (nb - t - 1) as u32;
            cmd.bind_pipeline(&diagonal.pipeline).map_err(vk_failure)?;
            cmd.bind_descriptor_sets(&diagonal.layout, &[&set]).map_err(vk_failure)?;
            cmd.push_constants(&diagonal.layout, 0, &push(n, t)).map_err(vk_failure)?;
            cmd.dispatch(1, 1, 1).map_err(vk_failure)?;
            cmd.pipeline_barrier(
                PipelineStage::COMPUTE_SHADER,
                PipelineStage::COMPUTE_SHADER,
                &barrier,
            )
            .map_err(vk_failure)?;
            if rem > 0 {
                cmd.bind_pipeline(&perimeter.pipeline).map_err(vk_failure)?;
                cmd.bind_descriptor_sets(&perimeter.layout, &[&set]).map_err(vk_failure)?;
                cmd.push_constants(&perimeter.layout, 0, &push(n, t)).map_err(vk_failure)?;
                cmd.dispatch(2 * rem, 1, 1).map_err(vk_failure)?;
                cmd.pipeline_barrier(
                    PipelineStage::COMPUTE_SHADER,
                    PipelineStage::COMPUTE_SHADER,
                    &barrier,
                )
                .map_err(vk_failure)?;
                cmd.bind_pipeline(&internal.pipeline).map_err(vk_failure)?;
                cmd.bind_descriptor_sets(&internal.layout, &[&set]).map_err(vk_failure)?;
                cmd.push_constants(&internal.layout, 0, &push(n, t)).map_err(vk_failure)?;
                cmd.dispatch(rem, rem, 1).map_err(vk_failure)?;
                cmd.pipeline_barrier(
                    PipelineStage::COMPUTE_SHADER,
                    PipelineStage::COMPUTE_SHADER,
                    &barrier,
                )
                .map_err(vk_failure)?;
            }
        }
        cmd.end().map_err(vk_failure)?;
        let compute_start = device.now();
        env.queue
            .submit(&[SubmitInfo { command_buffers: &[&cmd] }], None)
            .map_err(vk_failure)?;
        env.queue.wait_idle();
        let compute_time = device.now().duration_since(compute_start);
        let out: Vec<f32> =
            vku::download_storage_buffer(device, &env.queue, &a).map_err(vk_failure)?;
        Ok(BodyOutcome {
            validated: validate(&out, &a_host, n, check),
            compute_time,
        })
    })
}

fn run_cuda(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let nb = n / BS;
    let ctx = cuda_env(profile, registry)?;
    let a_host = generate(n, opts.seed);
    let check = opts.validate;
    measure_cuda(NAME, &size.label, &ctx, |ctx| {
        let a = ctx.malloc((n * n * 4) as u64).map_err(cuda_failure)?;
        ctx.memcpy_htod(&a, &a_host).map_err(cuda_failure)?;
        let diagonal = ctx.get_function(KERNEL_DIAGONAL).map_err(cuda_failure)?;
        let perimeter = ctx.get_function(KERNEL_PERIMETER).map_err(cuda_failure)?;
        let internal = ctx.get_function(KERNEL_INTERNAL).map_err(cuda_failure)?;
        let compute_start = ctx.now();
        for t in 0..nb {
            let rem = (nb - t - 1) as u32;
            let args = [
                KernelArg::Ptr(a),
                KernelArg::U32(n as u32),
                KernelArg::U32(t as u32),
            ];
            ctx.launch_kernel(&diagonal, [1, 1, 1], &args, Stream::DEFAULT)
                .map_err(cuda_failure)?;
            ctx.device_synchronize();
            if rem > 0 {
                ctx.launch_kernel(&perimeter, [2 * rem, 1, 1], &args, Stream::DEFAULT)
                    .map_err(cuda_failure)?;
                ctx.device_synchronize();
                ctx.launch_kernel(&internal, [rem, rem, 1], &args, Stream::DEFAULT)
                    .map_err(cuda_failure)?;
                ctx.device_synchronize();
            }
        }
        let compute_time = ctx.now().duration_since(compute_start);
        let out: Vec<f32> = ctx.memcpy_dtoh(&a).map_err(cuda_failure)?;
        Ok(BodyOutcome {
            validated: validate(&out, &a_host, n, check),
            compute_time,
        })
    })
}

fn run_opencl(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let nb = n / BS;
    let env = cl_env(profile, registry)?;
    let a_host = generate(n, opts.seed);
    let check = opts.validate;
    measure_cl(NAME, &size.label, &env, |env| {
        let a = env
            .context
            .create_buffer(MemFlags::ReadWrite, (n * n * 4) as u64)
            .map_err(cl_failure)?;
        env.queue.enqueue_write_buffer(&a, &a_host).map_err(cl_failure)?;
        let program = Program::create_with_source(&env.context, CL_SOURCE);
        program.build().map_err(cl_failure)?;
        let diagonal = ClKernel::new(&program, KERNEL_DIAGONAL).map_err(cl_failure)?;
        let perimeter = ClKernel::new(&program, KERNEL_PERIMETER).map_err(cl_failure)?;
        let internal = ClKernel::new(&program, KERNEL_INTERNAL).map_err(cl_failure)?;
        for k in [&diagonal, &perimeter, &internal] {
            k.set_arg(0, ClArg::Buffer(a));
            k.set_arg(1, ClArg::U32(n as u32));
        }
        let compute_start = env.context.now();
        for t in 0..nb {
            let rem = (nb - t - 1) as u64;
            diagonal.set_arg(2, ClArg::U32(t as u32));
            env.queue
                .enqueue_nd_range_kernel(&diagonal, [BS as u64, 1, 1])
                .map_err(cl_failure)?;
            env.queue.finish();
            if rem > 0 {
                perimeter.set_arg(2, ClArg::U32(t as u32));
                env.queue
                    .enqueue_nd_range_kernel(&perimeter, [2 * rem * BS as u64, 1, 1])
                    .map_err(cl_failure)?;
                env.queue.finish();
                internal.set_arg(2, ClArg::U32(t as u32));
                env.queue
                    .enqueue_nd_range_kernel(&internal, [rem * BS as u64, rem * BS as u64, 1])
                    .map_err(cl_failure)?;
                env.queue.finish();
            }
        }
        let compute_time = env.context.now().duration_since(compute_start);
        let out: Vec<f32> = env.queue.enqueue_read_buffer(&a).map_err(cl_failure)?;
        Ok(BodyOutcome {
            validated: validate(&out, &a_host, n, check),
            compute_time,
        })
    })
}

/// The lud suite entry.
#[derive(Debug, Clone)]
pub struct Lud {
    registry: Arc<KernelRegistry>,
}

impl Lud {
    /// Creates the workload against a kernel registry.
    pub fn new(registry: Arc<KernelRegistry>) -> Self {
        Lud { registry }
    }
}

impl Workload for Lud {
    fn meta(&self) -> BenchmarkMeta {
        *suite::find(NAME).expect("lud is in Table I")
    }

    fn sizes(&self, class: DeviceClass) -> Vec<SizeSpec> {
        match class {
            DeviceClass::Desktop => vec![
                SizeSpec::new("256", 256),
                SizeSpec::new("512", 512),
                SizeSpec::new("2048", 2048),
            ],
            DeviceClass::Mobile => vec![SizeSpec::new("64", 64), SizeSpec::new("256", 256)],
        }
    }

    fn run(&self, api: Api, device: &DeviceProfile, size: &SizeSpec, opts: &RunOpts) -> RunOutcome {
        match api {
            Api::Vulkan => run_vulkan(device, &self.registry, size, opts),
            Api::Cuda => run_cuda(device, &self.registry, size, opts),
            Api::OpenCl => run_opencl(device, &self.registry, size, opts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_core::run::speedup;
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        let mut r = KernelRegistry::new();
        register(&mut r).unwrap();
        Arc::new(r)
    }

    #[test]
    fn reference_factorization_reconstructs() {
        let n = 32;
        let a = generate(n, 9);
        let lu = reference(&a, n);
        let rebuilt = reconstruct(&lu, n);
        assert!(approx_eq_f32(&rebuilt, &a, 1e-3));
    }

    #[test]
    fn all_apis_factorize_correctly() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("64", 64);
        let w = Lud::new(Arc::clone(&registry));
        for api in Api::ALL {
            let record = w.run(api, &devices::gtx1050ti(), &size, &opts).unwrap();
            assert!(record.validated, "{api} failed validation");
        }
    }

    #[test]
    fn vulkan_wins_at_small_sizes() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("256", 256);
        let w = Lud::new(Arc::clone(&registry));
        let profile = devices::gtx1050ti();
        let vk = w.run(Api::Vulkan, &profile, &size, &opts).unwrap();
        let cu = w.run(Api::Cuda, &profile, &size, &opts).unwrap();
        let s = speedup(&cu, &vk);
        assert!(s > 1.5, "lud 256 speedup {s}");
    }

    #[test]
    fn snapdragon_opencl_fails_like_the_paper() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("64", 64);
        let w = Lud::new(Arc::clone(&registry));
        let result = w.run(Api::OpenCl, &devices::adreno506(), &size, &opts);
        assert!(matches!(
            result,
            Err(vcb_core::run::RunFailure::DriverFailure)
        ));
        // Vulkan works there.
        let vk = w.run(Api::Vulkan, &devices::adreno506(), &size, &opts).unwrap();
        assert!(vk.validated);
    }
}
