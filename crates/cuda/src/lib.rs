//! # vcb-cuda — a CUDA-runtime-shaped API on the simulator
//!
//! The launch-based baseline of the paper's comparison. The programming
//! model is deliberately thin — `cudaMalloc` is one call where Vulkan
//! needs five — but every kernel launch pays the driver's launch
//! overhead, and iterative algorithms that depend on previous iterations
//! must launch again from the host each time (the "multi-kernel method"
//! of §IV-C, which is how the Rodinia CUDA codes synchronize between
//! dependent iterations).
//!
//! ```
//! use std::sync::Arc;
//! use vcb_sim::profile::devices;
//! use vcb_sim::KernelRegistry;
//! use vcb_cuda::CudaContext;
//!
//! # fn main() -> Result<(), vcb_cuda::CudaError> {
//! let ctx = CudaContext::new(devices::gtx1050ti(), Arc::new(KernelRegistry::new()))?;
//! let buf = ctx.malloc(1024)?;
//! ctx.memcpy_htod(&buf, &[1.0f32; 256])?;
//! let back: Vec<f32> = ctx.memcpy_dtoh(&buf)?;
//! assert_eq!(back.len(), 256);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use vcb_sim::calls::CallCounter;
use vcb_sim::engine::Gpu;
use vcb_sim::exec::{BoundBuffer, CompiledKernel, Dispatch};
use vcb_sim::mem::{BufferId, HeapAllocation, Scalar};
use vcb_sim::profile::{DeviceProfile, DriverProfile};
use vcb_sim::time::{SimDuration, SimInstant};
use vcb_sim::timeline::{CostKind, TimingBreakdown};
use vcb_sim::{Api, KernelRegistry, SimError, TraceMode};
use vcb_spirv::DriverCompiler;

/// Errors returned by the CUDA-shaped API (`cudaError_t` in spirit).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CudaError {
    /// `cudaErrorMemoryAllocation` and other device-model failures.
    Device(SimError),
    /// `cudaErrorInvalidValue`: the API was misused.
    InvalidValue {
        /// Which call was misused.
        call: &'static str,
        /// Explanation.
        what: String,
    },
    /// `cudaErrorNoDevice`: CUDA is not supported on this hardware
    /// (every non-NVIDIA device, as in Table II).
    NoDevice {
        /// Device that lacks CUDA.
        device: String,
    },
}

impl fmt::Display for CudaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CudaError::Device(e) => write!(f, "cuda device error: {e}"),
            CudaError::InvalidValue { call, what } => {
                write!(f, "invalid value in {call}: {what}")
            }
            CudaError::NoDevice { device } => {
                write!(f, "no CUDA-capable device ({device} has no CUDA driver)")
            }
        }
    }
}

impl std::error::Error for CudaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CudaError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CudaError {
    fn from(e: SimError) -> Self {
        CudaError::Device(e)
    }
}

/// Result alias for CUDA-shaped operations.
pub type CudaResult<T> = Result<T, CudaError>;

/// A device allocation handle (`void*` from `cudaMalloc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevicePtr {
    id: BufferId,
    allocation: HeapAllocation,
    bytes: u64,
}

impl DevicePtr {
    /// Allocation size in bytes.
    pub fn bytes(self) -> u64 {
        self.bytes
    }
}

/// A kernel argument, matching CUDA's by-value parameter passing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelArg {
    /// A device pointer parameter (maps to the next storage binding).
    Ptr(DevicePtr),
    /// A 32-bit integer parameter.
    I32(i32),
    /// A 32-bit unsigned parameter.
    U32(u32),
    /// A 32-bit float parameter.
    F32(f32),
}

/// A resolved kernel (`CUfunction`) — compiled offline by "nvcc",
/// resolved by symbol at module load.
#[derive(Clone)]
pub struct CudaFunction {
    kernel: CompiledKernel,
}

impl CudaFunction {
    /// The kernel's entry-point name.
    pub fn name(&self) -> &str {
        &self.kernel.info().name
    }

    /// The fixed block (workgroup) dimensions of this kernel.
    pub fn block_dim(&self) -> [u32; 3] {
        self.kernel.info().local_size
    }
}

impl fmt::Debug for CudaFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CudaFunction")
            .field("name", &self.name())
            .finish()
    }
}

/// A CUDA stream (`cudaStream_t`). Stream 0 is the default stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stream(usize);

impl Stream {
    /// The default (legacy) stream.
    pub const DEFAULT: Stream = Stream(0);
}

/// A CUDA event (`cudaEvent_t`) for device-side timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    at: SimInstant,
}

impl Event {
    /// `cudaEventElapsedTime`: milliseconds between two recorded events.
    pub fn elapsed_since(self, earlier: Event) -> f64 {
        self.at.duration_since(earlier.at).as_millis()
    }
}

struct ContextShared {
    gpu: Gpu,
    driver: DriverProfile,
    registry: Arc<KernelRegistry>,
    breakdown: TimingBreakdown,
    host_now: SimInstant,
    streams: Vec<SimInstant>,
    calls: CallCounter,
}

impl ContextShared {
    fn api_call(&mut self, name: &'static str, cost: SimDuration) {
        self.calls.record(name);
        self.host_now += cost;
        self.breakdown.charge(CostKind::HostApi, cost);
    }
}

/// A CUDA context bound to one device (`cudaSetDevice` + runtime state).
#[derive(Clone)]
pub struct CudaContext {
    shared: Rc<RefCell<ContextShared>>,
}

impl CudaContext {
    /// Initializes the CUDA runtime on `profile`.
    ///
    /// # Errors
    ///
    /// [`CudaError::NoDevice`] when the profile has no CUDA driver
    /// (anything that is not NVIDIA, per Table II).
    pub fn new(profile: DeviceProfile, registry: Arc<KernelRegistry>) -> CudaResult<CudaContext> {
        let driver = profile
            .driver(Api::Cuda)
            .cloned()
            .ok_or_else(|| CudaError::NoDevice {
                device: profile.name.clone(),
            })?;
        let mut shared = ContextShared {
            gpu: Gpu::new(profile),
            driver,
            registry,
            breakdown: TimingBreakdown::new(),
            host_now: SimInstant::EPOCH,
            streams: vec![SimInstant::EPOCH],
            calls: CallCounter::new(),
        };
        shared.api_call("cudaSetDevice", SimDuration::from_micros(90.0));
        Ok(CudaContext {
            shared: Rc::new(RefCell::new(shared)),
        })
    }

    /// `cudaMalloc`.
    ///
    /// # Errors
    ///
    /// Allocation failures from the device-local heap.
    pub fn malloc(&self, bytes: u64) -> CudaResult<DevicePtr> {
        let mut shared = self.shared.borrow_mut();
        shared.api_call("cudaMalloc", SimDuration::from_micros(6.0));
        let heap = shared
            .gpu
            .profile()
            .heaps
            .iter()
            .position(|h| h.device_local)
            .expect("profiles always have a device-local heap");
        let allocation = shared.gpu.pool_mut().alloc_raw(heap, bytes, 256)?;
        let id = match shared.gpu.pool_mut().create_store(bytes) {
            Ok(id) => id,
            Err(e) => {
                shared.gpu.pool_mut().free_raw(allocation);
                return Err(e.into());
            }
        };
        Ok(DevicePtr {
            id,
            allocation,
            bytes,
        })
    }

    /// `cudaFree`.
    ///
    /// # Errors
    ///
    /// [`CudaError::Device`] for double frees.
    pub fn free(&self, ptr: &DevicePtr) -> CudaResult<()> {
        let mut shared = self.shared.borrow_mut();
        shared.api_call("cudaFree", SimDuration::from_micros(3.0));
        shared.gpu.pool_mut().destroy_store(ptr.id)?;
        shared.gpu.pool_mut().free_raw(ptr.allocation);
        Ok(())
    }

    /// `cudaMemcpy(..., cudaMemcpyHostToDevice)`. Synchronous.
    ///
    /// # Errors
    ///
    /// Size mismatches and stale pointers.
    pub fn memcpy_htod<T: Scalar>(&self, dst: &DevicePtr, src: &[T]) -> CudaResult<()> {
        let bytes = std::mem::size_of_val(src) as u64;
        if bytes > dst.bytes {
            return Err(CudaError::InvalidValue {
                call: "cudaMemcpy",
                what: format!("copy of {bytes} bytes into allocation of {}", dst.bytes),
            });
        }
        let mut shared = self.shared.borrow_mut();
        shared.calls.record("cudaMemcpy");
        // Synchronous copy: wait for outstanding work, then transfer.
        let latest = shared
            .streams
            .iter()
            .copied()
            .fold(SimInstant::EPOCH, SimInstant::max);
        if latest > shared.host_now {
            shared.host_now = latest;
            let wakeup = shared.driver.sync_wakeup;
            shared.host_now += wakeup;
            shared.breakdown.charge(CostKind::HostApi, wakeup);
        }
        let cost = shared.gpu.host_copy_time(bytes);
        shared.host_now += cost;
        shared.breakdown.charge(CostKind::Transfer, cost);
        shared.gpu.pool_mut().buffer_mut(dst.id)?.write_slice(src);
        Ok(())
    }

    /// `cudaMemcpy(..., cudaMemcpyDeviceToHost)`. Synchronous.
    ///
    /// # Errors
    ///
    /// Stale pointers or misaligned element types.
    pub fn memcpy_dtoh<T: Scalar>(&self, src: &DevicePtr) -> CudaResult<Vec<T>> {
        let mut shared = self.shared.borrow_mut();
        shared.calls.record("cudaMemcpy");
        let latest = shared
            .streams
            .iter()
            .copied()
            .fold(SimInstant::EPOCH, SimInstant::max);
        if latest > shared.host_now {
            shared.host_now = latest;
            let wakeup = shared.driver.sync_wakeup;
            shared.host_now += wakeup;
            shared.breakdown.charge(CostKind::HostApi, wakeup);
        }
        let cost = shared.gpu.host_copy_time(src.bytes);
        shared.host_now += cost;
        shared.breakdown.charge(CostKind::Transfer, cost);
        Ok(shared.gpu.pool().buffer(src.id)?.read_vec()?)
    }

    /// `cudaMemcpy(..., cudaMemcpyDeviceToDevice)`. Synchronous.
    ///
    /// # Errors
    ///
    /// Size mismatches or stale pointers.
    pub fn memcpy_dtod(&self, dst: &DevicePtr, src: &DevicePtr, bytes: u64) -> CudaResult<()> {
        if bytes > dst.bytes || bytes > src.bytes {
            return Err(CudaError::InvalidValue {
                call: "cudaMemcpy",
                what: "device-to-device copy larger than an allocation".into(),
            });
        }
        let mut shared = self.shared.borrow_mut();
        shared.calls.record("cudaMemcpy");
        let cost = shared.gpu.device_copy_time(bytes);
        shared.host_now += cost;
        shared.breakdown.charge(CostKind::Transfer, cost);
        let data: Vec<u8> = {
            let store = shared.gpu.pool().buffer(src.id)?;
            store.bytes()[..bytes as usize].to_vec()
        };
        shared.gpu.pool_mut().buffer_mut(dst.id)?.bytes_mut()[..bytes as usize]
            .copy_from_slice(&data);
        Ok(())
    }

    /// Resolves a kernel by symbol (module load + `cuModuleGetFunction`).
    ///
    /// # Errors
    ///
    /// Unknown symbols.
    pub fn get_function(&self, name: &str) -> CudaResult<CudaFunction> {
        let mut shared = self.shared.borrow_mut();
        shared.calls.record("cuModuleGetFunction");
        let cost = shared.driver.pipeline_create_cost;
        shared.host_now += cost;
        shared.breakdown.charge(CostKind::PipelineCreate, cost);
        let registry = Arc::clone(&shared.registry);
        let compiler = DriverCompiler::new(&registry);
        let kernel = compiler.compile_symbol(name, &shared.driver)?;
        Ok(CudaFunction { kernel })
    }

    /// `cudaStreamCreate`.
    pub fn create_stream(&self) -> Stream {
        let mut shared = self.shared.borrow_mut();
        shared.api_call("cudaStreamCreate", SimDuration::from_micros(4.0));
        let at = shared.host_now;
        shared.streams.push(at);
        Stream(shared.streams.len() - 1)
    }

    /// Launches a kernel (`kernel<<<grid, block, 0, stream>>>(args...)`).
    ///
    /// `grid` counts thread *blocks*; the block size is fixed by the
    /// kernel (its SPIR-V `LocalSize` twin). Device pointers map to
    /// storage bindings in declaration order; scalar arguments are packed
    /// into the kernel's parameter space in order.
    ///
    /// Asynchronous with respect to the host, but every call pays the
    /// driver's launch overhead on the host timeline — the per-iteration
    /// cost the paper's Vulkan ports eliminate.
    ///
    /// # Errors
    ///
    /// Invalid grids, argument mismatches, or execution failures.
    pub fn launch_kernel(
        &self,
        function: &CudaFunction,
        grid: [u32; 3],
        args: &[KernelArg],
        stream: Stream,
    ) -> CudaResult<()> {
        let mut shared = self.shared.borrow_mut();
        shared.calls.record("cudaLaunchKernel");
        if stream.0 >= shared.streams.len() {
            return Err(CudaError::InvalidValue {
                call: "cudaLaunchKernel",
                what: format!("stream {} does not exist", stream.0),
            });
        }

        // Map args to bindings + packed scalars.
        let info = function.kernel.info();
        let mut bindings = Vec::new();
        let mut scalars = Vec::new();
        let mut slots = info.bindings.iter().map(|b| b.binding).collect::<Vec<_>>();
        slots.sort_unstable();
        let mut slot_iter = slots.into_iter();
        for arg in args {
            match arg {
                KernelArg::Ptr(ptr) => {
                    let Some(slot) = slot_iter.next() else {
                        return Err(CudaError::InvalidValue {
                            call: "cudaLaunchKernel",
                            what: format!(
                                "kernel `{}` takes {} pointer arguments, more were given",
                                info.name,
                                info.bindings.len()
                            ),
                        });
                    };
                    bindings.push(BoundBuffer {
                        binding: slot,
                        buffer: ptr.id,
                    });
                }
                KernelArg::I32(v) => scalars.extend_from_slice(&v.to_le_bytes()),
                KernelArg::U32(v) => scalars.extend_from_slice(&v.to_le_bytes()),
                KernelArg::F32(v) => scalars.extend_from_slice(&v.to_le_bytes()),
            }
        }
        if slot_iter.next().is_some() {
            return Err(CudaError::InvalidValue {
                call: "cudaLaunchKernel",
                what: format!(
                    "kernel `{}` expects {} pointer arguments",
                    info.name,
                    info.bindings.len()
                ),
            });
        }

        // Host pays the launch overhead (driver call path).
        let launch = shared.driver.launch_overhead;
        shared.host_now += launch;
        shared.breakdown.charge(CostKind::LaunchOverhead, launch);

        // The kernel starts when both the stream is free and the launch
        // has reached the device.
        let start = shared.streams[stream.0].max(shared.host_now);
        let dispatch = Dispatch {
            kernel: function.kernel.clone(),
            groups: grid,
            bindings,
            push_constants: scalars,
        };
        let driver = shared.driver.clone();
        let report = shared.gpu.execute(&dispatch, &driver)?;
        shared
            .breakdown
            .charge(CostKind::KernelExec, report.time - report.uvm_time);
        if !report.uvm_time.is_zero() {
            shared.breakdown.charge(CostKind::UvmFault, report.uvm_time);
        }
        shared.streams[stream.0] = start + report.time;
        Ok(())
    }

    /// `cudaDeviceSynchronize`.
    pub fn device_synchronize(&self) {
        let mut shared = self.shared.borrow_mut();
        shared.calls.record("cudaDeviceSynchronize");
        let latest = shared
            .streams
            .iter()
            .copied()
            .fold(SimInstant::EPOCH, SimInstant::max);
        if latest > shared.host_now {
            shared.host_now = latest;
            let wakeup = shared.driver.sync_wakeup;
            shared.host_now += wakeup;
            shared.breakdown.charge(CostKind::HostApi, wakeup);
        }
    }

    /// `cudaStreamSynchronize`.
    pub fn stream_synchronize(&self, stream: Stream) {
        let mut shared = self.shared.borrow_mut();
        shared.calls.record("cudaStreamSynchronize");
        if let Some(&busy) = shared.streams.get(stream.0) {
            if busy > shared.host_now {
                shared.host_now = busy;
                let wakeup = shared.driver.sync_wakeup;
                shared.host_now += wakeup;
                shared.breakdown.charge(CostKind::HostApi, wakeup);
            }
        }
    }

    /// `cudaEventRecord` on a stream (returns the event).
    pub fn record_event(&self, stream: Stream) -> Event {
        let mut shared = self.shared.borrow_mut();
        shared.calls.record("cudaEventRecord");
        let at = shared
            .streams
            .get(stream.0)
            .copied()
            .unwrap_or(shared.host_now)
            .max(shared.host_now);
        Event { at }
    }

    /// Simulated host-side "now".
    pub fn now(&self) -> SimInstant {
        self.shared.borrow().host_now
    }

    /// Cost breakdown accumulated so far.
    pub fn breakdown(&self) -> TimingBreakdown {
        self.shared.borrow().breakdown
    }

    /// API call counts accumulated so far.
    pub fn call_counts(&self) -> CallCounter {
        self.shared.borrow().calls.snapshot()
    }

    /// The device profile.
    pub fn profile(&self) -> DeviceProfile {
        self.shared.borrow().gpu.profile().clone()
    }

    /// Sets the workgroup-tracing policy of the underlying simulator.
    pub fn set_trace_mode(&self, mode: TraceMode) {
        self.shared.borrow_mut().gpu.set_trace_mode(mode);
    }

    /// Sets the simulator's worker-thread count for intra-dispatch
    /// parallelism (order-independent kernels only; results stay
    /// bit-identical).
    pub fn set_worker_threads(&self, threads: usize) {
        self.shared.borrow_mut().gpu.set_worker_threads(threads);
    }

    /// Disables (or re-enables) the engine's clamp of worker threads to
    /// the machine's cores — see `Gpu::set_worker_clamp`.
    pub fn set_worker_clamp(&self, clamp: bool) {
        self.shared.borrow_mut().gpu.set_worker_clamp(clamp);
    }

    /// Digest of the simulated device's functional state (buffer
    /// contents + cumulative traffic) — the determinism oracle.
    pub fn sim_fingerprint(&self) -> u64 {
        self.shared.borrow().gpu.fingerprint()
    }

    /// Restores the simulated device to its freshly-created state (see
    /// `Gpu::reset_to_cold`) so an environment cache can reuse this
    /// context across benchmark cells. Host-side counters (API calls,
    /// cost breakdown, host clock) keep accumulating — per-cell
    /// measurements are deltas, so they are unaffected.
    pub fn reset_to_cold(&self) {
        self.shared.borrow_mut().gpu.reset_to_cold();
    }
}

impl fmt::Debug for CudaContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shared = self.shared.borrow();
        f.debug_struct("CudaContext")
            .field("device", &shared.gpu.profile().name)
            .field("host_now", &shared.host_now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_sim::exec::{GroupCtx, KernelInfo};
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        let mut r = KernelRegistry::new();
        r.register(
            KernelInfo::new("saxpy", [256, 1, 1])
                .reads(0, "x")
                .writes(1, "y")
                .push_constants(8)
                .build(),
            Arc::new(|ctx: &mut GroupCtx<'_>| {
                let x = ctx.global::<f32>(0)?;
                let y = ctx.global::<f32>(1)?;
                let a = ctx.push_f32(0);
                let n = ctx.push_u32(4) as usize;
                ctx.for_lanes(|lane| {
                    let i = lane.global_linear() as usize;
                    if i < n {
                        let v = a * lane.ld(&x, i) + lane.ld(&y, i);
                        lane.alu(2);
                        lane.st(&y, i, v);
                    }
                });
                Ok(())
            }),
        )
        .unwrap();
        Arc::new(r)
    }

    fn ctx() -> CudaContext {
        CudaContext::new(devices::gtx1050ti(), registry()).unwrap()
    }

    #[test]
    fn cuda_unavailable_off_nvidia() {
        let err = CudaContext::new(devices::rx560(), registry()).unwrap_err();
        assert!(matches!(err, CudaError::NoDevice { .. }));
    }

    #[test]
    fn saxpy_end_to_end() {
        let ctx = ctx();
        let n = 10_000usize;
        let x = ctx.malloc((n * 4) as u64).unwrap();
        let y = ctx.malloc((n * 4) as u64).unwrap();
        let xv: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let yv: Vec<f32> = vec![1.0; n];
        ctx.memcpy_htod(&x, &xv).unwrap();
        ctx.memcpy_htod(&y, &yv).unwrap();
        let saxpy = ctx.get_function("saxpy").unwrap();
        let blocks = (n as u32).div_ceil(256);
        let args = [
            KernelArg::Ptr(x),
            KernelArg::Ptr(y),
            KernelArg::F32(2.0),
            KernelArg::U32(n as u32),
        ];
        ctx.launch_kernel(&saxpy, [blocks, 1, 1], &args, Stream::DEFAULT)
            .unwrap();
        ctx.device_synchronize();
        let out: Vec<f32> = ctx.memcpy_dtoh(&y).unwrap();
        assert_eq!(out[100], 2.0 * 100.0 + 1.0);
        // Launch overhead was paid exactly once.
        assert_eq!(
            ctx.breakdown().get(CostKind::LaunchOverhead),
            devices::gtx1050ti()
                .driver(Api::Cuda)
                .unwrap()
                .launch_overhead
        );
    }

    #[test]
    fn repeated_launches_accumulate_overhead() {
        let ctx = ctx();
        let n = 1024usize;
        let x = ctx.malloc((n * 4) as u64).unwrap();
        let y = ctx.malloc((n * 4) as u64).unwrap();
        ctx.memcpy_htod(&x, &vec![0.0f32; n]).unwrap();
        ctx.memcpy_htod(&y, &vec![0.0f32; n]).unwrap();
        let saxpy = ctx.get_function("saxpy").unwrap();
        let args = [
            KernelArg::Ptr(x),
            KernelArg::Ptr(y),
            KernelArg::F32(1.0),
            KernelArg::U32(n as u32),
        ];
        for _ in 0..10 {
            ctx.launch_kernel(&saxpy, [4, 1, 1], &args, Stream::DEFAULT)
                .unwrap();
        }
        ctx.device_synchronize();
        let expected = devices::gtx1050ti()
            .driver(Api::Cuda)
            .unwrap()
            .launch_overhead
            * 10;
        assert_eq!(ctx.breakdown().get(CostKind::LaunchOverhead), expected);
    }

    #[test]
    fn wrong_arg_counts_rejected() {
        let ctx = ctx();
        let x = ctx.malloc(1024).unwrap();
        let saxpy = ctx.get_function("saxpy").unwrap();
        // Too few pointers.
        assert!(ctx
            .launch_kernel(&saxpy, [1, 1, 1], &[KernelArg::Ptr(x)], Stream::DEFAULT)
            .is_err());
        // Too many pointers.
        assert!(ctx
            .launch_kernel(
                &saxpy,
                [1, 1, 1],
                &[KernelArg::Ptr(x), KernelArg::Ptr(x), KernelArg::Ptr(x)],
                Stream::DEFAULT
            )
            .is_err());
    }

    #[test]
    fn oversized_copy_rejected() {
        let ctx = ctx();
        let x = ctx.malloc(16).unwrap();
        assert!(ctx.memcpy_htod(&x, &[0.0f32; 100]).is_err());
    }

    #[test]
    fn double_free_rejected() {
        let ctx = ctx();
        let x = ctx.malloc(64).unwrap();
        ctx.free(&x).unwrap();
        assert!(ctx.free(&x).is_err());
    }

    #[test]
    fn events_measure_kernel_time() {
        let ctx = ctx();
        let n: usize = 1 << 20;
        let x = ctx.malloc((n * 4) as u64).unwrap();
        let y = ctx.malloc((n * 4) as u64).unwrap();
        ctx.memcpy_htod(&x, &vec![1.0f32; n]).unwrap();
        ctx.memcpy_htod(&y, &vec![1.0f32; n]).unwrap();
        let saxpy = ctx.get_function("saxpy").unwrap();
        let start = ctx.record_event(Stream::DEFAULT);
        ctx.launch_kernel(
            &saxpy,
            [(n as u32).div_ceil(256), 1, 1],
            &[
                KernelArg::Ptr(x),
                KernelArg::Ptr(y),
                KernelArg::F32(3.0),
                KernelArg::U32(n as u32),
            ],
            Stream::DEFAULT,
        )
        .unwrap();
        let end = ctx.record_event(Stream::DEFAULT);
        assert!(end.elapsed_since(start) > 0.0);
    }

    #[test]
    fn unknown_kernel_symbol() {
        let ctx = ctx();
        assert!(matches!(
            ctx.get_function("missing"),
            Err(CudaError::Device(SimError::UnknownKernel { .. }))
        ));
    }

    #[test]
    fn dtod_copy_moves_data() {
        let ctx = ctx();
        let a = ctx.malloc(64).unwrap();
        let b = ctx.malloc(64).unwrap();
        ctx.memcpy_htod(&a, &[5u32; 16]).unwrap();
        ctx.memcpy_dtod(&b, &a, 64).unwrap();
        let out: Vec<u32> = ctx.memcpy_dtoh(&b).unwrap();
        assert_eq!(out, vec![5u32; 16]);
    }

    #[test]
    fn streams_are_independent_timelines() {
        let ctx = ctx();
        let s1 = ctx.create_stream();
        assert_ne!(s1, Stream::DEFAULT);
        ctx.stream_synchronize(s1);
    }

    #[test]
    fn oom_reports_device_error() {
        let ctx = ctx();
        let result = ctx.malloc(64 * 1024 * 1024 * 1024);
        assert!(matches!(
            result,
            Err(CudaError::Device(SimError::OutOfDeviceMemory { .. }))
        ));
    }
}
