//! nw — Needleman-Wunsch sequence alignment (Table I: Dynamic
//! Programming / Bioinformatics).
//!
//! Fills the (n+1)×(n+1) score matrix of the global-alignment DP. The
//! grid is tiled into 16×16 blocks; each workgroup sweeps its tile's
//! anti-diagonals in shared registers. Following the paper's description
//! (§V-A2: backprop, nn and nw "do not involve any dependencies between
//! kernel invocations"), the Vulkan port records the two halves of the
//! tile grid into two command buffers and submits them together in a
//! single `vkQueueSubmit`; the launch-based APIs enqueue the same two
//! kernels back-to-back. Either way the APIs end up at parity.
//!
//! *Adaptation note*: the simulator executes workgroups of a dispatch in
//! linear grid order, so a row-major tile enumeration satisfies the
//! left/top tile dependencies within each dispatch by construction (see
//! DESIGN.md).

use std::sync::Arc;

use vcb_core::run::{RunFailure, RunOutcome, SizeSpec};
use vcb_core::suite::{self, BenchmarkMeta};
use vcb_core::workload::{RunOpts, Workload};
use vcb_sim::exec::{GroupCtx, KernelInfo};
use vcb_sim::profile::{DeviceClass, DeviceProfile};
use vcb_sim::{Api, KernelRegistry, SimResult};

use crate::common::{
    bytes_of, exact_eq_i32, measure, to_i32, BodyOutcome, ComputeBackend, UsageHint,
};
use crate::data;

/// Workload name.
pub const NAME: &str = "nw";
/// Matrix-fill kernel (both halves use the same kernel).
pub const KERNEL: &str = "nw_fill";
/// Tile edge.
pub const BS: usize = 16;
/// Gap penalty (Rodinia default 10).
pub const PENALTY: i32 = 10;

/// The GLSL compute shader the SPIR-V is built from.
pub const GLSL_SOURCE: &str = r#"
#version 450
#define BS 16
layout(local_size_x = BS) in;
layout(set = 0, binding = 0) readonly buffer Seq1 { int seq1[]; };
layout(set = 0, binding = 1) readonly buffer Seq2 { int seq2[]; };
layout(set = 0, binding = 2) readonly buffer Blosum { int blosum[]; };
layout(set = 0, binding = 3) buffer Score { int score[]; };
layout(push_constant) uniform Params {
    uint n;
    uint tile_base;
    int penalty;
};

void main() {
    uint nb = n / BS;
    uint tile = tile_base + gl_WorkGroupID.x;
    uint by = tile / nb;
    uint bx = tile % nb;
    int tx = int(gl_LocalInvocationID.x);
    for (int d = 0; d < 2 * BS - 1; ++d) {
        int txx = d - tx;
        if (txx >= 0 && txx < BS) {
            uint i = by * BS + uint(tx) + 1u;
            uint j = bx * BS + uint(txx) + 1u;
            int m = score[(i - 1u) * (n + 1u) + (j - 1u)]
                  + blosum[seq1[i - 1u] * 4 + seq2[j - 1u]];
            int del = score[(i - 1u) * (n + 1u) + j] - penalty;
            int ins = score[i * (n + 1u) + (j - 1u)] - penalty;
            score[i * (n + 1u) + j] = max(m, max(del, ins));
        }
        barrier();
    }
}
"#;

/// The OpenCL C twin of the kernel.
pub const CL_SOURCE: &str = r#"
#define BS 16

__kernel void nw_fill(__global const int* seq1,
                      __global const int* seq2,
                      __global const int* blosum,
                      __global int* score,
                      uint n,
                      uint tile_base,
                      int penalty) {
    uint nb = n / BS;
    uint tile = tile_base + get_group_id(0);
    uint by = tile / nb;
    uint bx = tile % nb;
    int tx = get_local_id(0);
    /* sweep the tile's anti-diagonals; lane tx owns row tx */
    for (int d = 0; d < 2 * BS - 1; ++d) {
        int ty = tx;
        int txx = d - tx;
        if (txx >= 0 && txx < BS) {
            uint i = by * BS + ty + 1;
            uint j = bx * BS + txx + 1;
            int m = score[(i - 1) * (n + 1) + (j - 1)]
                  + blosum[seq1[i - 1] * 4 + seq2[j - 1]];
            int del = score[(i - 1) * (n + 1) + j] - penalty;
            int ins = score[i * (n + 1) + (j - 1)] - penalty;
            score[i * (n + 1) + j] = max(m, max(del, ins));
        }
        barrier(CLK_GLOBAL_MEM_FENCE);
    }
}
"#;

/// Registers the kernel body.
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register(registry: &mut KernelRegistry) -> SimResult<()> {
    // parallel_groups audit: deliberately NOT declared. A tile reads the
    // score cells its left and top neighbour tiles wrote *within the
    // same dispatch*; correctness relies on the engine's linear grid
    // order (see the module docs), so nw must never fan out.
    let info = KernelInfo::new(KERNEL, [BS as u32, 1, 1])
        .reads(0, "seq1")
        .reads(1, "seq2")
        .reads(2, "blosum")
        .writes(3, "score")
        .push_constants(12)
        .source_bytes(CL_SOURCE.len() as u64)
        .build();
    registry.register(
        info,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let seq1 = ctx.global::<i32>(0)?;
            let seq2 = ctx.global::<i32>(1)?;
            let blosum = ctx.global::<i32>(2)?;
            let score = ctx.global::<i32>(3)?;
            let n = ctx.push_u32(0) as usize;
            let tile_base = ctx.push_u32(4) as usize;
            let penalty = ctx.push_u32(8) as i32;
            let nb = n / BS;
            let tile = tile_base + ctx.group_id(0) as usize;
            let by = tile / nb;
            let bx = tile % nb;
            for d in 0..(2 * BS - 1) {
                ctx.for_lanes(|lane| {
                    let ty = lane.local_linear() as i64;
                    let txx = d as i64 - ty;
                    if !(0..BS as i64).contains(&txx) {
                        return;
                    }
                    let i = by * BS + ty as usize + 1;
                    let j = bx * BS + txx as usize + 1;
                    let c1 = lane.ld(&seq1, i - 1) as usize;
                    let c2 = lane.ld(&seq2, j - 1) as usize;
                    let sub = lane.ld(&blosum, c1 * 4 + c2);
                    let diag = lane.ld(&score, (i - 1) * (n + 1) + (j - 1)) + sub;
                    let del = lane.ld(&score, (i - 1) * (n + 1) + j) - penalty;
                    let ins = lane.ld(&score, i * (n + 1) + (j - 1)) - penalty;
                    lane.alu(5);
                    lane.st(&score, i * (n + 1) + j, diag.max(del).max(ins));
                });
                ctx.barrier();
            }
            Ok(())
        }),
    )
}

/// Generates the two sequences and the 4×4 substitution matrix.
pub fn generate(n: usize, seed: u64) -> (Vec<i32>, Vec<i32>, Vec<i32>) {
    let seq1 = data::dna_sequence(n, seed);
    let seq2 = data::dna_sequence(n, seed ^ 0x2e);
    let blosum = data::uniform_i32(16, seed ^ 0xb1, -3, 6);
    (seq1, seq2, blosum)
}

/// The boundary-initialized score matrix.
pub fn initial_score(n: usize) -> Vec<i32> {
    let w = n + 1;
    let mut score = vec![0i32; w * w];
    for (j, cell) in score.iter_mut().enumerate().take(w) {
        *cell = -(j as i32) * PENALTY;
    }
    for i in 0..w {
        score[i * w] = -(i as i32) * PENALTY;
    }
    score
}

/// CPU reference: the full DP matrix.
pub fn reference(seq1: &[i32], seq2: &[i32], blosum: &[i32], n: usize) -> Vec<i32> {
    let w = n + 1;
    let mut score = initial_score(n);
    for i in 1..w {
        for j in 1..w {
            let sub = blosum[(seq1[i - 1] * 4 + seq2[j - 1]) as usize];
            let m = score[(i - 1) * w + (j - 1)] + sub;
            let del = score[(i - 1) * w + j] - PENALTY;
            let ins = score[i * w + (j - 1)] - PENALTY;
            score[i * w + j] = m.max(del).max(ins);
        }
    }
    score
}

fn halves(n: usize) -> [(u32, u32); 2] {
    let nb = n / BS;
    let tiles = (nb * nb) as u32;
    let first = tiles / 2;
    [(0, first), (first, tiles - first)]
}

fn push(n: usize, tile_base: u32) -> Vec<u8> {
    let mut p = Vec::with_capacity(12);
    p.extend_from_slice(&(n as u32).to_le_bytes());
    p.extend_from_slice(&tile_base.to_le_bytes());
    p.extend_from_slice(&PENALTY.to_le_bytes());
    p
}

/// The one host program behind all three APIs. The two grid halves
/// record into two command-buffer segments submitted in a single
/// `vkQueueSubmit` under Vulkan (`seq_split`); the launch-based APIs
/// enqueue the same two kernels back-to-back — either way the APIs end
/// up at parity, as §V-A2 reports.
fn host_program(
    b: &mut dyn ComputeBackend,
    n: usize,
    seq1_host: &[i32],
    seq2_host: &[i32],
    blosum_host: &[i32],
    expected: Option<&Vec<i32>>,
) -> Result<BodyOutcome, RunFailure> {
    let seq1 = b.upload(bytes_of(seq1_host), UsageHint::ReadOnly)?;
    let seq2 = b.upload(bytes_of(seq2_host), UsageHint::ReadOnly)?;
    let blosum = b.upload(bytes_of(blosum_host), UsageHint::ReadOnly)?;
    let score = b.upload(bytes_of(&initial_score(n)), UsageHint::ReadWrite)?;
    b.load_program(CL_SOURCE)?;
    let bg = b.bind_group(&[seq1, seq2, blosum, score])?;
    let kernel = b.kernel(KERNEL, bg, 12)?;

    let seq = b.seq_begin()?;
    for (i, (base, count)) in halves(n).iter().enumerate() {
        if i > 0 {
            b.seq_split(seq)?;
        }
        b.seq_kernel(seq, kernel)?;
        b.seq_bind(seq, bg)?;
        b.seq_push(seq, &push(n, *base))?;
        b.seq_dispatch(seq, [(*count).max(1), 1, 1])?;
    }
    b.seq_end(seq)?;

    let compute_start = b.now();
    b.run(seq)?;
    let compute_time = b.now().duration_since(compute_start);

    let out = to_i32(&b.download(score)?);
    Ok(BodyOutcome {
        validated: expected.is_none_or(|e| exact_eq_i32(&out, e)),
        compute_time,
    })
}

fn run(
    api: Api,
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let mut b = vcb_backend::create_with(api, profile, registry, &opts.into())?;
    let (seq1_host, seq2_host, blosum_host) = generate(n, opts.seed);
    let expected = opts
        .validate
        .then(|| reference(&seq1_host, &seq2_host, &blosum_host, n));
    measure(NAME, &size.label, b.as_mut(), |b| {
        host_program(
            b,
            n,
            &seq1_host,
            &seq2_host,
            &blosum_host,
            expected.as_ref(),
        )
    })
}

/// The nw suite entry.
#[derive(Debug, Clone)]
pub struct Nw {
    registry: Arc<KernelRegistry>,
}

impl Nw {
    /// Creates the workload against a kernel registry.
    pub fn new(registry: Arc<KernelRegistry>) -> Self {
        Nw { registry }
    }
}

impl Workload for Nw {
    fn meta(&self) -> BenchmarkMeta {
        *suite::find(NAME).expect("nw is in Table I")
    }

    fn sizes(&self, class: DeviceClass) -> Vec<SizeSpec> {
        match class {
            DeviceClass::Desktop => vec![
                SizeSpec::new("4K", 4 * 1024),
                SizeSpec::new("8K", 8 * 1024),
                SizeSpec::new("16K", 16 * 1024),
            ],
            DeviceClass::Mobile => vec![SizeSpec::new("1K", 1024), SizeSpec::new("2K", 2048)],
        }
    }

    fn run(&self, api: Api, device: &DeviceProfile, size: &SizeSpec, opts: &RunOpts) -> RunOutcome {
        run(api, device, &self.registry, size, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_core::run::speedup;
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        let mut r = KernelRegistry::new();
        register(&mut r).unwrap();
        Arc::new(r)
    }

    #[test]
    fn reference_scores_identical_sequences_positively() {
        let n = 32;
        let seq = data::dna_sequence(n, 4);
        // Identity substitution: +5 match, -3 mismatch.
        let mut blosum = vec![-3i32; 16];
        for c in 0..4 {
            blosum[c * 4 + c] = 5;
        }
        let score = reference(&seq, &seq, &blosum, n);
        assert_eq!(score[(n + 1) * (n + 1) - 1], 5 * n as i32);
    }

    #[test]
    fn all_apis_match_reference() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("256", 256);
        let w = Nw::new(Arc::clone(&registry));
        for api in Api::ALL {
            let record = w.run(api, &devices::gtx1050ti(), &size, &opts).unwrap();
            assert!(record.validated, "{api} failed validation");
        }
    }

    #[test]
    fn apis_are_near_parity() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("1K", 1024);
        let w = Nw::new(Arc::clone(&registry));
        let profile = devices::gtx1050ti();
        let vk = w.run(Api::Vulkan, &profile, &size, &opts).unwrap();
        let cl = w.run(Api::OpenCl, &profile, &size, &opts).unwrap();
        let s = speedup(&cl, &vk);
        assert!((0.75..1.5).contains(&s), "nw speedup {s}");
    }

    #[test]
    fn mobile_runs() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("512", 512);
        let w = Nw::new(Arc::clone(&registry));
        let vk = w
            .run(Api::Vulkan, &devices::adreno506(), &size, &opts)
            .unwrap();
        assert!(vk.validated);
    }
}
