//! Property-style tests over the simulator substrate's core invariants.
//!
//! The container builds offline (no `proptest`), so these run each
//! property over a seeded deterministic sweep of randomized cases
//! instead of a shrinking search. The invariants are unchanged.

use vcomputebench::sim::cache::{CacheOutcome, CacheSim};
use vcomputebench::sim::coalesce::{
    expand_runs, expand_sectors, strided_sectors, AddrPattern, Coalescer,
};
use vcomputebench::sim::mem::{HeapAllocation, HeapState, MemoryPool};
use vcomputebench::sim::profile::HeapProfile;
use vcomputebench::sim::time::SimDuration;
use vcomputebench::workloads::data::SmallRng;

fn disjoint(a: &HeapAllocation, b: &HeapAllocation) -> bool {
    a.offset + a.size <= b.offset || b.offset + b.size <= a.offset
}

/// Coalesced transactions are bounded: at least the unique-bytes lower
/// bound, at most one-plus-straddle per access.
#[test]
fn coalescer_bounds() {
    for case in 0..200u64 {
        let mut rng = SmallRng::seed_from_u64(case);
        let len = rng.gen_range_u64(1, 64) as usize;
        let size = [1u32, 4, 8][rng.gen_range_u64(0, 3) as usize];
        let addrs: Vec<u64> = (0..len).map(|_| rng.gen_range_u64(0, 100_000)).collect();
        let mut c = Coalescer::new(32, 128);
        let r = c.coalesce(&addrs, size);
        // Upper bound: every access straddles at most 2 sectors.
        assert!(r.sectors as usize <= 2 * addrs.len(), "case {case}");
        assert!(r.sectors > 0, "case {case}");
        assert_eq!(
            r.useful_bytes,
            addrs.len() as u64 * size as u64,
            "case {case}"
        );
        // Lines never exceed sectors.
        assert!(r.lines <= r.sectors, "case {case}");
    }
}

/// The production run-length coalescing path (affine detection + run
/// emission) expands to exactly the generic per-address sector sequence
/// for arbitrary address mixes — the top-level echo of the dedicated
/// fuzz-equivalence suite in `crates/sim`.
#[test]
fn run_path_matches_generic_expansion() {
    for case in 0..200u64 {
        let mut rng = SmallRng::seed_from_u64(0x5ec7 ^ case);
        let len = rng.gen_range_u64(1, 48);
        let size = [1u64, 4, 8][rng.gen_range_u64(0, 3) as usize];
        let stride = rng.gen_range_u64(1, 64);
        let base = rng.gen_range_u64(0, 1 << 16);
        // Half the cases affine, half scattered.
        let addrs: Vec<u64> = if case % 2 == 0 {
            (0..len).map(|i| base + i * stride).collect()
        } else {
            (0..len).map(|_| rng.gen_range_u64(0, 1 << 16)).collect()
        };
        let mut reference = Vec::new();
        expand_sectors(&addrs, size, 32, &mut reference);
        let mut pattern = AddrPattern::default();
        for &a in &addrs {
            pattern.push(a);
        }
        let (mut scratch, mut runs) = (Vec::new(), Vec::new());
        pattern.emit_runs(size, 32, &mut scratch, &mut runs);
        assert_eq!(expand_runs(&runs), reference, "case {case}");
    }
}

/// The analytic strided-sector formula matches the traced coalescer for
/// aligned strided streams.
#[test]
fn analytic_strides_match_traced() {
    for case in 0..300u64 {
        let mut rng = SmallRng::seed_from_u64(0x57f1de ^ case);
        let n = rng.gen_range_u64(1, 200);
        let stride = rng.gen_range_u64(1, 40);
        let mut c = Coalescer::new(32, 128);
        let addrs: Vec<u64> = (0..n).map(|i| i * stride * 4).collect();
        let traced = u64::from(c.coalesce(&addrs, 4).sectors);
        let analytic = strided_sectors(n, 4, stride * 4, 32);
        assert_eq!(traced, analytic, "n={n} stride={stride}");
    }
}

/// Cache accounting: hits + misses == accesses; contents are a function
/// of the access stream (determinism).
#[test]
fn cache_accounting() {
    for case in 0..100u64 {
        let mut rng = SmallRng::seed_from_u64(0xcac4e ^ case);
        let len = rng.gen_range_u64(1, 512) as usize;
        let sectors: Vec<u64> = (0..len).map(|_| rng.gen_range_u64(0, 4096)).collect();
        let mut a = CacheSim::new(16 * 1024, 4, 32);
        let mut b = CacheSim::new(16 * 1024, 4, 32);
        for &s in &sectors {
            let ra = a.access_sector(s);
            let rb = b.access_sector(s);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.stats().accesses(), sectors.len() as u64);
        assert!(a.stats().hit_rate() <= 1.0);
    }
}

/// A second pass over a small working set always hits.
#[test]
fn cache_small_working_set_hits() {
    for count in 1u64..64 {
        let mut c = CacheSim::new(64 * 1024, 8, 32); // 2048 sectors
        for s in 0..count {
            c.access_sector(s);
        }
        c.reset_stats();
        for s in 0..count {
            assert_eq!(c.access_sector(s), CacheOutcome::Hit, "count {count}");
        }
    }
}

/// Heap allocator: every successful allocation is in-bounds, aligned and
/// disjoint; freeing everything restores a single free range.
#[test]
fn heap_alloc_free_invariants() {
    for case in 0..100u64 {
        let mut rng = SmallRng::seed_from_u64(0x4ea9 ^ case);
        let count = rng.gen_range_u64(1, 40) as usize;
        let align = 1u64 << rng.gen_range_u64(0, 8);
        let capacity = 1 << 20;
        let mut heap = HeapState::new(HeapProfile {
            size: capacity,
            device_local: true,
            host_visible: false,
        });
        let mut live = Vec::new();
        for _ in 0..count {
            let size = rng.gen_range_u64(1, 5000);
            // Failures are legitimate (full/fragmented heap).
            if let Ok(block) = heap.alloc(0, size, align) {
                assert_eq!(block.offset % align, 0);
                assert!(block.offset + block.size <= capacity);
                for other in &live {
                    assert!(disjoint(&block, other));
                }
                live.push(block);
            }
        }
        let used: u64 = live.iter().map(|b| b.size).sum();
        assert_eq!(heap.used(), used);
        for block in live.drain(..) {
            heap.free(block);
        }
        assert_eq!(heap.used(), 0);
        assert_eq!(heap.fragments(), 1);
    }
}

/// Buffer round trips preserve data for arbitrary float payloads,
/// including non-finite bit patterns.
#[test]
fn buffer_roundtrip() {
    for case in 0..50u64 {
        let mut rng = SmallRng::seed_from_u64(0xb0f ^ case);
        let len = rng.gen_range_u64(1, 512) as usize;
        let data: Vec<f32> = (0..len)
            .map(|_| f32::from_bits(rng.next_u64() as u32))
            .collect();
        let mut pool = MemoryPool::new(&[HeapProfile {
            size: 1 << 22,
            device_local: true,
            host_visible: true,
        }]);
        let (id, _) = pool.create_buffer(0, (data.len() * 4) as u64).unwrap();
        pool.buffer_mut(id).unwrap().write_slice(&data);
        let back: Vec<f32> = pool.buffer(id).unwrap().read_vec().unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// Simulated durations form a commutative monoid under addition and
/// scale linearly.
#[test]
fn duration_algebra() {
    for case in 0..200u64 {
        let mut rng = SmallRng::seed_from_u64(0xd47a ^ case);
        let a = rng.gen_range_u64(0, 1 << 40);
        let b = rng.gen_range_u64(0, 1 << 40);
        let (da, db) = (SimDuration::from_picos(a), SimDuration::from_picos(b));
        assert_eq!(da + db, db + da);
        assert_eq!(da + SimDuration::ZERO, da);
        assert_eq!((da + db).as_picos(), a + b);
        let doubled = da.scale(2.0);
        assert_eq!(doubled.as_picos(), a * 2);
    }
}

/// Workload references are self-consistent: the nw DP recurrence
/// satisfies its defining property on random instances.
#[test]
fn nw_reference_recurrence() {
    use vcomputebench::workloads::rodinia::nw;
    for case in 0..16u64 {
        let mut rng = SmallRng::seed_from_u64(0x2b ^ case);
        let n = rng.gen_range_u64(1, 24) as usize;
        let seed = rng.gen_range_u64(0, 500);
        let (s1, s2, blosum) = nw::generate(n, seed);
        let score = nw::reference(&s1, &s2, &blosum, n);
        let w = n + 1;
        for i in 1..w {
            for j in 1..w {
                let sub = blosum[(s1[i - 1] * 4 + s2[j - 1]) as usize];
                let expect = (score[(i - 1) * w + j - 1] + sub)
                    .max(score[(i - 1) * w + j] - nw::PENALTY)
                    .max(score[i * w + j - 1] - nw::PENALTY);
                assert_eq!(score[i * w + j], expect);
            }
        }
    }
}

/// The pathfinder reference always picks a reachable minimal path: its
/// cost is bounded by any greedy straight-down path.
#[test]
fn pathfinder_reference_bounded() {
    use vcomputebench::workloads::rodinia::pathfinder::{self, Dims};
    for case in 0..16u64 {
        let mut rng = SmallRng::seed_from_u64(0x9a7 ^ case);
        let cols = rng.gen_range_u64(4, 40) as usize;
        let rows = rng.gen_range_u64(2, 20) as usize;
        let seed = rng.gen_range_u64(0, 500);
        let d = Dims { cols, rows };
        let wall = pathfinder::generate(d, seed);
        let best = pathfinder::reference(&wall, d);
        for j in 0..cols {
            let straight: i32 = (0..rows).map(|t| wall[t * cols + j]).sum();
            assert!(
                best[j] <= straight,
                "col {j}: {} > straight {straight}",
                best[j]
            );
        }
    }
}

/// Gaussian elimination solves diagonally dominant systems to tolerance
/// for arbitrary seeds and sizes.
#[test]
fn gaussian_reference_solves() {
    use vcomputebench::workloads::rodinia::gaussian;
    for case in 0..16u64 {
        let mut rng = SmallRng::seed_from_u64(0x6a55 ^ case);
        let n = rng.gen_range_u64(2, 32) as usize;
        let seed = rng.gen_range_u64(0, 500);
        let (a, b) = vcomputebench::workloads::data::linear_system(n, seed);
        let x = gaussian::reference(&a, &b, n);
        for i in 0..n {
            let dot: f32 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            assert!((dot - b[i]).abs() < 1e-2 * b[i].abs().max(1.0));
        }
    }
}
