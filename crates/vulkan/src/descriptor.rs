//! Descriptor set layouts, pools and sets.
//!
//! Binding a buffer to a kernel in Vulkan goes through descriptor sets:
//! `writeDescripSet.dstBinding = 0; // Same as SPIRV Binding decoration`
//! (Listing 1). This is the Vulkan analogue of `clSetKernelArg` (§IV-A).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use vcb_sim::mem::BufferId;
use vcb_sim::time::SimDuration;

use crate::device::Device;
use crate::error::{VkError, VkResult};
use crate::memory::Buffer;

/// `VkDescriptorType` subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DescriptorType {
    /// `VK_DESCRIPTOR_TYPE_STORAGE_BUFFER`.
    StorageBuffer,
    /// `VK_DESCRIPTOR_TYPE_UNIFORM_BUFFER`.
    UniformBuffer,
}

/// One binding slot in a layout (`VkDescriptorSetLayoutBinding`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DescriptorSetLayoutBinding {
    /// Slot number, matching the SPIR-V `Binding` decoration.
    pub binding: u32,
    /// Descriptor kind.
    pub descriptor_type: DescriptorType,
}

/// A descriptor set layout (`VkDescriptorSetLayout`).
#[derive(Clone)]
pub struct DescriptorSetLayout {
    pub(crate) bindings: Rc<Vec<DescriptorSetLayoutBinding>>,
}

impl fmt::Debug for DescriptorSetLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DescriptorSetLayout")
            .field("bindings", &self.bindings.len())
            .finish()
    }
}

/// A descriptor pool (`VkDescriptorPool`).
#[derive(Clone)]
pub struct DescriptorPool {
    device: Device,
    remaining_sets: Rc<RefCell<u32>>,
}

impl fmt::Debug for DescriptorPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DescriptorPool")
            .field("remaining_sets", &*self.remaining_sets.borrow())
            .finish()
    }
}

/// A descriptor set: the binding table a dispatch reads buffers through
/// (`VkDescriptorSet`).
#[derive(Clone)]
pub struct DescriptorSet {
    pub(crate) layout: DescriptorSetLayout,
    pub(crate) bindings: Rc<RefCell<BTreeMap<u32, BufferId>>>,
}

impl DescriptorSet {
    /// Slots currently populated.
    pub fn bound_slots(&self) -> Vec<u32> {
        self.bindings.borrow().keys().copied().collect()
    }
}

impl fmt::Debug for DescriptorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DescriptorSet")
            .field("bound", &self.bindings.borrow().len())
            .field("layout", &self.layout.bindings.len())
            .finish()
    }
}

/// One `VkWriteDescriptorSet` entry for
/// [`Device::update_descriptor_sets`].
#[derive(Debug, Clone)]
pub struct WriteDescriptorSet<'a> {
    /// Set to update.
    pub dst_set: &'a DescriptorSet,
    /// Binding slot — "Same as SPIRV Binding decoration" (Listing 1).
    pub dst_binding: u32,
    /// Buffer to attach.
    pub buffer: &'a Buffer,
}

impl Device {
    /// `vkCreateDescriptorSetLayout`.
    ///
    /// # Errors
    ///
    /// Validation error on duplicate binding slots.
    pub fn create_descriptor_set_layout(
        &self,
        bindings: &[DescriptorSetLayoutBinding],
    ) -> VkResult<DescriptorSetLayout> {
        let mut shared = self.shared.borrow_mut();
        shared.api_call("vkCreateDescriptorSetLayout", SimDuration::from_micros(1.0));
        drop(shared);
        for (i, a) in bindings.iter().enumerate() {
            for b in &bindings[i + 1..] {
                if a.binding == b.binding {
                    return Err(VkError::validation(
                        "vkCreateDescriptorSetLayout",
                        format!("binding {} declared twice", a.binding),
                    ));
                }
            }
        }
        Ok(DescriptorSetLayout {
            bindings: Rc::new(bindings.to_vec()),
        })
    }

    /// `vkCreateDescriptorPool` with capacity for `max_sets` sets.
    pub fn create_descriptor_pool(&self, max_sets: u32) -> VkResult<DescriptorPool> {
        let mut shared = self.shared.borrow_mut();
        shared.api_call("vkCreateDescriptorPool", SimDuration::from_micros(1.5));
        drop(shared);
        if max_sets == 0 {
            return Err(VkError::validation(
                "vkCreateDescriptorPool",
                "max_sets must be non-zero",
            ));
        }
        Ok(DescriptorPool {
            device: self.clone(),
            remaining_sets: Rc::new(RefCell::new(max_sets)),
        })
    }

    /// `vkUpdateDescriptorSets`.
    ///
    /// # Errors
    ///
    /// Validation errors for unknown slots or unbound buffers.
    pub fn update_descriptor_sets(&self, writes: &[WriteDescriptorSet<'_>]) -> VkResult<()> {
        let mut shared = self.shared.borrow_mut();
        shared.api_call(
            "vkUpdateDescriptorSets",
            SimDuration::from_nanos(350.0) * writes.len().max(1) as u64,
        );
        drop(shared);
        for w in writes {
            if !w
                .dst_set
                .layout
                .bindings
                .iter()
                .any(|b| b.binding == w.dst_binding)
            {
                return Err(VkError::validation(
                    "vkUpdateDescriptorSets",
                    format!("binding {} not in the set's layout", w.dst_binding),
                ));
            }
            let id = w.buffer.storage_id("vkUpdateDescriptorSets")?;
            w.dst_set.bindings.borrow_mut().insert(w.dst_binding, id);
        }
        Ok(())
    }
}

impl DescriptorPool {
    /// `vkAllocateDescriptorSets` (one set).
    ///
    /// # Errors
    ///
    /// Validation error when the pool is exhausted.
    pub fn allocate_descriptor_set(&self, layout: &DescriptorSetLayout) -> VkResult<DescriptorSet> {
        let mut shared = self.device.shared.borrow_mut();
        shared.api_call("vkAllocateDescriptorSets", SimDuration::from_micros(1.0));
        drop(shared);
        let mut remaining = self.remaining_sets.borrow_mut();
        if *remaining == 0 {
            return Err(VkError::validation(
                "vkAllocateDescriptorSets",
                "descriptor pool exhausted",
            ));
        }
        *remaining -= 1;
        Ok(DescriptorSet {
            layout: layout.clone(),
            bindings: Rc::new(RefCell::new(BTreeMap::new())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceCreateInfo, DeviceQueueCreateInfo};
    use crate::flags::BufferUsage;
    use crate::instance::{Instance, InstanceCreateInfo};
    use crate::memory::{BufferCreateInfo, MemoryAllocateInfo};
    use std::sync::Arc;
    use vcb_sim::profile::devices;
    use vcb_sim::KernelRegistry;

    fn device() -> Device {
        let instance = Instance::new(&InstanceCreateInfo {
            application_name: "desc-test".into(),
            enabled_layers: vec![],
            devices: vec![devices::gtx1050ti()],
            registry: Arc::new(KernelRegistry::new()),
        })
        .unwrap();
        let phys = instance.enumerate_physical_devices().remove(0);
        Device::new(
            &phys,
            &DeviceCreateInfo {
                queue_create_infos: vec![DeviceQueueCreateInfo {
                    queue_family_index: 0,
                    queue_count: 1,
                }],
            },
        )
        .unwrap()
    }

    fn bound_buffer(device: &Device) -> Buffer {
        let buffer = device
            .create_buffer(&BufferCreateInfo {
                size: 256,
                usage: BufferUsage::STORAGE_BUFFER,
            })
            .unwrap();
        let memory = device
            .allocate_memory(&MemoryAllocateInfo {
                allocation_size: 256,
                memory_type_index: 1,
            })
            .unwrap();
        device.bind_buffer_memory(&buffer, &memory).unwrap();
        buffer
    }

    fn layout(device: &Device, n: u32) -> DescriptorSetLayout {
        let bindings: Vec<_> = (0..n)
            .map(|binding| DescriptorSetLayoutBinding {
                binding,
                descriptor_type: DescriptorType::StorageBuffer,
            })
            .collect();
        device.create_descriptor_set_layout(&bindings).unwrap()
    }

    #[test]
    fn write_and_inspect_set() {
        let device = device();
        let layout = layout(&device, 3);
        let pool = device.create_descriptor_pool(4).unwrap();
        let set = pool.allocate_descriptor_set(&layout).unwrap();
        let buffer = bound_buffer(&device);
        device
            .update_descriptor_sets(&[WriteDescriptorSet {
                dst_set: &set,
                dst_binding: 2,
                buffer: &buffer,
            }])
            .unwrap();
        assert_eq!(set.bound_slots(), vec![2]);
    }

    #[test]
    fn duplicate_layout_bindings_rejected() {
        let device = device();
        let result = device.create_descriptor_set_layout(&[
            DescriptorSetLayoutBinding {
                binding: 0,
                descriptor_type: DescriptorType::StorageBuffer,
            },
            DescriptorSetLayoutBinding {
                binding: 0,
                descriptor_type: DescriptorType::StorageBuffer,
            },
        ]);
        assert!(result.is_err());
    }

    #[test]
    fn pool_exhaustion() {
        let device = device();
        let layout = layout(&device, 1);
        let pool = device.create_descriptor_pool(1).unwrap();
        pool.allocate_descriptor_set(&layout).unwrap();
        assert!(pool.allocate_descriptor_set(&layout).is_err());
    }

    #[test]
    fn write_to_unknown_slot_rejected() {
        let device = device();
        let layout = layout(&device, 1);
        let pool = device.create_descriptor_pool(1).unwrap();
        let set = pool.allocate_descriptor_set(&layout).unwrap();
        let buffer = bound_buffer(&device);
        let err = device
            .update_descriptor_sets(&[WriteDescriptorSet {
                dst_set: &set,
                dst_binding: 5,
                buffer: &buffer,
            }])
            .unwrap_err();
        assert!(matches!(err, VkError::Validation { .. }));
    }

    #[test]
    fn write_with_unbound_buffer_rejected() {
        let device = device();
        let layout = layout(&device, 1);
        let pool = device.create_descriptor_pool(1).unwrap();
        let set = pool.allocate_descriptor_set(&layout).unwrap();
        let buffer = device
            .create_buffer(&BufferCreateInfo {
                size: 64,
                usage: BufferUsage::STORAGE_BUFFER,
            })
            .unwrap();
        assert!(device
            .update_descriptor_sets(&[WriteDescriptorSet {
                dst_set: &set,
                dst_binding: 0,
                buffer: &buffer,
            }])
            .is_err());
    }

    #[test]
    fn rewriting_a_slot_replaces_the_buffer() {
        let device = device();
        let layout = layout(&device, 1);
        let pool = device.create_descriptor_pool(1).unwrap();
        let set = pool.allocate_descriptor_set(&layout).unwrap();
        let (a, b) = (bound_buffer(&device), bound_buffer(&device));
        for buffer in [&a, &b] {
            device
                .update_descriptor_sets(&[WriteDescriptorSet {
                    dst_set: &set,
                    dst_binding: 0,
                    buffer,
                }])
                .unwrap();
        }
        assert_eq!(set.bound_slots().len(), 1);
    }
}
