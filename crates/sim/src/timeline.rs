//! Host/device timeline and cost breakdown.
//!
//! Each API frontend owns a [`Timeline`] that advances as API calls are
//! made. Costs are tagged with a [`CostKind`] so experiments can report
//! where time went — the paper's key argument is precisely about *which*
//! overhead category each programming model pays.

use std::fmt;

use crate::time::{SimDuration, SimInstant};

/// Category of a simulated cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostKind {
    /// Host-side API bookkeeping (object creation, queries).
    HostApi,
    /// JIT compilation of kernel source (OpenCL program build).
    JitCompile,
    /// Pipeline / kernel-object creation.
    PipelineCreate,
    /// Host↔device and device↔device copies.
    Transfer,
    /// Per-launch driver overhead (CUDA/OpenCL kernel launches).
    LaunchOverhead,
    /// Per-submission overhead (Vulkan `vkQueueSubmit`).
    SubmitOverhead,
    /// Command-buffer processing: recorded dispatch fetch, pipeline binds,
    /// descriptor binds, push-constant updates, barriers.
    CommandProcessing,
    /// Unified-memory demand-fault servicing and page migration (zero
    /// under explicit-copy mode, so pre-UVM reports are unchanged).
    UvmFault,
    /// Kernel execution on the device.
    KernelExec,
}

impl CostKind {
    /// All categories, in report order.
    pub const ALL: [CostKind; 9] = [
        CostKind::HostApi,
        CostKind::JitCompile,
        CostKind::PipelineCreate,
        CostKind::Transfer,
        CostKind::LaunchOverhead,
        CostKind::SubmitOverhead,
        CostKind::CommandProcessing,
        CostKind::UvmFault,
        CostKind::KernelExec,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            CostKind::HostApi => "host-api",
            CostKind::JitCompile => "jit",
            CostKind::PipelineCreate => "pipeline",
            CostKind::Transfer => "transfer",
            CostKind::LaunchOverhead => "launch",
            CostKind::SubmitOverhead => "submit",
            CostKind::CommandProcessing => "cmdproc",
            CostKind::UvmFault => "uvm",
            CostKind::KernelExec => "kernel",
        }
    }
}

impl fmt::Display for CostKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated time per [`CostKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingBreakdown {
    buckets: [SimDuration; 9],
}

impl TimingBreakdown {
    /// The all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to the `kind` bucket.
    pub fn charge(&mut self, kind: CostKind, d: SimDuration) {
        self.buckets[Self::index(kind)] += d;
    }

    /// Time accumulated in one bucket.
    pub fn get(&self, kind: CostKind) -> SimDuration {
        self.buckets[Self::index(kind)]
    }

    /// Sum over all buckets.
    pub fn total(&self) -> SimDuration {
        self.buckets.iter().copied().sum()
    }

    /// Sum of all *overhead* buckets (everything except kernel execution).
    pub fn overhead(&self) -> SimDuration {
        self.total() - self.get(CostKind::KernelExec)
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &TimingBreakdown) {
        for (i, b) in other.buckets.iter().enumerate() {
            self.buckets[i] += *b;
        }
    }

    /// Difference since an earlier snapshot (per bucket, saturating).
    pub fn since(&self, earlier: &TimingBreakdown) -> TimingBreakdown {
        let mut out = TimingBreakdown::default();
        for i in 0..self.buckets.len() {
            out.buckets[i] = self.buckets[i] - earlier.buckets[i];
        }
        out
    }

    fn index(kind: CostKind) -> usize {
        CostKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind in ALL")
    }
}

impl fmt::Display for TimingBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for kind in CostKind::ALL {
            let v = self.get(kind);
            if !v.is_zero() {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{}={}", kind.label(), v)?;
                first = false;
            }
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

/// A monotonically advancing simulated host clock with a cost breakdown.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    now: SimInstant,
    breakdown: TimingBreakdown,
}

impl Timeline {
    /// A timeline at the epoch with an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Cost breakdown so far.
    pub fn breakdown(&self) -> &TimingBreakdown {
        &self.breakdown
    }

    /// Advances the clock by `d`, attributing it to `kind`.
    pub fn charge(&mut self, kind: CostKind, d: SimDuration) {
        self.now += d;
        self.breakdown.charge(kind, d);
    }

    /// Advances the clock to at least `instant` without attributing cost
    /// (waiting on a fence does not *do* work).
    pub fn wait_until(&mut self, instant: SimInstant) {
        self.now = self.now.max(instant);
    }

    /// Elapsed simulated time since an earlier instant.
    pub fn elapsed_since(&self, earlier: SimInstant) -> SimDuration {
        self.now.duration_since(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_advances_clock_and_breakdown() {
        let mut t = Timeline::new();
        t.charge(CostKind::LaunchOverhead, SimDuration::from_micros(8.0));
        t.charge(CostKind::KernelExec, SimDuration::from_micros(100.0));
        t.charge(CostKind::LaunchOverhead, SimDuration::from_micros(8.0));
        assert_eq!(t.now().elapsed().as_micros(), 116.0);
        assert_eq!(
            t.breakdown().get(CostKind::LaunchOverhead).as_micros(),
            16.0
        );
        assert_eq!(t.breakdown().overhead().as_micros(), 16.0);
    }

    #[test]
    fn wait_until_never_goes_backwards() {
        let mut t = Timeline::new();
        t.charge(CostKind::HostApi, SimDuration::from_micros(10.0));
        let before = t.now();
        t.wait_until(SimInstant::EPOCH);
        assert_eq!(t.now(), before);
        t.wait_until(before + SimDuration::from_micros(5.0));
        assert_eq!(t.now().elapsed().as_micros(), 15.0);
    }

    #[test]
    fn breakdown_since_subtracts() {
        let mut t = Timeline::new();
        t.charge(CostKind::Transfer, SimDuration::from_micros(4.0));
        let snap = *t.breakdown();
        t.charge(CostKind::Transfer, SimDuration::from_micros(6.0));
        let delta = t.breakdown().since(&snap);
        assert_eq!(delta.get(CostKind::Transfer).as_micros(), 6.0);
    }

    #[test]
    fn breakdown_display_lists_nonzero() {
        let mut b = TimingBreakdown::new();
        assert_eq!(b.to_string(), "(empty)");
        b.charge(CostKind::JitCompile, SimDuration::from_millis(2.0));
        assert!(b.to_string().contains("jit=2.00ms"));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TimingBreakdown::new();
        a.charge(CostKind::KernelExec, SimDuration::from_micros(5.0));
        let mut b = TimingBreakdown::new();
        b.charge(CostKind::KernelExec, SimDuration::from_micros(7.0));
        a.merge(&b);
        assert_eq!(a.get(CostKind::KernelExec).as_micros(), 12.0);
    }
}
