//! Error types shared by the simulator and the API frontends built on it.

use std::fmt;

use crate::api::Api;

/// Errors surfaced by the GPU simulator substrate.
///
/// The API frontends (`vcb-vulkan`, `vcb-cuda`, `vcb-opencl`) wrap these in
/// their own API-shaped error enums; this type is the ground truth about
/// what actually went wrong in the device model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A memory allocation did not fit in the selected heap.
    OutOfDeviceMemory {
        /// Heap the allocation was attempted on.
        heap: usize,
        /// Bytes requested.
        requested: u64,
        /// Bytes still available on that heap.
        available: u64,
    },
    /// A buffer handle did not refer to a live buffer.
    InvalidBuffer {
        /// The stale or foreign handle value.
        id: u32,
    },
    /// A dispatch referenced a binding slot with no buffer bound.
    MissingBinding {
        /// Kernel entry point name.
        kernel: String,
        /// The unbound slot.
        binding: u32,
    },
    /// Two bindings of one dispatch aliased the same buffer and at least
    /// one of them was writable.
    AliasViolation {
        /// Kernel entry point name.
        kernel: String,
        /// First binding slot involved.
        first: u32,
        /// Second binding slot involved.
        second: u32,
    },
    /// A typed buffer view did not evenly cover the underlying bytes.
    MisalignedView {
        /// Buffer length in bytes.
        len: u64,
        /// Element size that failed to divide it.
        elem_size: u64,
    },
    /// An access outside the bounds of a buffer view.
    ///
    /// Real GPUs make this undefined behaviour; the simulator makes it a
    /// hard, diagnosable error.
    OutOfBounds {
        /// Kernel entry point name.
        kernel: String,
        /// Binding slot accessed.
        binding: u32,
        /// Element index accessed.
        index: u64,
        /// Number of elements in the view.
        len: u64,
    },
    /// A kernel symbol was not present in the kernel registry.
    UnknownKernel {
        /// The missing entry point name.
        name: String,
    },
    /// The workgroup's shared-memory demand exceeded the per-CU capacity.
    SharedMemoryExceeded {
        /// Kernel entry point name.
        kernel: String,
        /// Bytes requested by the workgroup.
        requested: u64,
        /// Per-compute-unit capacity.
        capacity: u64,
    },
    /// The driver profile declares this workload broken on this device
    /// (the paper reports such failures on both mobile platforms).
    DriverFailure {
        /// Programming model whose driver rejected the workload.
        api: Api,
        /// Device name.
        device: String,
        /// Workload name.
        workload: String,
    },
    /// Push-constant update larger than the device limit.
    PushConstantOverflow {
        /// Bytes requested.
        requested: u32,
        /// Device limit.
        limit: u32,
    },
    /// A configuration value was rejected (zero-sized dispatch, zero-sized
    /// buffer, workgroup larger than the device maximum, ...).
    InvalidArgument {
        /// Human-readable explanation.
        what: String,
    },
}

impl SimError {
    /// Convenience constructor for [`SimError::InvalidArgument`].
    pub fn invalid(what: impl Into<String>) -> Self {
        SimError::InvalidArgument { what: what.into() }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfDeviceMemory {
                heap,
                requested,
                available,
            } => write!(
                f,
                "out of device memory on heap {heap}: requested {requested} bytes, {available} available"
            ),
            SimError::InvalidBuffer { id } => write!(f, "invalid buffer handle {id}"),
            SimError::MissingBinding { kernel, binding } => {
                write!(f, "kernel `{kernel}` has no buffer bound at binding {binding}")
            }
            SimError::AliasViolation {
                kernel,
                first,
                second,
            } => write!(
                f,
                "kernel `{kernel}` bindings {first} and {second} alias one buffer with write access"
            ),
            SimError::MisalignedView { len, elem_size } => write!(
                f,
                "buffer of {len} bytes is not a whole number of {elem_size}-byte elements"
            ),
            SimError::OutOfBounds {
                kernel,
                binding,
                index,
                len,
            } => write!(
                f,
                "kernel `{kernel}` accessed element {index} of binding {binding} (length {len})"
            ),
            SimError::UnknownKernel { name } => {
                write!(f, "kernel entry point `{name}` is not registered")
            }
            SimError::SharedMemoryExceeded {
                kernel,
                requested,
                capacity,
            } => write!(
                f,
                "kernel `{kernel}` requested {requested} bytes of shared memory (capacity {capacity})"
            ),
            SimError::DriverFailure {
                api,
                device,
                workload,
            } => write!(
                f,
                "{api} driver on {device} failed to run workload `{workload}` (known driver issue)"
            ),
            SimError::PushConstantOverflow { requested, limit } => write!(
                f,
                "push constant range of {requested} bytes exceeds device limit of {limit} bytes"
            ),
            SimError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for simulator operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let e = SimError::OutOfDeviceMemory {
            heap: 0,
            requested: 4096,
            available: 16,
        };
        let msg = e.to_string();
        assert!(msg.contains("4096"));
        assert!(msg.contains("heap 0"));

        let e = SimError::DriverFailure {
            api: Api::OpenCl,
            device: "Adreno 506".into(),
            workload: "lud".into(),
        };
        assert!(e.to_string().contains("OpenCL"));
        assert!(e.to_string().contains("lud"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
