//! Device memory: heaps, a first-fit allocator and buffer storage.
//!
//! Buffers are plain byte arrays backed by 8-byte-aligned storage so that
//! typed views (`f32`, `u32`, `i32`, ...) can be taken safely. Every buffer
//! lives at a unique *device address*, which is what the coalescer and the
//! cache model consume; addresses are deterministic given the allocation
//! sequence.

use std::cell::{Cell, UnsafeCell};
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

use crate::cache::CacheSim;
use crate::coalesce::SectorRun;
use crate::dram::RowTracker;
use crate::error::{SimError, SimResult};
use crate::exec::TrafficStats;
use crate::profile::HeapProfile;

/// Handle to a device buffer inside a [`MemoryPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(u32);

impl BufferId {
    /// Raw handle value (stable for the lifetime of the pool).
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf#{}", self.0)
    }
}

/// A block reserved inside a heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapAllocation {
    /// Which heap the block came from.
    pub heap: usize,
    /// Offset of the block inside the heap.
    pub offset: u64,
    /// Size of the block in bytes.
    pub size: u64,
}

/// First-fit allocator over one heap with free-list coalescing.
///
/// The allocator exists so that out-of-memory behaves like the paper's
/// mobile experiments (cfd's data set "could not fit on both platforms"),
/// and so that allocation patterns are testable.
#[derive(Debug, Clone)]
pub struct HeapState {
    profile: HeapProfile,
    /// Sorted, non-overlapping, non-adjacent free ranges `(offset, size)`.
    free: Vec<(u64, u64)>,
    used: u64,
}

impl HeapState {
    /// Creates an empty heap from its profile.
    pub fn new(profile: HeapProfile) -> Self {
        HeapState {
            free: vec![(0, profile.size)],
            profile,
            used: 0,
        }
    }

    /// The static description of this heap.
    pub fn profile(&self) -> &HeapProfile {
        &self.profile
    }

    /// Frees everything: the heap looks exactly as freshly created.
    pub fn reset(&mut self) {
        self.free.clear();
        self.free.push((0, self.profile.size));
        self.used = 0;
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available (may be fragmented).
    pub fn available(&self) -> u64 {
        self.profile.size - self.used
    }

    /// Allocates `size` bytes aligned to `align`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfDeviceMemory`] when no free range fits and
    /// [`SimError::InvalidArgument`] for a zero size or non-power-of-two
    /// alignment.
    pub fn alloc(&mut self, heap_index: usize, size: u64, align: u64) -> SimResult<HeapAllocation> {
        if size == 0 {
            return Err(SimError::invalid("zero-sized allocation"));
        }
        if align == 0 || !align.is_power_of_two() {
            return Err(SimError::invalid(format!(
                "alignment {align} is not a power of two"
            )));
        }
        for i in 0..self.free.len() {
            let (start, len) = self.free[i];
            let aligned = (start + align - 1) & !(align - 1);
            let pad = aligned - start;
            if len >= pad + size {
                // Carve [aligned, aligned+size) out of the range.
                self.free.remove(i);
                if pad > 0 {
                    self.free.insert(i, (start, pad));
                }
                let tail_start = aligned + size;
                let tail_len = len - pad - size;
                if tail_len > 0 {
                    let pos = self.free.partition_point(|&(o, _)| o < tail_start);
                    self.free.insert(pos, (tail_start, tail_len));
                }
                self.used += size;
                return Ok(HeapAllocation {
                    heap: heap_index,
                    offset: aligned,
                    size,
                });
            }
        }
        Err(SimError::OutOfDeviceMemory {
            heap: heap_index,
            requested: size,
            available: self.available(),
        })
    }

    /// Returns a block to the heap, coalescing with neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the block overlaps a range that is already free (a
    /// double-free), since that is a simulator bug, not a model outcome.
    pub fn free(&mut self, allocation: HeapAllocation) {
        let (start, size) = (allocation.offset, allocation.size);
        let pos = self.free.partition_point(|&(o, _)| o < start);
        if let Some(&(next_off, _)) = self.free.get(pos) {
            assert!(start + size <= next_off, "double free at offset {start}");
        }
        if pos > 0 {
            let (prev_off, prev_len) = self.free[pos - 1];
            assert!(
                prev_off + prev_len <= start,
                "double free at offset {start}"
            );
        }
        self.free.insert(pos, (start, size));
        self.used -= size;
        // Coalesce around `pos`.
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            let (_, next_len) = self.free.remove(pos + 1);
            self.free[pos].1 += next_len;
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            let (_, cur_len) = self.free.remove(pos);
            self.free[pos - 1].1 += cur_len;
        }
    }

    /// Number of disjoint free ranges (fragmentation indicator).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }
}

/// A `Sync` shared-mutability cell over a scalar — the cross-thread twin
/// of [`Cell`] used by [`BufferStore::sync_cells`].
///
/// [`SyncCell::get`]/[`SyncCell::set`] are relaxed atomics, mirroring the
/// real-GPU contract for the functional layer: concurrent non-atomic
/// writes to the same location are races, and a kernel declared safe for
/// parallel workgroups either never races or only races same-value
/// writes, for which relaxed ordering is exact. On every supported
/// target these compile to the same plain load/store a [`Cell`] access
/// does; the non-atomic `*_plain` accessors exist so the sequential
/// engine path keeps today's exact codegen.
#[repr(transparent)]
pub struct SyncCell<T: Scalar>(UnsafeCell<T>);

// SAFETY: all cross-thread access goes through relaxed atomic loads and
// stores sized exactly to T (the `get`/`set` below); the non-atomic
// accessors are crate-internal and only used by the engine while it is
// provably single-threaded.
unsafe impl<T: Scalar> Sync for SyncCell<T> {}

impl<T: Scalar> SyncCell<T> {
    /// Relaxed atomic load.
    #[inline]
    pub fn get(&self) -> T {
        let p = self.0.get();
        // SAFETY: `Scalar` is sealed to 1-, 4- and 8-byte plain-old-data
        // types; buffer/arena storage is 8-byte aligned with elements at
        // multiples of their size, so `p` is valid for the matching
        // atomic type, which has T's size and alignment. The size match
        // makes `transmute_copy` exact; other arms are unreachable.
        unsafe {
            match std::mem::size_of::<T>() {
                1 => {
                    let v = (*p.cast::<AtomicU8>()).load(Ordering::Relaxed);
                    std::mem::transmute_copy(&v)
                }
                4 => {
                    let v = (*p.cast::<AtomicU32>()).load(Ordering::Relaxed);
                    std::mem::transmute_copy(&v)
                }
                8 => {
                    let v = (*p.cast::<AtomicU64>()).load(Ordering::Relaxed);
                    std::mem::transmute_copy(&v)
                }
                _ => unreachable!("Scalar is sealed to 1/4/8-byte types"),
            }
        }
    }

    /// Relaxed atomic store.
    #[inline]
    pub fn set(&self, value: T) {
        let p = self.0.get();
        // SAFETY: as in `get`.
        unsafe {
            match std::mem::size_of::<T>() {
                1 => (*p.cast::<AtomicU8>())
                    .store(std::mem::transmute_copy(&value), Ordering::Relaxed),
                4 => (*p.cast::<AtomicU32>())
                    .store(std::mem::transmute_copy(&value), Ordering::Relaxed),
                8 => (*p.cast::<AtomicU64>())
                    .store(std::mem::transmute_copy(&value), Ordering::Relaxed),
                _ => unreachable!("Scalar is sealed to 1/4/8-byte types"),
            }
        }
    }

    /// Non-atomic load for the single-threaded engine path.
    ///
    /// Callers must guarantee no thread is concurrently writing the cell.
    #[inline]
    pub(crate) fn get_plain(&self) -> T {
        // SAFETY: single-threaded access guaranteed by the engine.
        unsafe { *self.0.get() }
    }

    /// Non-atomic store for the single-threaded engine path.
    #[inline]
    pub(crate) fn set_plain(&self, value: T) {
        // SAFETY: single-threaded access guaranteed by the engine.
        unsafe { *self.0.get() = value }
    }
}

impl<T: Scalar + fmt::Debug> fmt::Debug for SyncCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SyncCell").field(&self.get()).finish()
    }
}

/// One 8-byte word of buffer storage. The `UnsafeCell` is what makes
/// deriving `Cell`/[`SyncCell`] views from a shared reference legal
/// under Rust's aliasing rules (plain `Vec<u64>` storage would make
/// those views undefined behaviour).
#[repr(transparent)]
struct StoreWord(UnsafeCell<u64>);

// SAFETY: cross-thread access to buffer contents only ever happens
// through `SyncCell` views, whose loads/stores are atomic; everything
// else (byte views, digests) runs while the engine is single-threaded.
unsafe impl Sync for StoreWord {}

impl StoreWord {
    /// Plain read for single-threaded inspection paths (digest, Debug).
    fn get(&self) -> u64 {
        // SAFETY: callers hold `&self` outside any parallel dispatch.
        unsafe { *self.0.get() }
    }
}

impl fmt::Debug for StoreWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.get())
    }
}

/// Storage of one buffer, 8-byte aligned.
#[derive(Debug)]
pub struct BufferStore {
    /// 8-byte-aligned backing storage; `len_bytes` may be smaller than
    /// `words.len() * 8`.
    words: Vec<StoreWord>,
    len_bytes: u64,
    device_addr: u64,
}

impl BufferStore {
    fn new(len_bytes: u64, device_addr: u64) -> Self {
        let words = (0..len_bytes.div_ceil(8))
            .map(|_| StoreWord(UnsafeCell::new(0)))
            .collect();
        BufferStore {
            words,
            len_bytes,
            device_addr,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len_bytes
    }

    /// `true` for a zero-length buffer (never constructed by the pool).
    pub fn is_empty(&self) -> bool {
        self.len_bytes == 0
    }

    /// Device virtual address of byte 0 (used for coalescing and caching).
    pub fn device_addr(&self) -> u64 {
        self.device_addr
    }

    /// Read-only byte view.
    pub fn bytes(&self) -> &[u8] {
        let ptr = self.words.as_ptr() as *const u8;
        // SAFETY: `words` owns at least `len_bytes` initialized bytes
        // (StoreWord is repr(transparent) over u64), valid to
        // reinterpret as bytes. Callers hold `&self` outside any
        // executing dispatch, so nothing mutates through cell views
        // while the slice lives.
        unsafe { std::slice::from_raw_parts(ptr, self.len_bytes as usize) }
    }

    /// Mutable byte view.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        let ptr = self.words.as_mut_ptr() as *mut u8;
        // SAFETY: as in `bytes`, plus we hold `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(ptr, self.len_bytes as usize) }
    }

    /// Shared-mutability cell view over the whole buffer as elements of `T`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MisalignedView`] if the buffer length is not a
    /// multiple of `size_of::<T>()`.
    pub fn cells<T: Scalar>(&self) -> SimResult<&[Cell<T>]> {
        let elem = std::mem::size_of::<T>() as u64;
        if !self.len_bytes.is_multiple_of(elem) {
            return Err(SimError::MisalignedView {
                len: self.len_bytes,
                elem_size: elem,
            });
        }
        let n = (self.len_bytes / elem) as usize;
        let ptr = self.words.as_ptr() as *const Cell<T>;
        // SAFETY: storage is 8-byte aligned (T is at most 8 bytes, power of
        // two, per the sealed Scalar trait), covers >= n elements, and the
        // backing words are `UnsafeCell`s, so reinterpreting them as the
        // repr(transparent) `Cell<T>` keeps interior mutability legal.
        Ok(unsafe { std::slice::from_raw_parts(ptr, n) })
    }

    /// Like [`BufferStore::cells`], but the cells are [`Sync`] so a
    /// parallel dispatch can share the view across worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MisalignedView`] if the buffer length is not a
    /// multiple of `size_of::<T>()`.
    pub fn sync_cells<T: Scalar>(&self) -> SimResult<&[SyncCell<T>]> {
        let elem = std::mem::size_of::<T>() as u64;
        if !self.len_bytes.is_multiple_of(elem) {
            return Err(SimError::MisalignedView {
                len: self.len_bytes,
                elem_size: elem,
            });
        }
        let n = (self.len_bytes / elem) as usize;
        let ptr = self.words.as_ptr() as *const SyncCell<T>;
        // SAFETY: as in `cells` — `SyncCell<T>` is repr(transparent) over
        // `UnsafeCell<T>`, storage is `UnsafeCell`-backed, 8-byte aligned
        // and covers >= n elements; cross-thread access goes through the
        // cell's relaxed atomics.
        Ok(unsafe { std::slice::from_raw_parts(ptr, n) })
    }

    /// Copies a typed slice into the buffer starting at byte 0.
    ///
    /// # Panics
    ///
    /// Panics if `data` is longer than the buffer.
    pub fn write_slice<T: Scalar>(&mut self, data: &[T]) {
        let bytes = scalar_bytes(data);
        self.bytes_mut()[..bytes.len()].copy_from_slice(bytes);
    }

    /// Reads the whole buffer as a typed vector.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MisalignedView`] on a size mismatch.
    pub fn read_vec<T: Scalar>(&self) -> SimResult<Vec<T>> {
        Ok(self.cells::<T>()?.iter().map(Cell::get).collect())
    }
}

/// Marker for plain-old-data element types allowed in buffer views.
///
/// This trait is sealed: exactly the scalar types a SPIR-V storage buffer
/// in these benchmarks contains.
pub trait Scalar: Copy + private::Sealed + 'static {}

impl Scalar for f32 {}
impl Scalar for u32 {}
impl Scalar for i32 {}
impl Scalar for u64 {}
impl Scalar for f64 {}
impl Scalar for u8 {}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for u32 {}
    impl Sealed for i32 {}
    impl Sealed for u64 {}
    impl Sealed for f64 {}
    impl Sealed for u8 {}
}

fn scalar_bytes<T: Scalar>(data: &[T]) -> &[u8] {
    // SAFETY: Scalar types are plain-old-data with no padding.
    unsafe { std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data)) }
}

/// All buffers of one device plus its heap states.
#[derive(Debug)]
pub struct MemoryPool {
    heaps: Vec<HeapState>,
    buffers: Vec<Option<BufferStore>>,
    /// Monotonically increasing device address cursor; buffers never share
    /// cache lines, which keeps the cache model honest.
    next_addr: u64,
}

/// Device address stride between consecutive buffers' starting addresses
/// (beyond their size), keeping them on distinct DRAM rows.
const ADDR_GUARD: u64 = 4096;

/// First device address handed out by a fresh pool.
const INITIAL_DEVICE_ADDR: u64 = 0x1000_0000;

impl MemoryPool {
    /// Creates a pool with the given heaps.
    pub fn new(heaps: &[HeapProfile]) -> Self {
        MemoryPool {
            heaps: heaps.iter().map(|h| HeapState::new(*h)).collect(),
            buffers: Vec::new(),
            next_addr: INITIAL_DEVICE_ADDR,
        }
    }

    /// Heap states (read-only).
    pub fn heaps(&self) -> &[HeapState] {
        &self.heaps
    }

    /// Destroys every buffer and frees every heap, restoring the pool to
    /// its freshly-created state — same buffer-id sequence, same device
    /// addresses, same content digest as a brand-new pool.
    pub fn reset(&mut self) {
        for heap in &mut self.heaps {
            heap.reset();
        }
        self.buffers.clear();
        self.next_addr = INITIAL_DEVICE_ADDR;
    }

    /// Allocates backing storage on `heap` and creates a buffer of `size`
    /// bytes there.
    ///
    /// # Errors
    ///
    /// Propagates allocator failures ([`SimError::OutOfDeviceMemory`],
    /// [`SimError::InvalidArgument`]).
    pub fn create_buffer(
        &mut self,
        heap: usize,
        size: u64,
    ) -> SimResult<(BufferId, HeapAllocation)> {
        let allocation = self.alloc_raw(heap, size, 256)?;
        match self.create_store(size) {
            Ok(id) => Ok((id, allocation)),
            Err(e) => {
                self.free_raw(allocation);
                Err(e)
            }
        }
    }

    /// Destroys a buffer and returns its heap block.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidBuffer`] for a stale handle.
    pub fn destroy_buffer(&mut self, id: BufferId, allocation: HeapAllocation) -> SimResult<()> {
        let slot = self
            .buffers
            .get_mut(id.0 as usize)
            .ok_or(SimError::InvalidBuffer { id: id.0 })?;
        if slot.take().is_none() {
            return Err(SimError::InvalidBuffer { id: id.0 });
        }
        self.heaps[allocation.heap].free(allocation);
        Ok(())
    }

    /// Reserves a raw block on `heap` without creating a buffer — the
    /// `vkAllocateMemory` half of Vulkan's two-phase allocation.
    ///
    /// # Errors
    ///
    /// As [`HeapState::alloc`].
    pub fn alloc_raw(&mut self, heap: usize, size: u64, align: u64) -> SimResult<HeapAllocation> {
        let state = self
            .heaps
            .get_mut(heap)
            .ok_or_else(|| SimError::invalid(format!("heap index {heap} out of range")))?;
        state.alloc(heap, size, align)
    }

    /// Returns a raw block to its heap (the `vkFreeMemory` half).
    ///
    /// # Panics
    ///
    /// Panics on double-free, as [`HeapState::free`].
    pub fn free_raw(&mut self, allocation: HeapAllocation) {
        self.heaps[allocation.heap].free(allocation);
    }

    /// Creates buffer storage *without* heap accounting — used when the
    /// caller manages heap blocks itself via [`MemoryPool::alloc_raw`]
    /// (the `vkBindBufferMemory` half).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidArgument`] for a zero size.
    pub fn create_store(&mut self, size: u64) -> SimResult<BufferId> {
        if size == 0 {
            return Err(SimError::invalid("zero-sized buffer"));
        }
        let addr = self.next_addr;
        self.next_addr += size.div_ceil(ADDR_GUARD) * ADDR_GUARD + ADDR_GUARD;
        let store = BufferStore::new(size, addr);
        let id = if let Some(slot) = self.buffers.iter().position(Option::is_none) {
            self.buffers[slot] = Some(store);
            BufferId(slot as u32)
        } else {
            self.buffers.push(Some(store));
            BufferId((self.buffers.len() - 1) as u32)
        };
        Ok(id)
    }

    /// Destroys storage created with [`MemoryPool::create_store`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidBuffer`] for a stale handle.
    pub fn destroy_store(&mut self, id: BufferId) -> SimResult<()> {
        let slot = self
            .buffers
            .get_mut(id.0 as usize)
            .ok_or(SimError::InvalidBuffer { id: id.0 })?;
        if slot.take().is_none() {
            return Err(SimError::InvalidBuffer { id: id.0 });
        }
        Ok(())
    }

    /// Shared access to a live buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidBuffer`] for a stale handle.
    pub fn buffer(&self, id: BufferId) -> SimResult<&BufferStore> {
        self.buffers
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(SimError::InvalidBuffer { id: id.0 })
    }

    /// Exclusive access to a live buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidBuffer`] for a stale handle.
    pub fn buffer_mut(&mut self, id: BufferId) -> SimResult<&mut BufferStore> {
        self.buffers
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(SimError::InvalidBuffer { id: id.0 })
    }

    /// Number of live buffers.
    pub fn live_buffers(&self) -> usize {
        self.buffers.iter().filter(|b| b.is_some()).count()
    }

    /// FNV-1a digest of every live buffer's identity and contents — the
    /// bit-exact functional state of device memory, used by determinism
    /// tests to compare runs at different worker-thread counts.
    pub fn content_digest(&self) -> u64 {
        let mut h = fnv1a_init();
        for (i, slot) in self.buffers.iter().enumerate() {
            let Some(store) = slot else { continue };
            fnv1a(&mut h, i as u64);
            fnv1a(&mut h, store.len_bytes);
            for w in &store.words {
                fnv1a(&mut h, w.get());
            }
        }
        h
    }
}

/// Memory-system state threaded through traced groups (owned by the
/// engine, persistent across dispatches so caches stay warm).
///
/// The entry point is `MemSystem::access_sector_runs`: the hierarchy
/// consumes run-length-encoded sector streams — a coalesced warp access
/// is one L2 probe call ([`CacheSim::access_run`]) whose miss runs feed
/// the row tracker in batches ([`RowTracker::observe_run`]) — while
/// remaining access-for-access identical to probing every sector
/// individually.
pub struct MemSystem {
    pub(crate) l2: CacheSim,
    pub(crate) rows: RowTracker,
    pub(crate) sector_bytes: u64,
    pub(crate) shared_banks: u32,
    /// Unified-memory paging state; `None` under explicit-copy mode
    /// (the default), keeping the hot path branch-cheap.
    pub(crate) uvm: Option<crate::uvm::UvmState>,
    /// Reusable scratch for per-run L2 miss output.
    miss_scratch: Vec<SectorRun>,
    /// When enabled, every run consumed by the hierarchy is also
    /// appended here — the observability hook determinism suites use to
    /// compare the sequential Direct stream against the parallel
    /// record/replay stream.
    audit: Option<Vec<SectorRun>>,
}

impl MemSystem {
    /// Builds the memory system for a device's memory profile.
    pub fn new(mem: &crate::profile::MemoryProfile, shared_banks: u32) -> Self {
        MemSystem {
            l2: CacheSim::new(mem.l2_bytes, mem.l2_ways, mem.sector_bytes),
            rows: RowTracker::new(mem.row_bytes),
            sector_bytes: mem.sector_bytes,
            shared_banks,
            uvm: None,
            miss_scratch: Vec::new(),
            audit: None,
        }
    }

    /// Enables (or disables) the unified-memory model. Residency starts
    /// cold; the budget is resolved by the engine before each dispatch.
    pub(crate) fn set_uvm(&mut self, profile: Option<crate::uvm::UvmProfile>) {
        self.uvm = profile.map(crate::uvm::UvmState::new);
    }

    /// The L2 model (exposed for inspection in tests and reports).
    pub fn l2(&self) -> &CacheSim {
        &self.l2
    }

    /// Flushes the caches and row state back to cold, keeping the
    /// allocations — the memory system looks exactly as freshly built.
    /// Any captured audit stream is dropped (the capture toggle stays).
    pub fn reset(&mut self) {
        self.l2.flush();
        self.rows.reset();
        if let Some(uvm) = &mut self.uvm {
            uvm.reset();
        }
        if let Some(audit) = &mut self.audit {
            audit.clear();
        }
    }

    /// Starts (`true`) or stops (`false`) capturing the consumed run
    /// stream for [`MemSystem::take_audit`].
    pub fn set_audit(&mut self, on: bool) {
        self.audit = on.then(Vec::new);
    }

    /// Takes the runs consumed since auditing was enabled (or last
    /// taken). Empty when auditing is off.
    pub fn take_audit(&mut self) -> Vec<SectorRun> {
        self.audit.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Feeds a run-length-encoded sector stream through the L2 and (for
    /// the misses) the DRAM row tracker, accumulating into `stats`.
    ///
    /// Equivalent, access for access, to probing each expanded sector in
    /// sequence — run segmentation is encoding only and never changes the
    /// model state (pinned by the fuzz-equivalence suite).
    pub(crate) fn access_sector_runs(&mut self, runs: &[SectorRun], stats: &mut TrafficStats) {
        if let Some(audit) = &mut self.audit {
            audit.extend_from_slice(runs);
        }
        let MemSystem {
            l2,
            rows,
            sector_bytes,
            uvm,
            miss_scratch,
            ..
        } = self;
        for run in runs {
            // Demand-page the run's pages before the L2 sees the access
            // — the fault is serviced before the load that caused it.
            // Interleaving per run keeps the row-tracker evolution a
            // pure function of the run sequence, which the sequential
            // path and the parallel replay produce identically.
            if let Some(uvm) = uvm.as_mut() {
                uvm.touch_run(run, *sector_bytes, rows, stats);
            }
            stats.l2_hit_sectors += l2.access_run(run.first, run.len, miss_scratch);
            for miss in miss_scratch.iter() {
                stats.dram.sectors += miss.len;
                stats.dram.row_misses += rows.observe_run(miss.first, miss.len, *sector_bytes);
            }
            miss_scratch.clear();
        }
    }
}

impl fmt::Debug for MemSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemSystem")
            .field("l2_stats", &self.l2.stats())
            .finish_non_exhaustive()
    }
}

pub(crate) fn fnv1a_init() -> u64 {
    0xcbf2_9ce4_8422_2325
}

pub(crate) fn fnv1a(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap(size: u64) -> HeapProfile {
        HeapProfile {
            size,
            device_local: true,
            host_visible: false,
        }
    }

    #[test]
    fn alloc_free_roundtrip_restores_capacity() {
        let mut h = HeapState::new(heap(1024));
        let a = h.alloc(0, 100, 1).unwrap();
        let b = h.alloc(0, 200, 1).unwrap();
        assert_eq!(h.used(), 300);
        h.free(a);
        h.free(b);
        assert_eq!(h.used(), 0);
        assert_eq!(h.fragments(), 1);
    }

    #[test]
    fn alloc_respects_alignment() {
        let mut h = HeapState::new(heap(1024));
        let _pad = h.alloc(0, 3, 1).unwrap();
        let a = h.alloc(0, 64, 64).unwrap();
        assert_eq!(a.offset % 64, 0);
    }

    #[test]
    fn out_of_memory_reports_available() {
        let mut h = HeapState::new(heap(128));
        let _a = h.alloc(0, 100, 1).unwrap();
        let err = h.alloc(0, 64, 1).unwrap_err();
        match err {
            SimError::OutOfDeviceMemory { available, .. } => assert_eq!(available, 28),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn zero_size_and_bad_alignment_rejected() {
        let mut h = HeapState::new(heap(128));
        assert!(h.alloc(0, 0, 1).is_err());
        assert!(h.alloc(0, 16, 3).is_err());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut h = HeapState::new(heap(128));
        let a = h.alloc(0, 32, 1).unwrap();
        h.free(a);
        h.free(a);
    }

    #[test]
    fn buffer_store_typed_roundtrip() {
        let mut pool = MemoryPool::new(&[heap(1 << 20)]);
        let (id, _) = pool.create_buffer(0, 16).unwrap();
        pool.buffer_mut(id)
            .unwrap()
            .write_slice(&[1.0f32, 2.0, 3.0, 4.0]);
        let back: Vec<f32> = pool.buffer(id).unwrap().read_vec().unwrap();
        assert_eq!(back, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn cells_alias_safely() {
        let mut pool = MemoryPool::new(&[heap(1 << 20)]);
        let (id, _) = pool.create_buffer(0, 8).unwrap();
        let store = pool.buffer(id).unwrap();
        let a = store.cells::<u32>().unwrap();
        let b = store.cells::<u32>().unwrap();
        a[0].set(7);
        assert_eq!(b[0].get(), 7);
        b[1].set(9);
        assert_eq!(a[1].get(), 9);
    }

    #[test]
    fn misaligned_view_rejected() {
        let mut pool = MemoryPool::new(&[heap(1 << 20)]);
        let (id, _) = pool.create_buffer(0, 6).unwrap();
        assert!(matches!(
            pool.buffer(id).unwrap().cells::<f32>(),
            Err(SimError::MisalignedView { .. })
        ));
    }

    #[test]
    fn destroy_then_access_is_invalid() {
        let mut pool = MemoryPool::new(&[heap(1 << 20)]);
        let (id, alloc) = pool.create_buffer(0, 64).unwrap();
        pool.destroy_buffer(id, alloc).unwrap();
        assert!(matches!(
            pool.buffer(id),
            Err(SimError::InvalidBuffer { .. })
        ));
        assert!(pool.destroy_buffer(id, alloc).is_err());
        assert_eq!(pool.live_buffers(), 0);
    }

    #[test]
    fn device_addresses_are_disjoint() {
        let mut pool = MemoryPool::new(&[heap(1 << 20)]);
        let (a, _) = pool.create_buffer(0, 1000).unwrap();
        let (b, _) = pool.create_buffer(0, 1000).unwrap();
        let (sa, sb) = (pool.buffer(a).unwrap(), pool.buffer(b).unwrap());
        assert!(sa.device_addr() + sa.len() <= sb.device_addr());
    }

    #[test]
    fn slot_reuse_after_destroy() {
        let mut pool = MemoryPool::new(&[heap(1 << 20)]);
        let (a, alloc) = pool.create_buffer(0, 64).unwrap();
        pool.destroy_buffer(a, alloc).unwrap();
        let (b, _) = pool.create_buffer(0, 64).unwrap();
        assert_eq!(a.raw(), b.raw(), "slot should be reused");
    }
}
