//! Logical device and its shared simulated state.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use vcb_sim::calls::CallCounter;
use vcb_sim::engine::Gpu;
use vcb_sim::profile::{DeviceProfile, DriverProfile, QueueCaps};
use vcb_sim::time::{SimDuration, SimInstant};
use vcb_sim::timeline::{CostKind, TimingBreakdown};
use vcb_sim::{Api, KernelRegistry, TraceMode};

use crate::error::{VkError, VkResult};
use crate::instance::PhysicalDevice;
use crate::queue::Queue;

/// Requested queues for one family (`VkDeviceQueueCreateInfo`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceQueueCreateInfo {
    /// Queue family index.
    pub queue_family_index: usize,
    /// How many queues of that family to create.
    pub queue_count: u32,
}

/// Parameters for [`Device::new`] (`VkDeviceCreateInfo`).
#[derive(Debug, Clone, Default)]
pub struct DeviceCreateInfo {
    /// Queues to create.
    pub queue_create_infos: Vec<DeviceQueueCreateInfo>,
}

pub(crate) struct DeviceShared {
    pub(crate) gpu: Gpu,
    pub(crate) driver: DriverProfile,
    pub(crate) registry: Arc<KernelRegistry>,
    pub(crate) breakdown: TimingBreakdown,
    pub(crate) host_now: SimInstant,
    /// `queue_busy[family][index]`: completion instant of that queue's
    /// last submitted work.
    pub(crate) queue_busy: Vec<Vec<SimInstant>>,
    pub(crate) calls: CallCounter,
    pub(crate) next_object_id: u64,
}

impl DeviceShared {
    /// Records an API call and charges its host-side cost.
    pub(crate) fn api_call(&mut self, name: &'static str, cost: SimDuration) {
        self.calls.record(name);
        self.host_now += cost;
        self.breakdown.charge(CostKind::HostApi, cost);
    }

    /// Charges host time under an explicit category.
    pub(crate) fn charge_host(&mut self, kind: CostKind, cost: SimDuration) {
        self.host_now += cost;
        self.breakdown.charge(kind, cost);
    }

    pub(crate) fn fresh_id(&mut self) -> u64 {
        self.next_object_id += 1;
        self.next_object_id
    }

    pub(crate) fn queue_caps(&self, family: usize) -> QueueCaps {
        self.gpu.profile().queue_families[family].caps
    }
}

impl fmt::Debug for DeviceShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceShared")
            .field("device", &self.gpu.profile().name)
            .field("host_now", &self.host_now)
            .finish_non_exhaustive()
    }
}

/// A logical device (`VkDevice`).
///
/// Cloning is cheap and shares the underlying simulated device, like
/// copying a `VkDevice` handle.
#[derive(Clone)]
pub struct Device {
    pub(crate) shared: Rc<RefCell<DeviceShared>>,
}

impl Device {
    /// `vkCreateDevice`.
    ///
    /// # Errors
    ///
    /// Validation errors for out-of-range queue families or queue counts.
    pub fn new(physical: &PhysicalDevice, create_info: &DeviceCreateInfo) -> VkResult<Device> {
        let profile: DeviceProfile = physical.profile().clone();
        let driver = profile
            .driver(Api::Vulkan)
            .expect("instance creation verified Vulkan support")
            .clone();
        if create_info.queue_create_infos.is_empty() {
            return Err(VkError::validation(
                "vkCreateDevice",
                "at least one queue must be requested",
            ));
        }
        for q in &create_info.queue_create_infos {
            let family = profile
                .queue_families
                .get(q.queue_family_index)
                .ok_or_else(|| {
                    VkError::validation(
                        "vkCreateDevice",
                        format!("queue family {} out of range", q.queue_family_index),
                    )
                })?;
            if q.queue_count == 0 || q.queue_count > family.count {
                return Err(VkError::validation(
                    "vkCreateDevice",
                    format!(
                        "requested {} queues from family {} (capacity {})",
                        q.queue_count, q.queue_family_index, family.count
                    ),
                ));
            }
        }
        let queue_busy = profile
            .queue_families
            .iter()
            .map(|f| vec![SimInstant::EPOCH; f.count as usize])
            .collect();
        let mut shared = DeviceShared {
            gpu: Gpu::new(profile),
            driver,
            registry: Arc::clone(&physical.instance.registry),
            breakdown: TimingBreakdown::new(),
            host_now: SimInstant::EPOCH,
            queue_busy,
            calls: CallCounter::new(),
            next_object_id: 0,
        };
        shared.api_call("vkCreateDevice", SimDuration::from_micros(180.0));
        Ok(Device {
            shared: Rc::new(RefCell::new(shared)),
        })
    }

    /// `vkGetDeviceQueue`.
    ///
    /// # Errors
    ///
    /// Validation error if the family or index is out of range.
    pub fn get_queue(&self, queue_family_index: usize, queue_index: u32) -> VkResult<Queue> {
        let mut shared = self.shared.borrow_mut();
        shared.api_call("vkGetDeviceQueue", SimDuration::from_nanos(200.0));
        let families = &shared.queue_busy;
        let family = families.get(queue_family_index).ok_or_else(|| {
            VkError::validation(
                "vkGetDeviceQueue",
                format!("queue family {queue_family_index} out of range"),
            )
        })?;
        if queue_index as usize >= family.len() {
            return Err(VkError::validation(
                "vkGetDeviceQueue",
                format!("queue index {queue_index} out of range for family {queue_family_index}"),
            ));
        }
        drop(shared);
        Ok(Queue {
            device: self.clone(),
            family: queue_family_index,
            index: queue_index as usize,
        })
    }

    /// `vkDeviceWaitIdle`: blocks (in simulated time) until all queues
    /// drain.
    pub fn wait_idle(&self) {
        let mut shared = self.shared.borrow_mut();
        shared.calls.record("vkDeviceWaitIdle");
        let latest = shared
            .queue_busy
            .iter()
            .flatten()
            .copied()
            .fold(SimInstant::EPOCH, SimInstant::max);
        if latest > shared.host_now {
            // The host actually blocked: pay the wake-up latency.
            shared.host_now = latest;
            let wakeup = shared.driver.sync_wakeup;
            shared.charge_host(CostKind::HostApi, wakeup);
        }
    }

    /// Simulated host-side "now" for this device's application.
    pub fn now(&self) -> SimInstant {
        self.shared.borrow().host_now
    }

    /// Cost breakdown accumulated so far.
    pub fn breakdown(&self) -> TimingBreakdown {
        self.shared.borrow().breakdown
    }

    /// API call counts accumulated so far.
    pub fn call_counts(&self) -> CallCounter {
        self.shared.borrow().calls.snapshot()
    }

    /// The device profile.
    pub fn profile(&self) -> DeviceProfile {
        self.shared.borrow().gpu.profile().clone()
    }

    /// Sets the workgroup-tracing policy of the underlying simulator.
    pub fn set_trace_mode(&self, mode: TraceMode) {
        self.shared.borrow_mut().gpu.set_trace_mode(mode);
    }

    /// Sets the simulator's worker-thread count for intra-dispatch
    /// parallelism (order-independent kernels only; results stay
    /// bit-identical).
    pub fn set_worker_threads(&self, threads: usize) {
        self.shared.borrow_mut().gpu.set_worker_threads(threads);
    }

    /// Disables (or re-enables) the engine's clamp of worker threads to
    /// the machine's cores — see `Gpu::set_worker_clamp`.
    pub fn set_worker_clamp(&self, clamp: bool) {
        self.shared.borrow_mut().gpu.set_worker_clamp(clamp);
    }

    /// Digest of the simulated device's functional state (buffer
    /// contents + cumulative traffic) — the determinism oracle.
    pub fn sim_fingerprint(&self) -> u64 {
        self.shared.borrow().gpu.fingerprint()
    }

    /// Restores the simulated device to its freshly-created state (see
    /// `Gpu::reset_to_cold`) so an environment cache can reuse this
    /// logical device across benchmark cells. Host-side counters (API
    /// calls, cost breakdown, host clock) keep accumulating — per-cell
    /// measurements are deltas, so they are unaffected.
    pub fn reset_to_cold(&self) {
        self.shared.borrow_mut().gpu.reset_to_cold();
    }

    /// Kernels executed so far on this device.
    pub fn kernels_launched(&self) -> u64 {
        self.shared.borrow().gpu.kernels_launched()
    }
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shared = self.shared.borrow();
        f.debug_struct("Device")
            .field("name", &shared.gpu.profile().name)
            .field("host_now", &shared.host_now)
            .finish()
    }
}
