//! hotspot — thermal simulation on a structured grid (Table I:
//! Structured Grid / Physics).
//!
//! Estimates processor temperature from a floorplan power map by
//! iterating a 5-point stencil. Each simulation step is one kernel
//! invocation on ping-pong temperature buffers; steps are data-dependent,
//! so the launch-based APIs pay a host round-trip per step while the
//! Vulkan port records every step into one command buffer (§IV-C) with
//! alternating descriptor sets.

use std::sync::Arc;

use vcb_core::run::{RunOutcome, SizeSpec};
use vcb_core::suite::{self, BenchmarkMeta};
use vcb_core::workload::{RunOpts, Workload};
use vcb_cuda::{KernelArg, Stream};
use vcb_opencl::{ClArg, Kernel as ClKernel, MemFlags, Program};
use vcb_sim::exec::{GroupCtx, KernelInfo};
use vcb_sim::profile::{DeviceClass, DeviceProfile};
use vcb_sim::{Api, KernelRegistry, SimResult};
use vcb_vulkan::util as vku;
use vcb_vulkan::{Access, MemoryBarrier, PipelineStage, SubmitInfo, WriteDescriptorSet};

use crate::common::{
    approx_eq_f32, cl_env, cl_failure, cuda_env, cuda_failure, measure_cl, measure_cuda,
    measure_vk, scaled_iterations, vk_env, vk_failure, vk_kernel, BodyOutcome,
};
use crate::data;

/// Workload name.
pub const NAME: &str = "hotspot";
/// Kernel entry point.
pub const KERNEL: &str = "hotspot_step";
/// Tile edge (workgroup is `TILE x TILE`).
pub const TILE: u32 = 16;

/// Physical constants of the Rodinia model (values from hotspot's
/// `compute_tran_temp`).
pub mod physics {
    /// Capacitance scaling factor.
    pub const CAP: f32 = 0.5;
    /// X-direction thermal resistance.
    pub const RX: f32 = 1.0;
    /// Y-direction thermal resistance.
    pub const RY: f32 = 1.0;
    /// Z-direction (to ambient) thermal resistance.
    pub const RZ: f32 = 4.0;
    /// Ambient temperature.
    pub const AMB: f32 = 80.0;
    /// Time step.
    pub const STEP: f32 = 0.4;
}

/// The GLSL compute shader the SPIR-V is built from.
pub const GLSL_SOURCE: &str = r#"
#version 450
layout(local_size_x = 16, local_size_y = 16) in;
layout(set = 0, binding = 0) readonly buffer Power { float power[]; };
layout(set = 0, binding = 1) readonly buffer TempSrc { float temp_src[]; };
layout(set = 0, binding = 2) buffer TempDst { float temp_dst[]; };
layout(push_constant) uniform Params { uint n; };

const float CAP = 0.5, RX = 1.0, RY = 1.0, RZ = 4.0;
const float AMB = 80.0, STEP = 0.4;

void main() {
    uint j = gl_GlobalInvocationID.x;
    uint i = gl_GlobalInvocationID.y;
    if (i >= n || j >= n) return;
    uint idx = i * n + j;
    float t  = temp_src[idx];
    float tn = temp_src[(i == 0u     ? i : i - 1u) * n + j];
    float ts = temp_src[(i == n - 1u ? i : i + 1u) * n + j];
    float tw = temp_src[i * n + (j == 0u     ? j : j - 1u)];
    float te = temp_src[i * n + (j == n - 1u ? j : j + 1u)];
    float delta = (STEP / CAP) * (power[idx]
        + (ts + tn - 2.0 * t) / RY
        + (te + tw - 2.0 * t) / RX
        + (AMB - t) / RZ);
    temp_dst[idx] = t + delta;
}
"#;

/// The OpenCL C twin of the kernel.
pub const CL_SOURCE: &str = r#"
__kernel void hotspot_step(__global const float* power,
                           __global const float* temp_src,
                           __global float* temp_dst,
                           uint n) {
    uint j = get_global_id(0);
    uint i = get_global_id(1);
    if (i >= n || j >= n) return;
    uint idx = i * n + j;
    float t = temp_src[idx];
    float tn = temp_src[(i == 0     ? i : i - 1) * n + j];
    float ts = temp_src[(i == n - 1 ? i : i + 1) * n + j];
    float tw = temp_src[i * n + (j == 0     ? j : j - 1)];
    float te = temp_src[i * n + (j == n - 1 ? j : j + 1)];
    float delta = (STEP / CAP) * (power[idx]
        + (ts + tn - 2.0f * t) / RY
        + (te + tw - 2.0f * t) / RX
        + (AMB - t) / RZ);
    temp_dst[idx] = t + delta;
}
"#;

/// Registers the kernel body.
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register(registry: &mut KernelRegistry) -> SimResult<()> {
    let info = KernelInfo::new(KERNEL, [TILE, TILE, 1])
        .reads(0, "power")
        .reads(1, "temp_src")
        .writes(2, "temp_dst")
        .push_constants(4)
        .source_bytes(CL_SOURCE.len() as u64)
        .build();
    registry.register(
        info,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let power = ctx.global::<f32>(0)?;
            let src = ctx.global::<f32>(1)?;
            let dst = ctx.global::<f32>(2)?;
            let n = ctx.push_u32(0) as usize;
            ctx.for_lanes(|lane| {
                let j = lane.global_id(0) as usize;
                let i = lane.global_id(1) as usize;
                if i >= n || j >= n {
                    return;
                }
                let idx = i * n + j;
                let t = lane.ld(&src, idx);
                let tn = lane.ld(&src, if i == 0 { idx } else { idx - n });
                let ts = lane.ld(&src, if i == n - 1 { idx } else { idx + n });
                let tw = lane.ld(&src, if j == 0 { idx } else { idx - 1 });
                let te = lane.ld(&src, if j == n - 1 { idx } else { idx + 1 });
                let p = lane.ld(&power, idx);
                let delta = (physics::STEP / physics::CAP)
                    * (p + (ts + tn - 2.0 * t) / physics::RY
                        + (te + tw - 2.0 * t) / physics::RX
                        + (physics::AMB - t) / physics::RZ);
                lane.alu(14);
                lane.st(&dst, idx, t + delta);
            });
            Ok(())
        }),
    )
}

/// Generates initial temperatures and the power map.
pub fn generate(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let temp = data::uniform_f32(n * n, seed, 320.0, 340.0);
    let power = data::uniform_f32(n * n, seed ^ 0x70, 0.0, 0.5);
    (temp, power)
}

/// CPU reference: `iterations` stencil steps.
pub fn reference(temp: &[f32], power: &[f32], n: usize, iterations: u64) -> Vec<f32> {
    let mut src = temp.to_vec();
    let mut dst = vec![0.0f32; n * n];
    for _ in 0..iterations {
        for i in 0..n {
            for j in 0..n {
                let idx = i * n + j;
                let t = src[idx];
                let tn = src[if i == 0 { idx } else { idx - n }];
                let ts = src[if i == n - 1 { idx } else { idx + n }];
                let tw = src[if j == 0 { idx } else { idx - 1 }];
                let te = src[if j == n - 1 { idx } else { idx + 1 }];
                let delta = (physics::STEP / physics::CAP)
                    * (power[idx]
                        + (ts + tn - 2.0 * t) / physics::RY
                        + (te + tw - 2.0 * t) / physics::RX
                        + (physics::AMB - t) / physics::RZ);
                dst[idx] = t + delta;
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

fn grid_groups(n: usize) -> [u32; 3] {
    let g = (n as u32).div_ceil(TILE);
    [g, g, 1]
}

fn run_vulkan(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let iterations = scaled_iterations(size.aux, opts);
    let env = vk_env(profile, registry)?;
    let (temp_host, power_host) = generate(n, opts.seed);
    let expected = opts
        .validate
        .then(|| reference(&temp_host, &power_host, n, iterations));
    measure_vk(NAME, &size.label, &env, |env| {
        let device = &env.device;
        let power = vku::upload_storage_buffer(device, &env.queue, &power_host).map_err(vk_failure)?;
        let ping = vku::upload_storage_buffer(device, &env.queue, &temp_host).map_err(vk_failure)?;
        let pong = vku::create_storage_buffer(device, (n * n * 4) as u64).map_err(vk_failure)?;

        let (set_layout, _pool, set_a) =
            vku::storage_descriptor_set(device, &[&power.buffer, &ping.buffer, &pong.buffer])
                .map_err(vk_failure)?;
        let pool_b = device.create_descriptor_pool(1).map_err(vk_failure)?;
        let set_b = pool_b.allocate_descriptor_set(&set_layout).map_err(vk_failure)?;
        device
            .update_descriptor_sets(&[
                WriteDescriptorSet { dst_set: &set_b, dst_binding: 0, buffer: &power.buffer },
                WriteDescriptorSet { dst_set: &set_b, dst_binding: 1, buffer: &pong.buffer },
                WriteDescriptorSet { dst_set: &set_b, dst_binding: 2, buffer: &ping.buffer },
            ])
            .map_err(vk_failure)?;

        let kernel = vk_kernel(env, registry, KERNEL, &set_layout, 4)?;
        let cmd_pool = device
            .create_command_pool(env.queue.family_index())
            .map_err(vk_failure)?;
        let cmd = cmd_pool.allocate_command_buffer().map_err(vk_failure)?;
        let barrier = MemoryBarrier {
            src_access: Access::SHADER_WRITE,
            dst_access: Access::SHADER_READ,
        };
        cmd.begin().map_err(vk_failure)?;
        cmd.bind_pipeline(&kernel.pipeline).map_err(vk_failure)?;
        let groups = grid_groups(n);
        for i in 0..iterations {
            let set = if i % 2 == 0 { &set_a } else { &set_b };
            cmd.bind_descriptor_sets(&kernel.layout, &[set]).map_err(vk_failure)?;
            cmd.push_constants(&kernel.layout, 0, &(n as u32).to_le_bytes())
                .map_err(vk_failure)?;
            cmd.dispatch(groups[0], groups[1], groups[2]).map_err(vk_failure)?;
            cmd.pipeline_barrier(
                PipelineStage::COMPUTE_SHADER,
                PipelineStage::COMPUTE_SHADER,
                &barrier,
            )
            .map_err(vk_failure)?;
        }
        cmd.end().map_err(vk_failure)?;
        let compute_start = device.now();
        env.queue
            .submit(&[SubmitInfo { command_buffers: &[&cmd] }], None)
            .map_err(vk_failure)?;
        env.queue.wait_idle();
        let compute_time = device.now().duration_since(compute_start);

        let result = if iterations % 2 == 1 { &pong } else { &ping };
        let out: Vec<f32> =
            vku::download_storage_buffer(device, &env.queue, result).map_err(vk_failure)?;
        Ok(BodyOutcome {
            validated: expected.as_ref().is_none_or(|e| approx_eq_f32(&out, e, 1e-3)),
            compute_time,
        })
    })
}

fn run_cuda(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let iterations = scaled_iterations(size.aux, opts);
    let ctx = cuda_env(profile, registry)?;
    let (temp_host, power_host) = generate(n, opts.seed);
    let expected = opts
        .validate
        .then(|| reference(&temp_host, &power_host, n, iterations));
    measure_cuda(NAME, &size.label, &ctx, |ctx| {
        let bytes = (n * n * 4) as u64;
        let power = ctx.malloc(bytes).map_err(cuda_failure)?;
        let mut src = ctx.malloc(bytes).map_err(cuda_failure)?;
        let mut dst = ctx.malloc(bytes).map_err(cuda_failure)?;
        ctx.memcpy_htod(&power, &power_host).map_err(cuda_failure)?;
        ctx.memcpy_htod(&src, &temp_host).map_err(cuda_failure)?;
        let kernel = ctx.get_function(KERNEL).map_err(cuda_failure)?;
        let groups = grid_groups(n);
        let compute_start = ctx.now();
        for _ in 0..iterations {
            ctx.launch_kernel(
                &kernel,
                groups,
                &[
                    KernelArg::Ptr(power),
                    KernelArg::Ptr(src),
                    KernelArg::Ptr(dst),
                    KernelArg::U32(n as u32),
                ],
                Stream::DEFAULT,
            )
            .map_err(cuda_failure)?;
            ctx.device_synchronize();
            std::mem::swap(&mut src, &mut dst);
        }
        let compute_time = ctx.now().duration_since(compute_start);
        let out: Vec<f32> = ctx.memcpy_dtoh(&src).map_err(cuda_failure)?;
        Ok(BodyOutcome {
            validated: expected.as_ref().is_none_or(|e| approx_eq_f32(&out, e, 1e-3)),
            compute_time,
        })
    })
}

fn run_opencl(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let iterations = scaled_iterations(size.aux, opts);
    let env = cl_env(profile, registry)?;
    let (temp_host, power_host) = generate(n, opts.seed);
    let expected = opts
        .validate
        .then(|| reference(&temp_host, &power_host, n, iterations));
    measure_cl(NAME, &size.label, &env, |env| {
        let bytes = (n * n * 4) as u64;
        let power = env
            .context
            .create_buffer(MemFlags::ReadOnly, bytes)
            .map_err(cl_failure)?;
        let mut src = env
            .context
            .create_buffer(MemFlags::ReadWrite, bytes)
            .map_err(cl_failure)?;
        let mut dst = env
            .context
            .create_buffer(MemFlags::ReadWrite, bytes)
            .map_err(cl_failure)?;
        env.queue.enqueue_write_buffer(&power, &power_host).map_err(cl_failure)?;
        env.queue.enqueue_write_buffer(&src, &temp_host).map_err(cl_failure)?;
        let program = Program::create_with_source(&env.context, CL_SOURCE);
        program.build().map_err(cl_failure)?;
        let kernel = ClKernel::new(&program, KERNEL).map_err(cl_failure)?;
        kernel.set_arg(0, ClArg::Buffer(power));
        kernel.set_arg(3, ClArg::U32(n as u32));
        let global = (n as u64).div_ceil(u64::from(TILE)) * u64::from(TILE);
        let compute_start = env.context.now();
        for _ in 0..iterations {
            kernel.set_arg(1, ClArg::Buffer(src));
            kernel.set_arg(2, ClArg::Buffer(dst));
            env.queue
                .enqueue_nd_range_kernel(&kernel, [global, global, 1])
                .map_err(cl_failure)?;
            env.queue.finish();
            std::mem::swap(&mut src, &mut dst);
        }
        let compute_time = env.context.now().duration_since(compute_start);
        let out: Vec<f32> = env.queue.enqueue_read_buffer(&src).map_err(cl_failure)?;
        Ok(BodyOutcome {
            validated: expected.as_ref().is_none_or(|e| approx_eq_f32(&out, e, 1e-3)),
            compute_time,
        })
    })
}

/// The hotspot suite entry.
#[derive(Debug, Clone)]
pub struct Hotspot {
    registry: Arc<KernelRegistry>,
}

impl Hotspot {
    /// Creates the workload against a kernel registry.
    pub fn new(registry: Arc<KernelRegistry>) -> Self {
        Hotspot { registry }
    }
}

impl Workload for Hotspot {
    fn meta(&self) -> BenchmarkMeta {
        *suite::find(NAME).expect("hotspot is in Table I")
    }

    fn sizes(&self, class: DeviceClass) -> Vec<SizeSpec> {
        match class {
            DeviceClass::Desktop => vec![
                SizeSpec::with_aux("512-08", 512, 8),
                SizeSpec::with_aux("512-16", 512, 16),
                SizeSpec::with_aux("512-32", 512, 32),
            ],
            DeviceClass::Mobile => vec![
                SizeSpec::with_aux("128-8", 128, 8),
                SizeSpec::with_aux("128-16", 128, 16),
            ],
        }
    }

    fn run(&self, api: Api, device: &DeviceProfile, size: &SizeSpec, opts: &RunOpts) -> RunOutcome {
        match api {
            Api::Vulkan => run_vulkan(device, &self.registry, size, opts),
            Api::Cuda => run_cuda(device, &self.registry, size, opts),
            Api::OpenCl => run_opencl(device, &self.registry, size, opts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_core::run::speedup;
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        let mut r = KernelRegistry::new();
        register(&mut r).unwrap();
        Arc::new(r)
    }

    #[test]
    fn all_apis_match_reference() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::with_aux("64-4", 64, 4);
        let w = Hotspot::new(Arc::clone(&registry));
        for api in Api::ALL {
            let record = w.run(api, &devices::gtx1050ti(), &size, &opts).unwrap();
            assert!(record.validated, "{api} failed validation");
        }
    }

    #[test]
    fn temperatures_converge_toward_equilibrium() {
        // With zero power the grid must relax toward ambient.
        let n = 16;
        let temp = vec![340.0f32; n * n];
        let power = vec![0.0f32; n * n];
        let after = reference(&temp, &power, n, 50);
        assert!(after[0] < 340.0);
        assert!(after[0] > physics::AMB);
    }

    #[test]
    fn vulkan_wins_and_gains_with_iterations() {
        let registry = registry();
        let opts = RunOpts::default();
        let w = Hotspot::new(Arc::clone(&registry));
        let profile = devices::gtx1050ti();
        let mut speedups = Vec::new();
        for size in w.sizes(DeviceClass::Desktop) {
            let vk = w.run(Api::Vulkan, &profile, &size, &opts).unwrap();
            let cu = w.run(Api::Cuda, &profile, &size, &opts).unwrap();
            speedups.push(speedup(&cu, &vk));
        }
        assert!(speedups[0] > 1.2, "512-08 speedup {}", speedups[0]);
        assert!(
            speedups[2] >= speedups[0] * 0.95,
            "speedup should not shrink with iterations: {speedups:?}"
        );
    }

    #[test]
    fn mobile_sizes_run() {
        let registry = registry();
        let opts = RunOpts::default();
        let w = Hotspot::new(Arc::clone(&registry));
        let size = &w.sizes(DeviceClass::Mobile)[0];
        let cl = w.run(Api::OpenCl, &devices::powervr_g6430(), size, &opts).unwrap();
        assert!(cl.validated);
    }
}
