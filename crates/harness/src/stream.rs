//! Streaming sinks for the matrix executor: progress lines on stderr
//! and incremental CSV files that replace the old post-hoc `write_csv`.
//!
//! [`CellEvent`]s arrive in completion order; the CSV sinks buffer by
//! plan index and flush the ready prefix, so the file grows in plan
//! order while cells are still executing — and ends byte-identical to
//! the old whole-figure render (same row builders, same quoting; see
//! `render::panel_csv_cells` / `render::bandwidth_csv_cells`).

use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::{BufWriter, Write};

use vcb_core::plan::{CellEvent, EventSink};
use vcb_core::report::csv_line;
use vcb_core::run::RunRecord;
use vcb_sim::Api;

use crate::experiments::{CellOut, MatrixCell};
use crate::render;

/// Progress lines on stderr: one line per *executed* cell (cache hits
/// and intra-plan duplicates stay silent, so a fully-warmed stage prints
/// nothing).
#[derive(Debug)]
pub struct Progress {
    done: usize,
    total: usize,
}

impl Progress {
    /// A progress reporter expecting `total` fresh executions (see
    /// `Session::pending_cells`).
    pub fn new(total: usize) -> Progress {
        Progress { done: 0, total }
    }
}

impl EventSink<CellOut> for Progress {
    fn event(&mut self, event: CellEvent<'_, CellOut>) {
        if let CellEvent::Finished {
            spec,
            out,
            cached: false,
            ..
        } = event
        {
            self.done += 1;
            eprintln!(
                "vcb: [{}/{}] {} {}",
                self.done,
                self.total,
                spec,
                out.status()
            );
        }
    }
}

/// Fans one event stream out to two sinks.
pub struct Tee<'a, T>(
    /// First receiver.
    pub &'a mut (dyn EventSink<T> + Send),
    /// Second receiver.
    pub &'a mut (dyn EventSink<T> + Send),
);

impl<T> EventSink<T> for Tee<'_, T> {
    fn event(&mut self, event: CellEvent<'_, T>) {
        self.0.event(event);
        self.1.event(event);
    }
}

impl<T> std::fmt::Debug for Tee<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Tee")
    }
}

/// A line-oriented CSV file that reports `wrote {path}` (or the failure)
/// once finished — the same stderr contract the post-hoc writer had.
#[derive(Debug)]
struct CsvFile {
    path: String,
    writer: Option<BufWriter<File>>,
    error: Option<std::io::Error>,
}

impl CsvFile {
    fn create(path: &str) -> CsvFile {
        let (writer, error) = match File::create(path) {
            Ok(f) => (Some(BufWriter::new(f)), None),
            Err(e) => (None, Some(e)),
        };
        CsvFile {
            path: path.to_owned(),
            writer,
            error,
        }
    }

    fn write_line(&mut self, line: &str) {
        if let Some(w) = &mut self.writer {
            if let Err(e) = w.write_all(line.as_bytes()) {
                self.error = Some(e);
                self.writer = None;
            }
        }
    }

    fn finish(mut self) {
        if let Some(w) = &mut self.writer {
            if let Err(e) = w.flush() {
                self.error = Some(e);
            }
        }
        match self.error {
            None if self.writer.is_some() => eprintln!("wrote {}", self.path),
            Some(e) => eprintln!("failed to write {}: {e}", self.path),
            None => {}
        }
    }
}

/// Incremental CSV for speedup panels. Rows flush in plan order; a
/// header precedes each device's block (one header per panel, as the
/// concatenated per-panel tables had). The speedup column needs the
/// bar's OpenCL baseline, which the plan orders first — so it is
/// resolved at *flush* time, when every earlier-indexed cell (the
/// baseline included) is guaranteed to have arrived, regardless of the
/// completion order worker threads deliver events in.
#[derive(Debug)]
pub struct PanelCsvStream {
    file: Option<CsvFile>,
    /// `None` marks a non-run cell (e.g. a bandwidth sweep in a mixed
    /// plan): it still occupies its index so the flush cursor advances.
    pending: BTreeMap<usize, Option<MatrixCell>>,
    next: usize,
    current_device: Option<String>,
    /// (device, workload, size) → the bar's OpenCL baseline record.
    baselines: HashMap<(String, String, String), RunRecord>,
}

impl PanelCsvStream {
    /// A panel CSV stream writing to `path`; `None` disables the sink.
    pub fn create(path: Option<&str>) -> PanelCsvStream {
        PanelCsvStream {
            file: path.map(CsvFile::create),
            pending: BTreeMap::new(),
            next: 0,
            current_device: None,
            baselines: HashMap::new(),
        }
    }

    /// Flushes the file and reports the `wrote`/failure line.
    pub fn finish(self) {
        if let Some(file) = self.file {
            file.finish();
        }
    }

    fn flush_ready(&mut self) {
        while let Some(slot) = self.pending.remove(&self.next) {
            self.next += 1;
            let Some(cell) = slot else { continue };
            let key = (
                cell.device.clone(),
                cell.workload.clone(),
                cell.size.clone(),
            );
            if cell.api == Api::OpenCl {
                if let Ok(r) = &cell.outcome {
                    self.baselines.insert(key.clone(), r.clone());
                }
            }
            let speedup = match (self.baselines.get(&key), &cell.outcome) {
                (Some(base), Ok(r)) => Some(vcb_core::run::speedup(base, r)),
                _ => None,
            };
            let Some(file) = &mut self.file else { continue };
            if self.current_device.as_deref() != Some(cell.device.as_str()) {
                file.write_line(&csv_line(&render::PANEL_CSV_HEADERS));
                self.current_device = Some(cell.device.clone());
            }
            file.write_line(&csv_line(&render::panel_csv_cells(&cell, speedup)));
        }
    }
}

impl EventSink<CellOut> for PanelCsvStream {
    fn event(&mut self, event: CellEvent<'_, CellOut>) {
        let CellEvent::Finished {
            index, spec, out, ..
        } = event
        else {
            return;
        };
        let cell = out.as_run().map(|outcome| MatrixCell {
            workload: spec.workload.clone(),
            size: spec.size.label.clone(),
            api: spec.api,
            device: spec.device.clone(),
            plan_index: index,
            outcome: outcome.clone(),
        });
        self.pending.insert(index, cell);
        self.flush_ready();
    }
}

/// Incremental CSV for bandwidth sweeps: one header up front, then one
/// row per stride sample of each successful curve, in plan order.
#[derive(Debug)]
pub struct BandwidthCsvStream {
    file: Option<CsvFile>,
    pending: BTreeMap<usize, (String, Api, CellOut)>,
    next: usize,
}

impl BandwidthCsvStream {
    /// A bandwidth CSV stream writing to `path`; `None` disables the
    /// sink.
    pub fn create(path: Option<&str>) -> BandwidthCsvStream {
        let mut file = path.map(CsvFile::create);
        if let Some(f) = &mut file {
            f.write_line(&csv_line(&render::BANDWIDTH_CSV_HEADERS));
        }
        BandwidthCsvStream {
            file,
            pending: BTreeMap::new(),
            next: 0,
        }
    }

    /// Flushes the file and reports the `wrote`/failure line.
    pub fn finish(self) {
        if let Some(file) = self.file {
            file.finish();
        }
    }

    fn flush_ready(&mut self) {
        while let Some((device, api, out)) = self.pending.remove(&self.next) {
            self.next += 1;
            let Some(file) = &mut self.file else { continue };
            if let CellOut::Curve(Ok(samples)) = &out {
                for s in samples {
                    file.write_line(&csv_line(&render::bandwidth_csv_cells(&device, api, s)));
                }
            }
        }
    }
}

impl EventSink<CellOut> for BandwidthCsvStream {
    fn event(&mut self, event: CellEvent<'_, CellOut>) {
        let CellEvent::Finished {
            index, spec, out, ..
        } = event
        else {
            return;
        };
        self.pending
            .insert(index, (spec.device.clone(), spec.api, out.clone()));
        self.flush_ready();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_core::plan::CellSpec;
    use vcb_core::run::{RunFailure, SizeSpec};
    use vcb_core::workload::RunOpts;

    fn spec(workload: &str, label: &str, api: Api, device: &str) -> CellSpec {
        CellSpec {
            workload: workload.into(),
            size: SizeSpec::new(label, 1),
            api,
            device: device.into(),
            opts: RunOpts::default(),
        }
    }

    #[test]
    fn progress_reports_only_fresh_executions() {
        let mut p = Progress::new(2);
        let s = spec("bfs", "4K", Api::Vulkan, "D");
        let out = CellOut::Run(Err(RunFailure::Unsupported));
        p.event(CellEvent::Finished {
            index: 0,
            spec: &s,
            out: &out,
            cached: false,
        });
        p.event(CellEvent::Finished {
            index: 1,
            spec: &s,
            out: &out,
            cached: true,
        });
        assert_eq!(p.done, 1);
    }

    #[test]
    fn speedup_resolves_even_when_subject_finishes_before_baseline() {
        // On a multi-core run a Vulkan cell can complete before its
        // OpenCL baseline (planned one index earlier). The speedup
        // column must still be filled: it is computed at flush time,
        // in plan order, not at event-arrival time.
        use vcb_sim::calls::CallCounter;
        use vcb_sim::time::SimDuration;
        use vcb_sim::timeline::TimingBreakdown;
        let record = |api: Api, kernel_us: f64| {
            CellOut::Run(Ok(vcb_core::run::RunRecord {
                workload: "bfs".into(),
                api,
                device: "D".into(),
                size: "4K".into(),
                kernel_time: SimDuration::from_micros(kernel_us),
                total_time: SimDuration::from_micros(2.0 * kernel_us),
                breakdown: TimingBreakdown::new(),
                calls: CallCounter::new(),
                validated: true,
                fingerprint: 0,
            }))
        };
        let dir = std::env::temp_dir().join("vcb_stream_speedup_test.csv");
        let path = dir.to_str().unwrap().to_owned();
        let mut sink = PanelCsvStream::create(Some(&path));
        let cl = spec("bfs", "4K", Api::OpenCl, "D");
        let vk = spec("bfs", "4K", Api::Vulkan, "D");
        let vk_out = record(Api::Vulkan, 50.0);
        let cl_out = record(Api::OpenCl, 100.0);
        // Subject first, baseline second — reversed completion order.
        sink.event(CellEvent::Finished {
            index: 1,
            spec: &vk,
            out: &vk_out,
            cached: false,
        });
        sink.event(CellEvent::Finished {
            index: 0,
            spec: &cl,
            out: &cl_out,
            cached: false,
        });
        sink.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains(",1.0000,"), "baseline row: {}", lines[1]);
        assert!(lines[2].contains(",2.0000,"), "subject row: {}", lines[2]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn panel_stream_advances_past_non_run_cells() {
        // A mixed plan (bandwidth sweeps + panel cells) must not stall
        // the flush cursor at the first curve cell.
        let dir = std::env::temp_dir().join("vcb_stream_mixed_test.csv");
        let path = dir.to_str().unwrap().to_owned();
        let mut sink = PanelCsvStream::create(Some(&path));
        let curve_spec = spec("stride", "sweep", Api::OpenCl, "D");
        let run_spec = spec("bfs", "4K", Api::OpenCl, "D");
        let curve_out = CellOut::Curve(Err(RunFailure::Unsupported));
        let run_out = CellOut::Run(Err(RunFailure::DriverFailure));
        sink.event(CellEvent::Finished {
            index: 0,
            spec: &curve_spec,
            out: &curve_out,
            cached: false,
        });
        sink.event(CellEvent::Finished {
            index: 1,
            spec: &run_spec,
            out: &run_out,
            cached: false,
        });
        assert_eq!(sink.next, 2, "curve cell must not stall the cursor");
        sink.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().count() == 2 && text.contains("bfs"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn panel_stream_buffers_out_of_order_events() {
        // Events for indexes 1 then 0 must still produce rows 0, 1.
        let dir = std::env::temp_dir().join("vcb_stream_test.csv");
        let path = dir.to_str().unwrap().to_owned();
        let mut sink = PanelCsvStream::create(Some(&path));
        let cl = spec("bfs", "4K", Api::OpenCl, "D");
        let vk = spec("bfs", "4K", Api::Vulkan, "D");
        let fail = CellOut::Run(Err(RunFailure::DriverFailure));
        let fail2 = CellOut::Run(Err(RunFailure::OutOfMemory));
        sink.event(CellEvent::Finished {
            index: 1,
            spec: &vk,
            out: &fail2,
            cached: false,
        });
        assert_eq!(sink.next, 0, "index 1 must wait for index 0");
        sink.event(CellEvent::Finished {
            index: 0,
            spec: &cl,
            out: &fail,
            cached: false,
        });
        assert_eq!(sink.next, 2);
        sink.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("device,workload"));
        assert!(lines[1].contains("opencl"));
        assert!(lines[2].contains("vulkan"));
        let _ = std::fs::remove_file(&path);
    }
}
