//! # VComputeBench — reproduction facade
//!
//! A reproduction of *"VComputeBench: A Vulkan Benchmark Suite for GPGPU
//! on Mobile and Embedded GPUs"* (Mammeri & Juurlink, IISWC 2018) as a
//! Rust workspace, with the paper's GPUs replaced by a deterministic
//! functional + timing simulator.
//!
//! This facade crate re-exports the workspace's public surface:
//!
//! * [`sim`] — the GPU simulator substrate (devices, memory system,
//!   kernel execution, virtual time).
//! * [`spirv`] — SPIR-V-like kernel modules and the driver compiler model.
//! * [`vulkan`] / [`cuda`] / [`opencl`] — the three programming-model
//!   frontends under comparison.
//! * [`backend`] — the portable host-program layer: one
//!   `ComputeBackend` trait behind all three frontends, preserving each
//!   API's call counts and cost breakdowns.
//! * [`core`] — the benchmark-suite core: workload model, run records,
//!   statistics and report formatting.
//! * [`workloads`] — the nine Rodinia ports plus the two microbenchmarks,
//!   each with a data generator, a CPU reference and one portable host
//!   program driven through [`backend`].
//! * [`harness`] — experiment drivers regenerating every table and
//!   figure of the paper.
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and
//! substitutions, and `EXPERIMENTS.md` for paper-vs-measured results.

#![warn(missing_docs)]

pub use vcb_backend as backend;
pub use vcb_core as core;
pub use vcb_cuda as cuda;
pub use vcb_harness as harness;
pub use vcb_opencl as opencl;
pub use vcb_sim as sim;
pub use vcb_spirv as spirv;
pub use vcb_vulkan as vulkan;
pub use vcb_workloads as workloads;
