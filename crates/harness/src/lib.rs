//! # vcb-harness — regenerating the paper's tables and figures
//!
//! One function per experiment (see DESIGN.md's experiment index):
//!
//! | Paper artifact | Entry point |
//! |---|---|
//! | Table I (benchmark list) | [`render::table1`] |
//! | Table II / III (platforms) | [`render::platform_table`] |
//! | Fig. 1 (desktop bandwidth) | [`experiments::fig1`] |
//! | Fig. 2 (desktop speedups) | [`experiments::fig2`] |
//! | Fig. 3 (mobile bandwidth) | [`experiments::fig3`] |
//! | Fig. 4 (mobile speedups) | [`experiments::fig4`] |
//! | §V geomeans | [`experiments::summarize`] |
//! | §VI-A effort | [`experiments::effort`] |
//! | §V-A2 overhead decomposition | [`experiments::overheads`] |
//! | §VI-B recommendations | [`ablate`] |
//!
//! The `vcb` binary wraps these behind a CLI:
//!
//! ```text
//! vcb all --quick          # every table + figure, scaled-down inputs
//! vcb fig2 --csv out.csv   # one figure, machine-readable output
//! vcb ablate               # the §VI-B recommendation ablations
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablate;
pub mod experiments;
pub mod fault;
pub mod jobs;
pub mod render;
pub mod stream;

pub use experiments::{ExperimentOpts, GeomeanSummary, Session};
