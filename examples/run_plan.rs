//! Declarative run plans: describe a slice of the experiment matrix,
//! hand it to the scheduler, and let the result cache deduplicate.
//!
//! ```sh
//! cargo run --release --example run_plan
//! ```

use vcomputebench::core::plan::{CellSpec, NullSink, RunPlan};
use vcomputebench::core::run::SizeSpec;
use vcomputebench::core::workload::RunOpts;
use vcomputebench::harness::experiments::{ExperimentOpts, Session};
use vcomputebench::sim::Api;

fn main() {
    let registry = vcomputebench::workloads::registry().expect("registry builds");
    let opts = ExperimentOpts {
        run: RunOpts {
            scale: 0.1,
            validate: true,
            ..RunOpts::default()
        },
        ..ExperimentOpts::default()
    };
    let mut session = Session::new(&registry, &opts);

    // A hand-rolled plan: vectoradd at two sizes under every API on the
    // GTX — plus a duplicate cell the executor will not run twice.
    let mut plan = RunPlan::new();
    for label in ["64K", "256K"] {
        let n = if label == "64K" {
            64 * 1024
        } else {
            256 * 1024
        };
        for api in [Api::OpenCl, Api::Vulkan, Api::Cuda] {
            plan.push(CellSpec {
                workload: "vectoradd".into(),
                size: SizeSpec::new(label, n),
                api,
                device: "NVIDIA GTX 1050 Ti".into(),
                opts: opts.run.clone(),
            });
        }
    }
    let duplicate = plan.cells()[0].clone();
    plan.push(duplicate);

    let outs = session.execute(&plan, &mut NullSink);
    for (spec, out) in plan.cells().iter().zip(&outs) {
        match out.as_run() {
            Some(Ok(r)) => println!("{spec}: kernel {} total {}", r.kernel_time, r.total_time),
            Some(Err(e)) => println!("{spec}: {e}"),
            None => println!("{spec}: (curve)"),
        }
    }
    println!(
        "\n{} cells planned, {} executed (the duplicate was served from cache)",
        plan.len(),
        session.executed_cells()
    );
}
