//! gaussian — Gaussian elimination (Table I: Dense Linear Algebra).
//!
//! Solves `A·x = b` by row reduction. Every elimination step `t` runs two
//! kernels — `fan1` computes the column of multipliers, `fan2` updates the
//! trailing submatrix and right-hand side — and step `t+1` depends on
//! step `t`, so the launch-based APIs pay `2·(n-1)` launch round trips.
//! The Vulkan port records all `2·(n-1)` dispatches into one command
//! buffer with barriers; back-substitution runs on the host, as in
//! Rodinia.

use std::sync::Arc;

use vcb_core::run::{RunOutcome, SizeSpec};
use vcb_core::suite::{self, BenchmarkMeta};
use vcb_core::workload::{RunOpts, Workload};
use vcb_cuda::{CudaContext, KernelArg, Stream};
use vcb_opencl::{ClArg, Kernel as ClKernel, MemFlags, Program};
use vcb_sim::exec::{GroupCtx, KernelInfo};
use vcb_sim::profile::{DeviceClass, DeviceProfile};
use vcb_sim::{Api, KernelRegistry, SimResult};
use vcb_vulkan::util as vku;
use vcb_vulkan::{Access, MemoryBarrier, PipelineStage, SubmitInfo};

use crate::common::{
    approx_eq_f32, cl_env, cl_failure, cuda_env, cuda_failure, measure_cl, measure_cuda,
    measure_vk, vk_env, vk_failure, vk_kernel, BodyOutcome,
};
use crate::data;

/// Workload name.
pub const NAME: &str = "gaussian";
/// Multiplier-column kernel.
pub const KERNEL_FAN1: &str = "gaussian_fan1";
/// Submatrix-update kernel.
pub const KERNEL_FAN2: &str = "gaussian_fan2";
/// 1-D workgroup size of fan1.
pub const FAN1_LOCAL: u32 = 256;
/// 2-D workgroup edge of fan2.
pub const FAN2_TILE: u32 = 16;

/// The GLSL compute shaders the SPIR-V binaries are built from.
pub const GLSL_SOURCE: &str = r#"
#version 450
// --- gaussian_fan1 ---
layout(local_size_x = 256) in;
layout(set = 0, binding = 0) readonly buffer A1 { float a[]; };
layout(set = 0, binding = 1) buffer M1 { float m[]; };
layout(push_constant) uniform Params { uint n; uint t; };

void main() {
    uint i = gl_GlobalInvocationID.x;
    if (i < n - 1u - t) {
        m[(t + 1u + i) * n + t] = a[(t + 1u + i) * n + t] / a[t * n + t];
    }
}

// --- gaussian_fan2 (separate module, local_size 16x16) ---
// a[row*n+col] -= m[row*n+t] * a[t*n+col]; row = t+1+x, col = t+y;
// the y == 0 column also updates b[row].
"#;

/// The OpenCL C twin of the kernels.
pub const CL_SOURCE: &str = r#"
__kernel void gaussian_fan1(__global const float* a,
                            __global float* m,
                            uint n,
                            uint t) {
    uint i = get_global_id(0);
    if (i < n - 1 - t) {
        m[(t + 1 + i) * n + t] = a[(t + 1 + i) * n + t] / a[t * n + t];
    }
}

__kernel void gaussian_fan2(__global const float* m,
                            __global float* a,
                            __global float* b,
                            uint n,
                            uint t) {
    uint x = get_global_id(0);
    uint y = get_global_id(1);
    if (x >= n - 1 - t || y >= n - t) return;
    uint row = t + 1 + x;
    uint col = t + y;
    a[row * n + col] -= m[row * n + t] * a[t * n + col];
    if (y == 0) {
        b[row] -= m[row * n + t] * b[t];
    }
}
"#;

/// Registers both kernel bodies.
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register(registry: &mut KernelRegistry) -> SimResult<()> {
    let fan1 = KernelInfo::new(KERNEL_FAN1, [FAN1_LOCAL, 1, 1])
        .reads(0, "a")
        .writes(1, "m")
        .push_constants(8)
        .source_bytes(CL_SOURCE.len() as u64 / 2)
        .build();
    registry.register(
        fan1,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let a = ctx.global::<f32>(0)?;
            let m = ctx.global::<f32>(1)?;
            let n = ctx.push_u32(0) as usize;
            let t = ctx.push_u32(4) as usize;
            ctx.for_lanes(|lane| {
                let i = lane.global_linear() as usize;
                if i < n - 1 - t {
                    let pivot = lane.ld(&a, t * n + t);
                    let v = lane.ld(&a, (t + 1 + i) * n + t) / pivot;
                    lane.alu(1);
                    lane.st(&m, (t + 1 + i) * n + t, v);
                }
            });
            Ok(())
        }),
    )?;

    let fan2 = KernelInfo::new(KERNEL_FAN2, [FAN2_TILE, FAN2_TILE, 1])
        .reads(0, "m")
        .writes(1, "a")
        .writes(2, "b")
        .push_constants(8)
        .source_bytes(CL_SOURCE.len() as u64 / 2)
        .build();
    registry.register(
        fan2,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let m = ctx.global::<f32>(0)?;
            let a = ctx.global::<f32>(1)?;
            let b = ctx.global::<f32>(2)?;
            let n = ctx.push_u32(0) as usize;
            let t = ctx.push_u32(4) as usize;
            ctx.for_lanes(|lane| {
                let x = lane.global_id(0) as usize;
                let y = lane.global_id(1) as usize;
                if x >= n - 1 - t || y >= n - t {
                    return;
                }
                let row = t + 1 + x;
                let col = t + y;
                let mult = lane.ld(&m, row * n + t);
                let pivot_row = lane.ld(&a, t * n + col);
                let cur = lane.ld(&a, row * n + col);
                lane.alu(2);
                lane.st(&a, row * n + col, cur - mult * pivot_row);
                if y == 0 {
                    let bt = lane.ld(&b, t);
                    let br = lane.ld(&b, row);
                    lane.alu(2);
                    lane.st(&b, row, br - mult * bt);
                }
            });
            Ok(())
        }),
    )
}

/// CPU reference: forward elimination + back substitution, same
/// operation order as the kernels.
pub fn reference(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    let mut m = vec![0.0f32; n * n];
    for t in 0..n - 1 {
        for i in t + 1..n {
            m[i * n + t] = a[i * n + t] / a[t * n + t];
        }
        for row in t + 1..n {
            let mult = m[row * n + t];
            for col in t..n {
                a[row * n + col] -= mult * a[t * n + col];
            }
            b[row] -= mult * b[t];
        }
    }
    back_substitute(&a, &b, n)
}

/// Back substitution on an upper-triangular system (host side, as in
/// Rodinia).
pub fn back_substitute(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut x = vec![0.0f32; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in i + 1..n {
            sum -= a[i * n + j] * x[j];
        }
        x[i] = sum / a[i * n + i];
    }
    x
}

fn fan1_groups(n: usize, t: usize) -> u32 {
    ((n - 1 - t) as u32).div_ceil(FAN1_LOCAL).max(1)
}

fn fan2_groups(n: usize, t: usize) -> [u32; 3] {
    let rows = ((n - 1 - t) as u32).div_ceil(FAN2_TILE).max(1);
    let cols = ((n - t) as u32).div_ceil(FAN2_TILE).max(1);
    [rows, cols, 1]
}

fn push(n: usize, t: usize) -> Vec<u8> {
    let mut p = Vec::with_capacity(8);
    p.extend_from_slice(&(n as u32).to_le_bytes());
    p.extend_from_slice(&(t as u32).to_le_bytes());
    p
}

fn run_vulkan(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let env = vk_env(profile, registry)?;
    let (a_host, b_host) = data::linear_system(n, opts.seed);
    let expected = opts.validate.then(|| reference(&a_host, &b_host, n));
    measure_vk(NAME, &size.label, &env, |env| {
        let device = &env.device;
        let a = vku::upload_storage_buffer(device, &env.queue, &a_host).map_err(vk_failure)?;
        let b = vku::upload_storage_buffer(device, &env.queue, &b_host).map_err(vk_failure)?;
        let m = vku::create_storage_buffer(device, (n * n * 4) as u64).map_err(vk_failure)?;

        // fan1 set: (a, m); fan2 set: (m, a, b).
        let (layout1, _p1, set1) =
            vku::storage_descriptor_set(device, &[&a.buffer, &m.buffer]).map_err(vk_failure)?;
        let (layout2, _p2, set2) =
            vku::storage_descriptor_set(device, &[&m.buffer, &a.buffer, &b.buffer])
                .map_err(vk_failure)?;
        let fan1 = vk_kernel(env, registry, KERNEL_FAN1, &layout1, 8)?;
        let fan2 = vk_kernel(env, registry, KERNEL_FAN2, &layout2, 8)?;

        let cmd_pool = device
            .create_command_pool(env.queue.family_index())
            .map_err(vk_failure)?;
        let cmd = cmd_pool.allocate_command_buffer().map_err(vk_failure)?;
        let barrier = MemoryBarrier {
            src_access: Access::SHADER_WRITE,
            dst_access: Access::SHADER_READ,
        };
        cmd.begin().map_err(vk_failure)?;
        for t in 0..n - 1 {
            cmd.bind_pipeline(&fan1.pipeline).map_err(vk_failure)?;
            cmd.bind_descriptor_sets(&fan1.layout, &[&set1]).map_err(vk_failure)?;
            cmd.push_constants(&fan1.layout, 0, &push(n, t)).map_err(vk_failure)?;
            cmd.dispatch(fan1_groups(n, t), 1, 1).map_err(vk_failure)?;
            cmd.pipeline_barrier(
                PipelineStage::COMPUTE_SHADER,
                PipelineStage::COMPUTE_SHADER,
                &barrier,
            )
            .map_err(vk_failure)?;
            cmd.bind_pipeline(&fan2.pipeline).map_err(vk_failure)?;
            cmd.bind_descriptor_sets(&fan2.layout, &[&set2]).map_err(vk_failure)?;
            cmd.push_constants(&fan2.layout, 0, &push(n, t)).map_err(vk_failure)?;
            let g = fan2_groups(n, t);
            cmd.dispatch(g[0], g[1], g[2]).map_err(vk_failure)?;
            cmd.pipeline_barrier(
                PipelineStage::COMPUTE_SHADER,
                PipelineStage::COMPUTE_SHADER,
                &barrier,
            )
            .map_err(vk_failure)?;
        }
        cmd.end().map_err(vk_failure)?;

        let compute_start = device.now();
        env.queue
            .submit(&[SubmitInfo { command_buffers: &[&cmd] }], None)
            .map_err(vk_failure)?;
        env.queue.wait_idle();
        let compute_time = device.now().duration_since(compute_start);

        let a_out: Vec<f32> =
            vku::download_storage_buffer(device, &env.queue, &a).map_err(vk_failure)?;
        let b_out: Vec<f32> =
            vku::download_storage_buffer(device, &env.queue, &b).map_err(vk_failure)?;
        let x = back_substitute(&a_out, &b_out, n);
        Ok(BodyOutcome {
            validated: expected.as_ref().is_none_or(|e| approx_eq_f32(&x, e, 2e-2)),
            compute_time,
        })
    })
}

fn cuda_body(
    ctx: &CudaContext,
    n: usize,
    a_host: &[f32],
    b_host: &[f32],
    expected: Option<&Vec<f32>>,
) -> Result<BodyOutcome, vcb_core::run::RunFailure> {
    let a = ctx.malloc((n * n * 4) as u64).map_err(cuda_failure)?;
    let b = ctx.malloc((n * 4) as u64).map_err(cuda_failure)?;
    let m = ctx.malloc((n * n * 4) as u64).map_err(cuda_failure)?;
    ctx.memcpy_htod(&a, a_host).map_err(cuda_failure)?;
    ctx.memcpy_htod(&b, b_host).map_err(cuda_failure)?;
    let fan1 = ctx.get_function(KERNEL_FAN1).map_err(cuda_failure)?;
    let fan2 = ctx.get_function(KERNEL_FAN2).map_err(cuda_failure)?;
    let compute_start = ctx.now();
    for t in 0..n - 1 {
        ctx.launch_kernel(
            &fan1,
            [fan1_groups(n, t), 1, 1],
            &[
                KernelArg::Ptr(a),
                KernelArg::Ptr(m),
                KernelArg::U32(n as u32),
                KernelArg::U32(t as u32),
            ],
            Stream::DEFAULT,
        )
        .map_err(cuda_failure)?;
        ctx.device_synchronize();
        ctx.launch_kernel(
            &fan2,
            fan2_groups(n, t),
            &[
                KernelArg::Ptr(m),
                KernelArg::Ptr(a),
                KernelArg::Ptr(b),
                KernelArg::U32(n as u32),
                KernelArg::U32(t as u32),
            ],
            Stream::DEFAULT,
        )
        .map_err(cuda_failure)?;
        ctx.device_synchronize();
    }
    let compute_time = ctx.now().duration_since(compute_start);
    let a_out: Vec<f32> = ctx.memcpy_dtoh(&a).map_err(cuda_failure)?;
    let b_out: Vec<f32> = ctx.memcpy_dtoh(&b).map_err(cuda_failure)?;
    let x = back_substitute(&a_out, &b_out, n);
    Ok(BodyOutcome {
        validated: expected.is_none_or(|e| approx_eq_f32(&x, e, 2e-2)),
        compute_time,
    })
}

fn run_cuda(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let ctx = cuda_env(profile, registry)?;
    let (a_host, b_host) = data::linear_system(n, opts.seed);
    let expected = opts.validate.then(|| reference(&a_host, &b_host, n));
    measure_cuda(NAME, &size.label, &ctx, |ctx| {
        cuda_body(ctx, n, &a_host, &b_host, expected.as_ref())
    })
}

fn run_opencl(
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let env = cl_env(profile, registry)?;
    let (a_host, b_host) = data::linear_system(n, opts.seed);
    let expected = opts.validate.then(|| reference(&a_host, &b_host, n));
    measure_cl(NAME, &size.label, &env, |env| {
        let a = env
            .context
            .create_buffer(MemFlags::ReadWrite, (n * n * 4) as u64)
            .map_err(cl_failure)?;
        let b = env
            .context
            .create_buffer(MemFlags::ReadWrite, (n * 4) as u64)
            .map_err(cl_failure)?;
        let m = env
            .context
            .create_buffer(MemFlags::ReadWrite, (n * n * 4) as u64)
            .map_err(cl_failure)?;
        env.queue.enqueue_write_buffer(&a, &a_host).map_err(cl_failure)?;
        env.queue.enqueue_write_buffer(&b, &b_host).map_err(cl_failure)?;
        let program = Program::create_with_source(&env.context, CL_SOURCE);
        program.build().map_err(cl_failure)?;
        let fan1 = ClKernel::new(&program, KERNEL_FAN1).map_err(cl_failure)?;
        let fan2 = ClKernel::new(&program, KERNEL_FAN2).map_err(cl_failure)?;
        fan1.set_arg(0, ClArg::Buffer(a));
        fan1.set_arg(1, ClArg::Buffer(m));
        fan1.set_arg(2, ClArg::U32(n as u32));
        fan2.set_arg(0, ClArg::Buffer(m));
        fan2.set_arg(1, ClArg::Buffer(a));
        fan2.set_arg(2, ClArg::Buffer(b));
        fan2.set_arg(3, ClArg::U32(n as u32));
        let compute_start = env.context.now();
        for t in 0..n - 1 {
            fan1.set_arg(3, ClArg::U32(t as u32));
            env.queue
                .enqueue_nd_range_kernel(
                    &fan1,
                    [u64::from(fan1_groups(n, t)) * u64::from(FAN1_LOCAL), 1, 1],
                )
                .map_err(cl_failure)?;
            env.queue.finish();
            fan2.set_arg(4, ClArg::U32(t as u32));
            let g = fan2_groups(n, t);
            env.queue
                .enqueue_nd_range_kernel(
                    &fan2,
                    [
                        u64::from(g[0]) * u64::from(FAN2_TILE),
                        u64::from(g[1]) * u64::from(FAN2_TILE),
                        1,
                    ],
                )
                .map_err(cl_failure)?;
            env.queue.finish();
        }
        let compute_time = env.context.now().duration_since(compute_start);
        let a_out: Vec<f32> = env.queue.enqueue_read_buffer(&a).map_err(cl_failure)?;
        let b_out: Vec<f32> = env.queue.enqueue_read_buffer(&b).map_err(cl_failure)?;
        let x = back_substitute(&a_out, &b_out, n);
        Ok(BodyOutcome {
            validated: expected.as_ref().is_none_or(|e| approx_eq_f32(&x, e, 2e-2)),
            compute_time,
        })
    })
}

/// The gaussian suite entry.
#[derive(Debug, Clone)]
pub struct Gaussian {
    registry: Arc<KernelRegistry>,
}

impl Gaussian {
    /// Creates the workload against a kernel registry.
    pub fn new(registry: Arc<KernelRegistry>) -> Self {
        Gaussian { registry }
    }
}

impl Workload for Gaussian {
    fn meta(&self) -> BenchmarkMeta {
        *suite::find(NAME).expect("gaussian is in Table I")
    }

    fn sizes(&self, class: DeviceClass) -> Vec<SizeSpec> {
        match class {
            DeviceClass::Desktop => vec![
                SizeSpec::new("208", 208),
                SizeSpec::new("1024", 1024),
                SizeSpec::new("2048", 2048),
            ],
            DeviceClass::Mobile => vec![SizeSpec::new("208", 208), SizeSpec::new("416", 416)],
        }
    }

    fn run(&self, api: Api, device: &DeviceProfile, size: &SizeSpec, opts: &RunOpts) -> RunOutcome {
        match api {
            Api::Vulkan => run_vulkan(device, &self.registry, size, opts),
            Api::Cuda => run_cuda(device, &self.registry, size, opts),
            Api::OpenCl => run_opencl(device, &self.registry, size, opts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_core::run::speedup;
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        let mut r = KernelRegistry::new();
        register(&mut r).unwrap();
        Arc::new(r)
    }

    #[test]
    fn reference_solves_the_system() {
        let n = 24;
        let (a, b) = data::linear_system(n, 3);
        let x = reference(&a, &b, n);
        // Check A·x ≈ b.
        for i in 0..n {
            let dot: f32 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            assert!((dot - b[i]).abs() < 1e-2, "row {i}: {dot} vs {}", b[i]);
        }
    }

    #[test]
    fn all_apis_match_reference() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("48", 48);
        let w = Gaussian::new(Arc::clone(&registry));
        for api in Api::ALL {
            let record = w.run(api, &devices::gtx1050ti(), &size, &opts).unwrap();
            assert!(record.validated, "{api} failed validation");
        }
    }

    #[test]
    fn vulkan_shines_at_small_matrices() {
        // 2(n-1) dependent launches of tiny kernels: launch-overhead bound.
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("208", 208);
        let w = Gaussian::new(Arc::clone(&registry));
        let profile = devices::gtx1050ti();
        let vk = w.run(Api::Vulkan, &profile, &size, &opts).unwrap();
        let cu = w.run(Api::Cuda, &profile, &size, &opts).unwrap();
        let s = speedup(&cu, &vk);
        assert!(s > 1.8, "gaussian 208 speedup {s}");
    }

    #[test]
    fn runs_on_mobile() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("64", 64);
        let w = Gaussian::new(Arc::clone(&registry));
        let cl = w
            .run(Api::OpenCl, &devices::powervr_g6430(), &size, &opts)
            .unwrap();
        assert!(cl.validated);
        let vk = w
            .run(Api::Vulkan, &devices::adreno506(), &size, &opts)
            .unwrap();
        assert!(vk.validated);
    }
}
