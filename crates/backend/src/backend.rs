//! The portable host-program layer: one [`ComputeBackend`] trait that
//! every workload writes its host program against, with one
//! implementation per programming model.
//!
//! ## Model
//!
//! The trait mirrors the *shape* shared by the paper's three host
//! programs rather than any single API:
//!
//! * **Buffers** are created by [`upload`](ComputeBackend::upload) /
//!   [`alloc`](ComputeBackend::alloc) (device-local, staged on desktop
//!   Vulkan) or [`alloc_host`](ComputeBackend::alloc_host) (the
//!   host-readable termination flags of bfs-style loops).
//! * **Bind groups** name the buffers a kernel sees: a Vulkan descriptor
//!   set, CUDA pointer arguments, sticky OpenCL buffer args.
//! * **Sequences** are recorded dispatch chains. Vulkan records them into
//!   command buffers (pre-recorded once, submitted in one
//!   `vkQueueSubmit` — §IV-C); the launch-based APIs replay them as
//!   per-dispatch launches when the sequence [`run`](ComputeBackend::run)s.
//! * [`seq_dependency`](ComputeBackend::seq_dependency) is the
//!   dependent-dispatch boundary: a pipeline barrier under Vulkan, the
//!   multi-kernel host round trip (`cudaDeviceSynchronize` / `clFinish`)
//!   under the launch-based APIs.
//!   [`seq_barrier`](ComputeBackend::seq_barrier) is device-side ordering
//!   only: a Vulkan barrier, nothing on an in-order stream/queue.
//!
//! Each lowering issues exactly the API calls the hand-written host
//! drivers issued, so the per-API [`CallCounter`] totals behind the
//! §VI-A effort table and the §V-A2 overhead decomposition are
//! preserved (see `crates/workloads/tests/call_fidelity.rs` for the
//! pinned totals and the two documented deviations).

use vcb_core::run::{RunFailure, RunRecord};
use vcb_sim::calls::CallCounter;
use vcb_sim::mem::Scalar;
use vcb_sim::time::{SimDuration, SimInstant};
use vcb_sim::timeline::TimingBreakdown;
use vcb_sim::Api;

/// Result alias for backend operations.
pub type BackendResult<T> = Result<T, RunFailure>;

/// A device buffer owned by a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferHandle(pub(crate) usize);

/// A compiled kernel / pipeline owned by a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelHandle(pub(crate) usize);

/// A set of buffers bound to a kernel's slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BindGroupHandle(pub(crate) usize);

/// A recorded dispatch sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqHandle(pub(crate) usize);

/// How a buffer will be accessed — the `cl_mem_flags` the OpenCL host
/// would pass; advisory for the other APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsageHint {
    /// Kernel-read-only input.
    ReadOnly,
    /// Kernel-write-only output.
    WriteOnly,
    /// Read-write working buffer.
    ReadWrite,
}

/// The portable host-program surface: everything a workload needs to
/// drive one run under any of the three programming models.
///
/// Object-safe so host programs take `&mut dyn ComputeBackend`.
pub trait ComputeBackend {
    /// The programming model this backend lowers onto.
    fn api(&self) -> Api;

    /// Device name (Table II/III row).
    fn device_name(&self) -> String;

    /// Simulated host-side "now" — host programs bracket their compute
    /// phase with this, exactly like the paper's `std::chrono` timing.
    fn now(&self) -> SimInstant;

    /// API calls issued so far (the §VI-A effort metric).
    fn call_counts(&self) -> CallCounter;

    /// Cost breakdown accumulated so far (§V-A2 decomposition).
    fn breakdown(&self) -> TimingBreakdown;

    /// Digest of the simulated device's functional state (buffer
    /// contents + cumulative traffic counters) — the oracle determinism
    /// tests compare across worker-thread counts.
    fn sim_fingerprint(&self) -> u64;

    /// Device-level synchronization: `vkDeviceWaitIdle`,
    /// `cudaDeviceSynchronize`, `clFinish`.
    fn sync(&mut self);

    /// Makes the workload's kernels available: a JIT build of the OpenCL
    /// C source under OpenCL, a no-op for the binary-shipping APIs.
    ///
    /// # Errors
    ///
    /// [`RunFailure::DriverFailure`] when the device's JIT rejects the
    /// workload (lud on the Snapdragon, §V-B2).
    fn load_program(&mut self, cl_source: &str) -> BackendResult<()>;

    /// Creates a device buffer initialized with `data` (staged through
    /// host-visible memory on discrete-heap devices).
    ///
    /// # Errors
    ///
    /// Allocation or transfer failures.
    fn upload(&mut self, data: &[u8], usage: UsageHint) -> BackendResult<BufferHandle>;

    /// Creates an uninitialized device buffer for kernel outputs.
    ///
    /// # Errors
    ///
    /// Allocation failures ([`RunFailure::OutOfMemory`] included).
    fn alloc(&mut self, bytes: u64, usage: UsageHint) -> BackendResult<BufferHandle>;

    /// Creates a host-visible buffer for flags the host reads inside a
    /// loop (the bfs `over` flag).
    ///
    /// # Errors
    ///
    /// Allocation failures.
    fn alloc_host(&mut self, bytes: u64) -> BackendResult<BufferHandle>;

    /// Reads a whole device buffer back (staged when necessary).
    ///
    /// # Errors
    ///
    /// Transfer failures.
    fn download(&mut self, buf: BufferHandle) -> BackendResult<Vec<u8>>;

    /// Writes a host-visible buffer directly (mapped write under Vulkan).
    ///
    /// # Errors
    ///
    /// Transfer failures.
    fn write_host(&mut self, buf: BufferHandle, data: &[u8]) -> BackendResult<()>;

    /// Reads a host-visible buffer after draining outstanding work
    /// (`vkQueueWaitIdle` + mapped read under Vulkan; the implicit sync
    /// of a blocking `cudaMemcpy` / `clEnqueueReadBuffer` elsewhere).
    ///
    /// # Errors
    ///
    /// Transfer failures.
    fn read_host(&mut self, buf: BufferHandle) -> BackendResult<Vec<u8>>;

    /// Replaces a device buffer's contents mid-run. The launch-based
    /// APIs write in place; Vulkan uploads a fresh staging-backed buffer
    /// and rewrites every descriptor set referencing the handle (the
    /// backprop delta-upload pattern).
    ///
    /// # Errors
    ///
    /// Allocation or transfer failures.
    fn upload_into(&mut self, buf: BufferHandle, data: &[u8]) -> BackendResult<()>;

    /// Binds `buffers` to kernel slots `0..buffers.len()`: a descriptor
    /// set (layout + pool + set + writes) under Vulkan, remembered
    /// pointer/buffer arguments elsewhere.
    ///
    /// # Errors
    ///
    /// Descriptor machinery failures.
    fn bind_group(&mut self, buffers: &[BufferHandle]) -> BackendResult<BindGroupHandle>;

    /// A second bind group over the same slot layout as `like` (the
    /// ping-pong descriptor set of hotspot/pathfinder): a fresh pool +
    /// set + writes under Vulkan, sharing `like`'s set layout.
    ///
    /// # Errors
    ///
    /// Descriptor machinery failures.
    fn bind_group_like(
        &mut self,
        like: BindGroupHandle,
        buffers: &[BufferHandle],
    ) -> BackendResult<BindGroupHandle>;

    /// Resolves a kernel: SPIR-V module + pipeline layout (from
    /// `layout_of`'s set layout, `push_bytes` of push constants) +
    /// compute pipeline under Vulkan; `cuModuleGetFunction` /
    /// `clCreateKernel` elsewhere.
    ///
    /// # Errors
    ///
    /// Unknown symbols or pipeline failures ([`RunFailure::DriverFailure`]
    /// for the paper's broken mobile workloads).
    fn kernel(
        &mut self,
        name: &str,
        layout_of: BindGroupHandle,
        push_bytes: u32,
    ) -> BackendResult<KernelHandle>;

    /// Starts recording a sequence (allocates + begins a command buffer
    /// under Vulkan, from one shared pool).
    ///
    /// # Errors
    ///
    /// Command-recording failures.
    fn seq_begin(&mut self) -> BackendResult<SeqHandle>;

    /// Selects the kernel for subsequent dispatches
    /// (`vkCmdBindPipeline`).
    ///
    /// # Errors
    ///
    /// Invalid handles or recording failures.
    fn seq_kernel(&mut self, seq: SeqHandle, kernel: KernelHandle) -> BackendResult<()>;

    /// Selects the bind group for subsequent dispatches
    /// (`vkCmdBindDescriptorSets`; arguments for the launch-based APIs).
    ///
    /// # Errors
    ///
    /// Invalid handles or recording failures.
    fn seq_bind(&mut self, seq: SeqHandle, binds: BindGroupHandle) -> BackendResult<()>;

    /// Sets the scalar parameters for subsequent dispatches, as little-
    /// endian bytes (`vkCmdPushConstants`; packed kernel parameters for
    /// the launch-based APIs, one 4-byte word per argument).
    ///
    /// # Errors
    ///
    /// Recording failures.
    fn seq_push(&mut self, seq: SeqHandle, data: &[u8]) -> BackendResult<()>;

    /// Records one dispatch of the selected kernel (`vkCmdDispatch`;
    /// replayed as `cudaLaunchKernel` / `clEnqueueNDRangeKernel` with the
    /// launch-based APIs' global size = groups × the kernel's fixed local
    /// size).
    ///
    /// # Errors
    ///
    /// Recording failures.
    fn seq_dispatch(&mut self, seq: SeqHandle, groups: [u32; 3]) -> BackendResult<()>;

    /// Device-side write→read ordering: `vkCmdPipelineBarrier`; nothing
    /// on an in-order CUDA stream / OpenCL queue.
    ///
    /// # Errors
    ///
    /// Recording failures.
    fn seq_barrier(&mut self, seq: SeqHandle) -> BackendResult<()>;

    /// Dependent-dispatch boundary (§IV-C): `vkCmdPipelineBarrier` inside
    /// the pre-recorded command buffer under Vulkan, a host round trip
    /// (`cudaDeviceSynchronize` / `clFinish`) when the launch-based APIs
    /// replay the sequence — the multi-kernel method.
    ///
    /// # Errors
    ///
    /// Recording failures.
    fn seq_dependency(&mut self, seq: SeqHandle) -> BackendResult<()>;

    /// Ends the current command buffer and opens a fresh one within the
    /// same sequence (nw records its two grid halves into two command
    /// buffers submitted in a single `vkQueueSubmit`); nothing for the
    /// launch-based APIs.
    ///
    /// # Errors
    ///
    /// Recording failures.
    fn seq_split(&mut self, seq: SeqHandle) -> BackendResult<()>;

    /// Finishes recording (`vkEndCommandBuffer`).
    ///
    /// # Errors
    ///
    /// Recording failures.
    fn seq_end(&mut self, seq: SeqHandle) -> BackendResult<()>;

    /// Executes a recorded sequence and waits for completion: one
    /// `vkQueueSubmit` of every recorded command buffer + `vkQueueWaitIdle`
    /// under Vulkan; a replay of the recorded launches under CUDA/OpenCL,
    /// with a trailing sync when the sequence does not already end on a
    /// [`seq_dependency`](Self::seq_dependency).
    ///
    /// Sequences stay valid and can be run again (the bfs level loop
    /// resubmits its two cached command buffers every level).
    ///
    /// # Errors
    ///
    /// Submission or execution failures.
    fn run(&mut self, seq: SeqHandle) -> BackendResult<()>;

    /// Executes a recorded sequence without waiting: submit-only under
    /// Vulkan, replay without a trailing sync elsewhere. Use
    /// [`read_host`](Self::read_host) (or [`run`](Self::run)) to
    /// synchronize.
    ///
    /// # Errors
    ///
    /// Submission or execution failures.
    fn run_async(&mut self, seq: SeqHandle) -> BackendResult<()>;
}

impl std::fmt::Debug for dyn ComputeBackend + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputeBackend")
            .field("api", &self.api())
            .field("device", &self.device_name())
            .finish()
    }
}

/// What a measured benchmark body reports back.
///
/// `compute_time` is the wall time of the *compute phase* — the host
/// brackets its kernel loop with clock reads, which is exactly how the
/// paper measures "kernel execution times" with `std::chrono` (§V): for
/// the launch-based APIs it includes the per-iteration launch round trips
/// that the multi-kernel method forces, and for Vulkan it includes the
/// one submission overhead. Setup (JIT, context, pipelines) and data
/// transfers stay outside.
#[derive(Debug, Clone, Copy)]
pub struct BodyOutcome {
    /// Whether outputs matched the CPU reference.
    pub validated: bool,
    /// Wall time of the compute phase.
    pub compute_time: SimDuration,
}

/// Runs `body` against a backend and captures the measurement deltas
/// (API-call counts, cost breakdown, wall time) into a [`RunRecord`] —
/// the one measurement wrapper that used to exist per API.
///
/// # Errors
///
/// Propagates body failures.
pub fn measure(
    workload: &str,
    size: &str,
    backend: &mut dyn ComputeBackend,
    body: impl FnOnce(&mut dyn ComputeBackend) -> Result<BodyOutcome, RunFailure>,
) -> Result<RunRecord, RunFailure> {
    let calls_before = backend.call_counts();
    let breakdown_before = backend.breakdown();
    let start = backend.now();
    let outcome = body(backend)?;
    backend.sync();
    let end = backend.now();
    let breakdown = backend.breakdown().since(&breakdown_before);
    Ok(RunRecord {
        workload: workload.to_owned(),
        api: backend.api(),
        device: backend.device_name(),
        size: size.to_owned(),
        kernel_time: outcome.compute_time,
        total_time: end.duration_since(start),
        breakdown,
        calls: backend.call_counts().since(&calls_before),
        validated: outcome.validated,
        fingerprint: backend.sim_fingerprint(),
    })
}

/// Reinterprets a scalar slice as its raw bytes (the simulator stores
/// buffer contents in native layout, so this is the exact image a typed
/// upload would write).
pub fn bytes_of<T: Scalar>(data: &[T]) -> &[u8] {
    // SAFETY: `Scalar` is sealed to plain-old-data numeric types (f32,
    // u32, i32, u64, f64, u8) with no padding or invalid bit patterns;
    // u8 has alignment 1, and the length covers exactly the same memory.
    unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data)) }
}

/// Decodes downloaded bytes as `f32`s (native layout).
pub fn to_f32(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_ne_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Decodes downloaded bytes as `i32`s (native layout).
pub fn to_i32(bytes: &[u8]) -> Vec<i32> {
    bytes
        .chunks_exact(4)
        .map(|c| i32::from_ne_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Decodes downloaded bytes as `u32`s (native layout).
pub fn to_u32(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_ne_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_views_round_trip() {
        let floats = [1.5f32, -2.25, 0.0, f32::INFINITY];
        assert_eq!(to_f32(bytes_of(&floats)), floats);
        let ints = [-3i32, 0, i32::MAX];
        assert_eq!(to_i32(bytes_of(&ints)), ints);
        let uints = [7u32, u32::MAX];
        assert_eq!(to_u32(bytes_of(&uints)), uints);
        assert_eq!(bytes_of(&[0x0403_0201u32]), 0x0403_0201u32.to_ne_bytes());
    }
}
