//! `cargo bench --bench simulator` — engineering benchmarks of the
//! simulator substrate itself: how fast the reproduction executes
//! simulated work (host wall time, not simulated time).

use std::sync::Arc;

use vcb_bench::bench;
use vcb_sim::cache::CacheSim;
use vcb_sim::coalesce::AddrPattern;
use vcb_sim::engine::{Gpu, TraceMode};
use vcb_sim::exec::{
    BoundBuffer, CompileOpts, CompiledKernel, Dispatch, GroupCtx, KernelInfo, MAX_WARP_WIDTH,
};
use vcb_sim::profile::devices;
use vcb_sim::Api;

fn bench_coalescer() {
    // The production coalescing path since the run-length pipeline:
    // per-lane pushes through the affine detector, then run emission
    // (the legacy `Coalescer::coalesce` round trip is a test oracle
    // only — see the coalesce module docs).
    for stride in [1u64, 4, 32] {
        let addrs: Vec<u64> = (0..32).map(|i| i * stride * 4).collect();
        let mut pattern = AddrPattern::default();
        let mut scratch = Vec::new();
        let mut runs = Vec::new();
        bench(&format!("coalescer/warp32/{stride}"), 100, || {
            pattern.clear();
            for &a in std::hint::black_box(&addrs) {
                pattern.push(a);
            }
            runs.clear();
            pattern.emit_runs(4, 32, &mut scratch, &mut runs);
            runs.len()
        });
    }
}

fn bench_cache() {
    let mut cache = CacheSim::new(1024 * 1024, 16, 32);
    let mut next = 0u64;
    bench("l2_cache/streaming_4k_sectors", 100, || {
        for _ in 0..4096 {
            cache.access_sector(next);
            next = next.wrapping_add(1);
        }
    });
    // The same streaming traffic consumed as coalesced runs (one model
    // call per 4-sector warp) — the shape the hierarchy sees since the
    // run-length pipeline.
    let mut run_cache = CacheSim::new(1024 * 1024, 16, 32);
    let mut misses = Vec::new();
    let mut first = 0u64;
    bench("l2_cache/streaming_4k_sectors_runs", 100, || {
        for _ in 0..1024 {
            misses.clear();
            run_cache.access_run(first, 4, &mut misses);
            first = first.wrapping_add(4);
        }
    });
}

fn vadd_kernel() -> CompiledKernel {
    let info = KernelInfo::new("bench_vadd", [256, 1, 1])
        .reads(0, "x")
        .reads(1, "y")
        .writes(2, "z")
        .parallel_groups()
        .build();
    CompiledKernel::new(
        info,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let x = ctx.global::<f32>(0)?;
            let y = ctx.global::<f32>(1)?;
            let z = ctx.global::<f32>(2)?;
            ctx.for_warps(|w| {
                let m = w.lanes();
                let start = w.global_base() as usize;
                let mut xs = [0f32; MAX_WARP_WIDTH];
                let mut ys = [0f32; MAX_WARP_WIDTH];
                w.ld_seq(&x, start, &mut xs[..m]);
                w.ld_seq(&y, start, &mut ys[..m]);
                for (a, b) in xs[..m].iter_mut().zip(&ys[..m]) {
                    *a += *b;
                }
                w.alu(m as u64);
                w.st_seq(&z, start, &xs[..m]);
            });
            Ok(())
        }),
        CompileOpts::default(),
    )
}

fn bench_dispatch() {
    let n: usize = 256 * 1024;
    let profile = devices::gtx1050ti();
    let driver = profile.driver(Api::Cuda).unwrap().clone();

    // threads = 1 is the sequential baseline; threads = 4 exercises the
    // parallel workgroup path (bit-identical results; wall-time wins
    // proportional to the cores actually available).
    for threads in [1usize, 4] {
        for (label, mode) in [
            ("detailed", TraceMode::Detailed),
            ("sampled_16", TraceMode::Sampled(16)),
            ("auto", TraceMode::Auto),
        ] {
            let mut gpu = Gpu::new(profile.clone());
            gpu.set_trace_mode(mode);
            gpu.set_worker_threads(threads);
            let (x, _) = gpu.pool_mut().create_buffer(0, (n * 4) as u64).unwrap();
            let (y, _) = gpu.pool_mut().create_buffer(0, (n * 4) as u64).unwrap();
            let (z, _) = gpu.pool_mut().create_buffer(0, (n * 4) as u64).unwrap();
            let dispatch = Dispatch {
                kernel: vadd_kernel(),
                groups: [(n as u32).div_ceil(256), 1, 1],
                bindings: vec![
                    BoundBuffer {
                        binding: 0,
                        buffer: x,
                    },
                    BoundBuffer {
                        binding: 1,
                        buffer: y,
                    },
                    BoundBuffer {
                        binding: 2,
                        buffer: z,
                    },
                ],
                push_constants: vec![],
            };
            let name = if threads == 1 {
                format!("dispatch/vadd_256k/{label}")
            } else {
                format!("dispatch/vadd_256k/{label}/threads{threads}")
            };
            bench(&name, 20, || {
                gpu.execute(std::hint::black_box(&dispatch), &driver)
                    .unwrap()
            });
        }
    }
}

fn bench_functional_floor() {
    // The untraced floor this PR's warp-columnar path attacks: pure
    // functional dispatch under TraceMode::Off — no AddrPattern pushes,
    // no hierarchy, just lane semantics plus exact op/byte counters.
    let profile = devices::gtx1050ti();
    let driver = profile.driver(Api::Cuda).unwrap().clone();

    let n: usize = 256 * 1024;
    let mut gpu = Gpu::new(profile.clone());
    gpu.set_trace_mode(TraceMode::Off);
    let (x, _) = gpu.pool_mut().create_buffer(0, (n * 4) as u64).unwrap();
    let (y, _) = gpu.pool_mut().create_buffer(0, (n * 4) as u64).unwrap();
    let (z, _) = gpu.pool_mut().create_buffer(0, (n * 4) as u64).unwrap();
    let dispatch = Dispatch {
        kernel: vadd_kernel(),
        groups: [(n as u32).div_ceil(256), 1, 1],
        bindings: vec![
            BoundBuffer {
                binding: 0,
                buffer: x,
            },
            BoundBuffer {
                binding: 1,
                buffer: y,
            },
            BoundBuffer {
                binding: 2,
                buffer: z,
            },
        ],
        push_constants: vec![],
    };
    bench("functional_floor/vadd_256k", 20, || {
        gpu.execute(std::hint::black_box(&dispatch), &driver)
            .unwrap()
    });

    // One stencil workload: the production (warp-columnar) hotspot step
    // on a 512×512 grid — 256k items through the gather/scatter path.
    let registry = vcb_workloads::registry().unwrap();
    let hotspot = registry.lookup("hotspot_step").unwrap();
    let grid: usize = 512;
    let cells = grid * grid;
    let mut gpu = Gpu::new(profile.clone());
    gpu.set_trace_mode(TraceMode::Off);
    let (power, _) = gpu.pool_mut().create_buffer(0, (cells * 4) as u64).unwrap();
    let (src, _) = gpu.pool_mut().create_buffer(0, (cells * 4) as u64).unwrap();
    let (dst, _) = gpu.pool_mut().create_buffer(0, (cells * 4) as u64).unwrap();
    let dispatch = Dispatch {
        kernel: CompiledKernel::new(
            hotspot.info().clone(),
            Arc::clone(hotspot.body()),
            CompileOpts::default(),
        ),
        groups: [(grid as u32).div_ceil(16), (grid as u32).div_ceil(16), 1],
        bindings: vec![
            BoundBuffer {
                binding: 0,
                buffer: power,
            },
            BoundBuffer {
                binding: 1,
                buffer: src,
            },
            BoundBuffer {
                binding: 2,
                buffer: dst,
            },
        ],
        push_constants: (grid as u32).to_le_bytes().to_vec(),
    };
    bench("functional_floor/hotspot_512", 20, || {
        gpu.execute(std::hint::black_box(&dispatch), &driver)
            .unwrap()
    });
}

fn bench_uvm() {
    // Demand-paging overhead on the same dispatch as `dispatch/...`:
    // resident (steady state after the first iteration is pure
    // page-table walks, no faults) and 2x oversubscribed (every
    // iteration faults and evicts through the LRU — the worst case the
    // page table must sustain).
    let n: usize = 256 * 1024;
    let driver = devices::gtx1050ti().driver(Api::Cuda).unwrap().clone();
    for (label, uvm) in [
        ("resident", vcb_sim::UvmProfile::resident()),
        ("oversub", vcb_sim::UvmProfile::oversubscribed()),
    ] {
        let profile = devices::uvm_variant(devices::gtx1050ti(), uvm);
        let mut gpu = Gpu::new(profile);
        gpu.set_trace_mode(TraceMode::Auto);
        let (x, _) = gpu.pool_mut().create_buffer(0, (n * 4) as u64).unwrap();
        let (y, _) = gpu.pool_mut().create_buffer(0, (n * 4) as u64).unwrap();
        let (z, _) = gpu.pool_mut().create_buffer(0, (n * 4) as u64).unwrap();
        let dispatch = Dispatch {
            kernel: vadd_kernel(),
            groups: [(n as u32).div_ceil(256), 1, 1],
            bindings: vec![
                BoundBuffer {
                    binding: 0,
                    buffer: x,
                },
                BoundBuffer {
                    binding: 1,
                    buffer: y,
                },
                BoundBuffer {
                    binding: 2,
                    buffer: z,
                },
            ],
            push_constants: vec![],
        };
        bench(&format!("uvm/vadd_256k_{label}"), 20, || {
            gpu.execute(std::hint::black_box(&dispatch), &driver)
                .unwrap()
        });
    }
}

fn bench_dnn() {
    // The DNN tile kernels: shared-memory staging through the columnar
    // lds/sts recording path (gathers, scatters, warp-uniform
    // broadcasts, bank-conflict buckets) — a cost profile the Rodinia
    // dispatch rows above never exercise.
    let profile = devices::gtx1050ti();
    let driver = profile.driver(Api::Cuda).unwrap().clone();
    let registry = vcb_workloads::registry().unwrap();

    let n: usize = 256;
    let gemm = registry.lookup("dnn_gemm_tile").unwrap();
    let mut gpu = Gpu::new(profile.clone());
    gpu.set_trace_mode(TraceMode::Auto);
    let (a, _) = gpu.pool_mut().create_buffer(0, (n * n * 4) as u64).unwrap();
    let (b, _) = gpu.pool_mut().create_buffer(0, (n * n * 4) as u64).unwrap();
    let (c, _) = gpu.pool_mut().create_buffer(0, (n * n * 4) as u64).unwrap();
    let dispatch = Dispatch {
        kernel: CompiledKernel::new(
            gemm.info().clone(),
            Arc::clone(gemm.body()),
            CompileOpts::default(),
        ),
        groups: [(n / 16) as u32, (n / 16) as u32, 1],
        bindings: vec![
            BoundBuffer {
                binding: 0,
                buffer: a,
            },
            BoundBuffer {
                binding: 1,
                buffer: b,
            },
            BoundBuffer {
                binding: 2,
                buffer: c,
            },
        ],
        push_constants: (n as u32).to_le_bytes().to_vec(),
    };
    bench("dnn/gemm_256", 20, || {
        gpu.execute(std::hint::black_box(&dispatch), &driver)
            .unwrap()
    });

    let m: usize = 128;
    let nd = m + 4; // input plane edge: outputs plus the 5x5 halo
    let conv = registry.lookup("dnn_conv2d_tile").unwrap();
    let mut gpu = Gpu::new(profile);
    gpu.set_trace_mode(TraceMode::Auto);
    let (inp, _) = gpu
        .pool_mut()
        .create_buffer(0, (3 * nd * nd * 4) as u64)
        .unwrap();
    let (filt, _) = gpu
        .pool_mut()
        .create_buffer(0, (3 * 25 * 4) as u64)
        .unwrap();
    let (outp, _) = gpu.pool_mut().create_buffer(0, (m * m * 4) as u64).unwrap();
    let mut push = Vec::new();
    push.extend_from_slice(&(m as u32).to_le_bytes());
    push.extend_from_slice(&(nd as u32).to_le_bytes());
    push.extend_from_slice(&0u32.to_le_bytes());
    let dispatch = Dispatch {
        kernel: CompiledKernel::new(
            conv.info().clone(),
            Arc::clone(conv.body()),
            CompileOpts::default(),
        ),
        groups: [(m / 16) as u32, (m / 16) as u32, 1],
        bindings: vec![
            BoundBuffer {
                binding: 0,
                buffer: inp,
            },
            BoundBuffer {
                binding: 1,
                buffer: filt,
            },
            BoundBuffer {
                binding: 2,
                buffer: outp,
            },
        ],
        push_constants: push,
    };
    bench("dnn/conv2d_128", 20, || {
        gpu.execute(std::hint::black_box(&dispatch), &driver)
            .unwrap()
    });
}

fn bench_matrix() {
    // The run-matrix scheduler end to end: a full quick Fig. 2 panel
    // set (both desktop devices, first size per workload, every API)
    // through the plan executor, at one and four matrix threads. On a
    // multi-core machine the four-thread row shows the shared worker
    // pool's scaling; on a single core both rows track the scheduling
    // overhead on top of the simulated cells.
    use vcb_core::workload::RunOpts;
    use vcb_harness::experiments::{self, ExperimentOpts};
    let registry = vcb_workloads::registry().unwrap();
    for threads in [1usize, 4] {
        let opts = ExperimentOpts {
            run: RunOpts {
                scale: 0.1,
                validate: false,
                ..RunOpts::default()
            },
            threads,
            sizes_per_workload: 1,
            ..ExperimentOpts::default()
        };
        bench(&format!("matrix/fig2_quick/threads{threads}"), 3, || {
            experiments::fig2(std::hint::black_box(&registry), &opts)
        });
    }

    // The same panel set fully warm: every cell seeds from a persistent
    // result store, so each iteration is pure plan building + entry
    // verification + cache resolution — the sweep-service steady state
    // where "almost every request is a cache hit".
    let dir = std::env::temp_dir().join(format!("vcb_bench_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ExperimentOpts {
        run: RunOpts {
            scale: 0.1,
            validate: false,
            ..RunOpts::default()
        },
        threads: 1,
        sizes_per_workload: 1,
        store: Some(dir.to_str().unwrap().to_owned()),
        ..ExperimentOpts::default()
    };
    experiments::fig2(&registry, &opts); // untimed: populate the store
    bench("matrix/fig2_quick/warm", 3, || {
        experiments::fig2(std::hint::black_box(&registry), &opts)
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_store() {
    // One store entry round trip: serialize + atomic-rename publish,
    // then load with full verification (header, fingerprint recompute,
    // identity match, trailer). The payload is a 32-sample bandwidth
    // curve — the largest payload shape the harness persists.
    use vcb_core::plan::CellSpec;
    use vcb_core::run::SizeSpec;
    use vcb_core::store::Store;
    use vcb_core::workload::RunOpts;
    use vcb_harness::experiments::CellOut;
    use vcb_harness::stream::{cell_out_fields, decode_cell_out};
    use vcb_sim::time::SimDuration;
    use vcb_workloads::micro::stride::BandwidthSample;

    let dir = std::env::temp_dir().join(format!("vcb_bench_store_rt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let spec = CellSpec {
        workload: "stride".into(),
        size: SizeSpec::new("sweep", 0),
        api: Api::Vulkan,
        device: "NVIDIA GTX 1050 Ti".into(),
        opts: RunOpts::default(),
    };
    let samples: Vec<BandwidthSample> = (0..32u32)
        .map(|i| BandwidthSample {
            stride: 1 << (i % 8),
            bytes_per_sec: 1.0e9 + f64::from(i),
            time_per_rep: SimDuration::from_picos(100_000 + u64::from(i)),
        })
        .collect();
    let payload = cell_out_fields(&CellOut::Curve(Ok(samples)));
    bench("store/write_cell", 100, || {
        store.write_cell(&spec, &payload, 123_456_789).unwrap()
    });
    bench("store/load_cell", 100, || {
        store
            .load_cell(std::hint::black_box(&spec), decode_cell_out)
            .unwrap()
            .is_some()
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_spirv() {
    let registry = vcb_workloads::registry().unwrap();
    let info = registry.lookup("bfs_kernel1").unwrap().info().clone();
    let module = vcb_spirv::SpirvModule::assemble(&info);
    let words = module.words().to_vec();
    bench("spirv/assemble", 100, || {
        vcb_spirv::SpirvModule::assemble(std::hint::black_box(&info))
    });
    bench("spirv/parse", 100, || {
        vcb_spirv::SpirvModule::parse(std::hint::black_box(&words)).unwrap()
    });
}

fn main() {
    bench_coalescer();
    bench_cache();
    bench_dispatch();
    bench_functional_floor();
    bench_uvm();
    bench_dnn();
    bench_matrix();
    bench_store();
    bench_spirv();
    vcb_bench::finish();
}
