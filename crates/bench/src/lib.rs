//! # vcb-bench — benchmark targets
//!
//! Two bench binaries (plain `harness = false` mains; the container has
//! no Criterion, so a minimal built-in timer stands in):
//!
//! * `paper_figures` — regenerates every table and figure of the paper
//!   (printing the same rows/series the paper reports) and benchmarks a
//!   representative cell of each.
//! * `simulator` — engineering benchmarks of the simulator substrate
//!   itself (coalescer, cache, dispatch execution, tracing modes).
//!
//! Run with `cargo bench`. Both binaries understand three flags after
//! `--`:
//!
//! * `--json PATH` — also write every timed row (name, iters,
//!   ns-per-iter) to `PATH` as JSON — a `meta` header (host core count,
//!   build profile, quick flag) plus a `rows` array — so the repo's perf
//!   trajectory is machine-readable *and* interpretable across machines
//!   (`BENCH_simulator.json` is the checked-in record; regenerate with
//!   `cargo bench --bench simulator -- --json BENCH_simulator.json`).
//! * `--compare PATH` — after the run, print per-row median deltas
//!   against a baseline JSON (either format: the bare legacy array or
//!   the `meta`+`rows` object) and flag regressions over 25%. Purely
//!   informational: the process still exits 0, so CI can run it
//!   warn-only; rows whose host core count or build profile differ from
//!   the baseline's are called out rather than trusted.
//! * `--quick` — run every benchmark for a single iteration, the CI
//!   smoke mode that keeps the timers compiling and running without
//!   paying for stable medians.

#![warn(missing_docs)]

use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Median regressions beyond this fraction get flagged by `--compare`.
const REGRESSION_THRESHOLD: f64 = 0.25;

struct Config {
    json_path: Option<String>,
    compare_path: Option<String>,
    quick: bool,
}

fn config() -> &'static Config {
    static CONFIG: OnceLock<Config> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let mut json_path = None;
        let mut compare_path = None;
        let mut quick = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => json_path = args.next(),
                "--compare" => compare_path = args.next(),
                "--quick" => quick = true,
                // Cargo passes `--bench` to harness-less bench binaries;
                // ignore it and anything else unrecognized.
                _ => {}
            }
        }
        Config {
            json_path,
            compare_path,
            quick,
        }
    })
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn build_profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

struct Row {
    name: String,
    iters: usize,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
}

fn rows() -> &'static Mutex<Vec<Row>> {
    static ROWS: OnceLock<Mutex<Vec<Row>>> = OnceLock::new();
    ROWS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Times `f` over `samples` timed runs (after one warm-up) and prints a
/// Criterion-style one-liner with the median wall time per run. Under
/// `--quick` a single timed run replaces the sample loop; with `--json`
/// the row is also recorded for [`finish`].
pub fn bench<R>(name: &str, samples: usize, mut f: impl FnMut() -> R) {
    let samples = if config().quick { 1 } else { samples.max(1) };
    std::hint::black_box(f());
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    let (lo, hi) = (times[0], times[times.len() - 1]);
    println!("bench: {name:<44} median {median:>12} ns/iter  (min {lo}, max {hi}, n={samples})");
    rows().lock().expect("bench rows poisoned").push(Row {
        name: name.to_owned(),
        iters: samples,
        median_ns: median,
        min_ns: lo,
        max_ns: hi,
    });
}

/// Writes the recorded rows to the `--json` path (if one was given) and
/// prints the `--compare` report (if a baseline was given). Bench mains
/// call this once at the end.
///
/// # Panics
///
/// Panics when the JSON file cannot be written — a bench run asked to
/// record itself must not silently drop the record. A missing or
/// unparseable `--compare` baseline only warns (the comparison is
/// informational by design).
pub fn finish() {
    let cfg = config();
    let rows = rows().lock().expect("bench rows poisoned");
    if let Some(path) = cfg.json_path.as_deref() {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"meta\":{{\"host_cores\":{},\"profile\":\"{}\",\"quick\":{}}},\n",
            host_cores(),
            build_profile(),
            cfg.quick
        ));
        out.push_str("  \"rows\":[\n");
        for (i, r) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            out.push_str(&format!(
            "    {{\"name\":\"{}\",\"iters\":{},\"median_ns\":{},\"min_ns\":{},\"max_ns\":{}}}{comma}\n",
            r.name, r.iters, r.median_ns, r.min_ns, r.max_ns
        ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write bench JSON {path}: {e}"));
        println!("bench: wrote {} rows to {path}", rows.len());
    }
    if let Some(path) = cfg.compare_path.as_deref() {
        match std::fs::read_to_string(path) {
            Ok(json) => compare_report(path, &json, &rows),
            Err(e) => println!("bench: cannot read baseline {path}: {e} (skipping compare)"),
        }
    }
}

/// A baseline file: optional metadata plus `(name, median_ns)` rows.
#[derive(Debug, Default, PartialEq)]
pub struct Baseline {
    /// Host core count recorded in the baseline's `meta`, if any.
    pub host_cores: Option<u64>,
    /// Build profile recorded in the baseline's `meta`, if any.
    pub profile: Option<String>,
    /// Row name → median nanoseconds.
    pub rows: Vec<(String, u128)>,
}

/// Parses a bench JSON record — either the legacy bare `[...]` row array
/// or the current `{"meta":{...},"rows":[...]}` object. The format is
/// this crate's own writer output, so a tiny scanner (no JSON dependency
/// in the container) is sufficient; unrecognized content yields an empty
/// baseline rather than an error.
pub fn parse_baseline(json: &str) -> Baseline {
    let mut base = Baseline::default();
    if let Some(meta) = extract_object(json, "\"meta\"") {
        base.host_cores = extract_u128(meta, "\"host_cores\"").map(|v| v as u64);
        base.profile = extract_string(meta, "\"profile\"");
    }
    // Row objects are uniform in both formats: scan every `{...}` that
    // carries a "name" and a "median_ns".
    let body = match json.find("\"rows\"") {
        Some(i) => &json[i..],
        None => json,
    };
    let mut rest = body;
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        let obj = &rest[open..open + close + 1];
        if let (Some(name), Some(median)) = (
            extract_string(obj, "\"name\""),
            extract_u128(obj, "\"median_ns\""),
        ) {
            base.rows.push((name, median));
        }
        rest = &rest[open + close + 1..];
    }
    base
}

/// Returns the `{...}` object value following `key`, if present.
fn extract_object<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let at = json.find(key)?;
    let open = json[at..].find('{')? + at;
    let close = json[open..].find('}')? + open;
    Some(&json[open..=close])
}

/// Returns the string value following `key` (`"key":"value"`).
fn extract_string(obj: &str, key: &str) -> Option<String> {
    let at = obj.find(key)? + key.len();
    let colon = obj[at..].find(':')? + at;
    let open = obj[colon..].find('"')? + colon + 1;
    let close = obj[open..].find('"')? + open;
    Some(obj[open..close].to_string())
}

/// Returns the numeric value following `key` (`"key":123`).
fn extract_u128(obj: &str, key: &str) -> Option<u128> {
    let at = obj.find(key)? + key.len();
    let colon = obj[at..].find(':')? + at;
    let digits: String = obj[colon + 1..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Whether a row's comparison against the baseline is informational
/// only (shown, but never regression-eligible). `threads4` rows measure
/// worker-pool scaling; a baseline recorded on a single-core host never
/// saw real parallelism, so comparing a multi-threaded row against it
/// judges scheduler noise, not a regression.
pub fn row_is_informational(name: &str, baseline_host_cores: Option<u64>) -> bool {
    baseline_host_cores == Some(1) && name.contains("threads4")
}

/// Prints per-row median deltas of `rows` vs the baseline, flagging
/// regressions beyond [`REGRESSION_THRESHOLD`]. Never exits non-zero:
/// the step is warn-only by design (quick CI runs are single-iteration
/// medians, and host differences are reported, not judged).
fn compare_report(path: &str, json: &str, rows: &[Row]) {
    let base = parse_baseline(json);
    if base.rows.is_empty() {
        println!("bench: baseline {path} has no parseable rows (skipping compare)");
        return;
    }
    println!("\nbench: comparing against {path}");
    let mut caveats = Vec::new();
    if let Some(cores) = base.host_cores {
        if cores != host_cores() as u64 {
            caveats.push(format!(
                "baseline ran on {cores} host cores, this run on {}",
                host_cores()
            ));
        }
    } else {
        caveats.push("baseline has no meta header (pre-meta record)".to_string());
    }
    if let Some(profile) = base.profile.as_deref() {
        if profile != build_profile() {
            caveats.push(format!(
                "baseline profile `{profile}`, this run `{}`",
                build_profile()
            ));
        }
    }
    if config().quick {
        caveats.push("this run is --quick (single-iteration medians)".to_string());
    }
    for c in &caveats {
        println!("bench:   note: {c}");
    }
    let mut regressions = 0usize;
    for row in rows {
        let Some((_, base_median)) = base.rows.iter().find(|(n, _)| *n == row.name) else {
            println!("bench:   {:<44} (new row, no baseline)", row.name);
            continue;
        };
        let delta = row.median_ns as f64 / (*base_median).max(1) as f64 - 1.0;
        let flag = if row_is_informational(&row.name, base.host_cores) {
            "  (informational: single-core baseline)"
        } else if delta > REGRESSION_THRESHOLD {
            regressions += 1;
            "  << REGRESSION"
        } else {
            ""
        };
        println!(
            "bench:   {:<44} {:>12} ns vs {:>12} ns  {:>+7.1}%{flag}",
            row.name,
            row.median_ns,
            base_median,
            delta * 100.0
        );
    }
    for (name, _) in &base.rows {
        if !rows.iter().any(|r| r.name == *name) {
            println!("bench:   {name:<44} (baseline row not run)");
        }
    }
    if regressions > 0 {
        // GitHub Actions surfaces `::warning::` lines as annotations;
        // locally it is just a loud summary. Warn-only either way.
        println!(
            "::warning title=bench regression::{regressions} row(s) regressed >{:.0}% vs {path}",
            REGRESSION_THRESHOLD * 100.0
        );
    } else {
        println!(
            "bench: no regressions >{:.0}%",
            REGRESSION_THRESHOLD * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_legacy_array_format() {
        let json = r#"[
  {"name":"a/b/1","iters":100,"median_ns":183,"min_ns":181,"max_ns":365},
  {"name":"c","iters":20,"median_ns":7446152,"min_ns":1,"max_ns":2}
]"#;
        let base = parse_baseline(json);
        assert_eq!(base.host_cores, None);
        assert_eq!(
            base.rows,
            vec![("a/b/1".to_string(), 183), ("c".to_string(), 7_446_152)]
        );
    }

    #[test]
    fn parses_meta_and_rows_format() {
        let json = r#"{
  "meta":{"host_cores":4,"profile":"release","quick":false},
  "rows":[
    {"name":"x","iters":3,"median_ns":42,"min_ns":40,"max_ns":44}
  ]
}"#;
        let base = parse_baseline(json);
        assert_eq!(base.host_cores, Some(4));
        assert_eq!(base.profile.as_deref(), Some("release"));
        assert_eq!(base.rows, vec![("x".to_string(), 42)]);
    }

    #[test]
    fn garbage_yields_empty_baseline() {
        assert_eq!(parse_baseline("not json at all"), Baseline::default());
    }

    #[test]
    fn threads4_rows_are_informational_against_single_core_baselines() {
        // A 1-core baseline never exercised real parallelism, so its
        // threads4 medians are scheduler noise — shown but exempt.
        assert!(row_is_informational(
            "dispatch/vadd_256k/detailed/threads4",
            Some(1)
        ));
        assert!(row_is_informational("matrix/fig2_quick/threads4", Some(1)));
        // Multi-core baselines judge threads4 rows normally.
        assert!(!row_is_informational(
            "dispatch/vadd_256k/detailed/threads4",
            Some(4)
        ));
        // Single-threaded rows stay regression-eligible everywhere.
        assert!(!row_is_informational(
            "dispatch/vadd_256k/detailed",
            Some(1)
        ));
        assert!(!row_is_informational("functional_floor/vadd_256k", Some(1)));
        // Pre-meta baselines carry no core count: not exempt.
        assert!(!row_is_informational("matrix/fig2_quick/threads4", None));
    }
}
