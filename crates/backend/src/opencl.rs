//! [`ComputeBackend`] lowered onto the OpenCL-shaped frontend.
//!
//! Sequences record as op lists and replay as `clEnqueueNDRangeKernel`
//! chains, with a `clFinish` at every [`seq_dependency`] boundary.
//! `clSetKernelArg` is sticky, so the replay only re-sets the arguments
//! whose values changed since the kernel's previous dispatch — the same
//! discipline the hand-written iterative hosts used (set invariant args
//! once before the loop, re-set the ping-pong/counter args inside it).
//!
//! [`seq_dependency`]: ComputeBackend::seq_dependency

use std::sync::Arc;

use vcb_core::run::RunFailure;
use vcb_opencl::{ClArg, ClBuffer, Kernel, MemFlags, Program};
use vcb_sim::calls::CallCounter;
use vcb_sim::profile::DeviceProfile;
use vcb_sim::time::SimInstant;
use vcb_sim::timeline::TimingBreakdown;
use vcb_sim::{Api, KernelRegistry};

use crate::backend::{
    BackendResult, BindGroupHandle, BufferHandle, ComputeBackend, KernelHandle, SeqHandle,
    UsageHint,
};
use crate::env::{cl_env, cl_failure, ClEnv};
use crate::envcache::{CachedEnv, EnvReturn};

#[derive(Clone)]
enum Op {
    Kernel(KernelHandle),
    Bind(BindGroupHandle),
    Push(Vec<u8>),
    Dispatch([u32; 3]),
    Dependency,
}

/// Shadow of one kernel's sticky argument state, for change detection.
///
/// A kernel's signature is fixed, so its buffer arity never changes
/// between dispatches; `set_args` enforces that (otherwise positional
/// word slots would shift and the diffing would set wrong arguments).
#[derive(Default)]
struct ArgShadow {
    /// Buffer arity pinned by the first dispatch.
    arity: Option<usize>,
    buffers: Vec<Option<ClBuffer>>,
    words: Vec<Option<u32>>,
}

struct ClKernelEntry {
    kernel: Kernel,
    shadow: ArgShadow,
}

/// The OpenCL lowering of the portable host-program layer.
pub struct OpenClBackend {
    env: ClEnv,
    program: Option<Program>,
    buffers: Vec<ClBuffer>,
    bind_groups: Vec<Vec<BufferHandle>>,
    kernels: Vec<ClKernelEntry>,
    seqs: Vec<Vec<Op>>,
    /// When set, the environment came from (or goes back to) a worker-
    /// local cache; also provides the JIT build cache.
    env_return: Option<EnvReturn>,
}

impl OpenClBackend {
    /// The underlying environment (simulator configuration knobs).
    pub fn env(&self) -> &ClEnv {
        &self.env
    }

    /// Brings up platform/context/queue on `profile`.
    ///
    /// # Errors
    ///
    /// [`RunFailure::Unsupported`] when the device has no OpenCL driver.
    pub fn new(
        profile: &DeviceProfile,
        registry: &Arc<KernelRegistry>,
    ) -> Result<OpenClBackend, RunFailure> {
        Ok(Self::from_env(cl_env(profile, registry)?, None))
    }

    /// Wraps an existing (fresh or cache-reset) environment.
    pub(crate) fn from_env(env: ClEnv, env_return: Option<EnvReturn>) -> OpenClBackend {
        OpenClBackend {
            env,
            program: None,
            buffers: Vec::new(),
            bind_groups: Vec::new(),
            kernels: Vec::new(),
            seqs: Vec::new(),
            env_return,
        }
    }

    fn flags(usage: UsageHint) -> MemFlags {
        match usage {
            UsageHint::ReadOnly => MemFlags::ReadOnly,
            UsageHint::WriteOnly => MemFlags::WriteOnly,
            UsageHint::ReadWrite => MemFlags::ReadWrite,
        }
    }

    /// Sets exactly the arguments that differ from the kernel's sticky
    /// state, then updates the shadow.
    fn set_args(
        &mut self,
        k: KernelHandle,
        bind: BindGroupHandle,
        push: &[u8],
    ) -> BackendResult<()> {
        let buffers: Vec<ClBuffer> = self.bind_groups[bind.0]
            .iter()
            .map(|b| self.buffers[b.0])
            .collect();
        let words: Vec<u32> = push
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let entry = &mut self.kernels[k.0];
        let arity = *entry.shadow.arity.get_or_insert(buffers.len());
        if arity != buffers.len() {
            return Err(RunFailure::Error(format!(
                "kernel `{}` dispatched with {} buffers after {} (its signature is fixed)",
                entry.kernel.name(),
                buffers.len(),
                arity
            )));
        }
        // Only grow the shadows: sticky arguments keep their values even
        // when a dispatch passes fewer push words than the previous one.
        if entry.shadow.buffers.len() < buffers.len() {
            entry.shadow.buffers.resize(buffers.len(), None);
        }
        if entry.shadow.words.len() < words.len() {
            entry.shadow.words.resize(words.len(), None);
        }
        for (slot, buffer) in buffers.iter().enumerate() {
            if entry.shadow.buffers[slot] != Some(*buffer) {
                entry.kernel.set_arg(slot as u32, ClArg::Buffer(*buffer));
                entry.shadow.buffers[slot] = Some(*buffer);
            }
        }
        for (i, word) in words.iter().enumerate() {
            if entry.shadow.words[i] != Some(*word) {
                entry
                    .kernel
                    .set_arg((buffers.len() + i) as u32, ClArg::U32(*word));
                entry.shadow.words[i] = Some(*word);
            }
        }
        Ok(())
    }

    fn replay(&mut self, seq: SeqHandle, wait_tail: bool) -> BackendResult<()> {
        // Take the op list out for the duration of the replay (set_args
        // needs `&mut self`); restored below even on error.
        let ops = std::mem::take(&mut self.seqs[seq.0]);
        let result = self.replay_ops(&ops, wait_tail);
        self.seqs[seq.0] = ops;
        result
    }

    fn replay_ops(&mut self, ops: &[Op], wait_tail: bool) -> BackendResult<()> {
        let mut kernel: Option<KernelHandle> = None;
        let mut bind: Option<BindGroupHandle> = None;
        let mut push: &[u8] = &[];
        let mut synced = false;
        for op in ops {
            match op {
                Op::Kernel(k) => kernel = Some(*k),
                Op::Bind(bg) => bind = Some(*bg),
                Op::Push(p) => push = p,
                Op::Dispatch(groups) => {
                    let k = kernel
                        .ok_or_else(|| RunFailure::Error("dispatch before seq_kernel".into()))?;
                    let bg =
                        bind.ok_or_else(|| RunFailure::Error("dispatch before seq_bind".into()))?;
                    self.set_args(k, bg, push)?;
                    let local = self.kernels[k.0].kernel.work_group_size();
                    let global = [
                        u64::from(groups[0]) * u64::from(local[0]),
                        u64::from(groups[1]) * u64::from(local[1]),
                        u64::from(groups[2]) * u64::from(local[2]),
                    ];
                    self.env
                        .queue
                        .enqueue_nd_range_kernel(&self.kernels[k.0].kernel, global)
                        .map_err(cl_failure)?;
                    synced = false;
                }
                Op::Dependency => {
                    self.env.queue.finish();
                    synced = true;
                }
            }
        }
        if wait_tail && !synced {
            self.env.queue.finish();
        }
        Ok(())
    }
}

impl ComputeBackend for OpenClBackend {
    fn api(&self) -> Api {
        Api::OpenCl
    }

    fn device_name(&self) -> String {
        self.env.context.profile().name
    }

    fn now(&self) -> SimInstant {
        self.env.context.now()
    }

    fn call_counts(&self) -> CallCounter {
        self.env.context.call_counts()
    }

    fn breakdown(&self) -> TimingBreakdown {
        self.env.context.breakdown()
    }

    fn sim_fingerprint(&self) -> u64 {
        self.env.context.sim_fingerprint()
    }

    fn sync(&mut self) {
        self.env.queue.finish();
    }

    fn load_program(&mut self, cl_source: &str) -> BackendResult<()> {
        let program = Program::create_with_source(&self.env.context, cl_source);
        match &self.env_return {
            // Re-attach the worker-local cache's build of this source:
            // skips the host-side compile, charges the recorded cost.
            Some(ticket) => {
                let prebuilt = ticket.cache().borrow_mut().jit_get(ticket.key(), cl_source);
                let built = program
                    .build_cached(prebuilt.as_ref())
                    .map_err(cl_failure)?;
                if prebuilt.is_none() {
                    ticket
                        .cache()
                        .borrow_mut()
                        .jit_put(ticket.key(), cl_source, built);
                }
            }
            None => program.build().map_err(cl_failure)?,
        }
        self.program = Some(program);
        Ok(())
    }

    fn upload(&mut self, data: &[u8], usage: UsageHint) -> BackendResult<BufferHandle> {
        let buffer = self
            .env
            .context
            .create_buffer(Self::flags(usage), data.len() as u64)
            .map_err(cl_failure)?;
        self.env
            .queue
            .enqueue_write_buffer(&buffer, data)
            .map_err(cl_failure)?;
        self.buffers.push(buffer);
        Ok(BufferHandle(self.buffers.len() - 1))
    }

    fn alloc(&mut self, bytes: u64, usage: UsageHint) -> BackendResult<BufferHandle> {
        let buffer = self
            .env
            .context
            .create_buffer(Self::flags(usage), bytes)
            .map_err(cl_failure)?;
        self.buffers.push(buffer);
        Ok(BufferHandle(self.buffers.len() - 1))
    }

    fn alloc_host(&mut self, bytes: u64) -> BackendResult<BufferHandle> {
        self.alloc(bytes, UsageHint::ReadWrite)
    }

    fn download(&mut self, buf: BufferHandle) -> BackendResult<Vec<u8>> {
        self.env
            .queue
            .enqueue_read_buffer(&self.buffers[buf.0])
            .map_err(cl_failure)
    }

    fn write_host(&mut self, buf: BufferHandle, data: &[u8]) -> BackendResult<()> {
        self.env
            .queue
            .enqueue_write_buffer(&self.buffers[buf.0], data)
            .map_err(cl_failure)
    }

    fn read_host(&mut self, buf: BufferHandle) -> BackendResult<Vec<u8>> {
        // A blocking clEnqueueReadBuffer synchronizes implicitly.
        self.download(buf)
    }

    fn upload_into(&mut self, buf: BufferHandle, data: &[u8]) -> BackendResult<()> {
        self.write_host(buf, data)
    }

    fn bind_group(&mut self, buffers: &[BufferHandle]) -> BackendResult<BindGroupHandle> {
        self.bind_groups.push(buffers.to_vec());
        Ok(BindGroupHandle(self.bind_groups.len() - 1))
    }

    fn bind_group_like(
        &mut self,
        _like: BindGroupHandle,
        buffers: &[BufferHandle],
    ) -> BackendResult<BindGroupHandle> {
        self.bind_group(buffers)
    }

    fn kernel(
        &mut self,
        name: &str,
        _layout_of: BindGroupHandle,
        _push_bytes: u32,
    ) -> BackendResult<KernelHandle> {
        let program = self
            .program
            .as_ref()
            .ok_or_else(|| RunFailure::Error("kernel() before load_program()".into()))?;
        let kernel = Kernel::new(program, name).map_err(cl_failure)?;
        self.kernels.push(ClKernelEntry {
            kernel,
            shadow: ArgShadow::default(),
        });
        Ok(KernelHandle(self.kernels.len() - 1))
    }

    fn seq_begin(&mut self) -> BackendResult<SeqHandle> {
        self.seqs.push(Vec::new());
        Ok(SeqHandle(self.seqs.len() - 1))
    }

    fn seq_kernel(&mut self, seq: SeqHandle, kernel: KernelHandle) -> BackendResult<()> {
        self.seqs[seq.0].push(Op::Kernel(kernel));
        Ok(())
    }

    fn seq_bind(&mut self, seq: SeqHandle, binds: BindGroupHandle) -> BackendResult<()> {
        self.seqs[seq.0].push(Op::Bind(binds));
        Ok(())
    }

    fn seq_push(&mut self, seq: SeqHandle, data: &[u8]) -> BackendResult<()> {
        self.seqs[seq.0].push(Op::Push(data.to_vec()));
        Ok(())
    }

    fn seq_dispatch(&mut self, seq: SeqHandle, groups: [u32; 3]) -> BackendResult<()> {
        self.seqs[seq.0].push(Op::Dispatch(groups));
        Ok(())
    }

    fn seq_barrier(&mut self, _seq: SeqHandle) -> BackendResult<()> {
        // In-order queue: device-side ordering is free.
        Ok(())
    }

    fn seq_dependency(&mut self, seq: SeqHandle) -> BackendResult<()> {
        self.seqs[seq.0].push(Op::Dependency);
        Ok(())
    }

    fn seq_split(&mut self, _seq: SeqHandle) -> BackendResult<()> {
        Ok(())
    }

    fn seq_end(&mut self, _seq: SeqHandle) -> BackendResult<()> {
        Ok(())
    }

    fn run(&mut self, seq: SeqHandle) -> BackendResult<()> {
        self.replay(seq, true)
    }

    fn run_async(&mut self, seq: SeqHandle) -> BackendResult<()> {
        self.replay(seq, false)
    }
}

impl Drop for OpenClBackend {
    fn drop(&mut self) {
        if let Some(ticket) = &self.env_return {
            ticket.give_back(CachedEnv::Cl(self.env.clone()));
        }
    }
}

impl std::fmt::Debug for OpenClBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenClBackend")
            .field("device", &self.env.context.profile().name)
            .field("buffers", &self.buffers.len())
            .finish()
    }
}
