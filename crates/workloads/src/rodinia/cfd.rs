//! cfd — unstructured-grid Euler solver (Table I: Unstructured Grid /
//! Fluid Dynamics).
//!
//! Rodinia's cfd iterates three kernels per time step — `step_factor`,
//! `compute_flux`, `time_step` — over a finite-volume mesh with four
//! faces per element. The Vulkan port records all iterations into one
//! command buffer, but must bind three different compute pipelines every
//! iteration, and the kernels are long; §V-A2 explains why cfd's speedup
//! is modest (1.38x vs CUDA, 1.04x vs OpenCL) and does not grow with the
//! input (the iteration count is fixed).
//!
//! *Substitutions* (see DESIGN.md): the mesh is generated (grid-like with
//! long-range links) instead of read from the `missile.domn` files, the
//! flux function is a simplified first-order scheme with the same
//! loads/flops structure, and the mobile runs report the out-of-memory
//! exclusion the paper observed ("cfd could not fit on both platforms").

use std::sync::Arc;

use vcb_core::run::{RunFailure, RunOutcome, SizeSpec};
use vcb_core::suite::{self, BenchmarkMeta};
use vcb_core::workload::{RunOpts, Workload};
use vcb_sim::exec::{GroupCtx, KernelInfo};
use vcb_sim::profile::{DeviceClass, DeviceProfile};
use vcb_sim::{Api, KernelRegistry, SimResult};

use crate::common::{
    approx_eq_f32, bytes_of, measure, scaled_iterations, to_f32, BodyOutcome, ComputeBackend,
    UsageHint,
};
use crate::data;

/// Workload name.
pub const NAME: &str = "cfd";
/// Per-element CFL step-factor kernel.
pub const KERNEL_STEP_FACTOR: &str = "cfd_step_factor";
/// Face-flux accumulation kernel.
pub const KERNEL_FLUX: &str = "cfd_compute_flux";
/// Explicit time-integration kernel.
pub const KERNEL_TIME_STEP: &str = "cfd_time_step";
/// Workgroup size.
pub const LOCAL_SIZE: u32 = 192;
/// Conserved variables per element (density, 3x momentum, energy).
pub const NVAR: usize = 5;
/// Faces per element.
pub const NFACE: usize = 4;
/// Fixed iteration count at paper scale (Rodinia runs 2000; the speedup
/// is iteration-count independent, so the default is kept tractable and
/// `--paper-scale` raises it).
pub const ITERATIONS: u64 = 200;
/// CFL factor.
pub const CFL: f32 = 0.25;

/// The GLSL compute shaders the SPIR-V binaries are built from
/// (`cfd_compute_flux` shown; step-factor and time-step are analogous).
pub const GLSL_SOURCE: &str = r#"
#version 450
layout(local_size_x = 192) in;
layout(set = 0, binding = 0) readonly buffer Var { float variables[]; };
layout(set = 0, binding = 1) readonly buffer Neigh { int neighbors[]; };
layout(set = 0, binding = 2) readonly buffer Norm { float normals[]; };
layout(set = 0, binding = 3) buffer Flux { float fluxes[]; };
layout(push_constant) uniform Params { uint n; };

const int NVAR = 5;
const int NFACE = 4;

void main() {
    uint i = gl_GlobalInvocationID.x;
    if (i >= n) return;
    float acc[NVAR];
    for (int k = 0; k < NVAR; ++k) acc[k] = 0.0;
    for (int f = 0; f < NFACE; ++f) {
        int nb = neighbors[i * uint(NFACE) + uint(f)];
        float nx = normals[(i * uint(NFACE) + uint(f)) * 3u];
        float w = abs(nx) + 0.25;
        if (nb >= 0) {
            for (int k = 0; k < NVAR; ++k) {
                acc[k] += w * (variables[uint(nb) + uint(k) * n]
                             - variables[i + uint(k) * n]);
            }
        } else {
            acc[1] -= w * variables[i + n];
            acc[2] -= w * variables[i + 2u * n];
            acc[3] -= w * variables[i + 3u * n];
        }
    }
    for (int k = 0; k < NVAR; ++k) fluxes[i + uint(k) * n] = acc[k];
}
"#;

/// The OpenCL C twins of the kernels (abridged Rodinia `Kernels.cl`).
pub const CL_SOURCE: &str = r#"
#define NVAR 5
#define NFACE 4
#define GAMMA 1.4f

__kernel void cfd_step_factor(__global const float* var,
                              __global const float* areas,
                              __global float* step,
                              uint n,
                              float cfl) {
    uint i = get_global_id(0);
    if (i >= n) return;
    float rho = var[i];
    float mx = var[i + n], my = var[i + 2 * n], mz = var[i + 3 * n];
    float e = var[i + 4 * n];
    float speed2 = (mx * mx + my * my + mz * mz) / (rho * rho);
    float pressure = (GAMMA - 1.0f) * (e - 0.5f * rho * speed2);
    float c = sqrt(GAMMA * fabs(pressure) / rho);
    step[i] = cfl * sqrt(areas[i]) / (sqrt(speed2) + c + 1e-6f);
}

__kernel void cfd_compute_flux(__global const float* var,
                               __global const int* neighbors,
                               __global const float* normals,
                               __global float* fluxes,
                               uint n) {
    uint i = get_global_id(0);
    if (i >= n) return;
    float acc[NVAR];
    for (int k = 0; k < NVAR; ++k) acc[k] = 0.0f;
    for (int f = 0; f < NFACE; ++f) {
        int nb = neighbors[i * NFACE + f];
        float nx = normals[(i * NFACE + f) * 3];
        float w = fabs(nx) + 0.25f;
        if (nb >= 0) {
            for (int k = 0; k < NVAR; ++k) {
                float d = var[nb + k * n] - var[i + k * n];
                acc[k] += w * d;
            }
        } else {
            /* solid boundary: reflect momentum */
            acc[1] -= w * var[i + n];
            acc[2] -= w * var[i + 2 * n];
            acc[3] -= w * var[i + 3 * n];
        }
    }
    for (int k = 0; k < NVAR; ++k) fluxes[i + k * n] = acc[k];
}

__kernel void cfd_time_step(__global float* var,
                            __global const float* fluxes,
                            __global const float* step,
                            uint n) {
    uint i = get_global_id(0);
    if (i >= n) return;
    float s = step[i];
    for (int k = 0; k < NVAR; ++k) {
        var[i + k * n] += s * fluxes[i + k * n];
    }
}
"#;

/// Registers all three kernel bodies.
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register(registry: &mut KernelRegistry) -> SimResult<()> {
    const GAMMA: f32 = 1.4;
    let src_third = CL_SOURCE.len() as u64 / 3;

    // parallel_groups audit (all three cfd kernels): classic ping-pong
    // stages — each item writes only its own cells of the output plane
    // and reads planes no group writes in the same dispatch.
    let step_factor = KernelInfo::new(KERNEL_STEP_FACTOR, [LOCAL_SIZE, 1, 1])
        .reads(0, "var")
        .reads(1, "areas")
        .writes(2, "step")
        .push_constants(8)
        .parallel_groups()
        .source_bytes(src_third)
        .build();
    registry.register(
        step_factor,
        Arc::new(move |ctx: &mut GroupCtx<'_>| {
            let var = ctx.global::<f32>(0)?;
            let areas = ctx.global::<f32>(1)?;
            let step = ctx.global::<f32>(2)?;
            let n = ctx.push_u32(0) as usize;
            let cfl = ctx.push_f32(4);
            ctx.for_lanes(|lane| {
                let i = lane.global_linear() as usize;
                if i >= n {
                    return;
                }
                let rho = lane.ld(&var, i);
                let mx = lane.ld(&var, i + n);
                let my = lane.ld(&var, i + 2 * n);
                let mz = lane.ld(&var, i + 3 * n);
                let e = lane.ld(&var, i + 4 * n);
                let speed2 = (mx * mx + my * my + mz * mz) / (rho * rho);
                let pressure = (GAMMA - 1.0) * (e - 0.5 * rho * speed2);
                let c = (GAMMA * pressure.abs() / rho).sqrt();
                lane.alu(20);
                let a = lane.ld(&areas, i);
                lane.st(&step, i, cfl * a.sqrt() / (speed2.sqrt() + c + 1e-6));
            });
            Ok(())
        }),
    )?;

    let flux = KernelInfo::new(KERNEL_FLUX, [LOCAL_SIZE, 1, 1])
        .reads(0, "var")
        .reads(1, "neighbors")
        .reads(2, "normals")
        .writes(3, "fluxes")
        .push_constants(4)
        .parallel_groups()
        .source_bytes(src_third)
        .build();
    registry.register(
        flux,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let var = ctx.global::<f32>(0)?;
            let neighbors = ctx.global::<i32>(1)?;
            let normals = ctx.global::<f32>(2)?;
            let fluxes = ctx.global::<f32>(3)?;
            let n = ctx.push_u32(0) as usize;
            ctx.for_lanes(|lane| {
                let i = lane.global_linear() as usize;
                if i >= n {
                    return;
                }
                let mut acc = [0.0f32; NVAR];
                for f in 0..NFACE {
                    let nb = lane.ld(&neighbors, i * NFACE + f);
                    let nx = lane.ld(&normals, (i * NFACE + f) * 3);
                    let w = nx.abs() + 0.25;
                    if nb >= 0 {
                        let nb = nb as usize;
                        for (k, a) in acc.iter_mut().enumerate() {
                            let d = lane.ld(&var, nb + k * n) - lane.ld(&var, i + k * n);
                            *a += w * d;
                        }
                        lane.alu(3 * NVAR as u32 + 3);
                    } else {
                        acc[1] -= w * lane.ld(&var, i + n);
                        acc[2] -= w * lane.ld(&var, i + 2 * n);
                        acc[3] -= w * lane.ld(&var, i + 3 * n);
                        lane.alu(9);
                    }
                }
                for (k, a) in acc.iter().enumerate() {
                    lane.st(&fluxes, i + k * n, *a);
                }
            });
            Ok(())
        }),
    )?;

    let time_step = KernelInfo::new(KERNEL_TIME_STEP, [LOCAL_SIZE, 1, 1])
        .writes(0, "var")
        .reads(1, "fluxes")
        .reads(2, "step")
        .push_constants(4)
        .parallel_groups()
        .source_bytes(src_third)
        .build();
    registry.register(
        time_step,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let var = ctx.global::<f32>(0)?;
            let fluxes = ctx.global::<f32>(1)?;
            let step = ctx.global::<f32>(2)?;
            let n = ctx.push_u32(0) as usize;
            ctx.for_lanes(|lane| {
                let i = lane.global_linear() as usize;
                if i >= n {
                    return;
                }
                let s = lane.ld(&step, i);
                for k in 0..NVAR {
                    let cur = lane.ld(&var, i + k * n);
                    let fl = lane.ld(&fluxes, i + k * n);
                    lane.alu(2);
                    lane.st(&var, i + k * n, cur + s * fl);
                }
            });
            Ok(())
        }),
    )
}

/// The generated mesh and initial conditions.
#[derive(Debug, Clone)]
pub struct CfdInput {
    /// Conserved variables, `NVAR` planes of `n`.
    pub var: Vec<f32>,
    /// Cell areas.
    pub areas: Vec<f32>,
    /// Face neighbor indices (`-1` = boundary).
    pub neighbors: Vec<i32>,
    /// Face normals (3 components per face).
    pub normals: Vec<f32>,
}

/// Generates a deterministic mesh and freestream-ish initial state.
pub fn generate(n: usize, seed: u64) -> CfdInput {
    let mut var = Vec::with_capacity(NVAR * n);
    var.extend(data::uniform_f32(n, seed, 0.9, 1.1)); // density
    var.extend(data::uniform_f32(n, seed ^ 0x1, -0.1, 0.4)); // mx
    var.extend(data::uniform_f32(n, seed ^ 0x2, -0.1, 0.1)); // my
    var.extend(data::uniform_f32(n, seed ^ 0x3, -0.1, 0.1)); // mz
    var.extend(data::uniform_f32(n, seed ^ 0x4, 2.0, 2.5)); // energy
    CfdInput {
        var,
        areas: data::uniform_f32(n, seed ^ 0x5, 0.5, 1.5),
        neighbors: data::cfd_mesh(n, seed ^ 0x6),
        normals: data::uniform_f32(n * NFACE * 3, seed ^ 0x7, -1.0, 1.0),
    }
}

/// CPU reference: `iterations` of the three-kernel loop, same operation
/// order as the GPU code.
pub fn reference(input: &CfdInput, n: usize, iterations: u64) -> Vec<f32> {
    const GAMMA: f32 = 1.4;
    let mut var = input.var.clone();
    let mut step = vec![0.0f32; n];
    let mut fluxes = vec![0.0f32; NVAR * n];
    for _ in 0..iterations {
        for i in 0..n {
            let rho = var[i];
            let (mx, my, mz) = (var[i + n], var[i + 2 * n], var[i + 3 * n]);
            let e = var[i + 4 * n];
            let speed2 = (mx * mx + my * my + mz * mz) / (rho * rho);
            let pressure = (GAMMA - 1.0) * (e - 0.5 * rho * speed2);
            let c = (GAMMA * pressure.abs() / rho).sqrt();
            step[i] = CFL * input.areas[i].sqrt() / (speed2.sqrt() + c + 1e-6);
        }
        for i in 0..n {
            let mut acc = [0.0f32; NVAR];
            for f in 0..NFACE {
                let nb = input.neighbors[i * NFACE + f];
                let nx = input.normals[(i * NFACE + f) * 3];
                let w = nx.abs() + 0.25;
                if nb >= 0 {
                    let nb = nb as usize;
                    for (k, a) in acc.iter_mut().enumerate() {
                        *a += w * (var[nb + k * n] - var[i + k * n]);
                    }
                } else {
                    acc[1] -= w * var[i + n];
                    acc[2] -= w * var[i + 2 * n];
                    acc[3] -= w * var[i + 3 * n];
                }
            }
            for (k, a) in acc.iter().enumerate() {
                fluxes[i + k * n] = *a;
            }
        }
        for i in 0..n {
            for k in 0..NVAR {
                var[i + k * n] += step[i] * fluxes[i + k * n];
            }
        }
    }
    var
}

fn groups(n: usize) -> u32 {
    (n as u32).div_ceil(LOCAL_SIZE)
}

/// The paper could not fit cfd's data sets on either mobile platform
/// (§V-B2); the exclusion is reproduced for mobile-class devices.
fn check_fits(profile: &DeviceProfile) -> Result<(), RunFailure> {
    if profile.class == DeviceClass::Mobile {
        return Err(RunFailure::OutOfMemory);
    }
    Ok(())
}

/// The one host program behind all three APIs: `iterations` time steps
/// of three dependent kernels over the mesh, recorded as one sequence.
/// Three pipelines re-bound every iteration — "this overhead of binding
/// compute pipelines plus the longer kernel computation times make the
/// launch overhead savings not that significant" (§V-A2).
fn host_program(
    b: &mut dyn ComputeBackend,
    n: usize,
    iterations: u64,
    input: &CfdInput,
    expected: Option<&Vec<f32>>,
) -> Result<BodyOutcome, RunFailure> {
    let var = b.upload(bytes_of(&input.var), UsageHint::ReadWrite)?;
    let areas = b.upload(bytes_of(&input.areas), UsageHint::ReadOnly)?;
    let neighbors = b.upload(bytes_of(&input.neighbors), UsageHint::ReadOnly)?;
    let normals = b.upload(bytes_of(&input.normals), UsageHint::ReadOnly)?;
    let step = b.alloc((n * 4) as u64, UsageHint::ReadWrite)?;
    let fluxes = b.alloc((NVAR * n * 4) as u64, UsageHint::ReadWrite)?;
    b.load_program(CL_SOURCE)?;

    let bind_sf = b.bind_group(&[var, areas, step])?;
    let bind_fl = b.bind_group(&[var, neighbors, normals, fluxes])?;
    let bind_ts = b.bind_group(&[var, fluxes, step])?;
    let k_sf = b.kernel(KERNEL_STEP_FACTOR, bind_sf, 8)?;
    let k_fl = b.kernel(KERNEL_FLUX, bind_fl, 4)?;
    let k_ts = b.kernel(KERNEL_TIME_STEP, bind_ts, 4)?;

    let g = [groups(n), 1, 1];
    let mut push_sf = Vec::with_capacity(8);
    push_sf.extend_from_slice(&(n as u32).to_le_bytes());
    push_sf.extend_from_slice(&CFL.to_le_bytes());
    let seq = b.seq_begin()?;
    for _ in 0..iterations {
        b.seq_kernel(seq, k_sf)?;
        b.seq_bind(seq, bind_sf)?;
        b.seq_push(seq, &push_sf)?;
        b.seq_dispatch(seq, g)?;
        b.seq_dependency(seq)?;
        b.seq_kernel(seq, k_fl)?;
        b.seq_bind(seq, bind_fl)?;
        b.seq_push(seq, &(n as u32).to_le_bytes())?;
        b.seq_dispatch(seq, g)?;
        b.seq_dependency(seq)?;
        b.seq_kernel(seq, k_ts)?;
        b.seq_bind(seq, bind_ts)?;
        b.seq_push(seq, &(n as u32).to_le_bytes())?;
        b.seq_dispatch(seq, g)?;
        b.seq_dependency(seq)?;
    }
    b.seq_end(seq)?;

    let compute_start = b.now();
    b.run(seq)?;
    let compute_time = b.now().duration_since(compute_start);

    let out = to_f32(&b.download(var)?);
    Ok(BodyOutcome {
        validated: expected.is_none_or(|e| approx_eq_f32(&out, e, 1e-2)),
        compute_time,
    })
}

fn run(
    api: Api,
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    check_fits(profile)?;
    let n = size.n as usize;
    let iterations = scaled_iterations(ITERATIONS, opts);
    let mut b = vcb_backend::create_with(api, profile, registry, &opts.into())?;
    let input = generate(n, opts.seed);
    let expected = opts.validate.then(|| reference(&input, n, iterations));
    measure(NAME, &size.label, b.as_mut(), |b| {
        host_program(b, n, iterations, &input, expected.as_ref())
    })
}

/// The cfd suite entry.
#[derive(Debug, Clone)]
pub struct Cfd {
    registry: Arc<KernelRegistry>,
}

impl Cfd {
    /// Creates the workload against a kernel registry.
    pub fn new(registry: Arc<KernelRegistry>) -> Self {
        Cfd { registry }
    }
}

impl Workload for Cfd {
    fn meta(&self) -> BenchmarkMeta {
        *suite::find(NAME).expect("cfd is in Table I")
    }

    fn sizes(&self, class: DeviceClass) -> Vec<SizeSpec> {
        match class {
            DeviceClass::Desktop => vec![
                SizeSpec::new("97K", 97_000),
                SizeSpec::new("193K", 193_000),
                SizeSpec::new("232K", 232_000),
            ],
            // The paper attempted the same data sets on mobile; they did
            // not fit (§V-B2). One entry keeps the failure visible.
            DeviceClass::Mobile => vec![SizeSpec::new("97K", 97_000)],
        }
    }

    fn run(&self, api: Api, device: &DeviceProfile, size: &SizeSpec, opts: &RunOpts) -> RunOutcome {
        run(api, device, &self.registry, size, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_core::run::speedup;
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        let mut r = KernelRegistry::new();
        register(&mut r).unwrap();
        Arc::new(r)
    }

    fn quick_opts() -> RunOpts {
        RunOpts {
            scale: 0.05, // 10 iterations
            ..RunOpts::default()
        }
    }

    #[test]
    fn state_stays_finite() {
        let n = 1000;
        let input = generate(n, 1);
        let out = reference(&input, n, 50);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn all_apis_match_reference() {
        let registry = registry();
        let size = SizeSpec::new("2k", 2000);
        let w = Cfd::new(Arc::clone(&registry));
        for api in Api::ALL {
            let record = w
                .run(api, &devices::gtx1050ti(), &size, &quick_opts())
                .unwrap();
            assert!(record.validated, "{api} failed validation");
        }
    }

    #[test]
    fn mobile_reports_out_of_memory() {
        let registry = registry();
        let size = SizeSpec::new("97K", 97_000);
        let w = Cfd::new(Arc::clone(&registry));
        for device in [devices::powervr_g6430(), devices::adreno506()] {
            let result = w.run(Api::OpenCl, &device, &size, &quick_opts());
            assert!(
                matches!(result, Err(RunFailure::OutOfMemory)),
                "{}",
                device.name
            );
        }
    }

    #[test]
    fn modest_speedup_vs_opencl() {
        // §V-A2: cfd achieves ~1.04x vs OpenCL — pipeline binds eat the
        // launch savings. The effect needs the paper's element counts;
        // small meshes become launch-bound and overstate Vulkan.
        let registry = registry();
        let size = SizeSpec::new("97K", 97_000);
        let w = Cfd::new(Arc::clone(&registry));
        let profile = devices::gtx1050ti();
        let opts = RunOpts {
            scale: 0.05, // 10 iterations; cfd's ratio is iteration-invariant
            validate: false,
            ..RunOpts::default()
        };
        let vk = w.run(Api::Vulkan, &profile, &size, &opts).unwrap();
        let cl = w.run(Api::OpenCl, &profile, &size, &opts).unwrap();
        let s = speedup(&cl, &vk);
        assert!((0.9..1.8).contains(&s), "cfd speedup vs OpenCL {s}");
    }
}
