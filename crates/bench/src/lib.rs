//! # vcb-bench — benchmark targets
//!
//! Two bench binaries (plain `harness = false` mains; the container has
//! no Criterion, so a minimal built-in timer stands in):
//!
//! * `paper_figures` — regenerates every table and figure of the paper
//!   (printing the same rows/series the paper reports) and benchmarks a
//!   representative cell of each.
//! * `simulator` — engineering benchmarks of the simulator substrate
//!   itself (coalescer, cache, dispatch execution, tracing modes).
//!
//! Run with `cargo bench`.

#![warn(missing_docs)]

use std::time::Instant;

/// Times `f` over `samples` timed runs (after one warm-up) and prints a
/// Criterion-style one-liner with the median wall time per run.
pub fn bench<R>(name: &str, samples: usize, mut f: impl FnMut() -> R) {
    let samples = samples.max(1);
    std::hint::black_box(f());
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    let (lo, hi) = (times[0], times[times.len() - 1]);
    println!("bench: {name:<44} median {median:>12} ns/iter  (min {lo}, max {hi}, n={samples})");
}
