//! Platforms, devices and contexts.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use vcb_sim::calls::CallCounter;
use vcb_sim::engine::Gpu;
use vcb_sim::mem::{BufferId, HeapAllocation};
use vcb_sim::profile::{DeviceProfile, DriverProfile};
use vcb_sim::time::{SimDuration, SimInstant};
use vcb_sim::timeline::{CostKind, TimingBreakdown};
use vcb_sim::{Api, KernelRegistry, TraceMode};

use crate::error::{ClError, ClResult};

/// An OpenCL platform (`cl_platform_id`): one vendor's driver stack.
#[derive(Clone)]
pub struct Platform {
    profiles: Vec<DeviceProfile>,
    registry: Arc<KernelRegistry>,
}

impl Platform {
    /// `clGetPlatformIDs`: builds the platform list for a simulated
    /// machine, keeping only devices with OpenCL drivers.
    pub fn enumerate(profiles: &[DeviceProfile], registry: Arc<KernelRegistry>) -> Vec<Platform> {
        profiles
            .iter()
            .filter(|p| p.driver(Api::OpenCl).is_some())
            .map(|p| Platform {
                profiles: vec![p.clone()],
                registry: Arc::clone(&registry),
            })
            .collect()
    }

    /// `clGetDeviceIDs`.
    pub fn devices(&self) -> Vec<ClDeviceId> {
        (0..self.profiles.len())
            .map(|index| ClDeviceId {
                profile: self.profiles[index].clone(),
                registry: Arc::clone(&self.registry),
            })
            .collect()
    }

    /// Platform name (`CL_PLATFORM_NAME`).
    pub fn name(&self) -> String {
        self.profiles
            .first()
            .map(|p| format!("{} OpenCL Platform", p.vendor))
            .unwrap_or_else(|| "Empty Platform".into())
    }
}

impl fmt::Debug for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Platform")
            .field("name", &self.name())
            .finish()
    }
}

/// An OpenCL device handle (`cl_device_id`).
#[derive(Clone)]
pub struct ClDeviceId {
    pub(crate) profile: DeviceProfile,
    pub(crate) registry: Arc<KernelRegistry>,
}

impl ClDeviceId {
    /// Device name (`CL_DEVICE_NAME`).
    pub fn name(&self) -> &str {
        &self.profile.name
    }

    /// Supported OpenCL version string (`CL_DEVICE_VERSION`); Table II
    /// notes NVIDIA caps at 1.2 while AMD exposes 2.0.
    pub fn version(&self) -> &str {
        &self
            .profile
            .driver(Api::OpenCl)
            .expect("constructed from platforms with OpenCL drivers")
            .api_version
    }
}

impl fmt::Debug for ClDeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClDeviceId")
            .field("name", &self.name())
            .finish()
    }
}

pub(crate) struct ContextShared {
    pub(crate) gpu: Gpu,
    pub(crate) driver: DriverProfile,
    pub(crate) registry: Arc<KernelRegistry>,
    pub(crate) breakdown: TimingBreakdown,
    pub(crate) host_now: SimInstant,
    pub(crate) queues: Vec<SimInstant>,
    pub(crate) calls: CallCounter,
}

impl ContextShared {
    pub(crate) fn api_call(&mut self, name: &'static str, cost: SimDuration) {
        self.calls.record(name);
        self.host_now += cost;
        self.breakdown.charge(CostKind::HostApi, cost);
    }
}

/// An OpenCL context (`cl_context`) on one device.
#[derive(Clone)]
pub struct Context {
    pub(crate) shared: Rc<RefCell<ContextShared>>,
}

impl Context {
    /// `clCreateContext` for a single device.
    ///
    /// # Errors
    ///
    /// [`ClError::DeviceNotFound`] if the device lost its OpenCL driver
    /// (defensive; enumeration normally filters).
    pub fn new(device: &ClDeviceId) -> ClResult<Context> {
        let driver =
            device
                .profile
                .driver(Api::OpenCl)
                .cloned()
                .ok_or_else(|| ClError::DeviceNotFound {
                    device: device.profile.name.clone(),
                })?;
        let mut shared = ContextShared {
            gpu: Gpu::new(device.profile.clone()),
            driver,
            registry: Arc::clone(&device.registry),
            breakdown: TimingBreakdown::new(),
            host_now: SimInstant::EPOCH,
            queues: Vec::new(),
            calls: CallCounter::new(),
        };
        // Explicit context management is part of OpenCL's fixed overhead
        // (§V-A2 mentions it alongside JIT as the reason kernel-only times
        // are compared).
        shared.api_call("clCreateContext", SimDuration::from_micros(260.0));
        Ok(Context {
            shared: Rc::new(RefCell::new(shared)),
        })
    }

    /// Simulated host-side "now".
    pub fn now(&self) -> SimInstant {
        self.shared.borrow().host_now
    }

    /// Cost breakdown accumulated so far.
    pub fn breakdown(&self) -> TimingBreakdown {
        self.shared.borrow().breakdown
    }

    /// API call counts accumulated so far.
    pub fn call_counts(&self) -> CallCounter {
        self.shared.borrow().calls.snapshot()
    }

    /// The device profile.
    pub fn profile(&self) -> DeviceProfile {
        self.shared.borrow().gpu.profile().clone()
    }

    /// Sets the workgroup-tracing policy of the underlying simulator.
    pub fn set_trace_mode(&self, mode: TraceMode) {
        self.shared.borrow_mut().gpu.set_trace_mode(mode);
    }

    /// Sets the simulator's worker-thread count for intra-dispatch
    /// parallelism (order-independent kernels only; results stay
    /// bit-identical).
    pub fn set_worker_threads(&self, threads: usize) {
        self.shared.borrow_mut().gpu.set_worker_threads(threads);
    }

    /// Disables (or re-enables) the engine's clamp of worker threads to
    /// the machine's cores — see `Gpu::set_worker_clamp`.
    pub fn set_worker_clamp(&self, clamp: bool) {
        self.shared.borrow_mut().gpu.set_worker_clamp(clamp);
    }

    /// Digest of the simulated device's functional state (buffer
    /// contents + cumulative traffic) — the determinism oracle.
    pub fn sim_fingerprint(&self) -> u64 {
        self.shared.borrow().gpu.fingerprint()
    }

    /// Restores the simulated device to its freshly-created state (see
    /// `Gpu::reset_to_cold`) so an environment cache can reuse this
    /// context across benchmark cells. Host-side counters (API calls,
    /// cost breakdown, host clock) keep accumulating — per-cell
    /// measurements are deltas, so they are unaffected.
    pub fn reset_to_cold(&self) {
        self.shared.borrow_mut().gpu.reset_to_cold();
    }

    /// `clCreateBuffer`: one call allocates usable device memory — the
    /// paper's contrast to Vulkan's five-call dance (§VI-A).
    ///
    /// # Errors
    ///
    /// Allocation failures.
    pub fn create_buffer(&self, flags: MemFlags, size: u64) -> ClResult<ClBuffer> {
        let mut shared = self.shared.borrow_mut();
        shared.api_call("clCreateBuffer", SimDuration::from_micros(7.0));
        let heap = shared
            .gpu
            .profile()
            .heaps
            .iter()
            .position(|h| h.device_local)
            .expect("profiles always have a device-local heap");
        let allocation = shared.gpu.pool_mut().alloc_raw(heap, size, 256)?;
        let id = match shared.gpu.pool_mut().create_store(size) {
            Ok(id) => id,
            Err(e) => {
                shared.gpu.pool_mut().free_raw(allocation);
                return Err(e.into());
            }
        };
        Ok(ClBuffer {
            id,
            allocation,
            bytes: size,
            flags,
        })
    }

    /// `clReleaseMemObject`.
    ///
    /// # Errors
    ///
    /// Double releases.
    pub fn release_buffer(&self, buffer: &ClBuffer) -> ClResult<()> {
        let mut shared = self.shared.borrow_mut();
        shared.api_call("clReleaseMemObject", SimDuration::from_micros(2.0));
        shared.gpu.pool_mut().destroy_store(buffer.id)?;
        shared.gpu.pool_mut().free_raw(buffer.allocation);
        Ok(())
    }
}

impl fmt::Debug for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shared = self.shared.borrow();
        f.debug_struct("Context")
            .field("device", &shared.gpu.profile().name)
            .finish()
    }
}

/// `cl_mem_flags` subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFlags {
    /// `CL_MEM_READ_ONLY`.
    ReadOnly,
    /// `CL_MEM_WRITE_ONLY`.
    WriteOnly,
    /// `CL_MEM_READ_WRITE`.
    ReadWrite,
}

/// A memory object (`cl_mem`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClBuffer {
    pub(crate) id: BufferId,
    pub(crate) allocation: HeapAllocation,
    pub(crate) bytes: u64,
    pub(crate) flags: MemFlags,
}

impl ClBuffer {
    /// Size in bytes.
    pub fn bytes(self) -> u64 {
        self.bytes
    }

    /// Flags given at creation.
    pub fn flags(self) -> MemFlags {
        self.flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_sim::profile::devices;

    #[test]
    fn platforms_cover_all_devices_with_cl() {
        let platforms = Platform::enumerate(&devices::all(), Arc::new(KernelRegistry::new()));
        // All four paper devices have OpenCL (official or unofficial).
        assert_eq!(platforms.len(), 4);
        assert!(platforms[0].name().contains("NVIDIA"));
    }

    #[test]
    fn versions_match_tables() {
        let platforms = Platform::enumerate(&devices::all(), Arc::new(KernelRegistry::new()));
        let nvidia = platforms[0].devices().remove(0);
        assert!(nvidia.version().contains("1.2"));
        let amd = platforms[1].devices().remove(0);
        assert!(amd.version().contains("2.0"));
    }

    #[test]
    fn buffer_lifecycle() {
        let platforms = Platform::enumerate(&devices::all(), Arc::new(KernelRegistry::new()));
        let ctx = Context::new(&platforms[0].devices()[0]).unwrap();
        let buffer = ctx.create_buffer(MemFlags::ReadWrite, 4096).unwrap();
        assert_eq!(buffer.bytes(), 4096);
        ctx.release_buffer(&buffer).unwrap();
        assert!(ctx.release_buffer(&buffer).is_err());
    }

    #[test]
    fn oom_surfaces() {
        let platforms = Platform::enumerate(&devices::mobile(), Arc::new(KernelRegistry::new()));
        let ctx = Context::new(&platforms[0].devices()[0]).unwrap();
        // PowerVR heap is 420 MiB.
        assert!(ctx
            .create_buffer(MemFlags::ReadWrite, 2 * 1024 * 1024 * 1024)
            .is_err());
    }
}
