//! Kernel execution: workgroup contexts, lanes, buffer views, shared
//! memory and memory-traffic tracing.
//!
//! Kernels are written once, in Rust, at *workgroup granularity*: the body
//! receives a [`GroupCtx`] and iterates its work items with
//! [`GroupCtx::for_lanes`], exactly like a GLSL compute shader body with an
//! outer loop made explicit. Between `for_lanes` sections,
//! [`GroupCtx::barrier`] plays the role of `barrier()`/`memoryBarrierShared()`.
//! All three API frontends (Vulkan, CUDA, OpenCL) execute the *same* body,
//! which is how the paper keeps algorithm and programming model separate.
//!
//! Every lane-level access both performs the functional load/store and, in
//! traced groups, records its device address. Addresses are merged by the
//! warp coalescer, filtered through the L2 model and turned into DRAM
//! traffic — the raw material of the timing model.

use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

use crate::coalesce::{strided_sectors, AddrPattern, SectorRun};
use crate::dram::DramTraffic;
use crate::error::{SimError, SimResult};
use crate::mem::{BufferId, BufferStore, Scalar, SyncCell};

pub use crate::mem::MemSystem;

/// How a kernel may touch a storage-buffer binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BindingAccess {
    /// The kernel only reads this binding.
    ReadOnly,
    /// The kernel may read and write this binding.
    ReadWrite,
}

/// A storage-buffer slot declared by a kernel (mirrors a SPIR-V
/// `Binding` decoration on a storage buffer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingDecl {
    /// Binding slot number.
    pub binding: u32,
    /// Declared access mode.
    pub access: BindingAccess,
    /// Human-readable name for diagnostics.
    pub name: &'static str,
}

/// Static description of a compute kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelInfo {
    /// Entry-point symbol (also the registry key).
    pub name: String,
    /// Local workgroup size, as a SPIR-V `LocalSize` execution mode.
    pub local_size: [u32; 3],
    /// Declared storage-buffer bindings.
    pub bindings: Vec<BindingDecl>,
    /// Bytes of push constants the kernel consumes.
    pub push_constant_bytes: u32,
    /// Workgroup-local (shared) memory demand in bytes.
    pub shared_bytes: u64,
    /// Whether the kernel contains a data-reuse pattern that a *mature*
    /// driver compiler promotes to workgroup-local memory automatically
    /// (the bfs effect of §V-A2). Bodies of such kernels must honour
    /// [`CompileOpts::local_memory_promotion`].
    pub promotable: bool,
    /// Rough static source size in bytes, used by the OpenCL JIT cost
    /// model.
    pub source_bytes: u64,
    /// Whether the grid's workgroups are order-independent, allowing the
    /// engine to execute them across worker threads.
    ///
    /// The contract mirrors what real GPU hardware guarantees (nothing
    /// about group order): a kernel may declare this only if, within one
    /// dispatch, (a) no workgroup reads a global location another
    /// workgroup writes, and (b) any concurrent writes to the same
    /// location always carry the same value (bfs's frontier updates).
    /// Kernels whose groups consume earlier groups' output in linear grid
    /// order (nw's tile diagonals) must leave this `false`.
    pub parallel_groups: bool,
}

impl KernelInfo {
    /// Starts building a kernel description with required fields.
    #[allow(clippy::new_ret_no_self)] // `new` opens the builder, per C-BUILDER
    pub fn new(name: impl Into<String>, local_size: [u32; 3]) -> KernelInfoBuilder {
        KernelInfoBuilder {
            info: KernelInfo {
                name: name.into(),
                local_size,
                bindings: Vec::new(),
                push_constant_bytes: 0,
                shared_bytes: 0,
                promotable: false,
                source_bytes: 1024,
                parallel_groups: false,
            },
        }
    }

    /// Work items per workgroup.
    pub fn local_len(&self) -> u32 {
        self.local_size[0] * self.local_size[1] * self.local_size[2]
    }

    /// Looks up a binding declaration by slot.
    pub fn binding(&self, slot: u32) -> Option<&BindingDecl> {
        self.bindings.iter().find(|b| b.binding == slot)
    }
}

/// Builder for [`KernelInfo`] (kernels have many optional attributes).
#[derive(Debug, Clone)]
pub struct KernelInfoBuilder {
    info: KernelInfo,
}

impl KernelInfoBuilder {
    /// Declares a read-only storage buffer binding.
    pub fn reads(mut self, binding: u32, name: &'static str) -> Self {
        self.info.bindings.push(BindingDecl {
            binding,
            access: BindingAccess::ReadOnly,
            name,
        });
        self
    }

    /// Declares a read-write storage buffer binding.
    pub fn writes(mut self, binding: u32, name: &'static str) -> Self {
        self.info.bindings.push(BindingDecl {
            binding,
            access: BindingAccess::ReadWrite,
            name,
        });
        self
    }

    /// Declares push-constant usage of `bytes`.
    pub fn push_constants(mut self, bytes: u32) -> Self {
        self.info.push_constant_bytes = bytes;
        self
    }

    /// Declares `bytes` of workgroup shared memory.
    pub fn shared_memory(mut self, bytes: u64) -> Self {
        self.info.shared_bytes = bytes;
        self
    }

    /// Marks the kernel as containing a promotable reuse pattern.
    pub fn promotable(mut self) -> Self {
        self.info.promotable = true;
        self
    }

    /// Declares the grid's workgroups order-independent (see
    /// [`KernelInfo::parallel_groups`] for the exact contract). Leave
    /// unset for kernels whose groups depend on linear grid order.
    pub fn parallel_groups(mut self) -> Self {
        self.info.parallel_groups = true;
        self
    }

    /// Sets the nominal kernel source size (JIT cost model input).
    pub fn source_bytes(mut self, bytes: u64) -> Self {
        self.info.source_bytes = bytes;
        self
    }

    /// Finishes the description.
    ///
    /// # Panics
    ///
    /// Panics on a zero local size or duplicate binding slots — these are
    /// programming errors in kernel definitions, not runtime conditions.
    pub fn build(self) -> KernelInfo {
        let info = self.info;
        assert!(
            info.local_len() > 0,
            "kernel {} has zero local size",
            info.name
        );
        for (i, a) in info.bindings.iter().enumerate() {
            for b in &info.bindings[i + 1..] {
                assert_ne!(
                    a.binding, b.binding,
                    "kernel {} declares binding {} twice",
                    info.name, a.binding
                );
            }
        }
        info
    }
}

/// The executable body of a kernel.
///
/// Implementations must be deterministic and must not retain state across
/// workgroups (each group may be replayed or sampled independently).
pub trait KernelBody: Send + Sync {
    /// Executes one workgroup.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed dispatches (missing bindings, type
    /// mismatches). Data-dependent failures should panic — on a real GPU
    /// they would be undefined behaviour, and a loud deterministic panic is
    /// the most debuggable translation.
    fn execute_group(&self, ctx: &mut GroupCtx<'_>) -> SimResult<()>;
}

impl<F> KernelBody for F
where
    F: Fn(&mut GroupCtx<'_>) -> SimResult<()> + Send + Sync,
{
    fn execute_group(&self, ctx: &mut GroupCtx<'_>) -> SimResult<()> {
        self(ctx)
    }
}

/// Options chosen by a driver's kernel compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileOpts {
    /// Promote flagged reuse patterns into workgroup-local memory.
    pub local_memory_promotion: bool,
}

/// A kernel after driver compilation: body + metadata + codegen options.
#[derive(Clone)]
pub struct CompiledKernel {
    info: Arc<KernelInfo>,
    body: Arc<dyn KernelBody>,
    opts: CompileOpts,
}

impl CompiledKernel {
    /// Bundles a body with its metadata under given compile options.
    pub fn new(info: KernelInfo, body: Arc<dyn KernelBody>, opts: CompileOpts) -> Self {
        CompiledKernel {
            info: Arc::new(info),
            body,
            opts,
        }
    }

    /// Kernel metadata.
    pub fn info(&self) -> &KernelInfo {
        &self.info
    }

    /// Compile options baked into this binary.
    pub fn opts(&self) -> CompileOpts {
        self.opts
    }

    /// The executable body.
    pub fn body(&self) -> &Arc<dyn KernelBody> {
        &self.body
    }
}

impl fmt::Debug for CompiledKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledKernel")
            .field("name", &self.info.name)
            .field("local_size", &self.info.local_size)
            .field("opts", &self.opts)
            .finish_non_exhaustive()
    }
}

/// A buffer bound to a binding slot for one dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundBuffer {
    /// Binding slot.
    pub binding: u32,
    /// The buffer.
    pub buffer: BufferId,
}

/// A fully specified dispatch: kernel, grid, bindings and push constants.
#[derive(Debug, Clone)]
pub struct Dispatch {
    /// The compiled kernel to run.
    pub kernel: CompiledKernel,
    /// Number of workgroups in X, Y, Z (the `vkCmdDispatch` arguments).
    pub groups: [u32; 3],
    /// Buffer bindings.
    pub bindings: Vec<BoundBuffer>,
    /// Push-constant bytes (may be empty).
    pub push_constants: Vec<u8>,
}

impl Dispatch {
    /// Total workgroups in the grid.
    pub fn group_count(&self) -> u64 {
        self.groups[0] as u64 * self.groups[1] as u64 * self.groups[2] as u64
    }
}

/// A typed, read-capable view of a storage buffer binding.
///
/// Cheap to copy; holds no borrow of the [`GroupCtx`], so views can be
/// created once and used inside [`GroupCtx::for_lanes`] closures.
#[derive(Clone, Copy)]
pub struct GlobalView<'a, T: Scalar> {
    cells: &'a [SyncCell<T>],
    base_addr: u64,
    binding: u32,
    kernel: &'a str,
    writable: bool,
    /// `true` when the dispatch runs groups across threads: accesses go
    /// through relaxed atomics instead of plain loads/stores.
    atomic: bool,
}

impl<'a, T: Scalar> GlobalView<'a, T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the view has no elements.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Device byte address of element `idx`.
    pub fn addr_of(&self, idx: usize) -> u64 {
        self.base_addr + (idx * std::mem::size_of::<T>()) as u64
    }

    #[inline]
    fn cell(&self, idx: usize) -> &SyncCell<T> {
        match self.cells.get(idx) {
            Some(c) => c,
            None => panic!(
                "kernel `{}` accessed element {} of binding {} (length {})",
                self.kernel,
                idx,
                self.binding,
                self.cells.len()
            ),
        }
    }
}

impl<T: Scalar + fmt::Debug> fmt::Debug for GlobalView<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalView")
            .field("binding", &self.binding)
            .field("len", &self.cells.len())
            .field("writable", &self.writable)
            .finish()
    }
}

/// A workgroup-shared (local memory) array of `T`.
///
/// Like [`GlobalView`], copies freely and holds no `GroupCtx` borrow.
#[derive(Clone, Copy)]
pub struct SharedArray<'a, T: Scalar> {
    cells: &'a [Cell<T>],
    /// Byte offset inside the workgroup's shared segment, for bank math.
    base_offset: u32,
}

impl<'a, T: Scalar> SharedArray<'a, T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Unrecorded read (free in the timing model; use for setup code).
    pub fn peek(&self, idx: usize) -> T {
        self.cells[idx].get()
    }

    /// Unrecorded write.
    pub fn poke(&self, idx: usize, value: T) {
        self.cells[idx].set(value);
    }
}

impl<T: Scalar + fmt::Debug> fmt::Debug for SharedArray<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedArray")
            .field("len", &self.cells.len())
            .finish()
    }
}

/// Backing storage for workgroup shared memory, reused across groups.
#[derive(Debug)]
pub struct SharedArena {
    /// `UnsafeCell`-backed words so deriving `Cell` views from a shared
    /// reference is legal under Rust's aliasing rules.
    words: Vec<std::cell::UnsafeCell<u64>>,
    cursor: Cell<usize>, // byte cursor
}

impl SharedArena {
    /// Creates an arena of `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> Self {
        let mut arena = SharedArena {
            words: Vec::new(),
            cursor: Cell::new(0),
        };
        arena.ensure_capacity(capacity_bytes);
        arena
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        (self.words.len() * 8) as u64
    }

    /// Grows the arena to at least `capacity_bytes`, keeping it reusable
    /// across dispatches instead of reallocating per dispatch.
    pub fn ensure_capacity(&mut self, capacity_bytes: u64) {
        let words = (capacity_bytes as usize).div_ceil(8);
        if words > self.words.len() {
            self.words
                .resize_with(words, || std::cell::UnsafeCell::new(0));
        }
    }

    fn reset(&self) {
        self.cursor.set(0);
    }

    fn alloc<T: Scalar>(&self, len: usize) -> Option<(&[Cell<T>], u32)> {
        let elem = std::mem::size_of::<T>();
        let start = self.cursor.get().div_ceil(elem) * elem;
        let bytes = len * elem;
        if start + bytes > self.words.len() * 8 {
            return None;
        }
        self.cursor.set(start + bytes);
        let ptr = self.words.as_ptr() as *const u8;
        // SAFETY: range checked above; base is 8-byte aligned and `start`
        // is a multiple of size_of::<T>() (≤ 8, power of two), so the cast
        // pointer is aligned; the words are `UnsafeCell`s, so viewing them
        // as the layout-compatible `Cell<T>` keeps interior mutability
        // legal; the arena is only accessed through Cells for the group's
        // lifetime.
        let slice = unsafe { std::slice::from_raw_parts(ptr.add(start) as *const Cell<T>, len) };
        Some((slice, start as u32))
    }
}

/// A binding resolved to concrete storage for one dispatch.
pub(crate) struct ResolvedBinding<'a> {
    pub(crate) store: &'a BufferStore,
    pub(crate) writable: bool,
}

/// Per-dispatch traffic counters, extrapolated by the engine when groups
/// are sampled.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrafficStats {
    /// Scalar arithmetic operations executed by lanes.
    pub alu_ops: u64,
    /// Lane-level global reads.
    pub global_reads: u64,
    /// Lane-level global writes.
    pub global_writes: u64,
    /// Bytes the lanes asked for (useful bytes).
    pub useful_bytes: u64,
    /// Sectors that hit in L2.
    pub l2_hit_sectors: u64,
    /// DRAM traffic after L2 filtering.
    pub dram: DramTraffic,
    /// Shared-memory lane accesses.
    pub shared_accesses: u64,
    /// Extra shared-memory cycles lost to bank conflicts.
    pub bank_conflict_cycles: u64,
    /// Workgroup barriers executed.
    pub barriers: u64,
    /// Unified-memory demand faults (first touch of a non-resident page;
    /// zero under [`crate::uvm::MemMode::ExplicitCopy`]).
    pub uvm_faults: u64,
    /// Sectors migrated host→device by demand faults.
    pub uvm_migrated_sectors: u64,
    /// Sectors written back device→host by oversubscription evictions.
    pub uvm_evicted_sectors: u64,
}

impl TrafficStats {
    /// Accumulates `other` into `self`.
    pub fn add(&mut self, other: &TrafficStats) {
        self.alu_ops += other.alu_ops;
        self.global_reads += other.global_reads;
        self.global_writes += other.global_writes;
        self.useful_bytes += other.useful_bytes;
        self.l2_hit_sectors += other.l2_hit_sectors;
        self.dram.add(other.dram);
        self.shared_accesses += other.shared_accesses;
        self.bank_conflict_cycles += other.bank_conflict_cycles;
        self.barriers += other.barriers;
        self.uvm_faults += other.uvm_faults;
        self.uvm_migrated_sectors += other.uvm_migrated_sectors;
        self.uvm_evicted_sectors += other.uvm_evicted_sectors;
    }

    /// Scales all counters by `factor` (sampling extrapolation).
    pub fn scaled(&self, factor: f64) -> TrafficStats {
        let s = |v: u64| (v as f64 * factor).round() as u64;
        TrafficStats {
            alu_ops: s(self.alu_ops),
            global_reads: s(self.global_reads),
            global_writes: s(self.global_writes),
            useful_bytes: s(self.useful_bytes),
            l2_hit_sectors: s(self.l2_hit_sectors),
            dram: DramTraffic {
                sectors: s(self.dram.sectors),
                row_misses: s(self.dram.row_misses),
            },
            shared_accesses: s(self.shared_accesses),
            bank_conflict_cycles: s(self.bank_conflict_cycles),
            barriers: s(self.barriers),
            uvm_faults: s(self.uvm_faults),
            uvm_migrated_sectors: s(self.uvm_migrated_sectors),
            uvm_evicted_sectors: s(self.uvm_evicted_sectors),
        }
    }
}

/// One warp's recorded accesses, bucketed by the lane-local sequence
/// number of the issuing instruction.
///
/// Bucketing replaces the old sort-by-(seq, addr) pass: lanes run in
/// order, so every bucket receives its addresses already in lane order,
/// and the per-warp flush just walks the buckets — no sort, no tuple
/// storage, no allocation after warm-up. Each bucket is an
/// [`AddrPattern`]: constant-stride (coalesced) warps are detected as
/// the addresses are pushed and later expand to sector runs
/// arithmetically, without ever materializing a per-address list.
#[derive(Debug, Default)]
struct WarpBuf {
    /// Global-access buckets: per sequence slot, the access size and the
    /// lanes' address pattern in issue order.
    global: Vec<(u8, AddrPattern)>,
    /// One past the highest global sequence slot used this warp.
    global_hi: usize,
    /// Shared-access buckets: per sequence slot, the lanes' byte offsets.
    shared: Vec<Vec<u32>>,
    /// One past the highest shared sequence slot used this warp.
    shared_hi: usize,
}

impl WarpBuf {
    /// Resolves the global-access bucket for sequence slot `seq`,
    /// stamping the access size. Shared by the per-lane push, the warp
    /// gather/scatter loop (one resolve per warp instead of per lane) and
    /// the analytic affine push.
    #[inline]
    fn global_bucket(&mut self, seq: u32, size: u8) -> &mut AddrPattern {
        let s = seq as usize;
        if s >= self.global.len() {
            self.global.resize_with(s + 1, Default::default);
        }
        if s >= self.global_hi {
            self.global_hi = s + 1;
        }
        let bucket = &mut self.global[s];
        bucket.0 = size;
        &mut bucket.1
    }

    #[inline]
    fn push_global(&mut self, seq: u32, addr: u64, size: u8) {
        self.global_bucket(seq, size).push(addr);
    }

    /// Records a whole warp's affine access (`count` lanes at constant
    /// `stride` from `base`) into slot `seq` in O(1) — the columnar twin
    /// of `count` ascending-lane [`WarpBuf::push_global`] calls.
    #[inline]
    fn push_global_affine(&mut self, seq: u32, base: u64, stride: u64, count: u64, size: u8) {
        self.global_bucket(seq, size)
            .push_affine(base, stride, count);
    }

    /// Resolves the shared-access bucket for sequence slot `seq` —
    /// shared by the per-lane push and the warp-columnar shared ops
    /// (which resolve once per warp instruction instead of per lane).
    #[inline]
    fn shared_bucket(&mut self, seq: u32) -> &mut Vec<u32> {
        let s = seq as usize;
        if s >= self.shared.len() {
            self.shared.resize_with(s + 1, Default::default);
        }
        if s >= self.shared_hi {
            self.shared_hi = s + 1;
        }
        &mut self.shared[s]
    }

    #[inline]
    fn push_shared(&mut self, seq: u32, offset: u32) {
        self.shared_bucket(seq).push(offset);
    }
}

/// Reusable tracing scratch: warp buffers plus sector-run, sector and
/// bank-count scratch vectors.
///
/// The engine keeps one instance alive across groups *and* dispatches
/// (each parallel worker keeps its own), so the dispatch hot path
/// performs no per-group allocation.
#[derive(Debug, Default)]
pub struct TraceScratch {
    warp: WarpBuf,
    scratch_runs: Vec<SectorRun>,
    scratch_sectors: Vec<u64>,
    bank_counts: Vec<u32>,
}

impl TraceScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Where a traced group's memory traffic goes.
pub(crate) enum TraceSink<'m> {
    /// Feed the persistent L2/row-tracker state directly — the
    /// sequential path, where groups execute in linear grid order.
    Direct(&'m mut MemSystem),
    /// Record the run-length-encoded sector stream for a later
    /// linear-order replay through the memory system — the parallel
    /// path, where the functional run happens on a worker thread. A
    /// coalesced warp contributes one [`SectorRun`] instead of a sector
    /// per lane-quad, shrinking replay buffers and the replay walk
    /// alike.
    Record {
        stream: &'m mut Vec<SectorRun>,
        sector_bytes: u64,
        shared_banks: u32,
    },
}

impl TraceSink<'_> {
    fn sector_bytes(&self) -> u64 {
        match self {
            TraceSink::Direct(mem) => mem.sector_bytes,
            TraceSink::Record { sector_bytes, .. } => *sector_bytes,
        }
    }

    fn shared_banks(&self) -> u32 {
        match self {
            TraceSink::Direct(mem) => mem.shared_banks,
            TraceSink::Record { shared_banks, .. } => *shared_banks,
        }
    }
}

/// Tracing state for one traced workgroup.
pub(crate) struct TraceState<'m> {
    pub(crate) scratch: &'m mut TraceScratch,
    pub(crate) sink: TraceSink<'m>,
}

/// Context for executing one workgroup.
pub struct GroupCtx<'a> {
    group_id: [u32; 3],
    num_groups: [u32; 3],
    info: &'a KernelInfo,
    opts: CompileOpts,
    warp_width: u32,
    resolved: &'a [Option<ResolvedBinding<'a>>],
    push: &'a [u8],
    shared: &'a SharedArena,
    stats: TrafficStats,
    trace: Option<TraceState<'a>>,
    atomic: bool,
}

impl<'a> GroupCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        group_id: [u32; 3],
        num_groups: [u32; 3],
        info: &'a KernelInfo,
        opts: CompileOpts,
        warp_width: u32,
        resolved: &'a [Option<ResolvedBinding<'a>>],
        push: &'a [u8],
        shared: &'a SharedArena,
        trace: Option<TraceState<'a>>,
        atomic: bool,
    ) -> Self {
        shared.reset();
        GroupCtx {
            group_id,
            num_groups,
            info,
            opts,
            warp_width,
            resolved,
            push,
            shared,
            stats: TrafficStats::default(),
            trace,
            atomic,
        }
    }

    pub(crate) fn into_stats(self) -> TrafficStats {
        self.stats
    }

    /// This workgroup's ID along dimension `d` (0..3).
    pub fn group_id(&self, d: usize) -> u32 {
        self.group_id[d]
    }

    /// Grid size along dimension `d`.
    pub fn num_groups(&self, d: usize) -> u32 {
        self.num_groups[d]
    }

    /// Local workgroup size along dimension `d`.
    pub fn local_size(&self, d: usize) -> u32 {
        self.info.local_size[d]
    }

    /// Total work items in this group.
    pub fn local_len(&self) -> u32 {
        self.info.local_len()
    }

    /// Compile options the driver chose for this kernel.
    pub fn opts(&self) -> CompileOpts {
        self.opts
    }

    /// Reads a push constant at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds of the pushed data — mirroring
    /// the validation-layer error a real Vulkan app would get.
    pub fn push_u32(&self, offset: usize) -> u32 {
        let b: [u8; 4] = self.push[offset..offset + 4]
            .try_into()
            .expect("push constant range");
        u32::from_le_bytes(b)
    }

    /// Reads an `f32` push constant at byte `offset`.
    pub fn push_f32(&self, offset: usize) -> f32 {
        f32::from_bits(self.push_u32(offset))
    }

    /// Resolves a binding slot into a typed view.
    ///
    /// # Errors
    ///
    /// [`SimError::MissingBinding`] if nothing is bound at `slot`;
    /// [`SimError::MisalignedView`] if the buffer size is not a multiple of
    /// the element size.
    pub fn global<T: Scalar>(&self, slot: u32) -> SimResult<GlobalView<'a, T>> {
        let resolved = self
            .resolved
            .get(slot as usize)
            .and_then(Option::as_ref)
            .ok_or_else(|| SimError::MissingBinding {
                kernel: self.info.name.clone(),
                binding: slot,
            })?;
        Ok(GlobalView {
            cells: resolved.store.sync_cells::<T>()?,
            base_addr: resolved.store.device_addr(),
            binding: slot,
            kernel: name_of(self.info),
            writable: resolved.writable,
            atomic: self.atomic,
        })
    }

    /// Allocates a shared (workgroup-local) array of `len` elements.
    ///
    /// # Errors
    ///
    /// [`SimError::SharedMemoryExceeded`] if the group's declared shared
    /// budget is exhausted.
    pub fn shared_array<T: Scalar>(&self, len: usize) -> SimResult<SharedArray<'a, T>> {
        match self.shared.alloc::<T>(len) {
            Some((cells, base_offset)) => Ok(SharedArray { cells, base_offset }),
            None => Err(SimError::SharedMemoryExceeded {
                kernel: self.info.name.clone(),
                requested: (len * std::mem::size_of::<T>()) as u64,
                capacity: self.shared.capacity(),
            }),
        }
    }

    /// Executes `f` for every work item of the group, warp by warp, and
    /// coalesces the recorded traffic after each warp.
    pub fn for_lanes<F: FnMut(&mut Lane<'_>)>(&mut self, mut f: F) {
        let total = self.local_len();
        let ww = self.warp_width;
        let mut lid = 0u32;
        while lid < total {
            let warp_end = (lid + ww).min(total);
            for l in lid..warp_end {
                let mut lane = Lane {
                    linear: l,
                    local_size: self.info.local_size,
                    group_id: self.group_id,
                    seq: 0,
                    alu: 0,
                    reads: 0,
                    writes: 0,
                    useful: 0,
                    shared_acc: 0,
                    buf: self.trace.as_mut().map(|t| &mut t.scratch.warp),
                };
                f(&mut lane);
                self.stats.alu_ops += lane.alu;
                self.stats.global_reads += lane.reads;
                self.stats.global_writes += lane.writes;
                self.stats.useful_bytes += lane.useful;
                self.stats.shared_accesses += lane.shared_acc;
            }
            self.flush_warp();
            lid = warp_end;
        }
    }

    /// Executes `f` once per *warp* of the group, exposing a columnar
    /// [`Warp`] context whose loads/stores operate on all (up to)
    /// `warp_width` lanes at once.
    ///
    /// This is the vectorized twin of [`GroupCtx::for_lanes`]: affine
    /// accesses ([`Warp::ld_seq`]/[`Warp::st_seq`]/[`Warp::ld_stride`])
    /// run as one tight loop over the backing cells and record their
    /// address pattern analytically in O(1); irregular accesses fall back
    /// to per-address recording ([`Warp::ld_gather`]/[`Warp::st_scatter`]);
    /// divergent guards run per lane under [`Warp::for_active`]. Both
    /// paths share `flush_warp` and the [`SectorRun`] pipeline, so a body
    /// whose columnar ops issue the same per-lane address sequences as its
    /// lane-oracle form produces bit-identical traffic, stats and
    /// fingerprints by construction. Tail warps arrive pre-masked:
    /// [`Warp::lanes`] is the partial width on the last warp of a group
    /// whose size is not a warp multiple.
    pub fn for_warps<F: FnMut(&mut Warp<'_>)>(&mut self, mut f: F) {
        let total = self.local_len();
        let ww = self.warp_width;
        assert!(
            ww as usize <= MAX_WARP_WIDTH,
            "warp width {ww} exceeds MAX_WARP_WIDTH ({MAX_WARP_WIDTH})"
        );
        let mut lid = 0u32;
        while lid < total {
            let warp_end = (lid + ww).min(total);
            let mut warp = Warp {
                base: lid,
                lanes: warp_end - lid,
                local_size: self.info.local_size,
                group_id: self.group_id,
                seq: 0,
                alu: 0,
                reads: 0,
                writes: 0,
                useful: 0,
                shared_acc: 0,
                buf: self.trace.as_mut().map(|t| &mut t.scratch.warp),
            };
            f(&mut warp);
            self.stats.alu_ops += warp.alu;
            self.stats.global_reads += warp.reads;
            self.stats.global_writes += warp.writes;
            self.stats.useful_bytes += warp.useful;
            self.stats.shared_accesses += warp.shared_acc;
            self.flush_warp();
            lid = warp_end;
        }
    }

    fn flush_warp(&mut self) {
        let Some(trace) = self.trace.as_mut() else {
            return;
        };
        let TraceState { scratch, sink } = trace;
        let TraceScratch {
            warp,
            scratch_runs,
            scratch_sectors,
            bank_counts,
        } = &mut **scratch;
        if warp.global_hi > 0 {
            let sector_bytes = sink.sector_bytes();
            for bucket in &mut warp.global[..warp.global_hi] {
                let (size, pattern) = (u64::from(bucket.0), &mut bucket.1);
                if pattern.is_empty() {
                    continue;
                }
                scratch_runs.clear();
                pattern.emit_runs(size, sector_bytes, scratch_sectors, scratch_runs);
                match sink {
                    TraceSink::Direct(mem) => {
                        mem.access_sector_runs(scratch_runs, &mut self.stats);
                    }
                    TraceSink::Record { stream, .. } => {
                        stream.extend_from_slice(scratch_runs);
                    }
                }
                pattern.clear();
            }
            warp.global_hi = 0;
        }
        if warp.shared_hi > 0 {
            let banks = sink.shared_banks().max(1);
            bank_counts.resize(banks as usize, 0);
            for bucket in &mut warp.shared[..warp.shared_hi] {
                if bucket.is_empty() {
                    continue;
                }
                bank_counts.fill(0);
                for &offset in bucket.iter() {
                    let bank = (offset / 4) % banks;
                    bank_counts[bank as usize] += 1;
                }
                let worst = *bank_counts.iter().max().unwrap_or(&0);
                if worst > 1 {
                    self.stats.bank_conflict_cycles += (worst - 1) as u64;
                }
                bucket.clear();
            }
            warp.shared_hi = 0;
        }
    }

    /// Workgroup barrier: synchronizes phases of the kernel.
    ///
    /// Functionally a no-op (lanes already ran to completion in program
    /// order); in the timing model it costs a drain/re-issue per group.
    pub fn barrier(&mut self) {
        self.stats.barriers += 1;
    }

    /// Records an *analytic* strided global access pattern instead of
    /// per-lane tracing — the escape hatch for dense inner loops where
    /// per-access tracing would dominate simulation time.
    ///
    /// `count` accesses of `T`-size each, starting at element `start` of
    /// `view`, with a stride of `stride_elems` elements. The functional
    /// reads/writes still go through the view; this call only accounts the
    /// traffic.
    ///
    /// Note the accounting is an *approximation*: it touches evenly
    /// spaced representative sectors across the span, not the exact
    /// per-lane coverage — and it is a **last resort**. The columnar
    /// [`Warp`] ops ([`Warp::ld_seq`]/[`Warp::st_seq`] and friends)
    /// trace affine warp accesses exactly at O(1) cost per warp
    /// instruction, so for constant-stride loops the approximation no
    /// longer buys measurable time over the exact paths. Reach for it
    /// only when an inner loop is truly dense (many accesses per lane
    /// per element of traced state) *and* profiling shows the exact
    /// `Warp` column ops or plain [`Lane::ld`]/[`Lane::st`] are the
    /// bottleneck.
    pub fn bulk_access<T: Scalar>(
        &mut self,
        view: &GlobalView<'_, T>,
        start: usize,
        count: u64,
        stride_elems: u64,
        write: bool,
    ) {
        let elem = std::mem::size_of::<T>() as u64;
        if write {
            self.stats.global_writes += count;
        } else {
            self.stats.global_reads += count;
        }
        self.stats.useful_bytes += count * elem;
        let Some(trace) = self.trace.as_mut() else {
            return;
        };
        let sector = trace.sink.sector_bytes();
        let base = view.addr_of(start);
        let n_sectors = strided_sectors(count, elem, stride_elems * elem, sector);
        let span = if count == 0 {
            0
        } else {
            (count - 1) * stride_elems * elem + elem
        };
        // Touch evenly spaced representative sectors across the span,
        // batched as runs (a dense span is a single run).
        let step = if n_sectors == 0 {
            1
        } else {
            (span.div_ceil(sector)).max(1).div_ceil(n_sectors).max(1)
        };
        let first = base / sector;
        let last = (base + span.max(1) - 1) / sector;
        let runs = &mut trace.scratch.scratch_runs;
        runs.clear();
        if step == 1 {
            let len = n_sectors.min(last - first + 1);
            if len > 0 {
                runs.push(SectorRun { first, len });
            }
        } else {
            let mut touched = 0;
            let mut s = first;
            while touched < n_sectors && s <= last {
                runs.push(SectorRun { first: s, len: 1 });
                s += step;
                touched += 1;
            }
        }
        match &mut trace.sink {
            TraceSink::Direct(mem) => mem.access_sector_runs(runs, &mut self.stats),
            TraceSink::Record { stream, .. } => stream.extend_from_slice(runs),
        }
    }

    /// Adds `ops` arithmetic operations on behalf of the whole group
    /// (bulk accounting companion to [`GroupCtx::bulk_access`]).
    pub fn bulk_alu(&mut self, ops: u64) {
        self.stats.alu_ops += ops;
    }
}

impl fmt::Debug for GroupCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupCtx")
            .field("kernel", &self.info.name)
            .field("group_id", &self.group_id)
            .field("traced", &self.trace.is_some())
            .finish_non_exhaustive()
    }
}

fn name_of(info: &KernelInfo) -> &str {
    &info.name
}

/// One work item inside a [`GroupCtx::for_lanes`] iteration.
pub struct Lane<'w> {
    linear: u32,
    local_size: [u32; 3],
    group_id: [u32; 3],
    seq: u32,
    alu: u64,
    reads: u64,
    writes: u64,
    useful: u64,
    shared_acc: u64,
    buf: Option<&'w mut WarpBuf>,
}

impl Lane<'_> {
    /// Linear local invocation index.
    pub fn local_linear(&self) -> u32 {
        self.linear
    }

    /// Local invocation ID along dimension `d`.
    pub fn local_id(&self, d: usize) -> u32 {
        let [lx, ly, _lz] = self.local_size;
        match d {
            0 => self.linear % lx,
            1 => (self.linear / lx) % ly,
            _ => self.linear / (lx * ly),
        }
    }

    /// Global invocation ID along dimension `d` (the SPIR-V
    /// `GlobalInvocationId` builtin).
    pub fn global_id(&self, d: usize) -> u32 {
        self.group_id[d] * self.local_size[d] + self.local_id(d)
    }

    /// Linear global invocation index for 1-D dispatches.
    pub fn global_linear(&self) -> u64 {
        self.group_id[0] as u64 * self.local_size[0] as u64 * self.local_size[1] as u64
            + self.linear as u64
    }

    /// Loads `view[idx]`, recording the access.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of bounds (deterministic stand-in for GPU
    /// undefined behaviour).
    #[inline]
    pub fn ld<T: Scalar>(&mut self, view: &GlobalView<'_, T>, idx: usize) -> T {
        let c = view.cell(idx);
        self.record_global(view.addr_of(idx), std::mem::size_of::<T>() as u8, false);
        if view.atomic {
            c.get()
        } else {
            c.get_plain()
        }
    }

    /// Stores `value` to `view[idx]`, recording the access.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of bounds, or when storing through a
    /// read-only binding (the simulator's stand-in for a validation-layer
    /// error).
    #[inline]
    pub fn st<T: Scalar>(&mut self, view: &GlobalView<'_, T>, idx: usize, value: T) {
        assert!(
            view.writable,
            "kernel `{}` stored to read-only binding {}",
            view.kernel, view.binding
        );
        let c = view.cell(idx);
        self.record_global(view.addr_of(idx), std::mem::size_of::<T>() as u8, true);
        if view.atomic {
            c.set(value);
        } else {
            c.set_plain(value);
        }
    }

    /// Reads shared memory, recording the access for bank-conflict math.
    #[inline]
    pub fn lds<T: Scalar>(&mut self, arr: &SharedArray<'_, T>, idx: usize) -> T {
        self.record_shared(arr.base_offset + (idx * std::mem::size_of::<T>()) as u32);
        arr.cells[idx].get()
    }

    /// Writes shared memory, recording the access.
    #[inline]
    pub fn sts<T: Scalar>(&mut self, arr: &SharedArray<'_, T>, idx: usize, value: T) {
        self.record_shared(arr.base_offset + (idx * std::mem::size_of::<T>()) as u32);
        arr.cells[idx].set(value);
    }

    /// Accounts `ops` scalar ALU operations for this lane.
    #[inline]
    pub fn alu(&mut self, ops: u32) {
        self.alu += ops as u64;
    }

    #[inline]
    fn record_global(&mut self, addr: u64, size: u8, write: bool) {
        if write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        self.useful += size as u64;
        if let Some(buf) = self.buf.as_deref_mut() {
            let seq = self.seq;
            self.seq += 1;
            buf.push_global(seq, addr, size);
        }
    }

    #[inline]
    fn record_shared(&mut self, offset: u32) {
        self.shared_acc += 1;
        if let Some(buf) = self.buf.as_deref_mut() {
            let seq = self.seq;
            self.seq += 1;
            buf.push_shared(seq, offset);
        }
    }
}

impl fmt::Debug for Lane<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lane")
            .field("linear", &self.linear)
            .finish()
    }
}

/// Upper bound on [`crate::profile::DeviceProfile::warp_width`] across
/// the modelled devices, so warp-columnar kernel bodies can stage lane
/// values in fixed-size stack arrays (`[T; MAX_WARP_WIDTH]`).
pub const MAX_WARP_WIDTH: usize = 64;

/// One warp inside a [`GroupCtx::for_warps`] iteration: a columnar view
/// of up to `warp_width` lanes executing in lockstep.
///
/// Loads and stores operate on all active lanes of the warp at once, in
/// ascending lane order — the order [`GroupCtx::for_lanes`] issues them —
/// so every columnar op records exactly the address sequence of its
/// lane-oracle form and coalesces identically. Predication is explicit:
/// a prefix guard (`if global < n`) becomes a shortened lane count
/// ([`Warp::active_below`]); an irregular active set becomes a
/// gather/scatter over the active lanes' indices; data-dependent
/// divergence runs per lane under [`Warp::for_active`].
///
/// `for_active` must be the *trailing* traced section of a warp body:
/// per-lane sequence counters advance only in lanes that execute, so a
/// columnar op issued after a divergent section would land in different
/// trace buckets than the lane oracle's. All migrated kernels keep their
/// divergent tails last, which the differential suite pins.
pub struct Warp<'w> {
    /// Linear local id of lane 0 of this warp.
    base: u32,
    /// Active lanes (the tail warp of a non-multiple group is shorter).
    lanes: u32,
    local_size: [u32; 3],
    group_id: [u32; 3],
    seq: u32,
    alu: u64,
    reads: u64,
    writes: u64,
    useful: u64,
    shared_acc: u64,
    buf: Option<&'w mut WarpBuf>,
}

impl Warp<'_> {
    /// Number of lanes in this warp (tail warps are pre-masked short).
    pub fn lanes(&self) -> usize {
        self.lanes as usize
    }

    /// Linear local invocation index of lane `lane`.
    pub fn local_linear(&self, lane: usize) -> u32 {
        self.base + lane as u32
    }

    /// Local invocation ID of lane `lane` along dimension `d`.
    pub fn local_id(&self, lane: usize, d: usize) -> u32 {
        let [lx, ly, _lz] = self.local_size;
        let linear = self.local_linear(lane);
        match d {
            0 => linear % lx,
            1 => (linear / lx) % ly,
            _ => linear / (lx * ly),
        }
    }

    /// Global invocation ID of lane `lane` along dimension `d`.
    pub fn global_id(&self, lane: usize, d: usize) -> u32 {
        self.group_id[d] * self.local_size[d] + self.local_id(lane, d)
    }

    /// Linear global invocation index of lane 0 (1-D dispatches); lane
    /// `l` is `global_base() + l`.
    pub fn global_base(&self) -> u64 {
        self.group_id[0] as u64 * self.local_size[0] as u64 * self.local_size[1] as u64
            + self.base as u64
    }

    /// Active lanes under the ubiquitous prefix guard
    /// `global_linear < bound`: the count of leading lanes whose linear
    /// global index is below `bound`, clamped to the warp width.
    pub fn active_below(&self, bound: u64) -> usize {
        let base = self.global_base();
        bound.saturating_sub(base).min(u64::from(self.lanes)) as usize
    }

    /// Loads `out.len()` consecutive elements starting at `view[start]`
    /// into `out`, lane `l` receiving `view[start + l]` — the columnar
    /// form of a unit-stride warp load. The affine address pattern is
    /// recorded analytically in O(1).
    ///
    /// # Panics
    ///
    /// Panics when the range runs out of bounds, like [`Lane::ld`].
    #[inline]
    pub fn ld_seq<T: Scalar>(&mut self, view: &GlobalView<'_, T>, start: usize, out: &mut [T]) {
        let m = out.len();
        if m == 0 {
            return;
        }
        let Some(cells) = view.cells.get(start..start + m) else {
            // Panic with the first out-of-bounds lane's index, exactly as
            // the per-lane path would.
            view.cell(start.max(view.cells.len()));
            unreachable!()
        };
        if view.atomic {
            for (o, c) in out.iter_mut().zip(cells) {
                *o = c.get();
            }
        } else {
            for (o, c) in out.iter_mut().zip(cells) {
                *o = c.get_plain();
            }
        }
        let elem = std::mem::size_of::<T>();
        self.record_affine(
            view.addr_of(start),
            elem as u64,
            m as u64,
            elem as u8,
            false,
        );
    }

    /// Stores `vals` to consecutive elements starting at `view[start]`,
    /// lane `l` writing `view[start + l]` — the columnar unit-stride
    /// warp store, recorded analytically.
    ///
    /// # Panics
    ///
    /// Panics out of bounds or on a read-only binding, like [`Lane::st`].
    #[inline]
    pub fn st_seq<T: Scalar>(&mut self, view: &GlobalView<'_, T>, start: usize, vals: &[T]) {
        let m = vals.len();
        if m == 0 {
            return;
        }
        assert!(
            view.writable,
            "kernel `{}` stored to read-only binding {}",
            view.kernel, view.binding
        );
        let Some(cells) = view.cells.get(start..start + m) else {
            view.cell(start.max(view.cells.len()));
            unreachable!()
        };
        if view.atomic {
            for (v, c) in vals.iter().zip(cells) {
                c.set(*v);
            }
        } else {
            for (v, c) in vals.iter().zip(cells) {
                c.set_plain(*v);
            }
        }
        let elem = std::mem::size_of::<T>();
        self.record_affine(view.addr_of(start), elem as u64, m as u64, elem as u8, true);
    }

    /// Loads `out.len()` elements at a constant element stride, lane `l`
    /// reading `view[start + l * stride_elems]` — the columnar strided
    /// warp load (gaussian's column walks), recorded analytically.
    pub fn ld_stride<T: Scalar>(
        &mut self,
        view: &GlobalView<'_, T>,
        start: usize,
        stride_elems: usize,
        out: &mut [T],
    ) {
        let m = out.len();
        if m == 0 {
            return;
        }
        for (l, o) in out.iter_mut().enumerate() {
            let c = view.cell(start + l * stride_elems);
            *o = if view.atomic { c.get() } else { c.get_plain() };
        }
        let elem = std::mem::size_of::<T>();
        self.record_affine(
            view.addr_of(start),
            (stride_elems * elem) as u64,
            m as u64,
            elem as u8,
            false,
        );
    }

    /// Stores `vals` at a constant element stride, lane `l` writing
    /// `view[start + l * stride_elems]`, recorded analytically.
    pub fn st_stride<T: Scalar>(
        &mut self,
        view: &GlobalView<'_, T>,
        start: usize,
        stride_elems: usize,
        vals: &[T],
    ) {
        let m = vals.len();
        if m == 0 {
            return;
        }
        assert!(
            view.writable,
            "kernel `{}` stored to read-only binding {}",
            view.kernel, view.binding
        );
        for (l, v) in vals.iter().enumerate() {
            let c = view.cell(start + l * stride_elems);
            if view.atomic {
                c.set(*v);
            } else {
                c.set_plain(*v);
            }
        }
        let elem = std::mem::size_of::<T>();
        self.record_affine(
            view.addr_of(start),
            (stride_elems * elem) as u64,
            m as u64,
            elem as u8,
            true,
        );
    }

    /// Broadcast load: `count` active lanes all read `view[idx]` (the
    /// pivot reads of gaussian). One functional read, `count` recorded
    /// lane accesses — a stride-0 affine pattern.
    #[inline]
    pub fn ld_bcast<T: Scalar>(&mut self, view: &GlobalView<'_, T>, idx: usize, count: usize) -> T {
        let c = view.cell(idx);
        let v = if view.atomic { c.get() } else { c.get_plain() };
        if count > 0 {
            let elem = std::mem::size_of::<T>();
            self.record_affine(view.addr_of(idx), 0, count as u64, elem as u8, false);
        }
        v
    }

    /// Gather load for irregular indices: lane `l` of the active set
    /// reads `view[idxs[l]]` into `out[l]`. `idxs` must list the active
    /// lanes' indices in ascending lane order; addresses are recorded
    /// per lane through the same [`AddrPattern`] classifier the lane
    /// path feeds, so spill behaviour is identical.
    pub fn ld_gather<T: Scalar>(
        &mut self,
        view: &GlobalView<'_, T>,
        idxs: &[usize],
        out: &mut [T],
    ) {
        let m = idxs.len();
        if m == 0 {
            return;
        }
        assert_eq!(m, out.len(), "gather index/output length mismatch");
        for (o, &idx) in out.iter_mut().zip(idxs) {
            let c = view.cell(idx);
            *o = if view.atomic { c.get() } else { c.get_plain() };
        }
        let elem = std::mem::size_of::<T>();
        self.reads += m as u64;
        self.useful += (m * elem) as u64;
        if let Some(buf) = self.buf.as_deref_mut() {
            let seq = self.seq;
            self.seq += 1;
            let pattern = buf.global_bucket(seq, elem as u8);
            for &idx in idxs {
                pattern.push(view.addr_of(idx));
            }
        }
    }

    /// Scatter store for irregular indices: lane `l` of the active set
    /// writes `vals[l]` to `view[idxs[l]]` (same lane-order contract as
    /// [`Warp::ld_gather`]).
    pub fn st_scatter<T: Scalar>(&mut self, view: &GlobalView<'_, T>, idxs: &[usize], vals: &[T]) {
        let m = idxs.len();
        if m == 0 {
            return;
        }
        assert_eq!(m, vals.len(), "scatter index/value length mismatch");
        assert!(
            view.writable,
            "kernel `{}` stored to read-only binding {}",
            view.kernel, view.binding
        );
        for (&idx, v) in idxs.iter().zip(vals) {
            let c = view.cell(idx);
            if view.atomic {
                c.set(*v);
            } else {
                c.set_plain(*v);
            }
        }
        let elem = std::mem::size_of::<T>();
        self.writes += m as u64;
        self.useful += (m * elem) as u64;
        if let Some(buf) = self.buf.as_deref_mut() {
            let seq = self.seq;
            self.seq += 1;
            let pattern = buf.global_bucket(seq, elem as u8);
            for &idx in idxs {
                pattern.push(view.addr_of(idx));
            }
        }
    }

    /// Columnar shared-memory gather: lane `l` of the active set reads
    /// `arr[idxs[l]]` into `out[l]` (ascending lane order, like
    /// [`Warp::ld_gather`]). Shared buckets have no analytic form — the
    /// per-lane byte offsets feed the bank-conflict model exactly as the
    /// lane oracle's [`Lane::lds`] calls would — but the bucket is
    /// resolved once per warp instruction instead of once per lane.
    pub fn lds_gather<T: Scalar>(
        &mut self,
        arr: &SharedArray<'_, T>,
        idxs: &[usize],
        out: &mut [T],
    ) {
        let m = idxs.len();
        if m == 0 {
            return;
        }
        assert_eq!(m, out.len(), "shared gather index/output length mismatch");
        for (o, &idx) in out.iter_mut().zip(idxs) {
            *o = arr.cells[idx].get();
        }
        self.record_shared_cols(arr, idxs);
    }

    /// Columnar shared-memory scatter: lane `l` writes `vals[l]` to
    /// `arr[idxs[l]]` (same lane-order contract as [`Warp::lds_gather`]).
    /// Duplicate indices are written in lane order, so a redundant
    /// cooperative fill (several lanes storing the same value to the same
    /// cell) stays deterministic.
    pub fn sts_scatter<T: Scalar>(&mut self, arr: &SharedArray<'_, T>, idxs: &[usize], vals: &[T]) {
        let m = idxs.len();
        if m == 0 {
            return;
        }
        assert_eq!(m, vals.len(), "shared scatter index/value length mismatch");
        for (&idx, v) in idxs.iter().zip(vals) {
            arr.cells[idx].set(*v);
        }
        self.record_shared_cols(arr, idxs);
    }

    /// Columnar unit-stride shared store: lane `l` writes `vals[l]` to
    /// `arr[start + l]` — the cooperative tile-fill idiom where the shared
    /// index is the local linear id.
    pub fn sts_seq<T: Scalar>(&mut self, arr: &SharedArray<'_, T>, start: usize, vals: &[T]) {
        let m = vals.len();
        if m == 0 {
            return;
        }
        for (l, v) in vals.iter().enumerate() {
            arr.cells[start + l].set(*v);
        }
        let elem = std::mem::size_of::<T>() as u32;
        self.shared_acc += m as u64;
        if let Some(buf) = self.buf.as_deref_mut() {
            let seq = self.seq;
            self.seq += 1;
            let bucket = buf.shared_bucket(seq);
            for l in 0..m as u32 {
                bucket.push(arr.base_offset + (start as u32 + l) * elem);
            }
        }
    }

    /// Broadcast shared load: `count` active lanes all read `arr[idx]`
    /// (the warp-uniform filter taps of the conv kernels). One functional
    /// read, `count` recorded same-offset accesses — the bank model sees
    /// the identical offset list the lane oracle would produce.
    #[inline]
    pub fn lds_bcast<T: Scalar>(
        &mut self,
        arr: &SharedArray<'_, T>,
        idx: usize,
        count: usize,
    ) -> T {
        let v = arr.cells[idx].get();
        if count > 0 {
            let offset = arr.base_offset + (idx * std::mem::size_of::<T>()) as u32;
            self.shared_acc += count as u64;
            if let Some(buf) = self.buf.as_deref_mut() {
                let seq = self.seq;
                self.seq += 1;
                let bucket = buf.shared_bucket(seq);
                for _ in 0..count {
                    bucket.push(offset);
                }
            }
        }
        v
    }

    #[inline]
    fn record_shared_cols<T: Scalar>(&mut self, arr: &SharedArray<'_, T>, idxs: &[usize]) {
        let elem = std::mem::size_of::<T>() as u32;
        self.shared_acc += idxs.len() as u64;
        if let Some(buf) = self.buf.as_deref_mut() {
            let seq = self.seq;
            self.seq += 1;
            let bucket = buf.shared_bucket(seq);
            for &idx in idxs {
                bucket.push(arr.base_offset + idx as u32 * elem);
            }
        }
    }

    /// Accounts `ops` scalar ALU operations for the whole warp (callers
    /// multiply per-lane ops by the active lane count).
    #[inline]
    pub fn alu(&mut self, ops: u64) {
        self.alu += ops;
    }

    /// Runs `f` per lane for the lanes where `active(lane)` holds — the
    /// explicit active-mask escape hatch for data-dependent divergence.
    ///
    /// Each active lane executes as a full [`Lane`] whose trace sequence
    /// starts at the warp's current slot, so a uniform columnar prefix
    /// followed by a divergent `for_active` tail buckets exactly like the
    /// lane oracle. Must be the trailing traced section of the warp body
    /// (see the type-level docs).
    pub fn for_active<P, F>(&mut self, mut active: P, mut f: F)
    where
        P: FnMut(usize) -> bool,
        F: FnMut(&mut Lane<'_>),
    {
        let mut max_seq = self.seq;
        for l in 0..self.lanes {
            if !active(l as usize) {
                continue;
            }
            let mut lane = Lane {
                linear: self.base + l,
                local_size: self.local_size,
                group_id: self.group_id,
                seq: self.seq,
                alu: 0,
                reads: 0,
                writes: 0,
                useful: 0,
                shared_acc: 0,
                buf: self.buf.as_deref_mut(),
            };
            f(&mut lane);
            max_seq = max_seq.max(lane.seq);
            self.alu += lane.alu;
            self.reads += lane.reads;
            self.writes += lane.writes;
            self.useful += lane.useful;
            self.shared_acc += lane.shared_acc;
        }
        self.seq = max_seq;
    }

    #[inline]
    fn record_affine(&mut self, base: u64, stride: u64, count: u64, size: u8, write: bool) {
        if write {
            self.writes += count;
        } else {
            self.reads += count;
        }
        self.useful += count * u64::from(size);
        if let Some(buf) = self.buf.as_deref_mut() {
            let seq = self.seq;
            self.seq += 1;
            buf.push_global_affine(seq, base, stride, count, size);
        }
    }
}

impl fmt::Debug for Warp<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Warp")
            .field("base", &self.base)
            .field("lanes", &self.lanes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemoryPool;
    use crate::profile::{devices, HeapProfile};

    fn pool() -> MemoryPool {
        MemoryPool::new(&[HeapProfile {
            size: 1 << 24,
            device_local: true,
            host_visible: true,
        }])
    }

    fn run_one_group<F>(
        pool: &MemoryPool,
        ids: &[(BufferId, bool)],
        info: &KernelInfo,
        mem: Option<&mut MemSystem>,
        f: F,
    ) -> TrafficStats
    where
        F: Fn(&mut GroupCtx<'_>) -> SimResult<()>,
    {
        let resolved: Vec<Option<ResolvedBinding<'_>>> = ids
            .iter()
            .map(|&(id, writable)| {
                Some(ResolvedBinding {
                    store: pool.buffer(id).unwrap(),
                    writable,
                })
            })
            .collect();
        let arena = SharedArena::new(info.shared_bytes.max(1024));
        let mut scratch = TraceScratch::new();
        let trace = mem.map(|m| TraceState {
            scratch: &mut scratch,
            sink: TraceSink::Direct(m),
        });
        let mut ctx = GroupCtx::new(
            [0, 0, 0],
            [1, 1, 1],
            info,
            CompileOpts::default(),
            32,
            &resolved,
            &[],
            &arena,
            trace,
            false,
        );
        f(&mut ctx).unwrap();
        ctx.into_stats()
    }

    #[test]
    fn lanes_compute_and_record() {
        let mut p = pool();
        let (a, _) = p.create_buffer(0, 256 * 4).unwrap();
        let (b, _) = p.create_buffer(0, 256 * 4).unwrap();
        let data: Vec<f32> = (0..256).map(|i| i as f32).collect();
        p.buffer_mut(a).unwrap().write_slice(&data);

        let info = KernelInfo::new("double", [256, 1, 1])
            .reads(0, "a")
            .writes(1, "b")
            .build();
        let mut mem = MemSystem::new(&devices::gtx1050ti().memory, 32);
        let stats = run_one_group(&p, &[(a, false), (b, true)], &info, Some(&mut mem), |ctx| {
            let x = ctx.global::<f32>(0)?;
            let y = ctx.global::<f32>(1)?;
            ctx.for_lanes(|lane| {
                let i = lane.global_id(0) as usize;
                let v = lane.ld(&x, i);
                lane.alu(1);
                lane.st(&y, i, v * 2.0);
            });
            Ok(())
        });

        let out: Vec<f32> = p.buffer(b).unwrap().read_vec().unwrap();
        assert_eq!(out[10], 20.0);
        assert_eq!(stats.global_reads, 256);
        assert_eq!(stats.global_writes, 256);
        assert_eq!(stats.alu_ops, 256);
        // 256 f32 reads + 256 f32 writes = 2 KiB = 64 sectors, cold cache.
        assert_eq!(stats.dram.sectors + stats.l2_hit_sectors, 64);
    }

    #[test]
    fn strided_access_amplifies_traffic() {
        let mut p = pool();
        let n = 4096usize;
        let (a, _) = p.create_buffer(0, (n * 8 * 4) as u64).unwrap();
        let info = KernelInfo::new("stride", [256, 1, 1]).reads(0, "a").build();

        let mut traffic = Vec::new();
        for stride in [1usize, 8] {
            let mut mem = MemSystem::new(&devices::gtx1050ti().memory, 32);
            let stats = run_one_group(&p, &[(a, false)], &info, Some(&mut mem), |ctx| {
                let x = ctx.global::<f32>(0)?;
                ctx.for_lanes(|lane| {
                    let i = lane.global_id(0) as usize;
                    let _ = lane.ld(&x, (i * stride) % (n * 8));
                });
                Ok(())
            });
            traffic.push(stats.dram.sectors);
        }
        assert!(
            traffic[1] >= traffic[0] * 6,
            "stride-8 traffic {} vs unit {}",
            traffic[1],
            traffic[0]
        );
    }

    #[test]
    fn second_pass_hits_l2() {
        let mut p = pool();
        let (a, _) = p.create_buffer(0, 1024 * 4).unwrap();
        let info = KernelInfo::new("reread", [256, 1, 1]).reads(0, "a").build();
        let mut mem = MemSystem::new(&devices::gtx1050ti().memory, 32);
        let body = |ctx: &mut GroupCtx<'_>| {
            let x = ctx.global::<f32>(0)?;
            ctx.for_lanes(|lane| {
                let _ = lane.ld(&x, lane.global_id(0) as usize);
            });
            Ok(())
        };
        let first = run_one_group(&p, &[(a, false)], &info, Some(&mut mem), body);
        let second = run_one_group(&p, &[(a, false)], &info, Some(&mut mem), body);
        assert!(first.dram.sectors > 0);
        assert_eq!(second.dram.sectors, 0, "1 KiB working set must stay in L2");
        assert!(second.l2_hit_sectors > 0);
    }

    #[test]
    fn shared_memory_roundtrip_and_conflicts() {
        let p = pool();
        let info = KernelInfo::new("smem", [64, 1, 1])
            .shared_memory(64 * 4)
            .build();
        let mut mem = MemSystem::new(&devices::gtx1050ti().memory, 32);
        let stats = run_one_group(&p, &[], &info, Some(&mut mem), |ctx| {
            let tile = ctx.shared_array::<f32>(64)?;
            ctx.for_lanes(|lane| {
                let l = lane.local_linear() as usize;
                lane.sts(&tile, l, l as f32);
            });
            ctx.barrier();
            // Stride-32 reads: every lane hits bank (l*32)%32 == 0 -> full conflict.
            let conflict_tile = ctx.shared_array::<f32>(1)?; // placeholder, not used
            let _ = conflict_tile;
            ctx.for_lanes(|lane| {
                let l = lane.local_linear() as usize;
                let v = lane.lds(&tile, (l * 32) % 64);
                lane.alu((v >= 0.0) as u32);
            });
            Ok(())
        });
        assert_eq!(stats.barriers, 1);
        assert_eq!(stats.shared_accesses, 128);
        assert!(stats.bank_conflict_cycles > 0, "strided smem must conflict");
    }

    #[test]
    fn out_of_bounds_load_panics() {
        let mut p = pool();
        let (a, _) = p.create_buffer(0, 16).unwrap();
        let info = KernelInfo::new("oob", [1, 1, 1]).reads(0, "a").build();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_one_group(&p, &[(a, false)], &info, None, |ctx| {
                let x = ctx.global::<f32>(0)?;
                ctx.for_lanes(|lane| {
                    let _ = lane.ld(&x, 100);
                });
                Ok(())
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn store_to_readonly_binding_panics() {
        let mut p = pool();
        let (a, _) = p.create_buffer(0, 16).unwrap();
        let info = KernelInfo::new("ro", [1, 1, 1]).reads(0, "a").build();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_one_group(&p, &[(a, false)], &info, None, |ctx| {
                let x = ctx.global::<f32>(0)?;
                ctx.for_lanes(|lane| {
                    lane.st(&x, 0, 1.0);
                });
                Ok(())
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn missing_binding_is_an_error() {
        let p = pool();
        let info = KernelInfo::new("nobind", [1, 1, 1]).build();
        let resolved: Vec<Option<ResolvedBinding<'_>>> = vec![None];
        let arena = SharedArena::new(16);
        let ctx = GroupCtx::new(
            [0, 0, 0],
            [1, 1, 1],
            &info,
            CompileOpts::default(),
            32,
            &resolved,
            &[],
            &arena,
            None,
            false,
        );
        let _ = &p;
        assert!(matches!(
            ctx.global::<f32>(0),
            Err(SimError::MissingBinding { .. })
        ));
        assert!(matches!(
            ctx.global::<f32>(7),
            Err(SimError::MissingBinding { .. })
        ));
    }

    #[test]
    fn shared_overflow_is_an_error() {
        let p = pool();
        let info = KernelInfo::new("big_smem", [1, 1, 1])
            .shared_memory(64)
            .build();
        let _ = &p;
        let resolved: Vec<Option<ResolvedBinding<'_>>> = Vec::new();
        let arena = SharedArena::new(64);
        let ctx = GroupCtx::new(
            [0, 0, 0],
            [1, 1, 1],
            &info,
            CompileOpts::default(),
            32,
            &resolved,
            &[],
            &arena,
            None,
            false,
        );
        assert!(ctx.shared_array::<f32>(8).is_ok());
        assert!(matches!(
            ctx.shared_array::<f32>(16),
            Err(SimError::SharedMemoryExceeded { .. })
        ));
    }

    #[test]
    fn bulk_access_accounts_analytically() {
        let mut p = pool();
        let n = 1 << 16;
        let (a, _) = p.create_buffer(0, n * 4).unwrap();
        let info = KernelInfo::new("bulk", [1, 1, 1]).reads(0, "a").build();
        let mut mem = MemSystem::new(&devices::gtx1050ti().memory, 32);
        let stats = run_one_group(&p, &[(a, false)], &info, Some(&mut mem), |ctx| {
            let x = ctx.global::<f32>(0)?;
            ctx.bulk_access(&x, 0, n / 4, 1, false);
            ctx.bulk_alu(1000);
            Ok(())
        });
        assert_eq!(stats.global_reads, n / 4);
        assert_eq!(stats.alu_ops, 1000);
        // (n/4) f32 elements unit stride = n bytes = n/32 sectors.
        let expect = (n * 4 / 4) / 32;
        let total = stats.dram.sectors + stats.l2_hit_sectors;
        assert_eq!(total, expect);
    }

    #[test]
    fn push_constants_read_back() {
        let p = pool();
        let info = KernelInfo::new("push", [1, 1, 1]).push_constants(8).build();
        let _ = &p;
        let resolved: Vec<Option<ResolvedBinding<'_>>> = Vec::new();
        let arena = SharedArena::new(16);
        let mut push = Vec::new();
        push.extend_from_slice(&42u32.to_le_bytes());
        push.extend_from_slice(&1.5f32.to_bits().to_le_bytes());
        let ctx = GroupCtx::new(
            [0, 0, 0],
            [1, 1, 1],
            &info,
            CompileOpts::default(),
            32,
            &resolved,
            &push,
            &arena,
            None,
            false,
        );
        assert_eq!(ctx.push_u32(0), 42);
        assert_eq!(ctx.push_f32(4), 1.5);
    }

    #[test]
    fn lane_ids_are_consistent_in_2d() {
        let p = pool();
        let info = KernelInfo::new("ids", [4, 4, 1]).build();
        let _ = &p;
        let resolved: Vec<Option<ResolvedBinding<'_>>> = Vec::new();
        let arena = SharedArena::new(16);
        let mut ctx = GroupCtx::new(
            [2, 3, 0],
            [4, 4, 1],
            &info,
            CompileOpts::default(),
            32,
            &resolved,
            &[],
            &arena,
            None,
            false,
        );
        let seen = Cell::new(0u32);
        ctx.for_lanes(|lane| {
            let lx = lane.local_id(0);
            let ly = lane.local_id(1);
            assert_eq!(ly * 4 + lx, lane.local_linear());
            assert_eq!(lane.global_id(0), 2 * 4 + lx);
            assert_eq!(lane.global_id(1), 3 * 4 + ly);
            seen.set(seen.get() + 1);
        });
        assert_eq!(seen.get(), 16);
    }

    /// Runs `body` through a fresh group + MemSystem and returns the
    /// stats, the audited sector-run stream, and the contents of the
    /// writable buffer — everything warp/lane equivalence must pin.
    fn run_audited<F>(
        p: &MemoryPool,
        ids: &[(BufferId, bool)],
        info: &KernelInfo,
        out: BufferId,
        f: F,
    ) -> (TrafficStats, Vec<crate::coalesce::SectorRun>, Vec<f32>)
    where
        F: Fn(&mut GroupCtx<'_>) -> SimResult<()>,
    {
        let mut mem = MemSystem::new(&devices::gtx1050ti().memory, 32);
        mem.set_audit(true);
        let stats = run_one_group(p, ids, info, Some(&mut mem), f);
        let audit = mem.take_audit();
        let written = p.buffer(out).unwrap().read_vec().unwrap();
        (stats, audit, written)
    }

    fn assert_warp_matches_lane(
        lane: (TrafficStats, Vec<crate::coalesce::SectorRun>, Vec<f32>),
        warp: (TrafficStats, Vec<crate::coalesce::SectorRun>, Vec<f32>),
        context: &str,
    ) {
        assert_eq!(lane.0, warp.0, "{context}: TrafficStats diverged");
        assert_eq!(lane.1, warp.1, "{context}: sector-run stream diverged");
        assert_eq!(lane.2, warp.2, "{context}: output buffer diverged");
        assert!(!lane.1.is_empty(), "{context}: no traffic audited");
    }

    #[test]
    fn for_warps_seq_matches_for_lanes_bit_exactly() {
        // Guarded vadd over a non-multiple-of-warp group (40 lanes, two
        // warps: 32 + 8 tail) with the guard cutting in mid-tail (n=36),
        // so both the tail mask and active_below are exercised.
        let mut p = pool();
        let n = 36usize;
        let (a, _) = p.create_buffer(0, 64 * 4).unwrap();
        let (b, _) = p.create_buffer(0, 64 * 4).unwrap();
        let data: Vec<f32> = (0..64).map(|i| i as f32 * 1.5).collect();
        p.buffer_mut(a).unwrap().write_slice(&data);
        let info = KernelInfo::new("vadd_eq", [40, 1, 1])
            .reads(0, "a")
            .writes(1, "b")
            .build();
        let ids = [(a, false), (b, true)];

        let lane = run_audited(&p, &ids, &info, b, |ctx| {
            let x = ctx.global::<f32>(0)?;
            let y = ctx.global::<f32>(1)?;
            ctx.for_lanes(|lane| {
                let i = lane.global_linear() as usize;
                if i < n {
                    let v = lane.ld(&x, i);
                    lane.alu(1);
                    lane.st(&y, i, v * 2.0);
                }
            });
            Ok(())
        });
        p.buffer_mut(b).unwrap().write_slice(&vec![0f32; 64]);
        let warp = run_audited(&p, &ids, &info, b, |ctx| {
            let x = ctx.global::<f32>(0)?;
            let y = ctx.global::<f32>(1)?;
            ctx.for_warps(|w| {
                let m = w.active_below(n as u64);
                let start = w.global_base() as usize;
                let mut v = [0f32; MAX_WARP_WIDTH];
                w.ld_seq(&x, start, &mut v[..m]);
                for e in &mut v[..m] {
                    *e *= 2.0;
                }
                w.alu(m as u64);
                w.st_seq(&y, start, &v[..m]);
            });
            Ok(())
        });
        assert_eq!(lane.0.global_reads, n as u64);
        assert_warp_matches_lane(lane, warp, "guarded vadd");
    }

    #[test]
    fn warp_stride_and_broadcast_match_lane_oracle() {
        let mut p = pool();
        let n = 64usize;
        let (a, _) = p.create_buffer(0, (n * n * 4) as u64).unwrap();
        let (b, _) = p.create_buffer(0, (n * 4) as u64).unwrap();
        let data: Vec<f32> = (0..n * n).map(|i| (i % 97) as f32 + 1.0).collect();
        p.buffer_mut(a).unwrap().write_slice(&data);
        let info = KernelInfo::new("col_eq", [64, 1, 1])
            .reads(0, "a")
            .writes(1, "b")
            .build();
        let ids = [(a, false), (b, true)];

        // Column walk with a broadcast pivot, gaussian fan1 shape.
        let lane = run_audited(&p, &ids, &info, b, |ctx| {
            let x = ctx.global::<f32>(0)?;
            let y = ctx.global::<f32>(1)?;
            ctx.for_lanes(|lane| {
                let i = lane.global_linear() as usize;
                let pivot = lane.ld(&x, 0);
                let v = lane.ld(&x, i * n) / pivot;
                lane.alu(1);
                lane.st(&y, i, v);
            });
            Ok(())
        });
        p.buffer_mut(b).unwrap().write_slice(&vec![0f32; n]);
        let warp = run_audited(&p, &ids, &info, b, |ctx| {
            let x = ctx.global::<f32>(0)?;
            let y = ctx.global::<f32>(1)?;
            ctx.for_warps(|w| {
                let m = w.lanes();
                let start = w.global_base() as usize;
                let pivot = w.ld_bcast(&x, 0, m);
                let mut v = [0f32; MAX_WARP_WIDTH];
                w.ld_stride(&x, start * n, n, &mut v[..m]);
                for e in &mut v[..m] {
                    *e /= pivot;
                }
                w.alu(m as u64);
                w.st_seq(&y, start, &v[..m]);
            });
            Ok(())
        });
        assert_warp_matches_lane(lane, warp, "stride+broadcast");
    }

    #[test]
    fn warp_gather_scatter_and_for_active_match_lane_oracle() {
        let mut p = pool();
        let n = 96usize;
        let (a, _) = p.create_buffer(0, (n * 4) as u64).unwrap();
        let (b, _) = p.create_buffer(0, (n * 4) as u64).unwrap();
        let data: Vec<f32> = (0..n).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        p.buffer_mut(a).unwrap().write_slice(&data);
        let info = KernelInfo::new("gather_eq", [96, 1, 1])
            .reads(0, "a")
            .writes(1, "b")
            .build();
        let ids = [(a, false), (b, true)];
        let idx_of = |i: usize| (i * 17) % n;

        // Irregular gather followed by a divergent (data-dependent) tail.
        let lane = run_audited(&p, &ids, &info, b, |ctx| {
            let x = ctx.global::<f32>(0)?;
            let y = ctx.global::<f32>(1)?;
            ctx.for_lanes(|lane| {
                let i = lane.global_linear() as usize;
                let v = lane.ld(&x, idx_of(i));
                lane.alu(1);
                if v > 0.0 {
                    lane.st(&y, i, v);
                }
            });
            Ok(())
        });
        p.buffer_mut(b).unwrap().write_slice(&vec![0f32; n]);
        let warp = run_audited(&p, &ids, &info, b, |ctx| {
            let x = ctx.global::<f32>(0)?;
            let y = ctx.global::<f32>(1)?;
            ctx.for_warps(|w| {
                let m = w.lanes();
                let base = w.global_base() as usize;
                let mut idxs = [0usize; MAX_WARP_WIDTH];
                for (l, ix) in idxs[..m].iter_mut().enumerate() {
                    *ix = idx_of(base + l);
                }
                let mut v = [0f32; MAX_WARP_WIDTH];
                w.ld_gather(&x, &idxs[..m], &mut v[..m]);
                w.alu(m as u64);
                w.for_active(
                    |l| v[l] > 0.0,
                    |lane| {
                        let i = lane.global_linear() as usize;
                        lane.st(&y, i, v[i - base]);
                    },
                );
            });
            Ok(())
        });
        assert_warp_matches_lane(lane, warp, "gather + divergent tail");
    }

    #[test]
    fn warp_scatter_matches_lane_store_order() {
        let mut p = pool();
        let n = 64usize;
        let (b, _) = p.create_buffer(0, (n * 4) as u64).unwrap();
        let info = KernelInfo::new("scatter_eq", [64, 1, 1])
            .writes(0, "b")
            .build();
        let ids = [(b, true)];
        let idx_of = |i: usize| (i * 5) % n;

        let lane = run_audited(&p, &ids, &info, b, |ctx| {
            let y = ctx.global::<f32>(0)?;
            ctx.for_lanes(|lane| {
                let i = lane.global_linear() as usize;
                lane.st(&y, idx_of(i), i as f32);
            });
            Ok(())
        });
        p.buffer_mut(b).unwrap().write_slice(&vec![0f32; n]);
        let warp = run_audited(&p, &ids, &info, b, |ctx| {
            let y = ctx.global::<f32>(0)?;
            ctx.for_warps(|w| {
                let m = w.lanes();
                let base = w.global_base() as usize;
                let mut idxs = [0usize; MAX_WARP_WIDTH];
                let mut v = [0f32; MAX_WARP_WIDTH];
                for l in 0..m {
                    idxs[l] = idx_of(base + l);
                    v[l] = (base + l) as f32;
                }
                w.st_scatter(&y, &idxs[..m], &v[..m]);
            });
            Ok(())
        });
        assert_warp_matches_lane(lane, warp, "scatter");
    }

    #[test]
    fn warp_seq_load_oob_panics_like_lane() {
        let mut p = pool();
        let (a, _) = p.create_buffer(0, 16).unwrap();
        let info = KernelInfo::new("oobw", [32, 1, 1]).reads(0, "a").build();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_one_group(&p, &[(a, false)], &info, None, |ctx| {
                let x = ctx.global::<f32>(0)?;
                ctx.for_warps(|w| {
                    let mut v = [0f32; MAX_WARP_WIDTH];
                    let m = w.lanes();
                    w.ld_seq(&x, 0, &mut v[..m]);
                });
                Ok(())
            });
        }));
        assert!(result.is_err(), "32-lane ld_seq on 4 elements must panic");
    }

    #[test]
    fn warp_seq_store_to_readonly_binding_panics() {
        let mut p = pool();
        let (a, _) = p.create_buffer(0, 256).unwrap();
        let info = KernelInfo::new("row", [32, 1, 1]).reads(0, "a").build();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_one_group(&p, &[(a, false)], &info, None, |ctx| {
                let x = ctx.global::<f32>(0)?;
                ctx.for_warps(|w| {
                    let m = w.lanes();
                    let v = [0f32; MAX_WARP_WIDTH];
                    w.st_seq(&x, 0, &v[..m]);
                });
                Ok(())
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn kernel_info_builder_rejects_duplicates() {
        let result = std::panic::catch_unwind(|| {
            KernelInfo::new("dup", [1, 1, 1])
                .reads(0, "a")
                .writes(0, "b")
                .build()
        });
        assert!(result.is_err());
    }
}
