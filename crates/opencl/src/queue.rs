//! Command queues, enqueue operations and profiling events.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

use vcb_sim::exec::{BoundBuffer, Dispatch};
use vcb_sim::mem::Scalar;
use vcb_sim::time::{SimDuration, SimInstant};
use vcb_sim::timeline::CostKind;

use crate::error::{ClError, ClResult};
use crate::platform::{ClBuffer, Context};
use crate::program::{ClArg, Kernel};

/// Properties for queue creation (`cl_command_queue_properties`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueProperties {
    /// `CL_QUEUE_PROFILING_ENABLE`.
    pub profiling: bool,
}

/// An in-order command queue (`cl_command_queue`).
#[derive(Clone)]
pub struct CommandQueue {
    context: Context,
    index: usize,
    profiling: bool,
}

/// A profiling event (`cl_event`).
#[derive(Debug, Clone)]
pub struct ClEvent {
    start: Rc<Cell<SimInstant>>,
    end: Rc<Cell<SimInstant>>,
}

impl ClEvent {
    /// `CL_PROFILING_COMMAND_START`, in simulated nanoseconds.
    pub fn command_start_ns(&self) -> f64 {
        self.start.get().elapsed().as_nanos()
    }

    /// `CL_PROFILING_COMMAND_END`, in simulated nanoseconds.
    pub fn command_end_ns(&self) -> f64 {
        self.end.get().elapsed().as_nanos()
    }

    /// Device-side duration of the command.
    pub fn duration(&self) -> SimDuration {
        self.end.get().duration_since(self.start.get())
    }
}

impl CommandQueue {
    /// `clCreateCommandQueue`.
    pub fn new(context: &Context, properties: QueueProperties) -> CommandQueue {
        let mut shared = context.shared.borrow_mut();
        shared.api_call("clCreateCommandQueue", SimDuration::from_micros(30.0));
        let now = shared.host_now;
        shared.queues.push(now);
        let index = shared.queues.len() - 1;
        drop(shared);
        CommandQueue {
            context: context.clone(),
            index,
            profiling: properties.profiling,
        }
    }

    /// `clEnqueueWriteBuffer` (blocking).
    ///
    /// # Errors
    ///
    /// Size mismatches or stale buffers.
    pub fn enqueue_write_buffer<T: Scalar>(&self, buffer: &ClBuffer, data: &[T]) -> ClResult<()> {
        let bytes = std::mem::size_of_val(data) as u64;
        if bytes > buffer.bytes {
            return Err(ClError::invalid(
                "clEnqueueWriteBuffer",
                format!("write of {bytes} bytes into buffer of {}", buffer.bytes),
            ));
        }
        let mut shared = self.context.shared.borrow_mut();
        shared.calls.record("clEnqueueWriteBuffer");
        let busy = shared.queues[self.index];
        if busy > shared.host_now {
            shared.host_now = busy;
            let wakeup = shared.driver.sync_wakeup;
            shared.host_now += wakeup;
            shared.breakdown.charge(CostKind::HostApi, wakeup);
        }
        let cost = shared.gpu.host_copy_time(bytes);
        shared.host_now += cost;
        shared.breakdown.charge(CostKind::Transfer, cost);
        shared.queues[self.index] = shared.host_now;
        shared
            .gpu
            .pool_mut()
            .buffer_mut(buffer.id)?
            .write_slice(data);
        Ok(())
    }

    /// `clEnqueueReadBuffer` (blocking).
    ///
    /// # Errors
    ///
    /// Stale buffers or misaligned element types.
    pub fn enqueue_read_buffer<T: Scalar>(&self, buffer: &ClBuffer) -> ClResult<Vec<T>> {
        let mut shared = self.context.shared.borrow_mut();
        shared.calls.record("clEnqueueReadBuffer");
        let busy = shared.queues[self.index];
        if busy > shared.host_now {
            shared.host_now = busy;
            let wakeup = shared.driver.sync_wakeup;
            shared.host_now += wakeup;
            shared.breakdown.charge(CostKind::HostApi, wakeup);
        }
        let cost = shared.gpu.host_copy_time(buffer.bytes);
        shared.host_now += cost;
        shared.breakdown.charge(CostKind::Transfer, cost);
        shared.queues[self.index] = shared.host_now;
        Ok(shared.gpu.pool().buffer(buffer.id)?.read_vec()?)
    }

    /// `clEnqueueNDRangeKernel`.
    ///
    /// `global_work_size` counts work *items* (not groups, unlike
    /// `vkCmdDispatch`); it is rounded up to whole workgroups of the
    /// kernel's fixed local size. Buffer arguments map to storage bindings
    /// in argument-index order; scalar arguments pack into the kernel's
    /// parameter block in argument-index order.
    ///
    /// Every enqueue pays the driver's launch overhead — the
    /// per-iteration cost structure of the multi-kernel method (§IV-C).
    ///
    /// # Errors
    ///
    /// Missing arguments, zero sizes, or execution failures.
    pub fn enqueue_nd_range_kernel(
        &self,
        kernel: &Kernel,
        global_work_size: [u64; 3],
    ) -> ClResult<ClEvent> {
        let mut shared = self.context.shared.borrow_mut();
        shared.calls.record("clEnqueueNDRangeKernel");
        if global_work_size.contains(&0) {
            return Err(ClError::invalid(
                "clEnqueueNDRangeKernel",
                "global work size must be non-zero",
            ));
        }

        let info = kernel.compiled.info();
        let mut slots = info.bindings.iter().map(|b| b.binding).collect::<Vec<_>>();
        slots.sort_unstable();
        let mut slot_iter = slots.iter();
        let mut bindings = Vec::new();
        let mut scalars = Vec::new();
        let args = kernel.args.borrow();
        for (_, arg) in args.iter() {
            match arg {
                ClArg::Buffer(b) => {
                    let Some(&slot) = slot_iter.next() else {
                        return Err(ClError::invalid(
                            "clEnqueueNDRangeKernel",
                            format!(
                                "kernel `{}` takes {} buffer arguments, more were set",
                                info.name,
                                info.bindings.len()
                            ),
                        ));
                    };
                    bindings.push(BoundBuffer {
                        binding: slot,
                        buffer: b.id,
                    });
                }
                ClArg::I32(v) => scalars.extend_from_slice(&v.to_le_bytes()),
                ClArg::U32(v) => scalars.extend_from_slice(&v.to_le_bytes()),
                ClArg::F32(v) => scalars.extend_from_slice(&v.to_le_bytes()),
            }
        }
        drop(args);
        if slot_iter.next().is_some() {
            return Err(ClError::invalid(
                "clEnqueueNDRangeKernel",
                format!(
                    "kernel `{}` expects {} buffer arguments (clSetKernelArg missing?)",
                    info.name,
                    info.bindings.len()
                ),
            ));
        }

        let local = info.local_size;
        let groups = [
            (global_work_size[0].div_ceil(local[0] as u64)) as u32,
            (global_work_size[1].div_ceil(local[1] as u64)) as u32,
            (global_work_size[2].div_ceil(local[2] as u64)) as u32,
        ];

        // Host pays the enqueue/launch overhead.
        let launch = shared.driver.launch_overhead;
        shared.host_now += launch;
        shared.breakdown.charge(CostKind::LaunchOverhead, launch);

        let start = shared.queues[self.index].max(shared.host_now);
        let dispatch = Dispatch {
            kernel: kernel.compiled.clone(),
            groups,
            bindings,
            push_constants: scalars,
        };
        let driver = shared.driver.clone();
        let report = shared.gpu.execute(&dispatch, &driver)?;
        shared
            .breakdown
            .charge(CostKind::KernelExec, report.time - report.uvm_time);
        if !report.uvm_time.is_zero() {
            shared.breakdown.charge(CostKind::UvmFault, report.uvm_time);
        }
        let end = start + report.time;
        shared.queues[self.index] = end;
        Ok(ClEvent {
            start: Rc::new(Cell::new(start)),
            end: Rc::new(Cell::new(end)),
        })
    }

    /// `clFinish`: blocks until the queue drains.
    pub fn finish(&self) {
        let mut shared = self.context.shared.borrow_mut();
        shared.calls.record("clFinish");
        let busy = shared.queues[self.index];
        if busy > shared.host_now {
            shared.host_now = busy;
            let wakeup = shared.driver.sync_wakeup;
            shared.host_now += wakeup;
            shared.breakdown.charge(CostKind::HostApi, wakeup);
        }
    }

    /// `true` if the queue was created with profiling enabled.
    pub fn profiling_enabled(&self) -> bool {
        self.profiling
    }
}

impl fmt::Debug for CommandQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CommandQueue")
            .field("index", &self.index)
            .field("profiling", &self.profiling)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{MemFlags, Platform};
    use crate::program::Program;
    use std::sync::Arc;
    use vcb_sim::exec::{GroupCtx, KernelInfo};
    use vcb_sim::profile::devices;
    use vcb_sim::{Api, KernelRegistry};

    fn registry() -> Arc<KernelRegistry> {
        let mut r = KernelRegistry::new();
        r.register(
            KernelInfo::new("scale2", [64, 1, 1])
                .reads(0, "in")
                .writes(1, "out")
                .push_constants(4)
                .build(),
            Arc::new(|ctx: &mut GroupCtx<'_>| {
                let input = ctx.global::<f32>(0)?;
                let out = ctx.global::<f32>(1)?;
                let n = ctx.push_u32(0) as usize;
                ctx.for_lanes(|lane| {
                    let i = lane.global_linear() as usize;
                    if i < n {
                        let v = lane.ld(&input, i) * 2.0;
                        lane.alu(1);
                        lane.st(&out, i, v);
                    }
                });
                Ok(())
            }),
        )
        .unwrap();
        Arc::new(r)
    }

    const SOURCE: &str = r#"
        __kernel void scale2(__global const float* in, __global float* out, uint n) {
            uint i = get_global_id(0);
            if (i < n) out[i] = in[i] * 2.0f;
        }
    "#;

    fn setup() -> (Context, CommandQueue, Kernel) {
        let platforms = Platform::enumerate(&[devices::gtx1050ti()], registry());
        let ctx = Context::new(&platforms[0].devices()[0]).unwrap();
        let queue = CommandQueue::new(&ctx, QueueProperties { profiling: true });
        let program = Program::create_with_source(&ctx, SOURCE);
        program.build().unwrap();
        let kernel = Kernel::new(&program, "scale2").unwrap();
        (ctx, queue, kernel)
    }

    #[test]
    fn scale_end_to_end() {
        let (ctx, queue, kernel) = setup();
        let n = 5000usize;
        let input = ctx
            .create_buffer(MemFlags::ReadOnly, (n * 4) as u64)
            .unwrap();
        let output = ctx
            .create_buffer(MemFlags::WriteOnly, (n * 4) as u64)
            .unwrap();
        let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        queue.enqueue_write_buffer(&input, &data).unwrap();
        kernel.set_arg(0, ClArg::Buffer(input));
        kernel.set_arg(1, ClArg::Buffer(output));
        kernel.set_arg(2, ClArg::U32(n as u32));
        let event = queue
            .enqueue_nd_range_kernel(&kernel, [n as u64, 1, 1])
            .unwrap();
        queue.finish();
        let out: Vec<f32> = queue.enqueue_read_buffer(&output).unwrap();
        assert_eq!(out[123], 246.0);
        assert!(event.duration() > SimDuration::ZERO);
        assert!(event.command_end_ns() > event.command_start_ns());
    }

    #[test]
    fn launch_overhead_charged_per_enqueue() {
        let (ctx, queue, kernel) = setup();
        let n = 256usize;
        let input = ctx
            .create_buffer(MemFlags::ReadOnly, (n * 4) as u64)
            .unwrap();
        let output = ctx
            .create_buffer(MemFlags::WriteOnly, (n * 4) as u64)
            .unwrap();
        queue
            .enqueue_write_buffer(&input, &vec![1.0f32; n])
            .unwrap();
        kernel.set_arg(0, ClArg::Buffer(input));
        kernel.set_arg(1, ClArg::Buffer(output));
        kernel.set_arg(2, ClArg::U32(n as u32));
        for _ in 0..7 {
            queue
                .enqueue_nd_range_kernel(&kernel, [n as u64, 1, 1])
                .unwrap();
        }
        queue.finish();
        let expected = devices::gtx1050ti()
            .driver(Api::OpenCl)
            .unwrap()
            .launch_overhead
            * 7;
        assert_eq!(ctx.breakdown().get(CostKind::LaunchOverhead), expected);
    }

    #[test]
    fn missing_args_rejected() {
        let (ctx, queue, kernel) = setup();
        let input = ctx.create_buffer(MemFlags::ReadOnly, 1024).unwrap();
        kernel.set_arg(0, ClArg::Buffer(input));
        // arg 1 (output buffer) never set.
        kernel.set_arg(2, ClArg::U32(1));
        assert!(queue.enqueue_nd_range_kernel(&kernel, [64, 1, 1]).is_err());
    }

    #[test]
    fn zero_global_size_rejected() {
        let (_ctx, queue, kernel) = setup();
        assert!(queue.enqueue_nd_range_kernel(&kernel, [0, 1, 1]).is_err());
    }

    #[test]
    fn global_size_rounds_up_to_groups() {
        let (ctx, queue, kernel) = setup();
        let n = 100usize; // local size 64 -> 2 groups
        let input = ctx
            .create_buffer(MemFlags::ReadOnly, (n * 4) as u64)
            .unwrap();
        let output = ctx
            .create_buffer(MemFlags::WriteOnly, (n * 4) as u64)
            .unwrap();
        queue
            .enqueue_write_buffer(&input, &vec![3.0f32; n])
            .unwrap();
        kernel.set_arg(0, ClArg::Buffer(input));
        kernel.set_arg(1, ClArg::Buffer(output));
        kernel.set_arg(2, ClArg::U32(n as u32));
        queue
            .enqueue_nd_range_kernel(&kernel, [n as u64, 1, 1])
            .unwrap();
        queue.finish();
        let out: Vec<f32> = queue.enqueue_read_buffer(&output).unwrap();
        assert_eq!(out[99], 6.0);
    }
}
