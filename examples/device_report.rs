//! Inspect the simulated platforms: device properties, queue families,
//! memory heaps, driver stacks — and disassemble a kernel's SPIR-V, the
//! way the paper used CodeXL to compare generated code (§V-A2).
//!
//! ```text
//! cargo run --release --example device_report
//! ```

use std::sync::Arc;

use vcomputebench::sim::profile::devices;
use vcomputebench::sim::Api;
use vcomputebench::spirv::{disassemble, SpirvModule};
use vcomputebench::vulkan::{Instance, InstanceCreateInfo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = vcomputebench::workloads::registry()?;
    let instance = Instance::new(&InstanceCreateInfo {
        application_name: "device_report".into(),
        enabled_layers: vec![],
        devices: devices::all(),
        registry: Arc::clone(&registry),
    })?;

    for physical in instance.enumerate_physical_devices() {
        let props = physical.properties();
        println!("== {} ==", props.device_name);
        println!("  vendor:            {}", props.vendor);
        println!("  Vulkan API:        {}", props.api_version);
        println!(
            "  push constants:    {} bytes max",
            props.limits.max_push_constants_size
        );
        println!("  queue families:");
        for (i, family) in physical.queue_family_properties().iter().enumerate() {
            println!("    [{i}] {} x{}", family.queue_flags, family.queue_count);
        }
        println!("  memory heaps:");
        let mem = physical.memory_properties();
        for (i, heap) in mem.memory_heaps.iter().enumerate() {
            println!(
                "    [{i}] {:>6} MiB {}{}",
                heap.size / (1024 * 1024),
                if heap.device_local {
                    "DEVICE_LOCAL "
                } else {
                    ""
                },
                if heap.host_visible {
                    "HOST_VISIBLE"
                } else {
                    ""
                },
            );
        }
        println!();
    }

    // What the driver compiler sees: bfs kernel 1, the kernel whose
    // missing local-memory promotion explains the paper's bfs slowdown.
    let info = registry.lookup("bfs_kernel1")?.info().clone();
    let module = SpirvModule::assemble(&info);
    println!(
        "== SPIR-V disassembly: bfs_kernel1 ({} bytes) ==",
        module.byte_len()
    );
    println!("{}", disassemble(module.words())?);
    let gtx = devices::gtx1050ti();
    println!(
        "compiler maturity on {}: Vulkan promotes reuse to local memory = {}, OpenCL = {}",
        gtx.name,
        gtx.driver(Api::Vulkan).unwrap().local_memory_promotion,
        gtx.driver(Api::OpenCl).unwrap().local_memory_promotion,
    );
    Ok(())
}
