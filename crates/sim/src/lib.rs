//! # vcb-sim — the GPU simulator substrate
//!
//! This crate is the hardware stand-in for the VComputeBench reproduction:
//! a deterministic, functional-plus-timing GPU simulator that the
//! Vulkan-shaped (`vcb-vulkan`), CUDA-shaped (`vcb-cuda`) and
//! OpenCL-shaped (`vcb-opencl`) frontends all execute on.
//!
//! The paper ran on four physical GPUs; this environment has none, so the
//! mechanisms the paper measures are modelled explicitly:
//!
//! * **Coalescing + DRAM** ([`coalesce`], [`dram`]) — sectored access
//!   merging and a row-buffer model reproduce the bandwidth-vs-stride
//!   curves of Fig. 1/Fig. 3.
//! * **L2 cache** ([`cache`]) — persistent across dispatches, giving small
//!   working sets their re-use advantage.
//! * **Execution model** ([`exec`], [`engine`]) — kernels run at workgroup
//!   granularity with per-lane loads/stores, shared memory, barriers and
//!   deterministic workgroup sampling for big grids.
//! * **Device & driver profiles** ([`profile`]) — the paper's four
//!   platforms with per-API launch/submit/bind overheads, compiler
//!   maturity and the driver quirks reported in §V-B.
//! * **Virtual time** ([`time`], [`timeline`]) — all results are simulated
//!   durations; nothing depends on the machine running the simulation.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use vcb_sim::engine::Gpu;
//! use vcb_sim::exec::{BoundBuffer, CompileOpts, CompiledKernel, Dispatch, GroupCtx, KernelInfo};
//! use vcb_sim::profile::devices;
//! use vcb_sim::Api;
//!
//! # fn main() -> Result<(), vcb_sim::SimError> {
//! let mut gpu = Gpu::new(devices::gtx1050ti());
//! let (buf, _) = gpu.pool_mut().create_buffer(0, 1024 * 4)?;
//!
//! let info = KernelInfo::new("fill", [256, 1, 1]).writes(0, "out").build();
//! let kernel = CompiledKernel::new(
//!     info,
//!     Arc::new(|ctx: &mut GroupCtx<'_>| {
//!         let out = ctx.global::<f32>(0)?;
//!         ctx.for_lanes(|lane| {
//!             let i = lane.global_linear() as usize;
//!             lane.st(&out, i, i as f32);
//!         });
//!         Ok(())
//!     }),
//!     CompileOpts::default(),
//! );
//!
//! let report = gpu.execute(
//!     &Dispatch {
//!         kernel,
//!         groups: [4, 1, 1],
//!         bindings: vec![BoundBuffer { binding: 0, buffer: buf }],
//!         push_constants: vec![],
//!     },
//!     devices::gtx1050ti().driver(Api::Cuda).unwrap(),
//! )?;
//! assert!(report.time.as_micros() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod api;
pub mod cache;
pub mod calls;
pub mod coalesce;
pub mod dram;
pub mod engine;
pub mod error;
pub mod exec;
pub mod mem;
pub mod profile;
pub mod registry;
pub mod rng;
pub mod time;
pub mod timeline;
pub mod uvm;

pub use api::Api;
pub use calls::CallCounter;
pub use coalesce::SectorRun;
pub use engine::{DispatchReport, Gpu, TraceMode};
pub use error::{SimError, SimResult};
pub use exec::{
    CompileOpts, CompiledKernel, Dispatch, GroupCtx, KernelBody, KernelInfo, Lane, Warp,
    MAX_WARP_WIDTH,
};
pub use profile::{DeviceClass, DeviceProfile, DriverProfile, DriverQuirk, Vendor};
pub use registry::KernelRegistry;
pub use rng::SmallRng;
pub use time::{SimDuration, SimInstant};
pub use timeline::{CostKind, Timeline, TimingBreakdown};
pub use uvm::{MemMode, UvmBudget, UvmProfile};
