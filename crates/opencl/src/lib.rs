//! # vcb-opencl — an OpenCL-shaped API on the simulator
//!
//! The second launch-based model of the paper's comparison, and the
//! baseline of its speedup plots (it is the only model supported on all
//! four platforms). Differences from CUDA that matter to the experiments:
//!
//! * **Runtime JIT**: kernels ship as C source and compile at
//!   [`program::Program::build`], charging the build time the paper
//!   excludes by reporting kernel-only durations (§V-A2).
//! * **Mature compilers**: OpenCL drivers apply local-memory promotion
//!   (the bfs advantage over Vulkan).
//! * **Explicit contexts and queues** with per-enqueue launch overhead.
//! * **Driver fragility on mobile** (§V-B2): program builds fail for
//!   workloads the device profile marks broken, exactly where the paper
//!   saw lud fail on the Snapdragon.
//!
//! ```
//! use std::sync::Arc;
//! use vcb_sim::profile::devices;
//! use vcb_sim::KernelRegistry;
//! use vcb_opencl::{CommandQueue, Context, Platform, QueueProperties};
//!
//! # fn main() -> Result<(), vcb_opencl::ClError> {
//! let platforms = Platform::enumerate(&devices::all(), Arc::new(KernelRegistry::new()));
//! assert_eq!(platforms.len(), 4); // all paper devices have some OpenCL
//! let context = Context::new(&platforms[0].devices()[0])?;
//! let _queue = CommandQueue::new(&context, QueueProperties { profiling: true });
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod platform;
pub mod program;
pub mod queue;

pub use error::{ClError, ClResult};
pub use platform::{ClBuffer, ClDeviceId, Context, MemFlags, Platform};
pub use program::{ClArg, Kernel, PreBuiltProgram, Program};
pub use queue::{ClEvent, CommandQueue, QueueProperties};
