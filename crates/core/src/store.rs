//! Persistent, content-addressed result store: the on-disk counterpart
//! of the in-memory [`ResultCache`](crate::plan::ResultCache).
//!
//! Every cell of the experiment matrix is already exactly identified by
//! its [`CellKey`](crate::plan::CellKey) fingerprint (runs are
//! deterministic: equal keys produce bit-identical results), so a sweep
//! service only ever needs to *execute* a cell whose result is not on
//! disk yet. A [`Store`] is a directory of one-entry files named by
//! fingerprint, each serialized with the shard codec's record grammar —
//! a versioned header, one `cell` record (recorded fingerprint, the
//! full spec identity, an observed execution cost, and the payload),
//! and an `end` trailer so a truncated write can never pass for a
//! complete entry.
//!
//! Safety properties the format defends:
//!
//! * **Stale builds cannot decode silently.** The recorded fingerprint
//!   is re-verified against the fingerprint recomputed from the decoded
//!   spec, and the decoded identity is compared field-for-field against
//!   the *requested* cell — an entry written by a build with a
//!   different [`CellKey`](crate::plan::CellKey) field set, hash, or
//!   codec version is rejected (and simply re-executed), never trusted.
//! * **Concurrent writers cannot corrupt entries.** Writes go to a
//!   uniquely-named temporary file in the store directory and are
//!   published with an atomic rename, so readers only ever observe
//!   complete entries; two processes finishing the same cell race to an
//!   identical result.
//! * **Costs feed back into scheduling.** Each entry records the
//!   observed wall-clock cost of executing its cell, and
//!   [`Store::plan_costs`] blends those measurements with the static
//!   [`cell_cost`] estimate so LPT partitioning (`--jobs`) balances on
//!   measured cost wherever a measurement exists.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::plan::{CellSpec, RunPlan};
use crate::shard::{
    cell_cost, decode_spec, join_fields, spec_fields, split_fields, CodecError, FieldCursor,
    CODEC_VERSION,
};

/// Magic of a store-entry header line. Entries share [`CODEC_VERSION`]
/// with the shard codec (the spec serialization is the same), so any
/// identity or layout change invalidates both in one bump.
pub const STORE_MAGIC: &str = "vcb-store";

/// File extension of a store entry.
const ENTRY_EXT: &str = "cell";

/// A decoded store entry: the payload plus the recorded execution cost.
#[derive(Debug, Clone)]
pub struct StoreHit<T> {
    /// The decoded result payload.
    pub out: T,
    /// Observed wall-clock cost of the original execution, in
    /// nanoseconds (0 when the writer did not measure one).
    pub cost_nanos: u64,
}

/// An on-disk, content-addressed result store: one file per unique cell
/// identity, named by the cell's fingerprint.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

/// Per-process counter making concurrent temp-file names unique across
/// threads (the pid alone distinguishes processes).
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl Store {
    /// Opens (creating if necessary) the store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Store { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for `spec` — `<dir>/<fingerprint>.cell`.
    pub fn entry_path(&self, spec: &CellSpec) -> PathBuf {
        self.dir
            .join(format!("{:016x}.{ENTRY_EXT}", spec.fingerprint()))
    }

    /// Serializes one store entry (the write side of [`parse_entry`]).
    fn encode_entry<S: AsRef<str>>(spec: &CellSpec, payload: &[S], cost_nanos: u64) -> String {
        let mut text = String::new();
        text.push_str(&join_fields(&[
            STORE_MAGIC.to_owned(),
            CODEC_VERSION.to_string(),
        ]));
        text.push('\n');
        let mut fields = vec![
            "cell".to_owned(),
            format!("{:016x}", spec.fingerprint()),
            cost_nanos.to_string(),
        ];
        fields.extend(spec_fields(spec));
        fields.push(join_fields(payload));
        text.push_str(&join_fields(&fields));
        text.push('\n');
        text.push_str(&join_fields(&["end", "1"]));
        text.push('\n');
        text
    }

    /// Writes (or atomically replaces) the entry for `spec`. The
    /// payload fields come from the caller's result codec (the harness
    /// uses its `CellOut` codec); `cost_nanos` is the observed
    /// execution cost recorded for scheduling feedback.
    ///
    /// The entry is staged in a uniquely-named temporary file and
    /// published with a rename, so a concurrent reader (or a second
    /// writer finishing the same cell) never observes a partial entry.
    pub fn write_cell<S: AsRef<str>>(
        &self,
        spec: &CellSpec,
        payload: &[S],
        cost_nanos: u64,
    ) -> io::Result<()> {
        let text = Store::encode_entry(spec, payload, cost_nanos);
        let tmp = self.dir.join(format!(
            ".{:016x}.{}.{}.tmp",
            spec.fingerprint(),
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.flush()?;
        }
        let result = fs::rename(&tmp, self.entry_path(spec));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Loads the entry for `spec`, decoding its payload with the
    /// caller's codec.
    ///
    /// Returns `Ok(None)` when no entry exists, and `Err` when an entry
    /// exists but is rejected — truncated, tampered with, written by a
    /// different codec version or an incompatible build, or holding a
    /// different cell than requested. Callers treat a rejection as a
    /// miss (the cell re-executes and the entry is rewritten); the
    /// error exists so rejections are observable, never silent.
    pub fn load_cell<T>(
        &self,
        spec: &CellSpec,
        decode_payload: impl FnOnce(&[String]) -> Result<T, CodecError>,
    ) -> Result<Option<StoreHit<T>>, CodecError> {
        let text = match fs::read_to_string(self.entry_path(spec)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CodecError::Malformed(format!("unreadable entry: {e}"))),
        };
        parse_entry(&text, spec, decode_payload).map(Some)
    }

    /// The recorded execution cost for `spec`, in nanoseconds — `None`
    /// when no valid entry exists (missing and rejected entries alike:
    /// a cost is only trusted together with the result it came with).
    pub fn load_cost(&self, spec: &CellSpec) -> Option<u64> {
        self.load_cell(spec, |_| Ok(()))
            .ok()
            .flatten()
            .map(|hit| hit.cost_nanos)
    }

    /// Per-cell costs for partitioning `plan`: the recorded execution
    /// cost wherever the store has one, and the static [`cell_cost`]
    /// estimate — rescaled by the median observed nanoseconds-per-unit
    /// over the measured cells, so the two magnitudes are comparable —
    /// everywhere else. With no measurements at all this degrades to
    /// plain [`cell_cost`], i.e. exactly what
    /// [`RunPlan::partition`](crate::plan::RunPlan) uses.
    pub fn plan_costs(&self, plan: &RunPlan) -> Vec<u64> {
        // Probe each unique fingerprint once; duplicates share a file.
        let mut by_print: HashMap<u64, Option<u64>> = HashMap::new();
        let measured: Vec<Option<u64>> = plan
            .cells()
            .iter()
            .map(|spec| {
                *by_print
                    .entry(spec.fingerprint())
                    .or_insert_with(|| self.load_cost(spec))
            })
            .collect();
        let mut ratios: Vec<f64> = plan
            .cells()
            .iter()
            .zip(&measured)
            .filter_map(|(spec, m)| m.map(|nanos| nanos as f64 / cell_cost(spec) as f64))
            .collect();
        ratios.sort_by(|a, b| a.total_cmp(b));
        let ratio = if ratios.is_empty() {
            1.0
        } else {
            ratios[ratios.len() / 2].max(f64::MIN_POSITIVE)
        };
        plan.cells()
            .iter()
            .zip(&measured)
            .map(|(spec, m)| {
                m.unwrap_or_else(|| {
                    let est = (cell_cost(spec) as f64 * ratio).ceil();
                    est.clamp(1.0, u64::MAX as f64) as u64
                })
                .max(1)
            })
            .collect()
    }
}

/// Decodes and fully verifies one store entry against the requested
/// cell: header magic + version, recorded-vs-recomputed fingerprint,
/// decoded identity vs the *requested* identity, and the `end` trailer.
fn parse_entry<T>(
    text: &str,
    spec: &CellSpec,
    decode_payload: impl FnOnce(&[String]) -> Result<T, CodecError>,
) -> Result<StoreHit<T>, CodecError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| CodecError::Header("empty entry".into()))?;
    let fields = split_fields(header).map_err(|_| CodecError::Header("unreadable".into()))?;
    let mut cur = FieldCursor::new(&fields);
    let magic = cur
        .next_field()
        .map_err(|_| CodecError::Header("empty".into()))?;
    if magic != STORE_MAGIC {
        return Err(CodecError::Header(format!(
            "expected `{STORE_MAGIC}`, found `{magic}`"
        )));
    }
    let version = cur.u32()?;
    if version != CODEC_VERSION {
        return Err(CodecError::Version(version));
    }
    cur.finish()?;

    let record = lines.next().ok_or(CodecError::Truncated)?;
    let fields = split_fields(record)?;
    let mut cur = FieldCursor::new(&fields);
    match cur.next_field()? {
        "cell" => {}
        other => {
            return Err(CodecError::Malformed(format!("bad record `{other}`")));
        }
    }
    let fingerprint = cur.hex64()?;
    let cost_nanos = cur.u64()?;
    let decoded = decode_spec(&mut cur)?;
    if decoded.fingerprint() != fingerprint {
        return Err(CodecError::Fingerprint { index: 0 });
    }
    if decoded.key() != spec.key() {
        return Err(CodecError::Malformed(
            "entry holds a different cell than requested".into(),
        ));
    }
    let payload = split_fields(cur.next_field()?)?;
    cur.finish()?;

    let trailer = lines.next().ok_or(CodecError::Truncated)?;
    let fields = split_fields(trailer)?;
    let mut cur = FieldCursor::new(&fields);
    match cur.next_field()? {
        "end" => {}
        other => {
            return Err(CodecError::Malformed(format!(
                "expected `end` trailer, found `{other}`"
            )));
        }
    }
    let count = cur.usize()?;
    cur.finish()?;
    if count != 1 {
        return Err(CodecError::Malformed(format!(
            "trailer counts {count} cells, entries hold exactly 1"
        )));
    }
    if lines.next().is_some() {
        return Err(CodecError::Malformed("data after `end` trailer".into()));
    }
    let out = decode_payload(&payload)?;
    Ok(StoreHit { out, cost_nanos })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::SizeSpec;
    use crate::workload::RunOpts;
    use vcb_sim::Api;

    fn spec(workload: &str, label: &str, n: u64, device: &str) -> CellSpec {
        CellSpec {
            workload: workload.into(),
            size: SizeSpec::new(label, n),
            api: Api::Vulkan,
            device: device.into(),
            opts: RunOpts::default(),
        }
    }

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!(
            "vcb_store_test_{tag}_{}_{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    fn cleanup(store: &Store) {
        let _ = fs::remove_dir_all(store.dir());
    }

    fn decode_payload(fields: &[String]) -> Result<Vec<String>, CodecError> {
        Ok(fields.to_vec())
    }

    #[test]
    fn entries_round_trip_payload_and_cost() {
        let store = temp_store("roundtrip");
        let cell = spec("bfs", "4K", 4096, "GTX 1050 Ti");
        let payload = ["run".to_owned(), "hostile\tpayload\nbytes\\".to_owned()];
        assert!(store.load_cell(&cell, decode_payload).unwrap().is_none());
        store.write_cell(&cell, &payload, 123_456).unwrap();
        let hit = store.load_cell(&cell, decode_payload).unwrap().unwrap();
        assert_eq!(hit.out, payload);
        assert_eq!(hit.cost_nanos, 123_456);
        assert_eq!(store.load_cost(&cell), Some(123_456));
        // Rewrites replace the entry.
        store.write_cell(&cell, &payload, 99).unwrap();
        assert_eq!(store.load_cost(&cell), Some(99));
        // No stray temp files survive a completed write.
        let stray: Vec<_> = fs::read_dir(store.dir())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
        cleanup(&store);
    }

    #[test]
    fn distinct_cells_have_distinct_entries() {
        let store = temp_store("distinct");
        let a = spec("bfs", "4K", 4096, "A");
        let mut b = a.clone();
        b.opts.seed ^= 1;
        store.write_cell(&a, &["pa"], 1).unwrap();
        store.write_cell(&b, &["pb"], 2).unwrap();
        assert_ne!(store.entry_path(&a), store.entry_path(&b));
        assert_eq!(
            store.load_cell(&a, decode_payload).unwrap().unwrap().out,
            ["pa"]
        );
        assert_eq!(
            store.load_cell(&b, decode_payload).unwrap().unwrap().out,
            ["pb"]
        );
        cleanup(&store);
    }

    #[test]
    fn version_bumped_entries_are_rejected() {
        let store = temp_store("version");
        let cell = spec("bfs", "4K", 4096, "A");
        store.write_cell(&cell, &["p"], 1).unwrap();
        let path = store.entry_path(&cell);
        let text = fs::read_to_string(&path).unwrap();
        let bumped = text.replacen(
            &format!("{STORE_MAGIC}\t{CODEC_VERSION}"),
            &format!("{STORE_MAGIC}\t{}", CODEC_VERSION + 1),
            1,
        );
        assert_ne!(bumped, text);
        fs::write(&path, bumped).unwrap();
        assert_eq!(
            store.load_cell(&cell, decode_payload).unwrap_err(),
            CodecError::Version(CODEC_VERSION + 1)
        );
        assert_eq!(store.load_cost(&cell), None);
        cleanup(&store);
    }

    #[test]
    fn truncated_entries_are_rejected() {
        let store = temp_store("truncated");
        let cell = spec("bfs", "4K", 4096, "A");
        store.write_cell(&cell, &["p"], 1).unwrap();
        let path = store.entry_path(&cell);
        let text = fs::read_to_string(&path).unwrap();
        // Drop the `end` trailer.
        let cut: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        fs::write(&path, cut).unwrap();
        assert_eq!(
            store.load_cell(&cell, decode_payload).unwrap_err(),
            CodecError::Truncated
        );
        cleanup(&store);
    }

    #[test]
    fn tampered_fingerprints_are_rejected() {
        let store = temp_store("tampered");
        let cell = spec("bfs", "4K", 4096, "A");
        store.write_cell(&cell, &["p"], 1).unwrap();
        let path = store.entry_path(&cell);
        let text = fs::read_to_string(&path).unwrap();
        let fp = format!("{:016x}", cell.fingerprint());
        let mut flipped = fp.clone();
        let last = flipped.pop().unwrap();
        flipped.push(if last == '0' { '1' } else { '0' });
        // Tamper only the record's fingerprint field (line 2), not the
        // file name.
        let tampered: String = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 1 {
                    format!("{}\n", l.replacen(&fp, &flipped, 1))
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        assert_ne!(tampered, text);
        fs::write(&path, tampered).unwrap();
        assert_eq!(
            store.load_cell(&cell, decode_payload).unwrap_err(),
            CodecError::Fingerprint { index: 0 }
        );
        cleanup(&store);
    }

    #[test]
    fn entries_for_a_different_cell_are_rejected() {
        // A file renamed (or fingerprint-colliding) onto another cell's
        // path must not decode as that cell.
        let store = temp_store("wrongcell");
        let a = spec("bfs", "4K", 4096, "A");
        let mut b = a.clone();
        b.opts.seed ^= 1;
        store.write_cell(&a, &["pa"], 1).unwrap();
        fs::rename(store.entry_path(&a), store.entry_path(&b)).unwrap();
        let err = store.load_cell(&b, decode_payload).unwrap_err();
        assert!(
            matches!(&err, CodecError::Malformed(m) if m.contains("different cell")),
            "{err}"
        );
        cleanup(&store);
    }

    #[test]
    fn garbage_entries_are_rejected_not_trusted() {
        let store = temp_store("garbage");
        let cell = spec("bfs", "4K", 4096, "A");
        for garbage in ["", "nonsense\n", "vcb-store\t1\nnot-a-record\nend\t1\n"] {
            fs::write(store.entry_path(&cell), garbage).unwrap();
            assert!(
                store.load_cell(&cell, decode_payload).is_err(),
                "{garbage:?}"
            );
        }
        cleanup(&store);
    }

    #[test]
    fn concurrent_writers_never_corrupt_an_entry() {
        // Two "jobs" finishing the same duplicate cell race their
        // writes; every interleaving must leave a complete, loadable
        // entry holding one of the two (identical-shaped) payloads.
        let store = temp_store("concurrent");
        let cell = spec("gaussian", "208", 208, "Mali T-880");
        std::thread::scope(|scope| {
            for writer in 0..2 {
                let store = &store;
                let cell = &cell;
                scope.spawn(move || {
                    for round in 0..50 {
                        store
                            .write_cell(cell, &[format!("w{writer}r{round}")], writer + 1)
                            .unwrap();
                        let hit = store
                            .load_cell(cell, |f| Ok(f.to_vec()))
                            .expect("entry must always parse")
                            .expect("entry must exist once written");
                        assert_eq!(hit.out.len(), 1);
                        assert!(hit.out[0].starts_with('w'), "{:?}", hit.out);
                    }
                });
            }
        });
        let hit = store.load_cell(&cell, decode_payload).unwrap().unwrap();
        assert!(hit.cost_nanos == 1 || hit.cost_nanos == 2);
        cleanup(&store);
    }

    #[test]
    fn plan_costs_blend_measured_and_estimated() {
        let store = temp_store("costs");
        let mut plan = RunPlan::new();
        plan.push(spec("bfs", "4K", 4096, "A"));
        plan.push(spec("nn", "8M", 8 << 20, "A"));
        plan.push(spec("bfs", "4K", 4096, "A")); // duplicate of cell 0
                                                 // No measurements: pure static estimates.
        let baseline: Vec<u64> = plan.cells().iter().map(cell_cost).collect();
        assert_eq!(store.plan_costs(&plan), baseline);
        // Measure cell 0 at 2× its static estimate: the measured cells
        // use the measurement, the unmeasured cell rescales by the
        // observed ratio (2 ns per unit).
        let measured = cell_cost(&plan.cells()[0]) * 2;
        store
            .write_cell(&plan.cells()[0], &["p"], measured)
            .unwrap();
        let costs = store.plan_costs(&plan);
        assert_eq!(costs[0], measured);
        assert_eq!(costs[2], measured, "duplicates share the measurement");
        assert_eq!(costs[1], cell_cost(&plan.cells()[1]) * 2);
        cleanup(&store);
    }

    #[test]
    fn plan_costs_rescale_by_the_median_ratio_not_the_mean() {
        // Three measured cells at 2, 3 and 100 ns per static unit: the
        // unmeasured cell must rescale by the median (3), so one
        // outlier measurement cannot skew every estimate.
        let store = temp_store("median");
        let mut plan = RunPlan::new();
        plan.push(spec("bfs", "4K", 4096, "A"));
        plan.push(spec("nn", "8M", 8 << 20, "A"));
        plan.push(spec("gaussian", "208", 208, "A"));
        plan.push(spec("hotspot", "1K", 1024, "A")); // unmeasured
        for (i, per_unit) in [(0, 2), (1, 100), (2, 3)] {
            let cell = &plan.cells()[i];
            store
                .write_cell(cell, &["p"], cell_cost(cell) * per_unit)
                .unwrap();
        }
        let costs = store.plan_costs(&plan);
        assert_eq!(costs[3], cell_cost(&plan.cells()[3]) * 3);
        cleanup(&store);
    }

    #[test]
    fn plan_costs_on_an_empty_store_degrade_to_static_estimates() {
        let store = temp_store("unmeasured");
        let mut plan = RunPlan::new();
        plan.push(spec("bfs", "4K", 4096, "A"));
        plan.push(spec("nn", "8M", 8 << 20, "B"));
        let baseline: Vec<u64> = plan.cells().iter().map(cell_cost).collect();
        assert_eq!(store.plan_costs(&plan), baseline);
        // An empty plan is a no-op, not a panic.
        assert!(store.plan_costs(&RunPlan::new()).is_empty());
        cleanup(&store);
    }

    #[test]
    fn plan_costs_single_cell_uses_its_own_measurement() {
        // One measured cell: the median ratio is that cell's own, the
        // measurement is returned verbatim, and nothing else exists to
        // rescale.
        let store = temp_store("single");
        let mut plan = RunPlan::new();
        plan.push(spec("bfs", "4K", 4096, "A"));
        assert_eq!(
            store.plan_costs(&plan),
            vec![cell_cost(&plan.cells()[0])],
            "unmeasured single cell falls back to the static estimate"
        );
        store.write_cell(&plan.cells()[0], &["p"], 7777).unwrap();
        assert_eq!(store.plan_costs(&plan), vec![7777]);
        cleanup(&store);
    }
}
