//! The GPGPU programming models compared by the paper.

use std::fmt;
use std::str::FromStr;

/// A GPGPU programming model evaluated by VComputeBench.
///
/// The paper compares the explicit, command-buffer-based Vulkan model
/// against the two established launch-based models, CUDA and OpenCL.
///
/// ```
/// use vcb_sim::Api;
///
/// assert_eq!(Api::Vulkan.to_string(), "Vulkan");
/// assert_eq!("opencl".parse::<Api>().unwrap(), Api::OpenCl);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Api {
    /// Khronos Vulkan compute (SPIR-V kernels, command buffers, explicit
    /// synchronization).
    Vulkan,
    /// NVIDIA CUDA runtime (kernel launches on streams).
    Cuda,
    /// Khronos OpenCL (JIT-compiled programs, command queues).
    OpenCl,
}

impl Api {
    /// All programming models, in the paper's presentation order
    /// (baseline OpenCL first).
    pub const ALL: [Api; 3] = [Api::OpenCl, Api::Vulkan, Api::Cuda];

    /// Short lowercase identifier used in CSV output and CLI flags.
    pub fn ident(self) -> &'static str {
        match self {
            Api::Vulkan => "vulkan",
            Api::Cuda => "cuda",
            Api::OpenCl => "opencl",
        }
    }
}

impl fmt::Display for Api {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Api::Vulkan => "Vulkan",
            Api::Cuda => "CUDA",
            Api::OpenCl => "OpenCL",
        };
        f.write_str(name)
    }
}

/// Error returned when parsing an [`Api`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseApiError {
    input: String,
}

impl fmt::Display for ParseApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown programming model `{}` (expected vulkan, cuda or opencl)",
            self.input
        )
    }
}

impl std::error::Error for ParseApiError {}

impl FromStr for Api {
    type Err = ParseApiError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "vulkan" | "vk" => Ok(Api::Vulkan),
            "cuda" => Ok(Api::Cuda),
            "opencl" | "cl" | "ocl" => Ok(Api::OpenCl),
            _ => Err(ParseApiError {
                input: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!("vk".parse::<Api>().unwrap(), Api::Vulkan);
        assert_eq!("CUDA".parse::<Api>().unwrap(), Api::Cuda);
        assert_eq!("ocl".parse::<Api>().unwrap(), Api::OpenCl);
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = "metal".parse::<Api>().unwrap_err();
        assert!(err.to_string().contains("metal"));
    }

    #[test]
    fn idents_are_distinct() {
        let mut ids: Vec<_> = Api::ALL.iter().map(|a| a.ident()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }
}
