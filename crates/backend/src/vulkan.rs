//! [`ComputeBackend`] lowered onto the Vulkan-shaped frontend.
//!
//! Sequences record into real command buffers as the host program emits
//! ops, so a dependent-dispatch chain becomes the §IV-C pattern: every
//! dispatch pre-recorded into one command buffer with pipeline barriers,
//! submitted in a single `vkQueueSubmit`.

use std::sync::Arc;

use vcb_core::run::RunFailure;
use vcb_sim::calls::CallCounter;
use vcb_sim::profile::DeviceProfile;
use vcb_sim::time::SimInstant;
use vcb_sim::timeline::TimingBreakdown;
use vcb_sim::{Api, KernelRegistry};
use vcb_vulkan::util as vku;
use vcb_vulkan::{
    Access, BufferUsage, CommandBuffer, CommandPool, DescriptorPool, DescriptorSet,
    DescriptorSetLayout, MemoryBarrier, MemoryProperty, PipelineStage, SubmitInfo,
    WriteDescriptorSet,
};

use crate::backend::{
    BackendResult, BindGroupHandle, BufferHandle, ComputeBackend, KernelHandle, SeqHandle,
    UsageHint,
};
use crate::env::{vk_env, vk_failure, vk_kernel, VkEnv, VkKernelBundle};
use crate::envcache::{CachedEnv, EnvReturn};

struct VkBindGroup {
    layout: DescriptorSetLayout,
    _pool: DescriptorPool,
    set: DescriptorSet,
    buffers: Vec<BufferHandle>,
}

struct VkSeq {
    /// One command buffer per segment; `seq_split` opens a new one.
    segments: Vec<CommandBuffer>,
    /// Pipeline layout of the kernel selected by the last `seq_kernel`
    /// (descriptor binds and push constants need it).
    current_kernel: Option<KernelHandle>,
}

/// The Vulkan lowering of the portable host-program layer.
pub struct VulkanBackend {
    env: VkEnv,
    registry: Arc<KernelRegistry>,
    cmd_pool: Option<CommandPool>,
    buffers: Vec<vku::AllocatedBuffer>,
    bind_groups: Vec<VkBindGroup>,
    kernels: Vec<VkKernelBundle>,
    seqs: Vec<VkSeq>,
    /// When set, the environment came from (or goes back to) a worker-
    /// local cache; also provides the SPIR-V assembly cache.
    env_return: Option<EnvReturn>,
}

impl VulkanBackend {
    /// Brings up instance/device/queue on `profile`.
    ///
    /// # Errors
    ///
    /// Propagates environment failures.
    pub fn new(
        profile: &DeviceProfile,
        registry: &Arc<KernelRegistry>,
    ) -> Result<VulkanBackend, RunFailure> {
        Ok(Self::from_env(vk_env(profile, registry)?, registry, None))
    }

    /// Wraps an existing (fresh or cache-reset) environment.
    pub(crate) fn from_env(
        env: VkEnv,
        registry: &Arc<KernelRegistry>,
        env_return: Option<EnvReturn>,
    ) -> VulkanBackend {
        VulkanBackend {
            env,
            registry: Arc::clone(registry),
            cmd_pool: None,
            buffers: Vec::new(),
            bind_groups: Vec::new(),
            kernels: Vec::new(),
            seqs: Vec::new(),
            env_return,
        }
    }

    /// The underlying environment (for Vulkan-specific ablations).
    pub fn env(&self) -> &VkEnv {
        &self.env
    }

    fn pool(&mut self) -> BackendResult<&CommandPool> {
        if self.cmd_pool.is_none() {
            let pool = self
                .env
                .device
                .create_command_pool(self.env.queue.family_index())
                .map_err(vk_failure)?;
            self.cmd_pool = Some(pool);
        }
        Ok(self.cmd_pool.as_ref().expect("just created"))
    }

    fn buf(&self, b: BufferHandle) -> &vku::AllocatedBuffer {
        &self.buffers[b.0]
    }

    fn cmd(&self, seq: SeqHandle) -> &CommandBuffer {
        self.seqs[seq.0]
            .segments
            .last()
            .expect("sequence has an open command buffer")
    }

    fn barrier(&self, seq: SeqHandle) -> BackendResult<()> {
        self.cmd(seq)
            .pipeline_barrier(
                PipelineStage::COMPUTE_SHADER,
                PipelineStage::COMPUTE_SHADER,
                &MemoryBarrier {
                    src_access: Access::SHADER_WRITE,
                    dst_access: Access::SHADER_READ,
                },
            )
            .map_err(vk_failure)
    }

    fn submit(&mut self, seq: SeqHandle) -> BackendResult<()> {
        let refs: Vec<&CommandBuffer> = self.seqs[seq.0].segments.iter().collect();
        self.env
            .queue
            .submit(
                &[SubmitInfo {
                    command_buffers: &refs,
                }],
                None,
            )
            .map_err(vk_failure)
    }
}

impl ComputeBackend for VulkanBackend {
    fn api(&self) -> Api {
        Api::Vulkan
    }

    fn device_name(&self) -> String {
        self.env.device.profile().name
    }

    fn now(&self) -> SimInstant {
        self.env.device.now()
    }

    fn call_counts(&self) -> CallCounter {
        self.env.device.call_counts()
    }

    fn breakdown(&self) -> TimingBreakdown {
        self.env.device.breakdown()
    }

    fn sim_fingerprint(&self) -> u64 {
        self.env.device.sim_fingerprint()
    }

    fn sync(&mut self) {
        self.env.device.wait_idle();
    }

    fn load_program(&mut self, _cl_source: &str) -> BackendResult<()> {
        // Vulkan ships SPIR-V binaries; kernels assemble per-pipeline in
        // `kernel()`.
        Ok(())
    }

    fn upload(&mut self, data: &[u8], _usage: UsageHint) -> BackendResult<BufferHandle> {
        let buffer = vku::upload_storage_buffer(&self.env.device, &self.env.queue, data)
            .map_err(vk_failure)?;
        self.buffers.push(buffer);
        Ok(BufferHandle(self.buffers.len() - 1))
    }

    fn alloc(&mut self, bytes: u64, _usage: UsageHint) -> BackendResult<BufferHandle> {
        let buffer = vku::create_storage_buffer(&self.env.device, bytes).map_err(vk_failure)?;
        self.buffers.push(buffer);
        Ok(BufferHandle(self.buffers.len() - 1))
    }

    fn alloc_host(&mut self, bytes: u64) -> BackendResult<BufferHandle> {
        // Host-readable every iteration, so host-visible even on desktop
        // (the bfs termination flag).
        let buffer = vku::create_buffer_bound(
            &self.env.device,
            bytes,
            BufferUsage::STORAGE_BUFFER | BufferUsage::TRANSFER_DST,
            MemoryProperty::HOST_VISIBLE,
        )
        .map_err(vk_failure)?;
        self.buffers.push(buffer);
        Ok(BufferHandle(self.buffers.len() - 1))
    }

    fn download(&mut self, buf: BufferHandle) -> BackendResult<Vec<u8>> {
        vku::download_storage_buffer(&self.env.device, &self.env.queue, self.buf(buf))
            .map_err(vk_failure)
    }

    fn write_host(&mut self, buf: BufferHandle, data: &[u8]) -> BackendResult<()> {
        self.buf(buf).buffer.write_mapped(data).map_err(vk_failure)
    }

    fn read_host(&mut self, buf: BufferHandle) -> BackendResult<Vec<u8>> {
        // Mapped memory is only coherent once the queue drains.
        self.env.queue.wait_idle();
        self.buf(buf).buffer.read_mapped().map_err(vk_failure)
    }

    fn upload_into(&mut self, buf: BufferHandle, data: &[u8]) -> BackendResult<()> {
        // Device-local contents cannot be rewritten in place from the
        // host: upload a fresh staged buffer and rewrite every descriptor
        // slot that referenced the handle (the backprop delta pattern).
        let fresh = vku::upload_storage_buffer(&self.env.device, &self.env.queue, data)
            .map_err(vk_failure)?;
        self.buffers[buf.0] = fresh;
        let mut writes = Vec::new();
        for bg in &self.bind_groups {
            for (slot, handle) in bg.buffers.iter().enumerate() {
                if *handle == buf {
                    writes.push(WriteDescriptorSet {
                        dst_set: &bg.set,
                        dst_binding: slot as u32,
                        buffer: &self.buffers[buf.0].buffer,
                    });
                }
            }
        }
        if !writes.is_empty() {
            self.env
                .device
                .update_descriptor_sets(&writes)
                .map_err(vk_failure)?;
        }
        Ok(())
    }

    fn bind_group(&mut self, buffers: &[BufferHandle]) -> BackendResult<BindGroupHandle> {
        let refs: Vec<&vcb_vulkan::Buffer> =
            buffers.iter().map(|b| &self.buffers[b.0].buffer).collect();
        let (layout, pool, set) =
            vku::storage_descriptor_set(&self.env.device, &refs).map_err(vk_failure)?;
        self.bind_groups.push(VkBindGroup {
            layout,
            _pool: pool,
            set,
            buffers: buffers.to_vec(),
        });
        Ok(BindGroupHandle(self.bind_groups.len() - 1))
    }

    fn bind_group_like(
        &mut self,
        like: BindGroupHandle,
        buffers: &[BufferHandle],
    ) -> BackendResult<BindGroupHandle> {
        let layout = self.bind_groups[like.0].layout.clone();
        let pool = self
            .env
            .device
            .create_descriptor_pool(1)
            .map_err(vk_failure)?;
        let set = pool.allocate_descriptor_set(&layout).map_err(vk_failure)?;
        let writes: Vec<WriteDescriptorSet<'_>> = buffers
            .iter()
            .enumerate()
            .map(|(slot, b)| WriteDescriptorSet {
                dst_set: &set,
                dst_binding: slot as u32,
                buffer: &self.buffers[b.0].buffer,
            })
            .collect();
        self.env
            .device
            .update_descriptor_sets(&writes)
            .map_err(vk_failure)?;
        self.bind_groups.push(VkBindGroup {
            layout,
            _pool: pool,
            set,
            buffers: buffers.to_vec(),
        });
        Ok(BindGroupHandle(self.bind_groups.len() - 1))
    }

    fn kernel(
        &mut self,
        name: &str,
        layout_of: BindGroupHandle,
        push_bytes: u32,
    ) -> BackendResult<KernelHandle> {
        let layout = self.bind_groups[layout_of.0].layout.clone();
        let bundle = match &self.env_return {
            // Cached assembly, parse and driver compile: identical
            // words through the memoized pipeline path.
            Some(ticket) => {
                let words = ticket
                    .cache()
                    .borrow_mut()
                    .spirv_words(&self.registry, name)
                    .map_err(|e| RunFailure::Error(e.to_string()))?;
                crate::env::vk_kernel_memoized(
                    &self.env,
                    name,
                    &words,
                    &layout,
                    push_bytes,
                    ticket.cache(),
                    ticket.key(),
                )?
            }
            None => vk_kernel(&self.env, &self.registry, name, &layout, push_bytes)?,
        };
        self.kernels.push(bundle);
        Ok(KernelHandle(self.kernels.len() - 1))
    }

    fn seq_begin(&mut self) -> BackendResult<SeqHandle> {
        let cmd = self.pool()?.allocate_command_buffer().map_err(vk_failure)?;
        cmd.begin().map_err(vk_failure)?;
        self.seqs.push(VkSeq {
            segments: vec![cmd],
            current_kernel: None,
        });
        Ok(SeqHandle(self.seqs.len() - 1))
    }

    fn seq_kernel(&mut self, seq: SeqHandle, kernel: KernelHandle) -> BackendResult<()> {
        self.cmd(seq)
            .bind_pipeline(&self.kernels[kernel.0].pipeline)
            .map_err(vk_failure)?;
        self.seqs[seq.0].current_kernel = Some(kernel);
        Ok(())
    }

    fn seq_bind(&mut self, seq: SeqHandle, binds: BindGroupHandle) -> BackendResult<()> {
        let kernel = self.seqs[seq.0]
            .current_kernel
            .ok_or_else(|| RunFailure::Error("seq_bind before seq_kernel".into()))?;
        self.cmd(seq)
            .bind_descriptor_sets(
                &self.kernels[kernel.0].layout,
                &[&self.bind_groups[binds.0].set],
            )
            .map_err(vk_failure)
    }

    fn seq_push(&mut self, seq: SeqHandle, data: &[u8]) -> BackendResult<()> {
        let kernel = self.seqs[seq.0]
            .current_kernel
            .ok_or_else(|| RunFailure::Error("seq_push before seq_kernel".into()))?;
        self.cmd(seq)
            .push_constants(&self.kernels[kernel.0].layout, 0, data)
            .map_err(vk_failure)
    }

    fn seq_dispatch(&mut self, seq: SeqHandle, groups: [u32; 3]) -> BackendResult<()> {
        self.cmd(seq)
            .dispatch(groups[0], groups[1], groups[2])
            .map_err(vk_failure)
    }

    fn seq_barrier(&mut self, seq: SeqHandle) -> BackendResult<()> {
        self.barrier(seq)
    }

    fn seq_dependency(&mut self, seq: SeqHandle) -> BackendResult<()> {
        // §IV-C: the dependent-dispatch boundary is just a barrier in the
        // pre-recorded command buffer — no host round trip.
        self.barrier(seq)
    }

    fn seq_split(&mut self, seq: SeqHandle) -> BackendResult<()> {
        self.cmd(seq).end().map_err(vk_failure)?;
        let cmd = self.pool()?.allocate_command_buffer().map_err(vk_failure)?;
        cmd.begin().map_err(vk_failure)?;
        self.seqs[seq.0].segments.push(cmd);
        self.seqs[seq.0].current_kernel = None;
        Ok(())
    }

    fn seq_end(&mut self, seq: SeqHandle) -> BackendResult<()> {
        self.cmd(seq).end().map_err(vk_failure)
    }

    fn run(&mut self, seq: SeqHandle) -> BackendResult<()> {
        self.submit(seq)?;
        self.env.queue.wait_idle();
        Ok(())
    }

    fn run_async(&mut self, seq: SeqHandle) -> BackendResult<()> {
        self.submit(seq)
    }
}

impl Drop for VulkanBackend {
    fn drop(&mut self) {
        // Return the environment to the worker-local cache for the next
        // cell with the same key (it resets the device before reuse).
        if let Some(ticket) = &self.env_return {
            ticket.give_back(CachedEnv::Vk(self.env.clone()));
        }
    }
}

impl std::fmt::Debug for VulkanBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VulkanBackend")
            .field("device", &self.env.device.profile().name)
            .field("buffers", &self.buffers.len())
            .finish()
    }
}
