//! Streaming sinks for the matrix executor: progress lines on stderr,
//! incremental CSV files that replace the old post-hoc `write_csv`,
//! and the shard event stream that carries one process's slice of the
//! matrix to a later `vcb merge`.
//!
//! [`CellEvent`]s arrive in completion order; the CSV sinks buffer by
//! plan index and flush the ready prefix, so the file grows in plan
//! order while cells are still executing — and ends byte-identical to
//! the old whole-figure render (same row builders, same quoting; see
//! `render::panel_csv_cells` / `render::bandwidth_csv_cells`). The
//! shard sink buffers the same way, so event files are written in plan
//! order and a partially-written file shows exactly how far the shard
//! got.

use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::{BufWriter, Write};

use vcb_core::plan::{CellEvent, CellSpec, EventSink};
use vcb_core::report::csv_line;
use vcb_core::run::RunRecord;
use vcb_core::shard::{self, CodecError, EventWriter, FieldCursor, ShardSlice};
use vcb_core::store::Store;
use vcb_sim::time::SimDuration;
use vcb_sim::Api;

use crate::experiments::{CellOut, MatrixCell};
use crate::render;
use vcb_workloads::micro::stride::BandwidthSample;

/// Progress lines on stderr: one line per *executed* cell (cache hits
/// and intra-plan duplicates stay silent, so a fully-warmed stage prints
/// nothing).
#[derive(Debug)]
pub struct Progress {
    done: usize,
    total: usize,
}

impl Progress {
    /// A progress reporter expecting `total` fresh executions (see
    /// `Session::pending_cells`).
    pub fn new(total: usize) -> Progress {
        Progress { done: 0, total }
    }
}

impl EventSink<CellOut> for Progress {
    fn event(&mut self, event: CellEvent<'_, CellOut>) {
        if let CellEvent::Finished {
            spec,
            out,
            cached: false,
            ..
        } = event
        {
            self.done += 1;
            eprintln!(
                "vcb: [{}/{}] {} {}",
                self.done,
                self.total,
                spec,
                out.status()
            );
        }
    }
}

/// Fans one event stream out to two sinks.
pub struct Tee<'a, T>(
    /// First receiver.
    pub &'a mut (dyn EventSink<T> + Send),
    /// Second receiver.
    pub &'a mut (dyn EventSink<T> + Send),
);

impl<T> EventSink<T> for Tee<'_, T> {
    fn event(&mut self, event: CellEvent<'_, T>) {
        self.0.event(event);
        self.1.event(event);
    }
}

impl<T> std::fmt::Debug for Tee<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Tee")
    }
}

/// A line-oriented CSV file that reports `wrote {path}` (or the failure)
/// once finished — the same stderr contract the post-hoc writer had.
#[derive(Debug)]
struct CsvFile {
    path: String,
    writer: Option<BufWriter<File>>,
    error: Option<std::io::Error>,
}

impl CsvFile {
    fn create(path: &str) -> CsvFile {
        let (writer, error) = match File::create(path) {
            Ok(f) => (Some(BufWriter::new(f)), None),
            Err(e) => (None, Some(e)),
        };
        CsvFile {
            path: path.to_owned(),
            writer,
            error,
        }
    }

    fn write_line(&mut self, line: &str) {
        if let Some(w) = &mut self.writer {
            if let Err(e) = w.write_all(line.as_bytes()) {
                self.error = Some(e);
                self.writer = None;
            }
        }
    }

    fn finish(mut self) {
        if let Some(w) = &mut self.writer {
            if let Err(e) = w.flush() {
                self.error = Some(e);
            }
        }
        match self.error {
            None if self.writer.is_some() => eprintln!("wrote {}", self.path),
            Some(e) => eprintln!("failed to write {}: {e}", self.path),
            None => {}
        }
    }
}

/// Incremental CSV for speedup panels. Rows flush in plan order; a
/// header precedes each device's block (one header per panel, as the
/// concatenated per-panel tables had). The speedup column needs the
/// bar's OpenCL baseline, which the plan orders first — so it is
/// resolved at *flush* time, when every earlier-indexed cell (the
/// baseline included) is guaranteed to have arrived, regardless of the
/// completion order worker threads deliver events in.
#[derive(Debug)]
pub struct PanelCsvStream {
    file: Option<CsvFile>,
    /// `None` marks a non-run cell (e.g. a bandwidth sweep in a mixed
    /// plan): it still occupies its index so the flush cursor advances.
    pending: BTreeMap<usize, Option<MatrixCell>>,
    next: usize,
    current_device: Option<String>,
    /// (device, workload, size) → the bar's OpenCL baseline record.
    baselines: HashMap<(String, String, String), RunRecord>,
}

impl PanelCsvStream {
    /// A panel CSV stream writing to `path`; `None` disables the sink.
    pub fn create(path: Option<&str>) -> PanelCsvStream {
        PanelCsvStream {
            file: path.map(CsvFile::create),
            pending: BTreeMap::new(),
            next: 0,
            current_device: None,
            baselines: HashMap::new(),
        }
    }

    /// Flushes the file and reports the `wrote`/failure line.
    pub fn finish(self) {
        if let Some(file) = self.file {
            file.finish();
        }
    }

    fn flush_ready(&mut self) {
        while let Some(slot) = self.pending.remove(&self.next) {
            self.next += 1;
            let Some(cell) = slot else { continue };
            let key = (
                cell.device.clone(),
                cell.workload.clone(),
                cell.size.clone(),
            );
            if cell.api == Api::OpenCl {
                if let Ok(r) = &cell.outcome {
                    self.baselines.insert(key.clone(), r.clone());
                }
            }
            let speedup = match (self.baselines.get(&key), &cell.outcome) {
                (Some(base), Ok(r)) => Some(vcb_core::run::speedup(base, r)),
                _ => None,
            };
            let Some(file) = &mut self.file else { continue };
            if self.current_device.as_deref() != Some(cell.device.as_str()) {
                file.write_line(&csv_line(&render::PANEL_CSV_HEADERS));
                self.current_device = Some(cell.device.clone());
            }
            file.write_line(&csv_line(&render::panel_csv_cells(&cell, speedup)));
        }
    }
}

impl EventSink<CellOut> for PanelCsvStream {
    fn event(&mut self, event: CellEvent<'_, CellOut>) {
        let CellEvent::Finished {
            index, spec, out, ..
        } = event
        else {
            return;
        };
        let cell = out.as_run().map(|outcome| MatrixCell {
            workload: spec.workload.clone(),
            size: spec.size.label.clone(),
            api: spec.api,
            device: spec.device.clone(),
            plan_index: index,
            outcome: outcome.clone(),
        });
        self.pending.insert(index, cell);
        self.flush_ready();
    }
}

/// Incremental CSV for bandwidth sweeps: one header up front, then one
/// row per stride sample of each successful curve, in plan order.
#[derive(Debug)]
pub struct BandwidthCsvStream {
    file: Option<CsvFile>,
    pending: BTreeMap<usize, (String, Api, CellOut)>,
    next: usize,
}

impl BandwidthCsvStream {
    /// A bandwidth CSV stream writing to `path`; `None` disables the
    /// sink.
    pub fn create(path: Option<&str>) -> BandwidthCsvStream {
        let mut file = path.map(CsvFile::create);
        if let Some(f) = &mut file {
            f.write_line(&csv_line(&render::BANDWIDTH_CSV_HEADERS));
        }
        BandwidthCsvStream {
            file,
            pending: BTreeMap::new(),
            next: 0,
        }
    }

    /// Flushes the file and reports the `wrote`/failure line.
    pub fn finish(self) {
        if let Some(file) = self.file {
            file.finish();
        }
    }

    fn flush_ready(&mut self) {
        while let Some((device, api, out)) = self.pending.remove(&self.next) {
            self.next += 1;
            let Some(file) = &mut self.file else { continue };
            if let CellOut::Curve(Ok(samples)) = &out {
                for s in samples {
                    file.write_line(&csv_line(&render::bandwidth_csv_cells(&device, api, s)));
                }
            }
        }
    }
}

impl EventSink<CellOut> for BandwidthCsvStream {
    fn event(&mut self, event: CellEvent<'_, CellOut>) {
        let CellEvent::Finished {
            index, spec, out, ..
        } = event
        else {
            return;
        };
        self.pending
            .insert(index, (spec.device.clone(), spec.api, out.clone()));
        self.flush_ready();
    }
}

/// Encodes one [`CellOut`] as shard-event payload fields: a `run`
/// outcome through the core codec, or a `curve` (one Fig. 1 / Fig. 3
/// bandwidth sweep) with every sample's stride, exact byte-rate bit
/// pattern and per-repetition time.
pub fn cell_out_fields(out: &CellOut) -> Vec<String> {
    match out {
        CellOut::Run(outcome) => {
            let mut f = vec!["run".to_owned()];
            f.extend(shard::outcome_fields(outcome));
            f
        }
        CellOut::Curve(Ok(samples)) => {
            let mut f = vec![
                "curve".to_owned(),
                "ok".to_owned(),
                samples.len().to_string(),
            ];
            for s in samples {
                f.push(s.stride.to_string());
                f.push(format!("{:016x}", s.bytes_per_sec.to_bits()));
                f.push(s.time_per_rep.as_picos().to_string());
            }
            f
        }
        CellOut::Curve(Err(e)) => {
            let mut f = vec!["curve".to_owned(), "err".to_owned()];
            f.extend(shard::failure_fields(e));
            f
        }
    }
}

/// Decodes the payload fields written by [`cell_out_fields`] — the
/// closure `vcb merge` hands to [`vcb_core::shard::decode_events`].
pub fn decode_cell_out(fields: &[String]) -> Result<CellOut, CodecError> {
    let mut cur = FieldCursor::new(fields);
    let out = match cur.next_field()? {
        "run" => CellOut::Run(shard::decode_outcome(&mut cur)?),
        "curve" => match cur.next_field()? {
            "ok" => {
                let count = cur.usize()?;
                // Capacity is bounded by the record itself (3 fields per
                // sample), not by the file-controlled count — a corrupt
                // count must surface as a decode error, never an
                // allocation abort.
                let mut samples = Vec::with_capacity(count.min(fields.len() / 3 + 1));
                for _ in 0..count {
                    samples.push(BandwidthSample {
                        stride: cur.u32()?,
                        bytes_per_sec: f64::from_bits(cur.hex64()?),
                        time_per_rep: SimDuration::from_picos(cur.u64()?),
                    });
                }
                CellOut::Curve(Ok(samples))
            }
            "err" => CellOut::Curve(Err(shard::decode_failure(&mut cur)?)),
            other => {
                return Err(CodecError::Malformed(format!("bad curve tag `{other}`")));
            }
        },
        other => {
            return Err(CodecError::Malformed(format!("bad payload tag `{other}`")));
        }
    };
    cur.finish()?;
    Ok(out)
}

/// An [`EventSink`] that writes every freshly-executed cell back to a
/// persistent [`Store`], with the observed wall-clock execution time as
/// the entry's recorded cost. Cache hits and in-plan duplicates arrive
/// with `cached: true` and are never rewritten, so a warm run leaves
/// the store untouched. Write failures warn once on stderr and never
/// fail the run — the store is an accelerator, not a dependency.
#[derive(Debug)]
pub struct StoreSink<'a> {
    store: &'a Store,
    started: HashMap<usize, std::time::Instant>,
    warned: bool,
}

impl<'a> StoreSink<'a> {
    /// A sink persisting fresh results into `store`.
    pub fn new(store: &'a Store) -> StoreSink<'a> {
        StoreSink {
            store,
            started: HashMap::new(),
            warned: false,
        }
    }
}

impl EventSink<CellOut> for StoreSink<'_> {
    fn event(&mut self, event: CellEvent<'_, CellOut>) {
        match event {
            CellEvent::Started { index, .. } => {
                self.started.insert(index, std::time::Instant::now());
            }
            CellEvent::Finished {
                index,
                spec,
                out,
                cached: false,
            } => {
                let nanos = self
                    .started
                    .remove(&index)
                    .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
                    .unwrap_or(0);
                if let Err(e) = self.store.write_cell(spec, &cell_out_fields(out), nanos) {
                    if !self.warned {
                        eprintln!(
                            "vcb: store: write to {} failed: {e} (results stay in-process)",
                            self.store.dir().display()
                        );
                        self.warned = true;
                    }
                }
            }
            CellEvent::Finished { .. } => {}
        }
    }
}

/// An [`EventSink`] that writes one shard's slice of the matrix as an
/// encoded event stream. The executor delivers slice-local indices in
/// completion order; the sink buffers them, translates back to the
/// original plan indices, and flushes the ready prefix — so the file
/// grows in plan order and a crash leaves a readable (if truncated)
/// stream behind.
#[derive(Debug)]
pub struct ShardEventStream {
    path: String,
    writer: Option<EventWriter<BufWriter<File>>>,
    error: Option<std::io::Error>,
    /// Slice-local index → original plan index.
    orig: Vec<usize>,
    pending: BTreeMap<usize, (CellSpec, Vec<String>)>,
    next: usize,
}

impl ShardEventStream {
    /// Opens `path` and writes the stream header for one slice of a
    /// `plan_len`-cell plan.
    pub fn create(
        path: &str,
        plan_len: usize,
        slice: &ShardSlice,
    ) -> Result<ShardEventStream, String> {
        let file = File::create(path).map_err(|e| format!("failed to create {path}: {e}"))?;
        let writer = EventWriter::new(
            BufWriter::new(file),
            plan_len,
            slice.shard_index,
            slice.shard_count,
        )
        .map_err(|e| format!("failed to write {path}: {e}"))?;
        Ok(ShardEventStream {
            path: path.to_owned(),
            writer: Some(writer),
            error: None,
            orig: slice.indices.clone(),
            pending: BTreeMap::new(),
            next: 0,
        })
    }

    fn flush_ready(&mut self) {
        let mut wrote = false;
        while let Some((spec, payload)) = self.pending.remove(&self.next) {
            let index = self.orig[self.next];
            self.next += 1;
            if let Some(w) = &mut self.writer {
                if let Err(e) = w.cell(index, &spec, &payload) {
                    self.error = Some(e);
                    self.writer = None;
                }
                wrote = true;
            }
        }
        // Durability: push every completed record through to the file so
        // a crashed (or killed) shard loses at most the cell in flight —
        // the supervisor salvages the flushed prefix and the watchdog
        // reads file growth as proof of progress.
        if wrote {
            if let Some(w) = &mut self.writer {
                if let Err(e) = w.flush() {
                    self.error = Some(e);
                    self.writer = None;
                }
            }
        }
    }

    /// Writes the `end` trailer and reports the stream path on stderr;
    /// fails if any write failed or cells are still pending.
    pub fn finish(mut self) -> Result<(), String> {
        self.flush_ready();
        if self.next != self.orig.len() {
            return Err(format!(
                "shard stream incomplete: {}/{} cells resolved",
                self.next,
                self.orig.len()
            ));
        }
        if let Some(w) = self.writer.take() {
            if let Err(e) = w.finish() {
                self.error = Some(e);
            }
        }
        match self.error {
            None => {
                eprintln!("wrote {}", self.path);
                Ok(())
            }
            Some(e) => Err(format!("failed to write {}: {e}", self.path)),
        }
    }
}

impl EventSink<CellOut> for ShardEventStream {
    fn event(&mut self, event: CellEvent<'_, CellOut>) {
        let CellEvent::Finished {
            index, spec, out, ..
        } = event
        else {
            return;
        };
        self.pending
            .insert(index, (spec.clone(), cell_out_fields(out)));
        self.flush_ready();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_core::run::{RunFailure, SizeSpec};
    use vcb_core::workload::RunOpts;

    fn spec(workload: &str, label: &str, api: Api, device: &str) -> CellSpec {
        CellSpec {
            workload: workload.into(),
            size: SizeSpec::new(label, 1),
            api,
            device: device.into(),
            opts: RunOpts::default(),
        }
    }

    #[test]
    fn progress_reports_only_fresh_executions() {
        let mut p = Progress::new(2);
        let s = spec("bfs", "4K", Api::Vulkan, "D");
        let out = CellOut::Run(Err(RunFailure::Unsupported));
        p.event(CellEvent::Finished {
            index: 0,
            spec: &s,
            out: &out,
            cached: false,
        });
        p.event(CellEvent::Finished {
            index: 1,
            spec: &s,
            out: &out,
            cached: true,
        });
        assert_eq!(p.done, 1);
    }

    #[test]
    fn speedup_resolves_even_when_subject_finishes_before_baseline() {
        // On a multi-core run a Vulkan cell can complete before its
        // OpenCL baseline (planned one index earlier). The speedup
        // column must still be filled: it is computed at flush time,
        // in plan order, not at event-arrival time.
        use vcb_sim::calls::CallCounter;
        use vcb_sim::time::SimDuration;
        use vcb_sim::timeline::TimingBreakdown;
        let record = |api: Api, kernel_us: f64| {
            CellOut::Run(Ok(vcb_core::run::RunRecord {
                workload: "bfs".into(),
                api,
                device: "D".into(),
                size: "4K".into(),
                kernel_time: SimDuration::from_micros(kernel_us),
                total_time: SimDuration::from_micros(2.0 * kernel_us),
                breakdown: TimingBreakdown::new(),
                calls: CallCounter::new(),
                validated: true,
                fingerprint: 0,
            }))
        };
        let dir = std::env::temp_dir().join("vcb_stream_speedup_test.csv");
        let path = dir.to_str().unwrap().to_owned();
        let mut sink = PanelCsvStream::create(Some(&path));
        let cl = spec("bfs", "4K", Api::OpenCl, "D");
        let vk = spec("bfs", "4K", Api::Vulkan, "D");
        let vk_out = record(Api::Vulkan, 50.0);
        let cl_out = record(Api::OpenCl, 100.0);
        // Subject first, baseline second — reversed completion order.
        sink.event(CellEvent::Finished {
            index: 1,
            spec: &vk,
            out: &vk_out,
            cached: false,
        });
        sink.event(CellEvent::Finished {
            index: 0,
            spec: &cl,
            out: &cl_out,
            cached: false,
        });
        sink.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains(",1.0000,"), "baseline row: {}", lines[1]);
        assert!(lines[2].contains(",2.0000,"), "subject row: {}", lines[2]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn panel_stream_advances_past_non_run_cells() {
        // A mixed plan (bandwidth sweeps + panel cells) must not stall
        // the flush cursor at the first curve cell.
        let dir = std::env::temp_dir().join("vcb_stream_mixed_test.csv");
        let path = dir.to_str().unwrap().to_owned();
        let mut sink = PanelCsvStream::create(Some(&path));
        let curve_spec = spec("stride", "sweep", Api::OpenCl, "D");
        let run_spec = spec("bfs", "4K", Api::OpenCl, "D");
        let curve_out = CellOut::Curve(Err(RunFailure::Unsupported));
        let run_out = CellOut::Run(Err(RunFailure::DriverFailure));
        sink.event(CellEvent::Finished {
            index: 0,
            spec: &curve_spec,
            out: &curve_out,
            cached: false,
        });
        sink.event(CellEvent::Finished {
            index: 1,
            spec: &run_spec,
            out: &run_out,
            cached: false,
        });
        assert_eq!(sink.next, 2, "curve cell must not stall the cursor");
        sink.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().count() == 2 && text.contains("bfs"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cell_out_payloads_round_trip() {
        use vcb_sim::calls::CallCounter;
        use vcb_sim::timeline::{CostKind, TimingBreakdown};
        let mut breakdown = TimingBreakdown::new();
        breakdown.charge(CostKind::Transfer, SimDuration::from_picos(777));
        let mut calls = CallCounter::new();
        calls.record("vkCreateBuffer");
        calls.record("vkCreateBuffer");
        let record = vcb_core::run::RunRecord {
            workload: "bfs".into(),
            api: Api::Vulkan,
            device: "GTX 1050 Ti".into(),
            size: "4K".into(),
            kernel_time: SimDuration::from_picos(123),
            total_time: SimDuration::from_picos(456),
            breakdown,
            calls,
            validated: false,
            fingerprint: 0x0123_4567_89ab_cdef,
        };
        let samples = vec![
            BandwidthSample {
                stride: 1,
                bytes_per_sec: 94.08e9,
                time_per_rep: SimDuration::from_picos(1_000_000),
            },
            BandwidthSample {
                stride: 32,
                bytes_per_sec: 0.1234567891234e9,
                time_per_rep: SimDuration::from_picos(9),
            },
        ];
        let outs = vec![
            CellOut::Run(Ok(record.clone())),
            CellOut::Run(Err(RunFailure::OutOfMemory)),
            CellOut::Curve(Ok(samples.clone())),
            CellOut::Curve(Err(RunFailure::Error("no sweep\there".into()))),
        ];
        for out in &outs {
            let decoded = decode_cell_out(&cell_out_fields(out)).unwrap();
            match (out, &decoded) {
                (CellOut::Run(Ok(a)), CellOut::Run(Ok(b))) => {
                    assert_eq!(a.kernel_time, b.kernel_time);
                    assert_eq!(a.fingerprint, b.fingerprint);
                    assert_eq!(a.validated, b.validated);
                    assert_eq!(
                        a.breakdown.get(CostKind::Transfer),
                        b.breakdown.get(CostKind::Transfer)
                    );
                    assert_eq!(
                        a.calls.count("vkCreateBuffer"),
                        b.calls.count("vkCreateBuffer")
                    );
                    assert_eq!(a.calls.total(), b.calls.total());
                }
                (CellOut::Run(Err(a)), CellOut::Run(Err(b))) => assert_eq!(a, b),
                (CellOut::Curve(Ok(a)), CellOut::Curve(Ok(b))) => {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.stride, y.stride);
                        // Bit-exact float round trip, not approximate.
                        assert_eq!(x.bytes_per_sec.to_bits(), y.bytes_per_sec.to_bits());
                        assert_eq!(x.time_per_rep, y.time_per_rep);
                    }
                }
                (CellOut::Curve(Err(a)), CellOut::Curve(Err(b))) => assert_eq!(a, b),
                (a, b) => panic!("payload diverged: {a:?} vs {b:?}"),
            }
        }
        // Unknown payload tags are rejected, not misread.
        assert!(decode_cell_out(&["bogus".to_owned()]).is_err());
    }

    #[test]
    fn shard_event_stream_buffers_and_translates_indices() {
        let plan_spec = |w: &str, api: Api| spec(w, "4K", api, "D");
        let slice = ShardSlice {
            shard_index: 0,
            shard_count: 2,
            indices: vec![2, 5, 7],
        };
        let dir = std::env::temp_dir().join("vcb_shard_event_stream_test.events");
        let path = dir.to_str().unwrap().to_owned();
        let mut sink = ShardEventStream::create(&path, 9, &slice).unwrap();
        let cl = plan_spec("bfs", Api::OpenCl);
        let vk = plan_spec("bfs", Api::Vulkan);
        let nw = plan_spec("nw", Api::OpenCl);
        let out = CellOut::Run(Err(RunFailure::DriverFailure));
        // Slice-local completion order 1, 0, 2 must still produce the
        // original plan indices 2, 5, 7 in file order.
        for (local, s) in [(1usize, &vk), (0, &cl), (2, &nw)] {
            sink.event(CellEvent::Finished {
                index: local,
                spec: s,
                out: &out,
                cached: false,
            });
        }
        sink.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let stream = vcb_core::shard::decode_events(&text, decode_cell_out).unwrap();
        assert_eq!(stream.plan_len, 9);
        assert_eq!(stream.shard_count, 2);
        let indices: Vec<usize> = stream.cells.iter().map(|c| c.index).collect();
        assert_eq!(indices, [2, 5, 7]);
        assert_eq!(stream.cells[0].spec.key(), cl.key());
        assert_eq!(stream.cells[1].spec.key(), vk.key());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shard_event_stream_rejects_incomplete_slices() {
        let slice = ShardSlice {
            shard_index: 1,
            shard_count: 2,
            indices: vec![0, 1],
        };
        let dir = std::env::temp_dir().join("vcb_shard_event_incomplete_test.events");
        let path = dir.to_str().unwrap().to_owned();
        let mut sink = ShardEventStream::create(&path, 2, &slice).unwrap();
        let s = spec("bfs", "4K", Api::Vulkan, "D");
        let out = CellOut::Run(Err(RunFailure::Unsupported));
        sink.event(CellEvent::Finished {
            index: 0,
            spec: &s,
            out: &out,
            cached: false,
        });
        let err = sink.finish().unwrap_err();
        assert!(err.contains("1/2"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn panel_stream_buffers_out_of_order_events() {
        // Events for indexes 1 then 0 must still produce rows 0, 1.
        let dir = std::env::temp_dir().join("vcb_stream_test.csv");
        let path = dir.to_str().unwrap().to_owned();
        let mut sink = PanelCsvStream::create(Some(&path));
        let cl = spec("bfs", "4K", Api::OpenCl, "D");
        let vk = spec("bfs", "4K", Api::Vulkan, "D");
        let fail = CellOut::Run(Err(RunFailure::DriverFailure));
        let fail2 = CellOut::Run(Err(RunFailure::OutOfMemory));
        sink.event(CellEvent::Finished {
            index: 1,
            spec: &vk,
            out: &fail2,
            cached: false,
        });
        assert_eq!(sink.next, 0, "index 1 must wait for index 0");
        sink.event(CellEvent::Finished {
            index: 0,
            spec: &cl,
            out: &fail,
            cached: false,
        });
        assert_eq!(sink.next, 2);
        sink.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("device,workload"));
        assert!(lines[1].contains("opencl"));
        assert!(lines[2].contains("vulkan"));
        let _ = std::fs::remove_file(&path);
    }
}
