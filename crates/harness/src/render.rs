//! Rendering experiment results as text reports, bar charts and CSV.

use std::fmt::Write as _;

use vcb_core::report::{BarChart, Table};
use vcb_core::run::RunFailure;
use vcb_sim::profile::{DeviceClass, DeviceProfile};
use vcb_sim::Api;

use vcb_sim::timeline::CostKind;
use vcb_sim::SimDuration;

use crate::experiments::{
    BandwidthCurve, CellOut, DevicePanel, DnnCompare, GeomeanSummary, UvmCompare,
};

/// Renders Table I (the benchmark list).
pub fn table1() -> String {
    let mut t = Table::new(&["Name", "Application", "Dwarf", "Domain"]);
    for m in &vcb_core::suite::SUITE {
        t.row(&[m.name, m.application, &m.dwarf.to_string(), m.domain]);
    }
    format!("TABLE I: VComputeBench benchmarks\n\n{}", t.render())
}

/// Renders Table II / Table III (platform configurations) for a device
/// class.
pub fn platform_table(class: DeviceClass) -> String {
    let (title, devices): (&str, Vec<DeviceProfile>) = match class {
        DeviceClass::Desktop => (
            "TABLE II: Desktop GPUs Experimental Setup",
            vcb_sim::profile::devices::desktop(),
        ),
        DeviceClass::Mobile => (
            "TABLE III: Mobile GPUs Experimental Setup",
            vcb_sim::profile::devices::mobile(),
        ),
    };
    let mut headers = vec!["".to_owned()];
    headers.extend(devices.iter().map(|d| d.name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    let row = |label: &str, f: &dyn Fn(&DeviceProfile) -> String| {
        let mut cells = vec![label.to_owned()];
        cells.extend(devices.iter().map(f));
        cells
    };
    t.row(&row("Host", &|d| d.host.clone()));
    t.row(&row("Architecture", &|d| d.architecture.clone()));
    t.row(&row("Compute units", &|d| d.compute_units.to_string()));
    t.row(&row("Peak bandwidth", &|d| {
        format!("{:.1} GB/s", d.memory.peak_bandwidth_gbps())
    }));
    t.row(&row("Device memory", &|d| {
        format!("{} MiB", d.device_local_bytes() / (1024 * 1024))
    }));
    for api in Api::ALL {
        t.row(&row(&api.to_string(), &|d| {
            d.driver(api)
                .map(|drv| drv.api_version.clone())
                .unwrap_or_else(|| "-".into())
        }));
    }
    format!("{title}\n\n{}", t.render())
}

/// Renders one device's bandwidth curves (one panel of Fig. 1 / Fig. 3).
pub fn bandwidth_panel(curves: &[BandwidthCurve]) -> String {
    let device = curves.first().map(|c| c.device.as_str()).unwrap_or("?");
    let mut out = format!("{device}: achieved bandwidth (GB/s) vs element stride\n\n");
    let mut headers = vec!["Stride".to_owned()];
    for c in curves {
        headers.push(c.api.to_string());
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    let strides: Vec<u32> = curves
        .iter()
        .find_map(|c| c.samples.as_ref().ok())
        .map(|s| s.iter().map(|x| x.stride).collect())
        .unwrap_or_default();
    for (i, stride) in strides.iter().enumerate() {
        let mut cells = vec![stride.to_string()];
        for c in curves {
            cells.push(match &c.samples {
                Ok(samples) => format!("{:.2}", samples[i].gbps()),
                Err(e) => e.to_string(),
            });
        }
        t.row(&cells);
    }
    let _ = write!(out, "{}", t.render());
    out
}

/// Renders one device's speedup panel (Fig. 2 / Fig. 4) as a bar chart.
pub fn speedup_panel(panel: &DevicePanel) -> String {
    let mut chart = BarChart::new(
        format!(
            "{}: speedup vs OpenCL baseline (kernel times)",
            panel.device
        ),
        1.0,
    );
    for (workload, size) in panel.bars() {
        for &api in &panel.apis {
            if api == Api::OpenCl {
                continue;
            }
            let label = format!("{workload}/{size} {api}");
            match panel.speedup(&workload, &size, api) {
                Some(s) => {
                    chart.bar(label, s);
                }
                None => {
                    let reason = panel
                        .cells
                        .iter()
                        .find(|c| c.workload == workload && c.size == size && c.api == api)
                        .and_then(|c| c.outcome.as_ref().err())
                        .map(failure_note)
                        .unwrap_or("no baseline");
                    chart.bar_with_note(label, f64::NAN, reason);
                }
            }
        }
    }
    chart.render(48)
}

fn failure_note(f: &RunFailure) -> &'static str {
    match f {
        RunFailure::OutOfMemory => "did not fit in device memory",
        RunFailure::DriverFailure => "driver failure",
        RunFailure::Unsupported => "API unsupported",
        RunFailure::Error(_) => "error",
    }
}

/// Renders the §V-A2 overhead decomposition (why kernel-only times are
/// compared).
pub fn overhead_table(rows: &[crate::experiments::OverheadRow]) -> String {
    let mut t = Table::new(&[
        "API",
        "kernel",
        "total",
        "jit",
        "pipeline",
        "transfer",
        "host-api",
        "total/kernel",
    ]);
    for r in rows {
        t.row(&[
            r.api.to_string(),
            r.kernel.to_string(),
            r.total.to_string(),
            r.jit.to_string(),
            r.pipeline.to_string(),
            r.transfer.to_string(),
            r.host_api.to_string(),
            format!("{:.2}x", r.total.ratio(r.kernel)),
        ]);
    }
    format!(
        "gaussian/208: where end-to-end time goes per API (why the paper\n\
         compares kernel times only, §V-A2)\n\n{}",
        t.render()
    )
}

/// Short mode label of a UVM-comparison column, derived from the
/// device-name suffix (see `vcb_sim::MemMode::suffix`).
fn uvm_mode_label(device: &str) -> &'static str {
    if device.ends_with("-uvm-oversub") {
        "uvm-oversub"
    } else if device.ends_with("-uvm") {
        "uvm"
    } else {
        "explicit"
    }
}

/// One UVM cell reduced to its headline numbers.
enum UvmValue {
    /// A workload run: end-to-end time plus the demand-paging share.
    Run {
        /// End-to-end time of the benchmark body.
        total: SimDuration,
        /// The `CostKind::UvmFault` bucket (fault + migration stalls).
        stall: SimDuration,
    },
    /// The stride sweep: mean achieved bandwidth over the stride range
    /// in GB/s. The mean (not the peak) is what separates the
    /// oversubscribed mode: small strides touch a working set that
    /// fits even a halved budget, while large strides sweep the whole
    /// array and thrash the LRU — degradation lives in the tail.
    Sweep(f64),
    /// The run failed.
    Failed(String),
    /// The cell was not planned (pruned by a filter).
    Missing,
}

fn uvm_value(out: Option<&CellOut>) -> UvmValue {
    match out {
        None => UvmValue::Missing,
        Some(CellOut::Run(Ok(r))) => UvmValue::Run {
            total: r.total_time,
            stall: r.breakdown.get(CostKind::UvmFault),
        },
        Some(CellOut::Curve(Ok(samples))) if !samples.is_empty() => {
            UvmValue::Sweep(samples.iter().map(|s| s.gbps()).sum::<f64>() / samples.len() as f64)
        }
        Some(CellOut::Curve(Ok(_))) => UvmValue::Missing,
        Some(CellOut::Run(Err(e))) | Some(CellOut::Curve(Err(e))) => {
            UvmValue::Failed(e.to_string())
        }
    }
}

/// The headline cell text: total time for runs, peak GB/s for the sweep.
fn uvm_value_text(v: &UvmValue) -> String {
    match v {
        UvmValue::Run { total, .. } => total.to_string(),
        UvmValue::Sweep(gbps) => format!("{gbps:.1} GB/s"),
        UvmValue::Failed(e) => e.clone(),
        UvmValue::Missing => "-".into(),
    }
}

/// Slowdown of `v` against the explicit-copy `base` column: a time
/// ratio for runs, an inverted bandwidth ratio for the sweep (both read
/// "N x slower than explicit").
fn uvm_slowdown(v: &UvmValue, base: &UvmValue) -> Option<f64> {
    match (v, base) {
        (UvmValue::Run { total, .. }, UvmValue::Run { total: b, .. }) => Some(total.ratio(*b)),
        (UvmValue::Sweep(g), UvmValue::Sweep(b)) if *g > 0.0 => Some(b / g),
        _ => None,
    }
}

/// Renders the unified-memory comparison: one value column per memory
/// mode, with demand-paging stall time and slowdown-vs-explicit columns
/// for the UVM modes.
pub fn uvm_table(cmp: &UvmCompare) -> String {
    let base_device = cmp
        .devices
        .first()
        .map(|d| {
            d.trim_end_matches("-oversub")
                .trim_end_matches("-uvm")
                .to_owned()
        })
        .unwrap_or_else(|| "?".into());
    let mut headers = vec!["Workload".to_owned()];
    for (i, d) in cmp.devices.iter().enumerate() {
        headers.push(uvm_mode_label(d).to_owned());
        if i > 0 {
            headers.push("fault stall".into());
            headers.push("vs explicit".into());
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for row in &cmp.rows {
        let values: Vec<UvmValue> = (0..cmp.devices.len())
            .map(|i| uvm_value(row.outs.get(i).and_then(Option::as_ref)))
            .collect();
        let mut cells = vec![format!("{}/{}", row.workload, row.size)];
        for (i, v) in values.iter().enumerate() {
            cells.push(uvm_value_text(v));
            if i > 0 {
                cells.push(match v {
                    UvmValue::Run { stall, .. } => stall.to_string(),
                    _ => "-".into(),
                });
                cells.push(
                    uvm_slowdown(v, &values[0])
                        .map(|s| format!("{s:.2}x"))
                        .unwrap_or_else(|| "-".into()),
                );
            }
        }
        t.row(&cells);
    }
    format!(
        "{base_device} (Vulkan): end-to-end time per memory mode\n\
         (stride row: mean achieved bandwidth over the sweep; `fault\n\
         stall` is the demand-paging share of total time)\n\n{}",
        t.render()
    )
}

/// The UVM comparison CSV schema
/// (`workload,size,mode,total_us,uvm_us,gbps,vs_explicit,status`).
pub const UVM_CSV_HEADERS: [&str; 8] = [
    "workload",
    "size",
    "mode",
    "total_us",
    "uvm_us",
    "gbps",
    "vs_explicit",
    "status",
];

/// Renders the UVM comparison as CSV, one row per (workload, mode).
pub fn uvm_csv(cmp: &UvmCompare) -> String {
    let mut t = Table::new(&UVM_CSV_HEADERS);
    for row in &cmp.rows {
        let values: Vec<UvmValue> = (0..cmp.devices.len())
            .map(|i| uvm_value(row.outs.get(i).and_then(Option::as_ref)))
            .collect();
        for (i, (device, v)) in cmp.devices.iter().zip(&values).enumerate() {
            let (total, stall, gbps, status) = match v {
                UvmValue::Run { total, stall } => (
                    format!("{:.3}", total.as_micros()),
                    format!("{:.3}", stall.as_micros()),
                    String::new(),
                    "ok".to_owned(),
                ),
                UvmValue::Sweep(g) => {
                    (String::new(), String::new(), format!("{g:.4}"), "ok".into())
                }
                UvmValue::Failed(e) => (String::new(), String::new(), String::new(), e.clone()),
                UvmValue::Missing => continue,
            };
            t.row(&[
                row.workload.clone(),
                row.size.clone(),
                uvm_mode_label(device).to_owned(),
                total,
                stall,
                gbps,
                if i > 0 {
                    uvm_slowdown(v, &values[0])
                        .map(|s| format!("{s:.4}"))
                        .unwrap_or_default()
                } else {
                    String::new()
                },
                status,
            ]);
        }
    }
    t.to_csv()
}

/// Groups the DNN panel's device columns by base silicon: one entry per
/// base device in column order, with the column index of each memory
/// mode (`None` when `--device` pruned that variant).
fn dnn_device_groups(devices: &[String]) -> Vec<(String, [Option<usize>; 3])> {
    let mut groups: Vec<(String, [Option<usize>; 3])> = Vec::new();
    for (i, d) in devices.iter().enumerate() {
        let base = d
            .trim_end_matches("-oversub")
            .trim_end_matches("-uvm")
            .to_owned();
        let mode = match uvm_mode_label(d) {
            "explicit" => 0,
            "uvm" => 1,
            _ => 2,
        };
        match groups.iter_mut().find(|(b, _)| *b == base) {
            Some((_, slots)) => slots[mode] = Some(i),
            None => {
                let mut slots = [None; 3];
                slots[mode] = Some(i);
                groups.push((base, slots));
            }
        }
    }
    groups
}

fn dnn_cell_text(out: Option<&CellOut>) -> String {
    match out {
        Some(CellOut::Run(Ok(r))) => r.total_time.to_string(),
        Some(CellOut::Run(Err(e))) | Some(CellOut::Curve(Err(e))) => e.to_string(),
        Some(CellOut::Curve(Ok(_))) | None => "-".into(),
    }
}

fn dnn_ratio_text(out: Option<&CellOut>, base: Option<&CellOut>) -> String {
    match (out, base) {
        (Some(CellOut::Run(Ok(r))), Some(CellOut::Run(Ok(b)))) => {
            format!("{:.2}x", r.total_time.ratio(b.total_time))
        }
        _ => "-".into(),
    }
}

/// Renders the DNN inference panel: one row per (kernel, size) bar and
/// base device, with the explicit / resident-UVM / oversubscribed
/// end-to-end times and the UVM slowdowns side by side.
pub fn dnn_table(cmp: &DnnCompare) -> String {
    let mut t = Table::new(&[
        "Workload",
        "Device",
        "explicit",
        "uvm",
        "vs expl",
        "uvm-oversub",
        "vs expl",
    ]);
    for row in &cmp.rows {
        for (base, slots) in dnn_device_groups(&cmp.devices) {
            let out =
                |slot: Option<usize>| slot.and_then(|i| row.outs.get(i).and_then(Option::as_ref));
            let (e, u, ov) = (out(slots[0]), out(slots[1]), out(slots[2]));
            t.row(&[
                format!("{}/{}", row.workload, row.size),
                base,
                dnn_cell_text(e),
                dnn_cell_text(u),
                dnn_ratio_text(u, e),
                dnn_cell_text(ov),
                dnn_ratio_text(ov, e),
            ]);
        }
    }
    format!(
        "DNN inference family (Vulkan): end-to-end time per device and\n\
         memory mode (conv2d: 5x5 valid, 3 channels; gemm: two-layer MLP;\n\
         maxpool2d: two chained 2x2 stages)\n\n{}",
        t.render()
    )
}

/// The DNN panel CSV schema
/// (`workload,size,device,mode,kernel_us,total_us,fault_us,vs_explicit,status`).
pub const DNN_CSV_HEADERS: [&str; 9] = [
    "workload",
    "size",
    "device",
    "mode",
    "kernel_us",
    "total_us",
    "fault_us",
    "vs_explicit",
    "status",
];

/// Renders the DNN panel as CSV, one row per (workload, size, device
/// variant).
pub fn dnn_csv(cmp: &DnnCompare) -> String {
    let mut t = Table::new(&DNN_CSV_HEADERS);
    for row in &cmp.rows {
        for (base, slots) in dnn_device_groups(&cmp.devices) {
            let explicit = slots[0].and_then(|i| row.outs.get(i).and_then(Option::as_ref));
            for (mode_idx, slot) in slots.iter().enumerate() {
                let Some(i) = slot else { continue };
                let Some(out) = row.outs.get(*i).and_then(Option::as_ref) else {
                    continue;
                };
                let (kernel, total, fault, status) = match out {
                    CellOut::Run(Ok(r)) => (
                        format!("{:.3}", r.kernel_time.as_micros()),
                        format!("{:.3}", r.total_time.as_micros()),
                        format!("{:.3}", r.breakdown.get(CostKind::UvmFault).as_micros()),
                        "ok".to_owned(),
                    ),
                    CellOut::Run(Err(e)) | CellOut::Curve(Err(e)) => {
                        (String::new(), String::new(), String::new(), e.to_string())
                    }
                    CellOut::Curve(Ok(_)) => continue,
                };
                let vs = match (mode_idx, out, explicit) {
                    (0, ..) => String::new(),
                    (_, CellOut::Run(Ok(r)), Some(CellOut::Run(Ok(b)))) => {
                        format!("{:.4}", r.total_time.ratio(b.total_time))
                    }
                    _ => String::new(),
                };
                t.row(&[
                    row.workload.clone(),
                    row.size.clone(),
                    base.clone(),
                    ["explicit", "uvm", "uvm-oversub"][mode_idx].to_owned(),
                    kernel,
                    total,
                    fault,
                    vs,
                    status,
                ]);
            }
        }
    }
    t.to_csv()
}

/// Renders the geomean summary lines (the abstract's headline numbers).
pub fn summary_lines(summaries: &[GeomeanSummary]) -> String {
    let mut out = String::new();
    for s in summaries {
        let _ = write!(out, "{}: ", s.device);
        let mut parts = Vec::new();
        if let Some(g) = s.vulkan_vs_cuda {
            parts.push(format!("Vulkan vs CUDA geomean {g:.2}x"));
        }
        if let Some(g) = s.vulkan_vs_opencl {
            parts.push(format!("Vulkan vs OpenCL geomean {g:.2}x"));
        }
        if parts.is_empty() {
            parts.push("no comparable runs".into());
        }
        let _ = writeln!(out, "{}", parts.join(", "));
    }
    out
}

/// The panel CSV schema
/// (`device,workload,size,api,kernel_us,total_us,speedup_vs_opencl,status`).
pub const PANEL_CSV_HEADERS: [&str; 8] = [
    "device",
    "workload",
    "size",
    "api",
    "kernel_us",
    "total_us",
    "speedup_vs_opencl",
    "status",
];

/// The bandwidth CSV schema (`device,api,stride,gbps`).
pub const BANDWIDTH_CSV_HEADERS: [&str; 4] = ["device", "api", "stride", "gbps"];

/// The CSV cells of one matrix cell's row — shared by the post-hoc
/// [`panel_csv`] table and the incremental CSV sink, so both produce
/// byte-identical rows. `speedup` is the bar's kernel-time speedup over
/// the OpenCL baseline, when both ran.
pub fn panel_csv_cells(cell: &crate::experiments::MatrixCell, speedup: Option<f64>) -> [String; 8] {
    match &cell.outcome {
        Ok(r) => [
            cell.device.clone(),
            cell.workload.clone(),
            cell.size.clone(),
            cell.api.ident().to_owned(),
            format!("{:.3}", r.kernel_time.as_micros()),
            format!("{:.3}", r.total_time.as_micros()),
            speedup.map(|v| format!("{v:.4}")).unwrap_or_default(),
            if r.validated {
                "ok".into()
            } else {
                "NOT VALIDATED".into()
            },
        ],
        Err(e) => [
            cell.device.clone(),
            cell.workload.clone(),
            cell.size.clone(),
            cell.api.ident().to_owned(),
            String::new(),
            String::new(),
            String::new(),
            e.to_string(),
        ],
    }
}

/// The CSV cells of one bandwidth sample's row (shared with the
/// incremental CSV sink).
pub fn bandwidth_csv_cells(
    device: &str,
    api: Api,
    sample: &vcb_workloads::micro::stride::BandwidthSample,
) -> [String; 4] {
    [
        device.to_owned(),
        api.ident().to_owned(),
        sample.stride.to_string(),
        format!("{:.4}", sample.gbps()),
    ]
}

/// Renders a device panel as CSV rows.
pub fn panel_csv(panel: &DevicePanel) -> String {
    let mut t = Table::new(&PANEL_CSV_HEADERS);
    for c in &panel.cells {
        t.row(&panel_csv_cells(
            c,
            panel.speedup(&c.workload, &c.size, c.api),
        ));
    }
    t.to_csv()
}

/// Renders bandwidth curves as CSV.
pub fn bandwidth_csv(panels: &[Vec<BandwidthCurve>]) -> String {
    let mut t = Table::new(&BANDWIDTH_CSV_HEADERS);
    for curves in panels {
        for c in curves {
            if let Ok(samples) = &c.samples {
                for s in samples {
                    t.row(&bandwidth_csv_cells(&c.device, c.api, s));
                }
            }
        }
    }
    t.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_device_panel, ExperimentOpts};
    use vcb_core::workload::RunOpts;
    use vcb_sim::profile::devices;

    /// Minimal RFC-4180 parser for the tests: splits one CSV line into
    /// fields, honoring quoting and escaped quotes.
    fn parse_csv_line(line: &str) -> Vec<String> {
        let mut fields = Vec::new();
        let mut cur = String::new();
        let mut chars = line.chars().peekable();
        let mut quoted = false;
        while let Some(c) = chars.next() {
            match c {
                '"' if quoted => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        quoted = false;
                    }
                }
                '"' => quoted = true,
                ',' if !quoted => fields.push(std::mem::take(&mut cur)),
                other => cur.push(other),
            }
        }
        fields.push(cur);
        fields
    }

    fn quick() -> ExperimentOpts {
        ExperimentOpts {
            run: RunOpts {
                scale: 0.1,
                validate: false,
                ..RunOpts::default()
            },
            threads: 8,
            sizes_per_workload: 1,
            ..ExperimentOpts::default()
        }
    }

    #[test]
    fn panel_csv_has_a_parseable_row_for_every_cell_including_failures() {
        // The Nexus runs all nine workloads under two APIs; cfd reports
        // out-of-memory and backprop a driver failure, so the panel has
        // both success and failure cells.
        let registry = vcb_workloads::registry().unwrap();
        let panel = run_device_panel(&registry, &devices::powervr_g6430(), &quick());
        assert!(!panel.cells.is_empty());
        let csv = panel_csv(&panel);
        let lines: Vec<&str> = csv.lines().collect();
        // Header + one row per matrix cell, none skipped.
        assert_eq!(lines.len(), panel.cells.len() + 1);
        let header = parse_csv_line(lines[0]);
        assert_eq!(
            header,
            [
                "device",
                "workload",
                "size",
                "api",
                "kernel_us",
                "total_us",
                "speedup_vs_opencl",
                "status"
            ]
        );
        let mut failures = 0;
        for (line, cell) in lines[1..].iter().zip(&panel.cells) {
            let fields = parse_csv_line(line);
            assert_eq!(fields.len(), header.len(), "row `{line}`");
            assert_eq!(fields[1], cell.workload);
            assert_eq!(fields[2], cell.size);
            match &cell.outcome {
                Ok(_) => {
                    // Numeric fields must parse.
                    assert!(
                        fields[4].parse::<f64>().is_ok(),
                        "kernel_us `{}`",
                        fields[4]
                    );
                    assert!(fields[5].parse::<f64>().is_ok(), "total_us `{}`", fields[5]);
                    assert_eq!(fields[7], "ok");
                }
                Err(e) => {
                    failures += 1;
                    // Failure cells keep their row, with empty timings
                    // and the failure text as status.
                    assert!(fields[4].is_empty() && fields[5].is_empty());
                    assert_eq!(fields[7], e.to_string());
                }
            }
        }
        assert!(
            failures >= 3,
            "expected cfd OOM + backprop driver failures, saw {failures}"
        );
    }

    #[test]
    fn bandwidth_csv_rows_parse() {
        let registry = vcb_workloads::registry().unwrap();
        let opts = ExperimentOpts {
            run: RunOpts {
                scale: 0.02,
                validate: false,
                ..RunOpts::default()
            },
            ..quick()
        };
        let curves = crate::experiments::bandwidth_curves(&registry, &devices::adreno506(), &opts);
        let csv = bandwidth_csv(&[curves]);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines.len() > 1);
        for line in &lines[1..] {
            let fields = parse_csv_line(line);
            assert_eq!(fields.len(), 4, "row `{line}`");
            assert!(fields[2].parse::<u32>().is_ok());
            assert!(fields[3].parse::<f64>().is_ok());
        }
    }

    #[test]
    fn table1_lists_all_nine() {
        let s = table1();
        for m in &vcb_core::suite::SUITE {
            assert!(s.contains(m.name), "missing {}", m.name);
        }
    }

    #[test]
    fn platform_tables_show_versions() {
        let t2 = platform_table(DeviceClass::Desktop);
        assert!(t2.contains("CUDA 8.0"));
        assert!(t2.contains("112.0 GB/s"));
        let t3 = platform_table(DeviceClass::Mobile);
        assert!(t3.contains("Adreno"));
        assert!(t3.contains("libpvrcpt"));
    }
}
