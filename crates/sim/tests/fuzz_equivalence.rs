//! Seeded fuzz-equivalence suite for the run-length coalescing pipeline.
//!
//! The affine warp fast path ([`AddrPattern`]) and the run-consuming
//! memory hierarchy ([`CacheSim::access_run`], [`RowTracker::observe_run`])
//! are pure optimizations: every test here pins them byte-identical to
//! the generic per-address / per-sector definitions they replace
//! ([`expand_sectors`], [`CacheSim::access_sector`],
//! [`RowTracker::observe`]). The container builds offline (no
//! `proptest`), so each property runs over a seeded deterministic sweep
//! of randomized warp patterns instead of a shrinking search.

use vcb_sim::cache::{CacheOutcome, CacheSim};
use vcb_sim::coalesce::{
    expand_runs, expand_sector_runs, expand_sectors, run_sectors, runs_coalesce_result,
    AddrPattern, Coalescer, SectorRun,
};
use vcb_sim::dram::RowTracker;
use vcb_sim::rng::SmallRng;

const SECTOR: u64 = 32;
const LINE: u64 = 128;

/// One randomized warp access: lane byte addresses plus an access width.
fn gen_pattern(rng: &mut SmallRng, case: u64) -> (Vec<u64>, u64) {
    let size = [1u64, 4, 8][rng.gen_range_u64(0, 3) as usize];
    // Partial warps included: 1..=32 lanes.
    let lanes = rng.gen_range_u64(1, 33);
    let base = rng.gen_range_u64(0, 1 << 20);
    let addrs: Vec<u64> = match case % 7 {
        // Unit stride (the paper's common case).
        0 => (0..lanes).map(|i| base + i * size).collect(),
        // Constant stride, 2..64 bytes (spans the dense/sparse split).
        1 => {
            let stride = rng.gen_range_u64(2, 65);
            (0..lanes).map(|i| base + i * stride).collect()
        }
        // Descending constant stride.
        2 => {
            let stride = rng.gen_range_u64(1, 65);
            (0..lanes).rev().map(|i| base + i * stride).collect()
        }
        // Sector-straddling: offsets placed near sector boundaries.
        3 => (0..lanes)
            .map(|i| base / SECTOR * SECTOR + i * SECTOR + (SECTOR - size / 2).saturating_sub(1))
            .collect(),
        // Broadcast: every lane reads the same spot.
        4 => vec![base; lanes as usize],
        // Scattered: independent random addresses.
        5 => (0..lanes).map(|_| rng.gen_range_u64(0, 1 << 20)).collect(),
        // Affine prefix, then a mismatch (exercises the spill path).
        _ => {
            let stride = rng.gen_range_u64(1, 33);
            let mut v: Vec<u64> = (0..lanes).map(|i| base + i * stride).collect();
            let k = rng.gen_range_u64(0, lanes) as usize;
            v[k] = rng.gen_range_u64(0, 1 << 20);
            v
        }
    };
    (addrs, size)
}

/// Pushes a warp's addresses through the production collector and emits
/// its runs, as the traced-execution flush does.
fn production_runs(addrs: &[u64], size: u64) -> Vec<SectorRun> {
    let mut pattern = AddrPattern::default();
    for &a in addrs {
        pattern.push(a);
    }
    assert_eq!(pattern.len(), addrs.len());
    let mut scratch = Vec::new();
    let mut runs = Vec::new();
    pattern.emit_runs(size, SECTOR, &mut scratch, &mut runs);
    runs
}

#[test]
fn affine_fast_path_matches_generic_expansion() {
    for case in 0..2000u64 {
        let mut rng = SmallRng::seed_from_u64(0x00af_f14e ^ case);
        let (addrs, size) = gen_pattern(&mut rng, case);

        let mut reference = Vec::new();
        expand_sectors(&addrs, size, SECTOR, &mut reference);

        let runs = production_runs(&addrs, size);
        assert_eq!(
            expand_runs(&runs),
            reference,
            "case {case}: sector sequence diverged (addrs {addrs:?}, size {size})"
        );
        // Runs are maximal: no zero-length or mergeable neighbours.
        for (i, r) in runs.iter().enumerate() {
            assert!(r.len > 0, "case {case}: empty run");
            if i > 0 {
                assert!(
                    r.first > runs[i - 1].last() + 1,
                    "case {case}: runs {i} and {} should have merged",
                    i - 1
                );
            }
        }
    }
}

#[test]
fn run_coalesce_results_match_legacy_coalescer() {
    let mut coalescer = Coalescer::new(SECTOR, LINE);
    for case in 0..2000u64 {
        let mut rng = SmallRng::seed_from_u64(0xc0a1 ^ case);
        let (addrs, size) = gen_pattern(&mut rng, case);
        let legacy = coalescer.coalesce(&addrs, size as u32);
        let runs = production_runs(&addrs, size);
        let from_runs = runs_coalesce_result(&runs, SECTOR, LINE, legacy.useful_bytes);
        assert_eq!(
            from_runs, legacy,
            "case {case}: CoalesceResult diverged (addrs {addrs:?}, size {size})"
        );
    }
}

#[test]
fn spilled_expansion_matches_generic_for_arbitrary_addresses() {
    for case in 0..500u64 {
        let mut rng = SmallRng::seed_from_u64(0x5b1 ^ case);
        let len = rng.gen_range_u64(1, 64);
        let size = [1u64, 4, 8][rng.gen_range_u64(0, 3) as usize];
        let addrs: Vec<u64> = (0..len).map(|_| rng.gen_range_u64(0, 200_000)).collect();
        let mut reference = Vec::new();
        expand_sectors(&addrs, size, SECTOR, &mut reference);
        let mut scratch = Vec::new();
        let mut runs = Vec::new();
        expand_sector_runs(&addrs, size, SECTOR, &mut scratch, &mut runs);
        assert_eq!(expand_runs(&runs), reference, "case {case}");
        assert_eq!(run_sectors(&runs), reference.len() as u64, "case {case}");
    }
}

/// Splits a sector sequence into runs with random segmentation —
/// boundaries placed inside contiguous stretches as well as at them, to
/// prove segmentation carries no meaning for the hierarchy.
fn random_segmentation(sectors: &[u64], rng: &mut SmallRng) -> Vec<SectorRun> {
    let mut runs: Vec<SectorRun> = Vec::new();
    for &s in sectors {
        let extend = runs
            .last()
            .is_some_and(|r| s == r.first + r.len && !rng.gen_ratio(1, 3));
        if extend {
            runs.last_mut().unwrap().len += 1;
        } else {
            runs.push(SectorRun { first: s, len: 1 });
        }
    }
    runs
}

#[test]
fn cache_access_run_is_per_sector_identical_under_any_segmentation() {
    for case in 0..300u64 {
        let mut rng = SmallRng::seed_from_u64(0xcac4e ^ case);
        // Mix of streams and revisits so both hit and miss runs occur.
        let len = rng.gen_range_u64(1, 512) as usize;
        let mut sectors = Vec::with_capacity(len);
        let mut cursor = rng.gen_range_u64(0, 256);
        for _ in 0..len {
            match rng.gen_range_u64(0, 4) {
                0 => cursor = rng.gen_range_u64(0, 4096), // jump
                _ => cursor += 1,                         // stream
            }
            sectors.push(cursor);
        }
        let runs = random_segmentation(&sectors, &mut rng);

        let mut per_sector = CacheSim::new(16 * 1024, 4, SECTOR);
        let mut outcomes = Vec::new();
        for &s in &sectors {
            outcomes.push(per_sector.access_sector(s));
        }

        let mut per_run = CacheSim::new(16 * 1024, 4, SECTOR);
        let mut hits = 0u64;
        let mut misses = Vec::new();
        for r in &runs {
            hits += per_run.access_run(r.first, r.len, &mut misses);
        }
        assert_eq!(per_run.stats(), per_sector.stats(), "case {case}");
        assert_eq!(
            hits,
            outcomes.iter().filter(|&&o| o == CacheOutcome::Hit).count() as u64,
            "case {case}"
        );
        let expected_misses: Vec<u64> = sectors
            .iter()
            .zip(&outcomes)
            .filter(|&(_, &o)| o == CacheOutcome::Miss)
            .map(|(&s, _)| s)
            .collect();
        assert_eq!(expand_runs(&misses), expected_misses, "case {case}");
        // Contents identical too: replaying the stream hits in both.
        for &s in &sectors {
            assert_eq!(
                per_run.access_sector(s),
                per_sector.access_sector(s),
                "case {case}: post-stream contents diverged at sector {s}"
            );
        }
    }
}

#[test]
fn row_tracker_observe_run_is_per_sector_identical() {
    for case in 0..300u64 {
        let mut rng = SmallRng::seed_from_u64(0xd4a ^ case);
        let len = rng.gen_range_u64(1, 600) as usize;
        let mut sectors = Vec::with_capacity(len);
        let mut cursor = rng.gen_range_u64(0, 512);
        for _ in 0..len {
            match rng.gen_range_u64(0, 5) {
                0 => cursor = rng.gen_range_u64(0, 1 << 16), // jump
                _ => cursor += 1,                            // stream
            }
            sectors.push(cursor);
        }
        let runs = random_segmentation(&sectors, &mut rng);

        let mut per_sector = RowTracker::new(1024);
        let mut expected = 0u64;
        for &s in &sectors {
            if per_sector.observe(s * SECTOR) {
                expected += 1;
            }
        }
        let mut per_run = RowTracker::new(1024);
        let mut got = 0u64;
        for r in &runs {
            got += per_run.observe_run(r.first, r.len, SECTOR);
        }
        assert_eq!(got, expected, "case {case}");
        // Follow-up observations agree (the trackers' open-row state is
        // behaviourally identical).
        for probe in 0..64u64 {
            let s = rng.gen_range_u64(0, 1 << 16);
            assert_eq!(
                per_run.observe(s * SECTOR),
                per_sector.observe(s * SECTOR),
                "case {case}: follow-up {probe} diverged at sector {s}"
            );
        }
    }
}
