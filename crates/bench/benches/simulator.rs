//! `cargo bench --bench simulator` — engineering benchmarks of the
//! simulator substrate itself: how fast the reproduction executes
//! simulated work (host wall time, not simulated time).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use vcb_sim::cache::CacheSim;
use vcb_sim::coalesce::Coalescer;
use vcb_sim::engine::{Gpu, TraceMode};
use vcb_sim::exec::{BoundBuffer, CompileOpts, CompiledKernel, Dispatch, GroupCtx, KernelInfo};
use vcb_sim::profile::devices;
use vcb_sim::Api;

fn bench_coalescer(c: &mut Criterion) {
    let mut group = c.benchmark_group("coalescer");
    for stride in [1u64, 4, 32] {
        let addrs: Vec<u64> = (0..32).map(|i| i * stride * 4).collect();
        group.throughput(Throughput::Elements(32));
        group.bench_with_input(BenchmarkId::new("warp32", stride), &addrs, |b, addrs| {
            let mut coalescer = Coalescer::new(32, 128);
            b.iter(|| coalescer.coalesce(std::hint::black_box(addrs), 4));
        });
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("l2_cache");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("streaming_4k_sectors", |b| {
        let mut cache = CacheSim::new(1024 * 1024, 16, 32);
        let mut next = 0u64;
        b.iter(|| {
            for _ in 0..4096 {
                cache.access_sector(next);
                next = next.wrapping_add(1);
            }
        });
    });
    group.finish();
}

fn vadd_kernel() -> CompiledKernel {
    let info = KernelInfo::new("bench_vadd", [256, 1, 1])
        .reads(0, "x")
        .reads(1, "y")
        .writes(2, "z")
        .build();
    CompiledKernel::new(
        info,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let x = ctx.global::<f32>(0)?;
            let y = ctx.global::<f32>(1)?;
            let z = ctx.global::<f32>(2)?;
            ctx.for_lanes(|lane| {
                let i = lane.global_linear() as usize;
                let v = lane.ld(&x, i) + lane.ld(&y, i);
                lane.alu(1);
                lane.st(&z, i, v);
            });
            Ok(())
        }),
        CompileOpts::default(),
    )
}

fn bench_dispatch(c: &mut Criterion) {
    let n: usize = 256 * 1024;
    let profile = devices::gtx1050ti();
    let driver = profile.driver(Api::Cuda).unwrap().clone();

    let mut group = c.benchmark_group("dispatch");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));
    for (label, mode) in [
        ("detailed", TraceMode::Detailed),
        ("sampled_16", TraceMode::Sampled(16)),
        ("auto", TraceMode::Auto),
    ] {
        group.bench_function(BenchmarkId::new("vadd_256k", label), |b| {
            let mut gpu = Gpu::new(profile.clone());
            gpu.set_trace_mode(mode);
            let (x, _) = gpu.pool_mut().create_buffer(0, (n * 4) as u64).unwrap();
            let (y, _) = gpu.pool_mut().create_buffer(0, (n * 4) as u64).unwrap();
            let (z, _) = gpu.pool_mut().create_buffer(0, (n * 4) as u64).unwrap();
            let dispatch = Dispatch {
                kernel: vadd_kernel(),
                groups: [(n as u32).div_ceil(256), 1, 1],
                bindings: vec![
                    BoundBuffer { binding: 0, buffer: x },
                    BoundBuffer { binding: 1, buffer: y },
                    BoundBuffer { binding: 2, buffer: z },
                ],
                push_constants: vec![],
            };
            b.iter(|| gpu.execute(std::hint::black_box(&dispatch), &driver).unwrap());
        });
    }
    group.finish();
}

fn bench_spirv(c: &mut Criterion) {
    let registry = vcb_workloads::registry().unwrap();
    let info = registry.lookup("bfs_kernel1").unwrap().info().clone();
    let module = vcb_spirv::SpirvModule::assemble(&info);
    let words = module.words().to_vec();
    let mut group = c.benchmark_group("spirv");
    group.bench_function("assemble", |b| {
        b.iter(|| vcb_spirv::SpirvModule::assemble(std::hint::black_box(&info)))
    });
    group.bench_function("parse", |b| {
        b.iter(|| vcb_spirv::SpirvModule::parse(std::hint::black_box(&words)).unwrap())
    });
    group.finish();
}

criterion_group!(simulator, bench_coalescer, bench_cache, bench_dispatch, bench_spirv);
criterion_main!(simulator);
