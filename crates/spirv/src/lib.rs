//! # vcb-spirv — SPIR-V-like kernel modules and the driver compiler model
//!
//! The paper's kernels are GLSL compute shaders compiled offline to SPIR-V
//! with `glslangValidator` (§IV-B). This crate reproduces that toolchain
//! boundary for the simulated stack:
//!
//! * [`module::SpirvModule`] — a binary word-stream format structurally
//!   faithful to SPIR-V (magic/version header, instruction stream,
//!   entry points, `LocalSize`, `Binding`/`DescriptorSet`/`NonWritable`
//!   decorations), carrying the entry-point *symbol* of a natively
//!   registered kernel body instead of compiled code.
//! * [`disasm::disassemble`] — the CodeXL stand-in used to inspect what a
//!   driver was given.
//! * [`compile::DriverCompiler`] — resolves modules/symbols/OpenCL source
//!   to [`vcb_sim::CompiledKernel`]s, applying each driver's compiler
//!   maturity (the bfs local-memory-promotion effect) and modelling
//!   OpenCL's JIT build cost.
//!
//! ```
//! use std::sync::Arc;
//! use vcb_sim::exec::{GroupCtx, KernelInfo};
//! use vcb_sim::profile::devices;
//! use vcb_sim::{Api, KernelRegistry};
//! use vcb_spirv::compile::DriverCompiler;
//! use vcb_spirv::module::SpirvModule;
//!
//! # fn main() -> Result<(), vcb_sim::SimError> {
//! let mut registry = KernelRegistry::new();
//! let info = KernelInfo::new("scale", [64, 1, 1]).writes(0, "data").promotable().build();
//! registry.register(info.clone(), Arc::new(|_: &mut GroupCtx<'_>| Ok(())))?;
//!
//! let spv = SpirvModule::assemble(&info);          // "glslangValidator"
//! let device = devices::gtx1050ti();
//! let compiler = DriverCompiler::new(&registry);
//!
//! let vulkan = compiler.compile_module(&spv, device.driver(Api::Vulkan).unwrap())?;
//! let opencl = compiler.compile_symbol("scale", device.driver(Api::OpenCl).unwrap())?;
//! // Same body, different codegen maturity:
//! assert!(!vulkan.opts().local_memory_promotion);
//! assert!(opencl.opts().local_memory_promotion);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compile;
pub mod disasm;
pub mod module;
pub mod words;

pub use compile::{extract_kernel_names, jit_build_time, DriverCompiler};
pub use disasm::disassemble;
pub use module::{ModuleError, SpirvModule};
