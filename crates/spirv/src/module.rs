//! SPIR-V-like module representation: opcodes, builder and parser.
//!
//! The subset covers exactly what a VComputeBench compute shader needs:
//! capabilities, memory model, a `GLCompute` entry point, the `LocalSize`
//! execution mode, storage-buffer interface variables with `DescriptorSet`
//! and `Binding` decorations, `NonWritable` for read-only bindings, and a
//! small vendor-range extension block carrying the metadata a native
//! kernel body needs (shared-memory bytes, push-constant size, the
//! promotable-reuse flag and nominal source size).
//!
//! ```
//! use vcb_sim::exec::KernelInfo;
//! use vcb_spirv::module::SpirvModule;
//!
//! let info = KernelInfo::new("vector_add", [256, 1, 1])
//!     .reads(0, "x")
//!     .reads(1, "y")
//!     .writes(2, "z")
//!     .build();
//! let module = SpirvModule::assemble(&info);
//! let parsed = SpirvModule::parse(module.words()).unwrap();
//! assert_eq!(parsed.entry_point(), "vector_add");
//! assert_eq!(parsed.local_size(), [256, 1, 1]);
//! ```

use std::fmt;

use vcb_sim::exec::{BindingAccess, BindingDecl, KernelInfo};

use crate::words::{
    decode_string, encode_string, instruction_header, split_header, GENERATOR, MAGIC, VERSION_1_0,
};

/// Opcodes used by this subset (values match the SPIR-V specification
/// where the instruction exists there; the `0x70xx` range is the
/// vendor-specific block this reproduction uses for native-kernel
/// metadata).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Op {
    /// `OpSource` — source language declaration.
    Source = 3,
    /// `OpName` — debug name for an id.
    Name = 5,
    /// `OpMemoryModel` — addressing + memory model.
    MemoryModel = 14,
    /// `OpEntryPoint` — execution model, entry id, literal name.
    EntryPoint = 15,
    /// `OpExecutionMode` — here always `LocalSize`.
    ExecutionMode = 16,
    /// `OpCapability`.
    Capability = 17,
    /// `OpVariable` — interface variables (storage buffers).
    Variable = 59,
    /// `OpDecorate` — `DescriptorSet`, `Binding`, `NonWritable`.
    Decorate = 71,
    /// Vendor range: shared-memory bytes for the workgroup.
    ReproSharedMemory = 0x7001,
    /// Vendor range: push-constant byte count.
    ReproPushConstants = 0x7002,
    /// Vendor range: kernel contains a promotable reuse pattern.
    ReproPromotable = 0x7003,
    /// Vendor range: nominal source size in bytes (JIT cost model).
    ReproSourceBytes = 0x7004,
    /// Vendor range: the grid's workgroups are order-independent
    /// (the engine may execute them across worker threads).
    ReproParallelGroups = 0x7005,
}

/// `OpEntryPoint` execution model for compute shaders.
pub const EXECUTION_MODEL_GL_COMPUTE: u32 = 5;
/// `OpExecutionMode` mode id for `LocalSize`.
pub const EXECUTION_MODE_LOCAL_SIZE: u32 = 17;
/// `OpCapability` operand for the `Shader` capability.
pub const CAPABILITY_SHADER: u32 = 1;
/// `OpMemoryModel` logical addressing.
pub const ADDRESSING_LOGICAL: u32 = 0;
/// `OpMemoryModel` GLSL450 memory model.
pub const MEMORY_MODEL_GLSL450: u32 = 1;
/// `OpDecorate` decoration id for `Binding`.
pub const DECORATION_BINDING: u32 = 33;
/// `OpDecorate` decoration id for `DescriptorSet`.
pub const DECORATION_DESCRIPTOR_SET: u32 = 34;
/// `OpDecorate` decoration id for `NonWritable`.
pub const DECORATION_NON_WRITABLE: u32 = 24;
/// `OpVariable` storage class for storage buffers.
pub const STORAGE_CLASS_STORAGE_BUFFER: u32 = 12;
/// `OpSource` language id for GLSL.
pub const SOURCE_LANGUAGE_GLSL: u32 = 2;

/// Errors produced when parsing or validating a module.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModuleError {
    /// Module shorter than the five-word header.
    TooShort,
    /// First word is not the SPIR-V magic number.
    BadMagic {
        /// The word found instead.
        found: u32,
    },
    /// Unsupported version word.
    BadVersion {
        /// The version word found.
        found: u32,
    },
    /// An instruction ran past the end of the stream or had length zero.
    TruncatedInstruction {
        /// Word offset of the bad instruction.
        offset: usize,
    },
    /// A literal string operand failed to decode.
    BadString {
        /// Word offset of the instruction.
        offset: usize,
    },
    /// The module declares no `GLCompute` entry point.
    MissingEntryPoint,
    /// More than one entry point (unsupported by this subset).
    MultipleEntryPoints,
    /// `LocalSize` execution mode missing or zero.
    MissingLocalSize,
    /// Two interface variables share a binding slot.
    DuplicateBinding {
        /// The conflicting slot.
        binding: u32,
    },
    /// The `Shader` capability is missing.
    MissingShaderCapability,
    /// An instruction had an operand count inconsistent with its opcode.
    MalformedInstruction {
        /// The opcode value.
        opcode: u16,
        /// Word offset of the instruction.
        offset: usize,
    },
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::TooShort => write!(f, "module shorter than the SPIR-V header"),
            ModuleError::BadMagic { found } => {
                write!(f, "bad magic number {found:#010x} (expected {MAGIC:#010x})")
            }
            ModuleError::BadVersion { found } => {
                write!(f, "unsupported version word {found:#010x}")
            }
            ModuleError::TruncatedInstruction { offset } => {
                write!(f, "truncated instruction at word {offset}")
            }
            ModuleError::BadString { offset } => {
                write!(
                    f,
                    "undecodable string literal in instruction at word {offset}"
                )
            }
            ModuleError::MissingEntryPoint => write!(f, "no GLCompute entry point"),
            ModuleError::MultipleEntryPoints => write!(f, "multiple entry points are unsupported"),
            ModuleError::MissingLocalSize => write!(f, "missing or zero LocalSize execution mode"),
            ModuleError::DuplicateBinding { binding } => {
                write!(f, "binding {binding} declared twice")
            }
            ModuleError::MissingShaderCapability => write!(f, "missing Shader capability"),
            ModuleError::MalformedInstruction { opcode, offset } => {
                write!(
                    f,
                    "malformed instruction (opcode {opcode}) at word {offset}"
                )
            }
        }
    }
}

impl std::error::Error for ModuleError {}

/// An assembled or parsed SPIR-V-like module.
#[derive(Debug, Clone, PartialEq)]
pub struct SpirvModule {
    words: Vec<u32>,
    info: KernelInfo,
}

impl SpirvModule {
    /// Assembles a module from a kernel description — the reproduction's
    /// equivalent of running `glslangValidator` on a GLSL compute shader.
    pub fn assemble(info: &KernelInfo) -> SpirvModule {
        let mut w = Vec::with_capacity(64);
        // Header. `bound` is ids + 1; ids: 1 = entry function, then one per
        // binding variable.
        let bound = 2 + info.bindings.len() as u32;
        w.extend_from_slice(&[MAGIC, VERSION_1_0, GENERATOR, bound, 0]);

        push_inst(&mut w, Op::Capability, &[CAPABILITY_SHADER]);
        push_inst(
            &mut w,
            Op::MemoryModel,
            &[ADDRESSING_LOGICAL, MEMORY_MODEL_GLSL450],
        );
        // OpEntryPoint GLCompute %1 "name" <interface ids...>
        let name_words = encode_string(&info.name);
        let mut operands = vec![EXECUTION_MODEL_GL_COMPUTE, 1];
        operands.extend_from_slice(&name_words);
        operands.extend((0..info.bindings.len()).map(|i| 2 + i as u32));
        push_inst(&mut w, Op::EntryPoint, &operands);
        push_inst(
            &mut w,
            Op::ExecutionMode,
            &[
                1,
                EXECUTION_MODE_LOCAL_SIZE,
                info.local_size[0],
                info.local_size[1],
                info.local_size[2],
            ],
        );
        push_inst(&mut w, Op::Source, &[SOURCE_LANGUAGE_GLSL, 450]);

        for (i, b) in info.bindings.iter().enumerate() {
            let id = 2 + i as u32;
            push_inst(&mut w, Op::Variable, &[id, STORAGE_CLASS_STORAGE_BUFFER]);
            push_inst(&mut w, Op::Decorate, &[id, DECORATION_DESCRIPTOR_SET, 0]);
            push_inst(&mut w, Op::Decorate, &[id, DECORATION_BINDING, b.binding]);
            if b.access == BindingAccess::ReadOnly {
                push_inst(&mut w, Op::Decorate, &[id, DECORATION_NON_WRITABLE]);
            }
            let mut name_op = vec![id];
            name_op.extend_from_slice(&encode_string(b.name));
            push_inst(&mut w, Op::Name, &name_op);
        }

        if info.shared_bytes > 0 {
            push_inst(&mut w, Op::ReproSharedMemory, &[info.shared_bytes as u32]);
        }
        if info.push_constant_bytes > 0 {
            push_inst(&mut w, Op::ReproPushConstants, &[info.push_constant_bytes]);
        }
        if info.promotable {
            push_inst(&mut w, Op::ReproPromotable, &[]);
        }
        if info.parallel_groups {
            push_inst(&mut w, Op::ReproParallelGroups, &[]);
        }
        push_inst(&mut w, Op::ReproSourceBytes, &[info.source_bytes as u32]);

        SpirvModule {
            words: w,
            info: info.clone(),
        }
    }

    /// Parses and validates a word stream.
    ///
    /// # Errors
    ///
    /// Any [`ModuleError`]; the module must contain exactly one compute
    /// entry point with a non-zero `LocalSize`.
    pub fn parse(words: &[u32]) -> Result<SpirvModule, ModuleError> {
        if words.len() < 5 {
            return Err(ModuleError::TooShort);
        }
        if words[0] != MAGIC {
            return Err(ModuleError::BadMagic { found: words[0] });
        }
        if words[1] != VERSION_1_0 {
            return Err(ModuleError::BadVersion { found: words[1] });
        }

        let mut entry: Option<String> = None;
        let mut local_size: Option<[u32; 3]> = None;
        let mut has_shader_cap = false;
        let mut shared_bytes = 0u64;
        let mut push_bytes = 0u32;
        let mut promotable = false;
        let mut parallel_groups = false;
        let mut source_bytes = 1024u64;
        // id -> (binding, read_only, name)
        let mut vars: Vec<(u32, Option<u32>, bool, String)> = Vec::new();

        let mut offset = 5;
        while offset < words.len() {
            let (wc, opcode) = split_header(words[offset]);
            let wc = wc as usize;
            if wc == 0 || offset + wc > words.len() {
                return Err(ModuleError::TruncatedInstruction { offset });
            }
            let operands = &words[offset + 1..offset + wc];
            match opcode {
                x if x == Op::Capability as u16 && operands.first() == Some(&CAPABILITY_SHADER) => {
                    has_shader_cap = true;
                }
                x if x == Op::EntryPoint as u16 => {
                    if operands.len() < 3 || operands[0] != EXECUTION_MODEL_GL_COMPUTE {
                        return Err(ModuleError::MalformedInstruction { opcode, offset });
                    }
                    let (name, _) =
                        decode_string(&operands[2..]).ok_or(ModuleError::BadString { offset })?;
                    if entry.replace(name).is_some() {
                        return Err(ModuleError::MultipleEntryPoints);
                    }
                }
                x if x == Op::ExecutionMode as u16
                    && operands.len() == 5
                    && operands[1] == EXECUTION_MODE_LOCAL_SIZE =>
                {
                    local_size = Some([operands[2], operands[3], operands[4]]);
                }
                x if x == Op::Variable as u16 => {
                    if operands.len() != 2 {
                        return Err(ModuleError::MalformedInstruction { opcode, offset });
                    }
                    vars.push((operands[0], None, false, String::new()));
                }
                x if x == Op::Decorate as u16 => {
                    if operands.len() < 2 {
                        return Err(ModuleError::MalformedInstruction { opcode, offset });
                    }
                    let id = operands[0];
                    if let Some(var) = vars.iter_mut().find(|v| v.0 == id) {
                        match operands[1] {
                            DECORATION_BINDING if operands.len() == 3 => {
                                var.1 = Some(operands[2]);
                            }
                            DECORATION_NON_WRITABLE => var.2 = true,
                            _ => {}
                        }
                    }
                }
                x if x == Op::Name as u16 => {
                    if operands.len() < 2 {
                        return Err(ModuleError::MalformedInstruction { opcode, offset });
                    }
                    let id = operands[0];
                    let (name, _) =
                        decode_string(&operands[1..]).ok_or(ModuleError::BadString { offset })?;
                    if let Some(var) = vars.iter_mut().find(|v| v.0 == id) {
                        var.3 = name;
                    }
                }
                x if x == Op::ReproSharedMemory as u16 => {
                    shared_bytes = u64::from(*operands.first().unwrap_or(&0));
                }
                x if x == Op::ReproPushConstants as u16 => {
                    push_bytes = *operands.first().unwrap_or(&0);
                }
                x if x == Op::ReproPromotable as u16 => promotable = true,
                x if x == Op::ReproParallelGroups as u16 => parallel_groups = true,
                x if x == Op::ReproSourceBytes as u16 => {
                    source_bytes = u64::from(*operands.first().unwrap_or(&1024));
                }
                _ => {} // Unknown instructions are skipped, as real consumers do.
            }
            offset += wc;
        }

        if !has_shader_cap {
            return Err(ModuleError::MissingShaderCapability);
        }
        let entry = entry.ok_or(ModuleError::MissingEntryPoint)?;
        let local_size = local_size.ok_or(ModuleError::MissingLocalSize)?;
        // Corrupted modules can carry arbitrary sizes; reject anything
        // whose work-item count is zero or overflows `u32` before the
        // KernelInfo builder asserts on it.
        let local_len = local_size
            .iter()
            .try_fold(1u32, |acc, &d| acc.checked_mul(d))
            .unwrap_or(0);
        if local_len == 0 {
            return Err(ModuleError::MissingLocalSize);
        }

        let mut bindings = Vec::with_capacity(vars.len());
        for (_, binding, read_only, name) in &vars {
            let Some(binding) = binding else { continue };
            if bindings.iter().any(|b: &BindingDecl| b.binding == *binding) {
                return Err(ModuleError::DuplicateBinding { binding: *binding });
            }
            bindings.push(BindingDecl {
                binding: *binding,
                access: if *read_only {
                    BindingAccess::ReadOnly
                } else {
                    BindingAccess::ReadWrite
                },
                // Leak is bounded: binding names come from a small static
                // set per kernel; interning keeps BindingDecl's &'static
                // str shape shared with natively-declared kernels.
                name: intern(name),
            });
        }

        let mut builder = KernelInfo::new(entry, local_size);
        for b in &bindings {
            builder = match b.access {
                BindingAccess::ReadOnly => builder.reads(b.binding, b.name),
                BindingAccess::ReadWrite => builder.writes(b.binding, b.name),
            };
        }
        if shared_bytes > 0 {
            builder = builder.shared_memory(shared_bytes);
        }
        if push_bytes > 0 {
            builder = builder.push_constants(push_bytes);
        }
        if promotable {
            builder = builder.promotable();
        }
        if parallel_groups {
            builder = builder.parallel_groups();
        }
        builder = builder.source_bytes(source_bytes);

        Ok(SpirvModule {
            words: words.to_vec(),
            info: builder.build(),
        })
    }

    /// The raw word stream (what `vkCreateShaderModule` consumes).
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The module's size in bytes.
    pub fn byte_len(&self) -> usize {
        self.words.len() * 4
    }

    /// Entry-point name.
    pub fn entry_point(&self) -> &str {
        &self.info.name
    }

    /// `LocalSize` execution mode.
    pub fn local_size(&self) -> [u32; 3] {
        self.info.local_size
    }

    /// The kernel description recovered from the module.
    pub fn info(&self) -> &KernelInfo {
        &self.info
    }
}

fn push_inst(words: &mut Vec<u32>, op: Op, operands: &[u32]) {
    words.push(instruction_header(1 + operands.len() as u16, op as u16));
    words.extend_from_slice(operands);
}

/// Interns binding-name strings recovered from parsed modules.
fn intern(s: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let set = INTERNED.get_or_init(|| Mutex::new(HashSet::new()));
    let mut guard = set.lock().expect("intern table poisoned");
    if let Some(existing) = guard.get(s) {
        existing
    } else {
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        guard.insert(leaked);
        leaked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_info() -> KernelInfo {
        KernelInfo::new("hotspot_step", [16, 16, 1])
            .reads(0, "temp_in")
            .reads(1, "power")
            .writes(2, "temp_out")
            .push_constants(16)
            .shared_memory(18 * 18 * 4)
            .source_bytes(2048)
            .build()
    }

    #[test]
    fn assemble_parse_round_trip() {
        let info = sample_info();
        let module = SpirvModule::assemble(&info);
        let parsed = SpirvModule::parse(module.words()).unwrap();
        assert_eq!(parsed.entry_point(), "hotspot_step");
        assert_eq!(parsed.local_size(), [16, 16, 1]);
        let pinfo = parsed.info();
        assert_eq!(pinfo.bindings.len(), 3);
        assert_eq!(pinfo.binding(0).unwrap().access, BindingAccess::ReadOnly);
        assert_eq!(pinfo.binding(2).unwrap().access, BindingAccess::ReadWrite);
        assert_eq!(pinfo.binding(1).unwrap().name, "power");
        assert_eq!(pinfo.push_constant_bytes, 16);
        assert_eq!(pinfo.shared_bytes, 18 * 18 * 4);
        assert_eq!(pinfo.source_bytes, 2048);
        assert!(!pinfo.promotable);
    }

    #[test]
    fn promotable_flag_round_trips() {
        let info = KernelInfo::new("bfs_kernel1", [256, 1, 1])
            .reads(0, "nodes")
            .promotable()
            .build();
        let module = SpirvModule::assemble(&info);
        assert!(
            SpirvModule::parse(module.words())
                .unwrap()
                .info()
                .promotable
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let info = sample_info();
        let mut words = SpirvModule::assemble(&info).words().to_vec();
        words[0] = 0xDEAD_BEEF;
        assert!(matches!(
            SpirvModule::parse(&words),
            Err(ModuleError::BadMagic { .. })
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut words = SpirvModule::assemble(&sample_info()).words().to_vec();
        words[1] = 0x0009_0000;
        assert!(matches!(
            SpirvModule::parse(&words),
            Err(ModuleError::BadVersion { .. })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let words = SpirvModule::assemble(&sample_info()).words().to_vec();
        let cut = &words[..words.len() - 1];
        assert!(matches!(
            SpirvModule::parse(cut),
            Err(ModuleError::TruncatedInstruction { .. })
        ));
    }

    #[test]
    fn rejects_header_only() {
        assert!(matches!(
            SpirvModule::parse(&[MAGIC, VERSION_1_0, 0, 1, 0][..4]),
            Err(ModuleError::TooShort)
        ));
        // A header with no entry point parses structurally but fails
        // validation.
        let mut words = vec![MAGIC, VERSION_1_0, 0, 1, 0];
        push_inst(&mut words, Op::Capability, &[CAPABILITY_SHADER]);
        assert!(matches!(
            SpirvModule::parse(&words),
            Err(ModuleError::MissingEntryPoint)
        ));
    }

    #[test]
    fn rejects_missing_capability() {
        let info = KernelInfo::new("k", [1, 1, 1]).build();
        let full = SpirvModule::assemble(&info);
        // Drop the first instruction (OpCapability, 2 words).
        let mut words = full.words()[..5].to_vec();
        words.extend_from_slice(&full.words()[7..]);
        assert!(matches!(
            SpirvModule::parse(&words),
            Err(ModuleError::MissingShaderCapability)
        ));
    }

    #[test]
    fn rejects_zero_local_size() {
        // Assemble manually with a zero LocalSize.
        let mut w = vec![MAGIC, VERSION_1_0, GENERATOR, 2, 0];
        push_inst(&mut w, Op::Capability, &[CAPABILITY_SHADER]);
        let mut operands = vec![EXECUTION_MODEL_GL_COMPUTE, 1];
        operands.extend_from_slice(&encode_string("k"));
        push_inst(&mut w, Op::EntryPoint, &operands);
        push_inst(
            &mut w,
            Op::ExecutionMode,
            &[1, EXECUTION_MODE_LOCAL_SIZE, 0, 1, 1],
        );
        assert!(matches!(
            SpirvModule::parse(&w),
            Err(ModuleError::MissingLocalSize)
        ));
    }

    #[test]
    fn unknown_instructions_are_skipped() {
        let info = KernelInfo::new("k", [8, 1, 1]).build();
        let mut words = SpirvModule::assemble(&info).words().to_vec();
        // Append an unknown 2-word instruction.
        words.push(instruction_header(2, 0x0FFF));
        words.push(12345);
        assert!(SpirvModule::parse(&words).is_ok());
    }

    #[test]
    fn module_byte_len_matches_words() {
        let m = SpirvModule::assemble(&sample_info());
        assert_eq!(m.byte_len(), m.words().len() * 4);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ModuleError::BadMagic { found: 0x12345678 };
        assert!(e.to_string().contains("0x12345678"));
        let e = ModuleError::DuplicateBinding { binding: 3 };
        assert!(e.to_string().contains('3'));
    }
}
