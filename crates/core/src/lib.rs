//! # vcb-core — the VComputeBench suite core
//!
//! Programming-model-agnostic pieces of the benchmark suite: the Table I
//! metadata ([`suite`]), the workload abstraction ([`workload`]), run
//! records and speedups ([`run`]), declarative run plans and the matrix
//! scheduler ([`plan`]), cross-process plan sharding and the event-stream
//! codec ([`shard`]), the persistent content-addressed result store
//! ([`store`]), summary statistics ([`stats`]), report rendering
//! ([`report`]) and the programming-effort metrics ([`effort`]).
//!
//! ```
//! use vcb_core::stats::geomean;
//! use vcb_core::suite;
//!
//! assert_eq!(suite::SUITE.len(), 9);
//! let g = geomean(&[1.2, 2.0, 0.8]).unwrap();
//! assert!(g > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod effort;
pub mod plan;
pub mod report;
pub mod run;
pub mod shard;
pub mod stats;
pub mod store;
pub mod suite;
pub mod workload;

pub use plan::{
    CellEvent, CellKey, CellRunner, CellSpec, EventSink, Executor, NullSink, PanelEntry, PanelSpec,
    ResultCache, RunPlan,
};
pub use run::{speedup, total_speedup, RunFailure, RunOutcome, RunRecord, SizeSpec};
pub use shard::{
    merge_streams, CodecError, EventWriter, MergeError, PlanSlice, ShardCell, ShardSlice,
    ShardStream, StreamMerger, CODEC_VERSION,
};
pub use store::{Store, StoreHit};
pub use suite::{BenchmarkMeta, Dwarf, SUITE};
pub use workload::{RunOpts, Workload};
