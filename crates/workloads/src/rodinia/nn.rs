//! nn — k-nearest neighbors (Table I: Dense Linear Algebra / Data
//! Mining).
//!
//! Computes the Euclidean distance from every (latitude, longitude)
//! record to a query point on the GPU; the host then selects the k
//! closest. A single bulk-parallel kernel with no iteration — the paper
//! finds all three programming models at parity here.

use std::sync::Arc;

use vcb_core::run::{RunFailure, RunOutcome, SizeSpec};
use vcb_core::suite::{self, BenchmarkMeta};
use vcb_core::workload::{RunOpts, Workload};
use vcb_sim::exec::{GroupCtx, KernelInfo};
use vcb_sim::profile::{DeviceClass, DeviceProfile};
use vcb_sim::{Api, KernelRegistry, SimResult};

use crate::common::{
    approx_eq_f32, bytes_of, measure, to_f32, BodyOutcome, ComputeBackend, UsageHint,
};
use crate::data;

/// Workload name.
pub const NAME: &str = "nn";
/// Kernel entry point.
pub const KERNEL: &str = "nn_distance";
/// Workgroup size.
pub const LOCAL_SIZE: u32 = 256;
/// Neighbors selected on the host.
pub const K: usize = 5;

/// The GLSL compute shader the SPIR-V is built from.
pub const GLSL_SOURCE: &str = r#"
#version 450
layout(local_size_x = 256) in;
layout(set = 0, binding = 0) readonly buffer Locations { vec2 locations[]; };
layout(set = 0, binding = 1) buffer Distances { float distances[]; };
layout(push_constant) uniform Params {
    uint n;
    float lat;
    float lng;
};

void main() {
    uint i = gl_GlobalInvocationID.x;
    if (i < n) {
        vec2 p = locations[i];
        distances[i] = sqrt((lat - p.x) * (lat - p.x)
                          + (lng - p.y) * (lng - p.y));
    }
}
"#;

/// The OpenCL C twin of the kernel.
pub const CL_SOURCE: &str = r#"
__kernel void nn_distance(__global const float2* locations,
                          __global float* distances,
                          uint n,
                          float lat,
                          float lng) {
    uint i = get_global_id(0);
    if (i < n) {
        float2 p = locations[i];
        distances[i] = sqrt((lat - p.x) * (lat - p.x)
                          + (lng - p.y) * (lng - p.y));
    }
}
"#;

/// Registers the kernel body.
///
/// # Errors
///
/// Fails on duplicate registration.
pub fn register(registry: &mut KernelRegistry) -> SimResult<()> {
    // parallel_groups audit: each work item writes only distances[i] and
    // reads the read-only locations buffer — no cross-group dependence.
    let info = KernelInfo::new(KERNEL, [LOCAL_SIZE, 1, 1])
        .reads(0, "locations")
        .writes(1, "distances")
        .push_constants(12)
        .parallel_groups()
        .source_bytes(CL_SOURCE.len() as u64)
        .build();
    registry.register(
        info,
        Arc::new(|ctx: &mut GroupCtx<'_>| {
            let locations = ctx.global::<f32>(0)?;
            let distances = ctx.global::<f32>(1)?;
            let n = ctx.push_u32(0) as u64;
            let lat = ctx.push_f32(4);
            let lng = ctx.push_f32(8);
            ctx.for_lanes(|lane| {
                let i = lane.global_linear();
                if i < n {
                    let i = i as usize;
                    let px = lane.ld(&locations, 2 * i);
                    let py = lane.ld(&locations, 2 * i + 1);
                    let d = ((lat - px) * (lat - px) + (lng - py) * (lng - py)).sqrt();
                    lane.alu(6);
                    lane.st(&distances, i, d);
                }
            });
            Ok(())
        }),
    )
}

/// Query point used by all runs (fixed, like Rodinia's command line).
pub const QUERY: (f32, f32) = (30.0, 59.0);

/// Deterministic (lat, lng) records, interleaved.
pub fn generate(n: usize, seed: u64) -> Vec<f32> {
    let lat = data::uniform_f32(n, seed, 0.0, 90.0);
    let lng = data::uniform_f32(n, seed ^ 0x1477, 0.0, 180.0);
    lat.into_iter().zip(lng).flat_map(|(a, b)| [a, b]).collect()
}

/// CPU reference distances.
pub fn reference(locations: &[f32], lat: f32, lng: f32) -> Vec<f32> {
    locations
        .chunks_exact(2)
        .map(|p| ((lat - p[0]) * (lat - p[0]) + (lng - p[1]) * (lng - p[1])).sqrt())
        .collect()
}

/// Host-side top-k selection (indices of the k smallest distances).
pub fn select_k_nearest(distances: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..distances.len()).collect();
    idx.sort_by(|&a, &b| distances[a].total_cmp(&distances[b]));
    idx.truncate(k);
    idx
}

fn push() -> impl Fn(usize) -> Vec<u8> {
    |n| {
        let mut p = Vec::with_capacity(12);
        p.extend_from_slice(&(n as u32).to_le_bytes());
        p.extend_from_slice(&QUERY.0.to_le_bytes());
        p.extend_from_slice(&QUERY.1.to_le_bytes());
        p
    }
}

/// The one host program behind all three APIs: one bulk-parallel
/// distance kernel, then the host-side top-k selection.
fn host_program(
    b: &mut dyn ComputeBackend,
    n: usize,
    locations_host: &[f32],
    expected: Option<&Vec<f32>>,
) -> Result<BodyOutcome, RunFailure> {
    let locations = b.upload(bytes_of(locations_host), UsageHint::ReadOnly)?;
    let distances = b.alloc((n * 4) as u64, UsageHint::WriteOnly)?;
    b.load_program(CL_SOURCE)?;
    let bg = b.bind_group(&[locations, distances])?;
    let kernel = b.kernel(KERNEL, bg, 12)?;

    let seq = b.seq_begin()?;
    b.seq_kernel(seq, kernel)?;
    b.seq_bind(seq, bg)?;
    b.seq_push(seq, &push()(n))?;
    b.seq_dispatch(seq, [(n as u32).div_ceil(LOCAL_SIZE), 1, 1])?;
    b.seq_end(seq)?;

    let compute_start = b.now();
    b.run(seq)?;
    let compute_time = b.now().duration_since(compute_start);

    let out = to_f32(&b.download(distances)?);
    let _nearest = select_k_nearest(&out, K);
    Ok(BodyOutcome {
        validated: expected.is_none_or(|e| approx_eq_f32(&out, e, 1e-4)),
        compute_time,
    })
}

fn run(
    api: Api,
    profile: &DeviceProfile,
    registry: &Arc<KernelRegistry>,
    size: &SizeSpec,
    opts: &RunOpts,
) -> RunOutcome {
    let n = size.n as usize;
    let mut b = vcb_backend::create_with(api, profile, registry, &opts.into())?;
    let locations_host = generate(n, opts.seed);
    let expected = opts
        .validate
        .then(|| reference(&locations_host, QUERY.0, QUERY.1));
    measure(NAME, &size.label, b.as_mut(), |b| {
        host_program(b, n, &locations_host, expected.as_ref())
    })
}

/// The nn suite entry.
#[derive(Debug, Clone)]
pub struct Nn {
    registry: Arc<KernelRegistry>,
}

impl Nn {
    /// Creates the workload against a kernel registry.
    pub fn new(registry: Arc<KernelRegistry>) -> Self {
        Nn { registry }
    }
}

impl Workload for Nn {
    fn meta(&self) -> BenchmarkMeta {
        *suite::find(NAME).expect("nn is in Table I")
    }

    fn sizes(&self, class: DeviceClass) -> Vec<SizeSpec> {
        match class {
            DeviceClass::Desktop => vec![
                SizeSpec::new("256K", 256 * 1024),
                SizeSpec::new("8M", 8 * 1024 * 1024),
                SizeSpec::new("16M", 16 * 1024 * 1024),
            ],
            DeviceClass::Mobile => vec![
                SizeSpec::new("256K", 256 * 1024),
                SizeSpec::new("8M", 8 * 1024 * 1024),
            ],
        }
    }

    fn run(&self, api: Api, device: &DeviceProfile, size: &SizeSpec, opts: &RunOpts) -> RunOutcome {
        run(api, device, &self.registry, size, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcb_core::run::speedup;
    use vcb_sim::profile::devices;

    fn registry() -> Arc<KernelRegistry> {
        let mut r = KernelRegistry::new();
        register(&mut r).unwrap();
        Arc::new(r)
    }

    #[test]
    fn all_apis_match_reference() {
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("8k", 8192);
        let w = Nn::new(Arc::clone(&registry));
        for api in Api::ALL {
            let record = w.run(api, &devices::gtx1050ti(), &size, &opts).unwrap();
            assert!(record.validated, "{api} failed validation");
        }
    }

    #[test]
    fn top_k_selection_is_sorted_by_distance() {
        let d = vec![5.0, 1.0, 3.0, 0.5, 2.0];
        assert_eq!(select_k_nearest(&d, 3), vec![3, 1, 4]);
    }

    #[test]
    fn apis_are_at_parity() {
        // Single kernel, no iteration: §V-A2 reports "pretty much similar
        // performance".
        let registry = registry();
        let opts = RunOpts::default();
        let size = SizeSpec::new("256K", 256 * 1024);
        let w = Nn::new(Arc::clone(&registry));
        let profile = devices::gtx1050ti();
        let vk = w.run(Api::Vulkan, &profile, &size, &opts).unwrap();
        let cu = w.run(Api::Cuda, &profile, &size, &opts).unwrap();
        let s = speedup(&cu, &vk);
        assert!((0.75..1.35).contains(&s), "nn speedup {s}");
    }
}
